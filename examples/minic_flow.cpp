// Compile a MiniC file from disk and run the full co-synthesis flow.
//
// Usage:  ./minic_flow [file.mc] [asic_area]
//
// Without arguments a built-in demo program is used.  The example
// prints the CDFG/BSB structure, the computed restrictions, the
// allocation and the final PACE partition, making it a debugging aid
// for new input programs.
#include <fstream>
#include <iostream>
#include <sstream>

#include "bsb/bsb.hpp"
#include "core/allocator.hpp"
#include "hw/target.hpp"
#include "minic/lexer.hpp"
#include "minic/lower.hpp"
#include "search/evaluate.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

constexpr const char* k_demo = R"(
// demo: tiny correlator
input a0, a1, a2, a3, b0, b1, b2, b3;
output r;

r = 0;
loop 128 {
  p0 = a0 * b0;
  p1 = a1 * b1;
  p2 = a2 * b2;
  p3 = a3 * b3;
  s0 = p0 + p1;
  s1 = p2 + p3;
  r = r + s0 + s1;
}
)";

}  // namespace

int main(int argc, char** argv)
{
    using namespace lycos;

    std::string source = k_demo;
    std::string origin = "<built-in demo>";
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        source = buf.str();
        origin = argv[1];
    }
    const double area = argc > 2 ? std::stod(argv[2]) : 8000.0;

    std::cout << "compiling " << origin << " ("
              << minic::count_code_lines(source) << " code lines)\n\n";

    cdfg::Cdfg graph;
    try {
        graph = minic::compile(source);
    }
    catch (const minic::Parse_error& e) {
        std::cerr << "compile error: " << e.what() << "\n";
        return 1;
    }

    const auto bsbs = bsb::extract_leaf_bsbs(graph);
    util::Table_printer structure({"BSB", "ops", "profile", "live-in",
                                   "live-out"});
    for (const auto& b : bsbs)
        structure.add_row({b.name, std::to_string(b.graph.size()),
                           util::fixed(b.profile, 1),
                           std::to_string(b.graph.live_ins().size()),
                           std::to_string(b.graph.live_outs().size())});
    structure.print(std::cout);

    const auto lib = hw::make_default_library();
    const auto target = hw::make_default_target(area);
    const core::Allocator allocator(lib, target);
    const auto infos = core::analyze(bsbs, lib, target.gates);
    const auto restrictions = core::compute_restrictions(infos, lib);

    std::cout << "\nrestrictions: " << restrictions.to_string(lib) << "\n";

    const auto alloc =
        allocator.run_analyzed(infos, {.area_budget = area});
    std::cout << "allocation:   " << alloc.allocation.to_string(lib) << "\n";

    const search::Eval_context ctx{bsbs, lib, target,
                                   pace::Controller_mode::optimistic_eca, 0.0};
    const auto ev = search::evaluate_allocation(ctx, alloc.allocation);
    std::cout << "partition:    " << ev.partition.n_in_hw << "/" << bsbs.size()
              << " BSBs in HW\n";
    std::cout << "speed-up:     "
              << util::speedup_percent(ev.speedup_pct()) << "\n";
    return 0;
}
