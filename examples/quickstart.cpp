// Quickstart: the complete LYCOS pre-allocation flow on a small MiniC
// program.
//
//   1. compile MiniC -> CDFG -> leaf BSB array,
//   2. run the hardware resource allocation algorithm (Algorithm 1),
//   3. hand the allocation to PACE and report the partition.
//
// Build and run:  ./quickstart
#include <iostream>

#include "bsb/bsb.hpp"
#include "core/allocator.hpp"
#include "hw/target.hpp"
#include "minic/lower.hpp"
#include "search/evaluate.hpp"
#include "util/format.hpp"

int main()
{
    using namespace lycos;

    // A small DSP-ish kernel: a hot loop and some setup code.
    const char* source = R"(
input x0, k0, k1, n;
output acc;

acc = 0;
s = x0;
loop 200 {
  p0 = s * k0;
  p1 = s * k1;
  q  = p0 + p1;
  r  = q - s;
  s  = r + 1;
  acc = acc + r;
}
acc = acc >> 4;
)";

    // 1. Front end: MiniC -> CDFG -> BSB array with profiles.
    const auto cdfg = minic::compile(source);
    const auto bsbs = bsb::extract_leaf_bsbs(cdfg);
    std::cout << "compiled " << bsbs.size() << " leaf BSBs:\n";
    for (const auto& b : bsbs)
        std::cout << "  " << b.name << ": " << b.graph.size()
                  << " ops, profile " << b.profile << "\n";

    // 2. Fix the target architecture and allocate the data-path.
    const auto lib = hw::make_default_library();
    const auto target = hw::make_default_target(/*asic_area=*/6000.0);

    const core::Allocator allocator(lib, target);
    const auto alloc =
        allocator.run(bsbs, {.area_budget = target.asic.total_area});

    std::cout << "\nallocation: " << alloc.allocation.to_string(lib) << "\n";
    std::cout << "data-path area: " << alloc.datapath_area << " of "
              << target.asic.total_area << " gates\n";

    // 3. Partition with PACE and report.
    const search::Eval_context ctx{bsbs, lib, target,
                                   pace::Controller_mode::optimistic_eca, 0.0};
    const auto ev = search::evaluate_allocation(ctx, alloc.allocation);

    std::cout << "\nPACE partition:\n";
    for (std::size_t i = 0; i < bsbs.size(); ++i)
        std::cout << "  " << bsbs[i].name << " -> "
                  << (ev.partition.in_hw[i] ? "HW" : "SW") << "\n";
    std::cout << "\nall-software time: " << ev.partition.time_all_sw_ns * 1e-3
              << " us\n";
    std::cout << "hybrid time:       " << ev.partition.time_hybrid_ns * 1e-3
              << " us\n";
    std::cout << "speed-up:          "
              << util::speedup_percent(ev.speedup_pct()) << "\n";
    return 0;
}
