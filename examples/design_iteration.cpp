// The §5 design-iteration workflow on the Mandelbrot application.
//
// The automatic allocation over-allocates constant generators (the
// paper's Table 1 row 3 anomaly).  A designer inspects the allocation,
// reduces the constant generators to one, and re-evaluates — exactly
// the "single design iteration" the paper describes.  §5.1 adds the
// rule: resources may need *reducing*, never increasing.
#include <iostream>

#include "apps/apps.hpp"
#include "core/allocator.hpp"
#include "hw/target.hpp"
#include "search/evaluate.hpp"
#include "util/format.hpp"

int main()
{
    using namespace lycos;

    const auto app = apps::make_man();
    const auto lib = hw::make_default_library();
    const auto target = hw::make_default_target(app.asic_area);

    const core::Allocator allocator(lib, target);
    const auto alloc =
        allocator.run(app.bsbs, {.area_budget = target.asic.total_area});

    // Score with the *real* (list-schedule) controller areas — the
    // §5.1 mismatch that makes the over-allocation visible.
    const search::Eval_context ctx{app.bsbs, lib, target,
                                   pace::Controller_mode::list_schedule, 0.0};
    const auto before = search::evaluate_allocation(ctx, alloc.allocation);

    std::cout << "automatic allocation:\n  "
              << alloc.allocation.to_string(lib) << "\n";
    std::cout << "  speed-up " << util::speedup_percent(before.speedup_pct())
              << ", " << before.partition.n_in_hw << "/" << app.bsbs.size()
              << " BSBs in HW\n\n";

    // Designer iteration: clamp the constant generators to one.
    const auto cg = *lib.find("const_gen");
    core::Rmap iterated = alloc.allocation;
    if (iterated(cg) > 1) {
        std::cout << "design iteration: reducing const_gen from "
                  << iterated(cg) << " to 1\n\n";
        iterated.set(cg, 1);
    }
    const auto after = search::evaluate_allocation(ctx, iterated);

    std::cout << "iterated allocation:\n  " << iterated.to_string(lib) << "\n";
    std::cout << "  speed-up " << util::speedup_percent(after.speedup_pct())
              << ", " << after.partition.n_in_hw << "/" << app.bsbs.size()
              << " BSBs in HW\n";

    const double gain = after.speedup_pct() - before.speedup_pct();
    std::cout << "\nthe iteration "
              << (gain > 0 ? "recovered " + util::fixed(gain, 0) +
                                 " percentage points of speed-up"
                           : "did not change the result")
              << "\n";
    return 0;
}
