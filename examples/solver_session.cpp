// The unified solver session API: describe the problem once, then run
// any registered strategy against it — the session owns the thread
// pool, the shared evaluation cache and the shared immutable cost
// invariants, so strategies compose without re-plumbing machinery.
//
// Here: the HAL benchmark, searched three ways —
//   1. exhaustive_bb   the §5 "best allocation" (the space is small),
//   2. hill_climb      the reproducible stand-in for larger spaces,
//   3. multi_asic_bb   the §6 direction: split the same silicon into
//                      two half-size ASICs and search allocation
//                      *pairs* with the two-ASIC PACE DP.
#include <iostream>

#include "apps/apps.hpp"
#include "core/analysis.hpp"
#include "core/restrictions.hpp"
#include "hw/target.hpp"
#include "solver/solver.hpp"
#include "util/format.hpp"

int main()
{
    using namespace lycos;

    const auto app = apps::make_hal();
    const auto lib = hw::make_default_library();
    const auto target = hw::make_default_target(app.asic_area);
    const auto infos = core::analyze(app.bsbs, lib, target.gates);

    solver::Problem problem;
    problem.bsbs = app.bsbs;
    problem.lib = &lib;
    problem.target = target;
    problem.restrictions = core::compute_restrictions(infos, lib);
    problem.area_quantum = target.asic.total_area / 512.0;

    solver::Session session(problem);
    std::cout << "hal: " << app.bsbs.size() << " BSBs, "
              << session.space_size() << " candidate allocations, "
              << util::fixed(target.asic.total_area, 0)
              << " gates of ASIC\n\n";

    for (const auto* strategy : solver::strategies()) {
        const auto result = session.solve(strategy->name(), {});
        std::cout << result.strategy << " (" << strategy->description()
                  << "):\n  " << util::with_commas(result.n_evaluated)
                  << " scored + " << util::with_commas(result.n_pruned)
                  << " pruned of " << util::with_commas(result.space_size)
                  << (result.multi.active ? " pairs" : " allocations")
                  << ", cache hit rate "
                  << util::percent(result.cache_stats.hit_rate()) << "\n";
        if (result.multi.active) {
            for (std::size_t k = 0; k < 2; ++k)
                std::cout << "  ASIC" << k << " ("
                          << util::fixed(result.multi.asic_areas[k], 0)
                          << " gates): "
                          << result.multi.datapaths[k].to_string(lib)
                          << "\n";
            std::cout << "  speed-up "
                      << util::speedup_percent(
                             result.multi.partition.speedup_pct)
                      << " with " << result.multi.partition.n_in_hw
                      << " BSBs in HW\n\n";
        }
        else {
            // Winners of the coarse search get the exact-quantum
            // re-score, served from the warm session cache.
            const auto fine = session.rescore(result.best.datapath);
            std::cout << "  speed-up " << util::speedup_percent(
                             fine.speedup_pct())
                      << " with " << fine.datapath.to_string(lib) << "\n\n";
        }
    }
    std::cout << "one ASIC of " << util::fixed(target.asic.total_area, 0)
              << " gates vs two of "
              << util::fixed(target.asic.total_area / 2.0, 0)
              << ": the split pays a second controller budget but can\n"
                 "keep adjacent BSBs on one chip — the searched pair "
                 "shows what that trade is worth.\n";
    return 0;
}
