// Dynamic profiling flow: measure, annotate, allocate.
//
// LYCOS derives the profile counts p_k (Definition 2) by profiling the
// application.  This example shows the full loop: a kernel whose
// source annotations are WRONG is executed on representative inputs,
// the measured loop/branch statistics replace the annotations, and the
// allocation improves because the allocator now knows where the time
// really goes.
#include <iostream>

#include "bsb/bsb.hpp"
#include "core/allocator.hpp"
#include "hw/target.hpp"
#include "minic/interp.hpp"
#include "minic/lower.hpp"
#include "minic/parser.hpp"
#include "search/evaluate.hpp"
#include "util/format.hpp"

namespace {

// The annotations claim the cheap clean-up loop is hot and the
// multiply-heavy filter loop is cold — the opposite of the truth.
constexpr const char* k_source = R"(
input n, g0, g1, x0;
output acc, fixups;

acc = 0;
x = x0;
i = 0;
while (i < n) trip 2 {          // annotation says 2; really n trips
  p0 = x * g0;
  p1 = p0 * g1;
  acc = acc + p1;
  x = x + 1;
  i = i + 1;
}

fixups = 0;
j = 0;
while (j < 4) trip 5000 {       // annotation says 5000; really 4
  fixups = fixups + 1;
  j = j + 1;
}
)";

double score(const lycos::minic::Program& program, double area)
{
    using namespace lycos;
    const auto bsbs = bsb::extract_leaf_bsbs(minic::lower(program));
    const auto lib = hw::make_default_library();
    const auto target = hw::make_default_target(area);
    const core::Allocator allocator(lib, target);
    const auto alloc = allocator.run(bsbs, {.area_budget = area});
    const search::Eval_context ctx{bsbs, lib, target,
                                   pace::Controller_mode::list_schedule, 0.0};
    return search::evaluate_allocation(ctx, alloc.allocation).speedup_pct();
}

}  // namespace

int main()
{
    using namespace lycos;
    constexpr double area = 4000.0;  // tight: the allocator must choose

    auto program = minic::parse(k_source);
    const double assumed = score(program, area);
    std::cout << "speed-up with the (wrong) source annotations: "
              << util::speedup_percent(assumed) << "\n";

    // Execute on representative inputs and measure.
    const auto result = minic::run(program, {{"n", 3000},
                                             {"g0", 3},
                                             {"g1", 5},
                                             {"x0", 1}});
    const int updated = minic::annotate_from_run(program, result);
    std::cout << "profiled " << result.steps << " statements; " << updated
              << " annotations corrected\n";
    for (const auto& [line, stats] : result.loops)
        std::cout << "  loop at line " << line << ": mean trips "
                  << stats.mean_trips() << "\n";

    const double measured = score(program, area);
    std::cout << "speed-up with measured profiles:             "
              << util::speedup_percent(measured) << "\n";

    std::cout << "\nprofiling "
              << (measured > assumed ? "recovered the allocation quality"
                                     : "did not change the outcome")
              << " (the allocator now targets the real hot loop).\n";
    return 0;
}
