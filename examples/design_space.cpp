// Design-space exploration: sweep the ASIC area budget and watch the
// figure-3 trade-off (small data-path, many controllers vs large
// data-path, few controllers) play out on the HAL benchmark.
//
// For each budget the allocator proposes a data-path; we print its
// size, the number of BSBs PACE then moves to hardware, and the
// resulting speed-up.
#include <iostream>

#include "apps/apps.hpp"
#include "core/allocator.hpp"
#include "hw/target.hpp"
#include "search/evaluate.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main()
{
    using namespace lycos;

    const auto app = apps::make_hal();
    const auto lib = hw::make_default_library();

    util::Table_printer table({"ASIC area", "datapath", "units", "BSBs in HW",
                               "speed-up"});

    for (double area = 1000.0; area <= 16000.0; area += 1500.0) {
        auto target = hw::make_default_target(area);
        const core::Allocator allocator(lib, target);
        const auto alloc = allocator.run(app.bsbs, {.area_budget = area});
        const search::Eval_context ctx{
            app.bsbs, lib, target, pace::Controller_mode::optimistic_eca, 0.0};
        const auto ev = search::evaluate_allocation(ctx, alloc.allocation);
        table.add_row({util::fixed(area, 0), util::fixed(ev.datapath_area, 0),
                       std::to_string(ev.datapath.total_units()),
                       std::to_string(ev.partition.n_in_hw) + "/" +
                           std::to_string(app.bsbs.size()),
                       util::speedup_percent(ev.speedup_pct())});
    }

    std::cout << "design-space sweep over ASIC area (hal)\n\n";
    table.print(std::cout);
    std::cout << "\nsmall budgets starve the data-path; large budgets let\n"
                 "the allocator exploit all of the HAL body's parallelism.\n";
    return 0;
}
