// Defining a custom hardware library and target.
//
// Shows the full degrees of freedom a user has: their own functional
// units (including multi-function ALUs and module variants), their own
// gate technology for the ECA formula, processor timing, bus cost —
// then runs the allocation flow and prints how the choices play out.
#include <iostream>

#include "core/allocator.hpp"
#include "core/selection.hpp"
#include "hw/target.hpp"
#include "minic/lower.hpp"
#include "bsb/bsb.hpp"
#include "search/evaluate.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main()
{
    using namespace lycos;
    using enum hw::Op_kind;

    // --- a custom library: one ALU covers add/sub/compare; two
    // multiplier variants; a combined shift/logic unit ---------------
    hw::Hw_library lib;
    lib.add({"alu", {add, sub, neg, cmp_lt, cmp_le, cmp_eq, cmp_ne}, 320.0, 1});
    lib.add({"mult_serial", {mul}, 1200.0, 4});
    lib.add({"mult_parallel", {mul}, 2600.0, 1});
    lib.add({"divider", {div, mod}, 3400.0, 5});
    lib.add({"barrel", {shl, shr, log_and, log_or, log_not,
                        bit_and, bit_or, bit_xor}, 260.0, 1});
    lib.add({"const_rom", {const_load}, 120.0, 1});
    lib.add({"mover", {copy}, 30.0, 1});

    // --- a custom target: faster CPU, slower bus, denser controller
    // technology ------------------------------------------------------
    hw::Target target = hw::make_default_target(/*asic_area=*/9000.0);
    target.cpu.clock_mhz = 12.0;
    target.bus.ns_per_word = 60.0;  // a slower shared bus than default
    target.gates.reg = 48.0;        // denser controller registers

    const char* kernel = R"(
input a, b, n;
output s;
s = 0;
loop 500 {
  p = a * b;
  q = p + s;
  r = q - n;
  s = r >> 1;
  a = a + 1;
}
)";
    const auto bsbs = bsb::extract_leaf_bsbs(minic::compile(kernel));

    util::Table_printer table({"policy", "allocation", "SU"});
    const core::Allocator allocator(lib, target);
    for (auto policy : {core::Selection_policy::min_area,
                        core::Selection_policy::balanced,
                        core::Selection_policy::min_latency}) {
        const auto result = allocator.run(
            bsbs, {.area_budget = target.asic.total_area,
                   .selection = policy});
        const search::Eval_context ctx{
            bsbs, lib, target, pace::Controller_mode::list_schedule, 0.0};
        const auto ev = search::evaluate_allocation(ctx, result.allocation);
        const char* name =
            policy == core::Selection_policy::min_area       ? "min_area"
            : policy == core::Selection_policy::min_latency  ? "min_latency"
                                                             : "balanced";
        table.add_row({name, result.allocation.to_string(lib),
                       util::speedup_percent(ev.speedup_pct())});
    }

    std::cout << "custom library + target, kernel with a hot loop\n\n";
    table.print(std::cout);
    std::cout << "\nmin_area buys the serial multiplier (4 cycles), "
                 "min_latency the parallel one;\nthe balanced policy "
                 "weighs area x latency.\n";
    return 0;
}
