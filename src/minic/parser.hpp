// MiniC recursive-descent parser.
#pragma once

#include <string_view>

#include "minic/ast.hpp"
#include "minic/lexer.hpp"

namespace lycos::minic {

/// Parse MiniC source into a Program.  Throws Parse_error with the
/// offending line on syntax errors.
Program parse(std::string_view source);

}  // namespace lycos::minic
