#include "minic/lower.hpp"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "minic/lexer.hpp"
#include "minic/parser.hpp"

namespace lycos::minic {

namespace {

using hw::Op_kind;

/// A basic block under construction.
struct Block_builder {
    dfg::Dfg graph;
    std::map<std::string, dfg::Op_id> env;  ///< var -> defining op
    std::map<std::string, std::string> alias;  ///< var -> live-in it renames
    std::map<long, dfg::Op_id> const_vn;    ///< literal -> const_load op
    std::set<std::string> reads;            ///< all vars read
    std::set<std::string> read_before_write;
    std::vector<std::string> written;       ///< in first-write order
    std::set<std::string> written_set;

    bool empty() const { return graph.empty(); }
};

/// Liveness record for one emitted leaf.
struct Leaf_record {
    cdfg::Node_id leaf;
    std::set<std::string> reads;
    std::set<std::string> read_before_write;
    std::set<std::string> written;
};

class Lowerer {
public:
    explicit Lowerer(const Program& program) : program_(program) {}

    cdfg::Cdfg run()
    {
        seq_stack_.push_back(graph_.root());
        lower_block(program_.main);
        flush();
        resolve_liveness();
        return std::move(graph_);
    }

private:
    // --- expression lowering into the current block ----------------

    /// Lower an expression; returns the producing op, or nullopt when
    /// the value comes from outside the block (a plain variable read).
    std::optional<dfg::Op_id> lower_expr(const Expr& e)
    {
        switch (e.kind) {
        case Expr::Kind::number: {
            const auto it = block_.const_vn.find(e.value);
            if (it != block_.const_vn.end())
                return it->second;
            const auto id = block_.graph.add_op(
                Op_kind::const_load, "#" + std::to_string(e.value));
            block_.const_vn.emplace(e.value, id);
            return id;
        }
        case Expr::Kind::var: {
            std::string name = resolve(e.name);
            const auto it = block_.env.find(name);
            if (it != block_.env.end()) {
                block_.reads.insert(name);
                return it->second;
            }
            // A rename of a live-in reads the original value (the
            // rename itself is a register transfer, not an operation).
            const auto al = block_.alias.find(name);
            if (al != block_.alias.end())
                name = al->second;
            block_.reads.insert(name);
            if (!block_.written_set.contains(name))
                block_.read_before_write.insert(name);
            return std::nullopt;  // live-in
        }
        case Expr::Kind::unary: {
            const auto sub = lower_expr(*e.lhs);
            const auto id = block_.graph.add_op(e.op);
            if (sub)
                block_.graph.add_edge(*sub, id);
            return id;
        }
        case Expr::Kind::binary: {
            const auto l = lower_expr(*e.lhs);
            const auto r = lower_expr(*e.rhs);
            const auto id = block_.graph.add_op(e.op);
            if (l)
                block_.graph.add_edge(*l, id);
            if (r)
                block_.graph.add_edge(*r, id);
            return id;
        }
        }
        throw Parse_error("unreachable expression kind", e.line);
    }

    void lower_assign(const std::string& raw_target, const Expr& value)
    {
        const std::string target = resolve(raw_target);
        const auto producer = lower_expr(value);
        if (producer) {
            block_.env[target] = *producer;
            block_.alias.erase(target);
        }
        else {
            // x = y with y from outside the block: a pure rename (a
            // register transfer); x becomes an alias of the live-in y.
            // The entry value of y is what x denotes, so y joins the
            // read set now (before any later in-block redefinition).
            std::string source = resolve(value.name);
            const auto al = block_.alias.find(source);
            if (al != block_.alias.end())
                source = al->second;
            block_.reads.insert(source);
            if (!block_.written_set.contains(source))
                block_.read_before_write.insert(source);
            block_.alias[target] = source;
            block_.env.erase(target);
        }
        if (!block_.written_set.contains(target)) {
            block_.written_set.insert(target);
            block_.written.push_back(target);
        }
    }

    // --- block / statement lowering ---------------------------------

    cdfg::Node_id current_seq() const { return seq_stack_.back(); }

    /// Emit the current basic block (if any) as a leaf.
    void flush()
    {
        if (block_.empty()) {
            block_ = Block_builder{};
            return;
        }
        const std::string name = "B" + std::to_string(++leaf_counter_);
        const auto leaf =
            graph_.add_leaf(current_seq(), std::move(block_.graph), name);
        records_.push_back(Leaf_record{leaf, std::move(block_.reads),
                                       std::move(block_.read_before_write),
                                       std::move(block_.written_set)});
        block_ = Block_builder{};
    }

    /// Lower an expression into a *test* leaf (loop/cond tests get
    /// their own DFG, Figure 4).
    void fill_test(cdfg::Node_id test_leaf, const Expr& cond)
    {
        Block_builder saved = std::move(block_);
        block_ = Block_builder{};
        (void)lower_expr(cond);
        graph_.leaf_graph(test_leaf) = std::move(block_.graph);
        records_.push_back(Leaf_record{test_leaf, std::move(block_.reads),
                                       std::move(block_.read_before_write),
                                       std::move(block_.written_set)});
        block_ = std::move(saved);
    }

    /// Synthesize the implicit `i < N` test of a counted loop: the
    /// counter increments and compares against the bound.
    void fill_counted_test(cdfg::Node_id test_leaf, long bound,
                           const std::string& counter)
    {
        Block_builder saved = std::move(block_);
        block_ = Block_builder{};
        const auto one = lower_expr(*Expr::number(1, 0));
        const auto inc = block_.graph.add_op(Op_kind::add, counter + "+1");
        block_.graph.add_edge(*one, inc);
        block_.reads.insert(counter);
        block_.read_before_write.insert(counter);
        const auto lim = lower_expr(*Expr::number(bound, 0));
        const auto cmp = block_.graph.add_op(Op_kind::cmp_lt);
        block_.graph.add_edge(inc, cmp);
        block_.graph.add_edge(*lim, cmp);
        block_.env[counter] = inc;
        block_.written_set.insert(counter);
        graph_.leaf_graph(test_leaf) = std::move(block_.graph);
        records_.push_back(Leaf_record{test_leaf, std::move(block_.reads),
                                       std::move(block_.read_before_write),
                                       std::move(block_.written_set)});
        block_ = std::move(saved);
    }

    void lower_block(const Block& b)
    {
        for (const auto& s : b.stmts)
            lower_stmt(*s);
    }

    void lower_stmt(const Stmt& s)
    {
        switch (s.kind) {
        case Stmt::Kind::assign:
            lower_assign(s.target, *s.expr);
            break;

        case Stmt::Kind::input:
            for (const auto& n : s.names)
                inputs_.insert(n);
            break;

        case Stmt::Kind::output:
            for (const auto& n : s.names)
                outputs_.insert(n);
            break;

        case Stmt::Kind::wait:
            flush();
            graph_.add_wait(current_seq(), s.wait_cycles,
                            "wait" + std::to_string(s.line));
            break;

        case Stmt::Kind::loop: {
            flush();
            const std::string name = "loop" + std::to_string(s.line);
            const auto loop = graph_.add_loop(current_seq(), s.trips, name);
            fill_counted_test(graph_.loop_test(loop),
                              static_cast<long>(s.trips), "$" + name + ".i");
            seq_stack_.push_back(graph_.loop_body(loop));
            lower_block(s.body);
            flush();
            seq_stack_.pop_back();
            break;
        }

        case Stmt::Kind::while_: {
            flush();
            const std::string name = "while" + std::to_string(s.line);
            const auto loop = graph_.add_loop(current_seq(), s.trips, name);
            fill_test(graph_.loop_test(loop), *s.expr);
            seq_stack_.push_back(graph_.loop_body(loop));
            lower_block(s.body);
            flush();
            seq_stack_.pop_back();
            break;
        }

        case Stmt::Kind::if_: {
            flush();
            const std::string name = "if" + std::to_string(s.line);
            const auto cond = graph_.add_cond(current_seq(), s.p_true, name);
            fill_test(graph_.cond_test(cond), *s.expr);
            seq_stack_.push_back(graph_.cond_then(cond));
            lower_block(s.then_block);
            flush();
            seq_stack_.pop_back();
            seq_stack_.push_back(graph_.cond_else(cond));
            lower_block(s.else_block);
            flush();
            seq_stack_.pop_back();
            break;
        }

        case Stmt::Kind::call:
            lower_call(s);
            break;
        }
    }

    void lower_call(const Stmt& s)
    {
        const Func* f = program_.find_func(s.callee);
        if (!f)
            throw Parse_error("unknown function '" + s.callee + "'", s.line);
        if (active_funcs_.contains(s.callee))
            throw Parse_error("recursive call to '" + s.callee + "'", s.line);
        if (s.args.size() != f->params.size())
            throw Parse_error("wrong argument count for '" + s.callee + "'",
                              s.line);

        // Parameter binding happens in the caller's current block.
        for (std::size_t i = 0; i < s.args.size(); ++i)
            lower_assign(s.callee + "." + f->params[i], *s.args[i]);
        flush();

        const auto fu = graph_.add_func(current_seq(), s.callee);
        seq_stack_.push_back(graph_.func_body(fu));
        active_funcs_.insert(s.callee);
        renames_.push_back({f, s.callee});
        lower_block(f->body);
        flush();
        renames_.pop_back();
        active_funcs_.erase(s.callee);
        seq_stack_.pop_back();
    }

    /// Parameter renaming: inside a function body, parameter names
    /// resolve to "callee.param".  Other names are global.
    std::string resolve(const std::string& name) const
    {
        for (auto it = renames_.rbegin(); it != renames_.rend(); ++it) {
            for (const auto& p : it->func->params)
                if (p == name)
                    return it->prefix + "." + name;
        }
        return name;
    }

    // --- liveness ----------------------------------------------------

    void resolve_liveness()
    {
        for (const auto& rec : records_) {
            auto& g = graph_.leaf_graph(rec.leaf);
            for (const auto& v : rec.read_before_write)
                g.add_live_in(v);
            for (const auto& w : rec.written) {
                bool live = outputs_.contains(w) ||
                            rec.read_before_write.contains(w);  // loop-carried
                if (!live) {
                    for (const auto& other : records_) {
                        if (&other == &rec)
                            continue;
                        if (other.reads.contains(w)) {
                            live = true;
                            break;
                        }
                    }
                }
                if (live)
                    g.add_live_out(w);
            }
        }
    }

    struct Rename_frame {
        const Func* func;
        std::string prefix;
    };

    const Program& program_;
    cdfg::Cdfg graph_;
    std::vector<cdfg::Node_id> seq_stack_;
    Block_builder block_;
    std::vector<Leaf_record> records_;
    std::set<std::string> inputs_;
    std::set<std::string> outputs_;
    std::set<std::string> active_funcs_;
    std::vector<Rename_frame> renames_;
    int leaf_counter_ = 0;
};

}  // namespace

cdfg::Cdfg lower(const Program& program)
{
    return Lowerer(program).run();
}

cdfg::Cdfg compile(std::string_view source)
{
    const Program prog = parse(source);
    return lower(prog);
}

}  // namespace lycos::minic
