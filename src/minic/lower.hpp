// Lowering MiniC to a CDFG.
//
// Straight-line statement runs become leaf DFGs (the basic blocks /
// leaf BSBs); control constructs become loop, conditional and wait
// nodes; function calls are inlined under functional-hierarchy nodes
// (recursion is rejected).  Within a basic block, expressions are
// value-numbered: integer literals become const_load operations
// (shared per distinct literal), variable definitions connect to their
// uses with data-dependency edges, and reads of values defined outside
// the block become live-ins.
//
// Liveness across blocks is resolved in a second pass: a variable
// written by block B becomes a live-out of B iff some other block
// reads it, it is read-before-written in B itself (loop-carried), or
// it is declared `output`.
#pragma once

#include <string_view>

#include "cdfg/cdfg.hpp"
#include "minic/ast.hpp"

namespace lycos::minic {

/// Lower a parsed program.  Throws Parse_error on semantic errors
/// (unknown function, recursive call, wrong arity).
cdfg::Cdfg lower(const Program& program);

/// Convenience: parse + lower.
cdfg::Cdfg compile(std::string_view source);

}  // namespace lycos::minic
