// MiniC lexer.
//
// MiniC is the small C-like input language of this reproduction (the
// paper's applications arrive "in VHDL or C"; MiniC plays that role so
// the benchmark applications exist as genuine source programs).  The
// lexer turns source text into a token stream with line information
// for error messages.
//
// Tokens: identifiers, integer literals, the operator/punctuation set
// of the expression grammar, and the keywords
//   func if else prob loop while trip wait input output
// Comments: // to end of line and /* ... */.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lycos::minic {

/// Token categories.
enum class Token_kind {
    identifier,
    number,
    keyword,
    punct,   ///< operators and punctuation, spelling in `text`
    eof,
};

/// One token.
struct Token {
    Token_kind kind = Token_kind::eof;
    std::string text;   ///< spelling (identifier name, keyword, operator)
    long value = 0;     ///< numeric value for Token_kind::number
    int line = 0;       ///< 1-based source line
};

/// Error raised by the lexer and parser, carrying the source line.
class Parse_error : public std::runtime_error {
public:
    Parse_error(const std::string& message, int line)
        : std::runtime_error("line " + std::to_string(line) + ": " + message),
          line_(line)
    {
    }
    int line() const { return line_; }

private:
    int line_;
};

/// Tokenize the whole source.  The result always ends with an eof
/// token.  Throws Parse_error on malformed input.
std::vector<Token> tokenize(std::string_view source);

/// True if `word` is a MiniC keyword.
bool is_keyword(std::string_view word);

/// Number of source lines (for the paper's "Lines" column): lines that
/// contain anything other than whitespace or comments.
int count_code_lines(std::string_view source);

}  // namespace lycos::minic
