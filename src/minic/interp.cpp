#include "minic/interp.hpp"

#include <set>

#include "minic/lexer.hpp"

namespace lycos::minic {

namespace {

using hw::Op_kind;

class Interpreter {
public:
    Interpreter(const Program& program,
                const std::map<std::string, long long>& inputs,
                long long max_steps)
        : program_(program), max_steps_(max_steps)
    {
        for (const auto& [name, value] : inputs)
            env_[name] = value;
    }

    Run_result run()
    {
        exec_block(program_.main);
        Run_result out;
        out.variables = env_;
        for (const auto& name : outputs_)
            out.outputs[name] = lookup(name);
        out.loops = loops_;
        out.branches = branches_;
        out.steps = steps_;
        return out;
    }

private:
    long long lookup(const std::string& name) const
    {
        const auto it = env_.find(name);
        return it == env_.end() ? 0 : it->second;
    }

    std::string resolve(const std::string& name) const
    {
        for (auto it = renames_.rbegin(); it != renames_.rend(); ++it)
            for (const auto& p : it->func->params)
                if (p == name)
                    return it->prefix + "." + name;
        return name;
    }

    long long eval(const Expr& e)
    {
        switch (e.kind) {
        case Expr::Kind::number:
            return e.value;
        case Expr::Kind::var:
            return lookup(resolve(e.name));
        case Expr::Kind::unary: {
            const long long v = eval(*e.lhs);
            switch (e.op) {
            case Op_kind::neg: return -v;
            case Op_kind::log_not: return v == 0 ? 1 : 0;
            default:
                throw Eval_error("bad unary operator");
            }
        }
        case Expr::Kind::binary: {
            const long long a = eval(*e.lhs);
            const long long b = eval(*e.rhs);
            switch (e.op) {
            case Op_kind::add: return a + b;
            case Op_kind::sub: return a - b;
            case Op_kind::mul: return a * b;
            case Op_kind::div:
                if (b == 0)
                    throw Eval_error("division by zero at line " +
                                     std::to_string(e.line));
                return a / b;
            case Op_kind::mod:
                if (b == 0)
                    throw Eval_error("modulo by zero at line " +
                                     std::to_string(e.line));
                return a % b;
            case Op_kind::cmp_lt: return a < b ? 1 : 0;
            case Op_kind::cmp_le: return a <= b ? 1 : 0;
            case Op_kind::cmp_eq: return a == b ? 1 : 0;
            case Op_kind::cmp_ne: return a != b ? 1 : 0;
            case Op_kind::log_and: return (a != 0 && b != 0) ? 1 : 0;
            case Op_kind::log_or: return (a != 0 || b != 0) ? 1 : 0;
            case Op_kind::bit_and: return a & b;
            case Op_kind::bit_or: return a | b;
            case Op_kind::bit_xor: return a ^ b;
            case Op_kind::shl: return a << (b & 63);
            case Op_kind::shr: return a >> (b & 63);
            default:
                throw Eval_error("bad binary operator");
            }
        }
        }
        throw Eval_error("unreachable expression kind");
    }

    void tick()
    {
        if (++steps_ > max_steps_)
            throw Eval_error("iteration budget exhausted (" +
                             std::to_string(max_steps_) + " statements)");
    }

    void exec_block(const Block& b)
    {
        for (const auto& s : b.stmts)
            exec_stmt(*s);
    }

    void exec_stmt(const Stmt& s)
    {
        tick();
        switch (s.kind) {
        case Stmt::Kind::assign:
            env_[resolve(s.target)] = eval(*s.expr);
            break;

        case Stmt::Kind::input:
            // Declarative; values were supplied up front.
            break;

        case Stmt::Kind::output:
            for (const auto& n : s.names)
                outputs_.insert(n);
            break;

        case Stmt::Kind::wait:
            break;

        case Stmt::Kind::loop: {
            auto& stats = loops_[s.line];
            ++stats.entries;
            const auto n = static_cast<long long>(s.trips);
            for (long long i = 0; i < n; ++i) {
                ++stats.trips;
                exec_block(s.body);
            }
            break;
        }

        case Stmt::Kind::while_: {
            auto& stats = loops_[s.line];
            ++stats.entries;
            while (eval(*s.expr) != 0) {
                tick();
                ++stats.trips;
                exec_block(s.body);
            }
            break;
        }

        case Stmt::Kind::if_: {
            auto& stats = branches_[s.line];
            ++stats.total;
            if (eval(*s.expr) != 0) {
                ++stats.taken;
                exec_block(s.then_block);
            }
            else {
                exec_block(s.else_block);
            }
            break;
        }

        case Stmt::Kind::call: {
            const Func* f = program_.find_func(s.callee);
            if (!f)
                throw Eval_error("unknown function '" + s.callee + "'");
            if (active_.contains(s.callee))
                throw Eval_error("recursive call to '" + s.callee + "'");
            for (std::size_t i = 0; i < s.args.size(); ++i)
                env_[s.callee + "." + f->params[i]] = eval(*s.args[i]);
            active_.insert(s.callee);
            renames_.push_back({f, s.callee});
            exec_block(f->body);
            renames_.pop_back();
            active_.erase(s.callee);
            break;
        }
        }
    }

    struct Rename_frame {
        const Func* func;
        std::string prefix;
    };

    const Program& program_;
    long long max_steps_;
    long long steps_ = 0;
    std::map<std::string, long long> env_;
    std::set<std::string> outputs_;
    std::map<int, Loop_stats> loops_;
    std::map<int, Branch_stats> branches_;
    std::set<std::string> active_;
    std::vector<Rename_frame> renames_;
};

int annotate_block(Block& b, const Run_result& result)
{
    int updated = 0;
    for (auto& s : b.stmts) {
        switch (s->kind) {
        case Stmt::Kind::loop:
        case Stmt::Kind::while_: {
            const auto it = result.loops.find(s->line);
            if (it != result.loops.end() && it->second.entries > 0) {
                s->trips = it->second.mean_trips();
                ++updated;
            }
            updated += annotate_block(s->body, result);
            break;
        }
        case Stmt::Kind::if_: {
            const auto it = result.branches.find(s->line);
            if (it != result.branches.end() && it->second.total > 0) {
                s->p_true = it->second.p_true();
                ++updated;
            }
            updated += annotate_block(s->then_block, result);
            updated += annotate_block(s->else_block, result);
            break;
        }
        default:
            break;
        }
    }
    return updated;
}

}  // namespace

Run_result run(const Program& program,
               const std::map<std::string, long long>& inputs,
               long long max_steps)
{
    return Interpreter(program, inputs, max_steps).run();
}

int annotate_from_run(Program& program, const Run_result& result)
{
    int updated = annotate_block(program.main, result);
    for (auto& f : program.funcs)
        updated += annotate_block(f.body, result);
    return updated;
}

}  // namespace lycos::minic
