#include "minic/parser.hpp"

#include <utility>

namespace lycos::minic {

namespace {

using hw::Op_kind;

class Parser {
public:
    explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

    Program parse_program()
    {
        Program prog;
        while (!at_eof()) {
            if (peek_keyword("func"))
                prog.funcs.push_back(parse_func());
            else
                prog.main.stmts.push_back(parse_statement());
        }
        return prog;
    }

private:
    // --- token helpers --------------------------------------------

    const Token& peek() const { return tokens_[pos_]; }
    const Token& peek_ahead() const
    {
        return tokens_[std::min(pos_ + 1, tokens_.size() - 1)];
    }
    bool at_eof() const { return peek().kind == Token_kind::eof; }

    Token advance() { return tokens_[pos_++]; }

    bool peek_keyword(std::string_view kw) const
    {
        return peek().kind == Token_kind::keyword && peek().text == kw;
    }

    bool peek_punct(std::string_view p) const
    {
        return peek().kind == Token_kind::punct && peek().text == p;
    }

    bool accept_punct(std::string_view p)
    {
        if (!peek_punct(p))
            return false;
        ++pos_;
        return true;
    }

    bool accept_keyword(std::string_view kw)
    {
        if (!peek_keyword(kw))
            return false;
        ++pos_;
        return true;
    }

    void expect_punct(std::string_view p)
    {
        if (!accept_punct(p))
            throw Parse_error("expected '" + std::string(p) + "' before '" +
                                  peek().text + "'",
                              peek().line);
    }

    std::string expect_identifier(const char* what)
    {
        if (peek().kind != Token_kind::identifier)
            throw Parse_error(std::string("expected ") + what, peek().line);
        return advance().text;
    }

    long expect_number(const char* what)
    {
        if (peek().kind != Token_kind::number)
            throw Parse_error(std::string("expected ") + what, peek().line);
        return advance().value;
    }

    // --- grammar --------------------------------------------------

    Func parse_func()
    {
        Func f;
        f.line = peek().line;
        accept_keyword("func");
        f.name = expect_identifier("function name");
        expect_punct("(");
        if (!peek_punct(")")) {
            f.params.push_back(expect_identifier("parameter name"));
            while (accept_punct(","))
                f.params.push_back(expect_identifier("parameter name"));
        }
        expect_punct(")");
        f.body = parse_block();
        return f;
    }

    Block parse_block()
    {
        expect_punct("{");
        Block b;
        while (!peek_punct("}")) {
            if (at_eof())
                throw Parse_error("unterminated block", peek().line);
            b.stmts.push_back(parse_statement());
        }
        expect_punct("}");
        return b;
    }

    std::unique_ptr<Stmt> parse_statement()
    {
        const int line = peek().line;
        auto s = std::make_unique<Stmt>();
        s->line = line;

        if (accept_keyword("if")) {
            s->kind = Stmt::Kind::if_;
            expect_punct("(");
            s->expr = parse_expr();
            expect_punct(")");
            if (accept_keyword("prob")) {
                const long pct = expect_number("probability percent");
                if (pct < 0 || pct > 100)
                    throw Parse_error("prob must be 0..100", line);
                s->p_true = static_cast<double>(pct) / 100.0;
            }
            s->then_block = parse_block();
            if (accept_keyword("else"))
                s->else_block = parse_block();
            return s;
        }
        if (accept_keyword("loop")) {
            s->kind = Stmt::Kind::loop;
            s->trips = static_cast<double>(expect_number("loop trip count"));
            s->body = parse_block();
            return s;
        }
        if (accept_keyword("while")) {
            s->kind = Stmt::Kind::while_;
            expect_punct("(");
            s->expr = parse_expr();
            expect_punct(")");
            s->trips = 1.0;
            if (accept_keyword("trip"))
                s->trips = static_cast<double>(expect_number("trip count"));
            s->body = parse_block();
            return s;
        }
        if (accept_keyword("wait")) {
            s->kind = Stmt::Kind::wait;
            s->wait_cycles = static_cast<int>(expect_number("wait cycles"));
            expect_punct(";");
            return s;
        }
        if (peek_keyword("input") || peek_keyword("output")) {
            const bool is_input = peek().text == "input";
            advance();
            s->kind = is_input ? Stmt::Kind::input : Stmt::Kind::output;
            s->names.push_back(expect_identifier("variable name"));
            while (accept_punct(","))
                s->names.push_back(expect_identifier("variable name"));
            expect_punct(";");
            return s;
        }

        // assignment or call
        const std::string name = expect_identifier("statement");
        if (accept_punct("=")) {
            s->kind = Stmt::Kind::assign;
            s->target = name;
            s->expr = parse_expr();
            expect_punct(";");
            return s;
        }
        if (accept_punct("(")) {
            s->kind = Stmt::Kind::call;
            s->callee = name;
            if (!peek_punct(")")) {
                s->args.push_back(parse_expr());
                while (accept_punct(","))
                    s->args.push_back(parse_expr());
            }
            expect_punct(")");
            expect_punct(";");
            return s;
        }
        throw Parse_error("expected '=' or '(' after identifier", line);
    }

    // Expression precedence, loosest first.
    std::unique_ptr<Expr> parse_expr() { return parse_or(); }

    std::unique_ptr<Expr> parse_or()
    {
        auto e = parse_and();
        while (peek_punct("||")) {
            const int line = advance().line;
            e = Expr::binary(Op_kind::log_or, std::move(e), parse_and(), line);
        }
        return e;
    }

    std::unique_ptr<Expr> parse_and()
    {
        auto e = parse_bit_or();
        while (peek_punct("&&")) {
            const int line = advance().line;
            e = Expr::binary(Op_kind::log_and, std::move(e), parse_bit_or(),
                             line);
        }
        return e;
    }

    std::unique_ptr<Expr> parse_bit_or()
    {
        auto e = parse_bit_xor();
        while (peek_punct("|")) {
            const int line = advance().line;
            e = Expr::binary(Op_kind::bit_or, std::move(e), parse_bit_xor(),
                             line);
        }
        return e;
    }

    std::unique_ptr<Expr> parse_bit_xor()
    {
        auto e = parse_bit_and();
        while (peek_punct("^")) {
            const int line = advance().line;
            e = Expr::binary(Op_kind::bit_xor, std::move(e), parse_bit_and(),
                             line);
        }
        return e;
    }

    std::unique_ptr<Expr> parse_bit_and()
    {
        auto e = parse_equality();
        while (peek_punct("&")) {
            const int line = advance().line;
            e = Expr::binary(Op_kind::bit_and, std::move(e), parse_equality(),
                             line);
        }
        return e;
    }

    std::unique_ptr<Expr> parse_equality()
    {
        auto e = parse_relational();
        for (;;) {
            if (peek_punct("==")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::cmp_eq, std::move(e),
                                 parse_relational(), line);
            }
            else if (peek_punct("!=")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::cmp_ne, std::move(e),
                                 parse_relational(), line);
            }
            else {
                return e;
            }
        }
    }

    std::unique_ptr<Expr> parse_relational()
    {
        auto e = parse_shift();
        for (;;) {
            if (peek_punct("<")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::cmp_lt, std::move(e), parse_shift(),
                                 line);
            }
            else if (peek_punct("<=")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::cmp_le, std::move(e), parse_shift(),
                                 line);
            }
            else if (peek_punct(">")) {
                // a > b  ==  b < a
                const int line = advance().line;
                e = Expr::binary(Op_kind::cmp_lt, parse_shift(), std::move(e),
                                 line);
            }
            else if (peek_punct(">=")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::cmp_le, parse_shift(), std::move(e),
                                 line);
            }
            else {
                return e;
            }
        }
    }

    std::unique_ptr<Expr> parse_shift()
    {
        auto e = parse_additive();
        for (;;) {
            if (peek_punct("<<")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::shl, std::move(e), parse_additive(),
                                 line);
            }
            else if (peek_punct(">>")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::shr, std::move(e), parse_additive(),
                                 line);
            }
            else {
                return e;
            }
        }
    }

    std::unique_ptr<Expr> parse_additive()
    {
        auto e = parse_multiplicative();
        for (;;) {
            if (peek_punct("+")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::add, std::move(e),
                                 parse_multiplicative(), line);
            }
            else if (peek_punct("-")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::sub, std::move(e),
                                 parse_multiplicative(), line);
            }
            else {
                return e;
            }
        }
    }

    std::unique_ptr<Expr> parse_multiplicative()
    {
        auto e = parse_unary();
        for (;;) {
            if (peek_punct("*")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::mul, std::move(e), parse_unary(),
                                 line);
            }
            else if (peek_punct("/")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::div, std::move(e), parse_unary(),
                                 line);
            }
            else if (peek_punct("%")) {
                const int line = advance().line;
                e = Expr::binary(Op_kind::mod, std::move(e), parse_unary(),
                                 line);
            }
            else {
                return e;
            }
        }
    }

    std::unique_ptr<Expr> parse_unary()
    {
        if (peek_punct("-")) {
            const int line = advance().line;
            return Expr::unary(Op_kind::neg, parse_unary(), line);
        }
        if (peek_punct("!")) {
            const int line = advance().line;
            return Expr::unary(Op_kind::log_not, parse_unary(), line);
        }
        return parse_primary();
    }

    std::unique_ptr<Expr> parse_primary()
    {
        if (peek().kind == Token_kind::number) {
            const Token t = advance();
            return Expr::number(t.value, t.line);
        }
        if (peek().kind == Token_kind::identifier) {
            const Token t = advance();
            return Expr::var(t.text, t.line);
        }
        if (accept_punct("(")) {
            auto e = parse_expr();
            expect_punct(")");
            return e;
        }
        throw Parse_error("expected expression before '" + peek().text + "'",
                          peek().line);
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source)
{
    return Parser(source).parse_program();
}

}  // namespace lycos::minic
