#include "minic/ast.hpp"

namespace lycos::minic {

std::unique_ptr<Expr> Expr::number(long v, int line)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::number;
    e->value = v;
    e->line = line;
    return e;
}

std::unique_ptr<Expr> Expr::var(std::string name, int line)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::var;
    e->name = std::move(name);
    e->line = line;
    return e;
}

std::unique_ptr<Expr> Expr::unary(hw::Op_kind op, std::unique_ptr<Expr> sub,
                                  int line)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::unary;
    e->op = op;
    e->lhs = std::move(sub);
    e->line = line;
    return e;
}

std::unique_ptr<Expr> Expr::binary(hw::Op_kind op, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r, int line)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::binary;
    e->op = op;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    e->line = line;
    return e;
}

const Func* Program::find_func(std::string_view name) const
{
    for (const auto& f : funcs)
        if (f.name == name)
            return &f;
    return nullptr;
}

std::size_t statement_count(const Block& b)
{
    std::size_t n = 0;
    for (const auto& s : b.stmts) {
        ++n;
        switch (s->kind) {
        case Stmt::Kind::if_:
            n += statement_count(s->then_block);
            n += statement_count(s->else_block);
            break;
        case Stmt::Kind::loop:
        case Stmt::Kind::while_:
            n += statement_count(s->body);
            break;
        default:
            break;
        }
    }
    return n;
}

}  // namespace lycos::minic
