#include "minic/lexer.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

namespace lycos::minic {

namespace {

constexpr std::array<std::string_view, 10> k_keywords = {
    "func", "if", "else", "prob", "loop",
    "while", "trip", "wait", "input", "output",
};

/// Multi-character operators, longest first so maximal munch works.
constexpr std::array<std::string_view, 10> k_multi_ops = {
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "/*", "//",
};

constexpr std::string_view k_single_ops = "+-*/%<>=!&|^(){},;";

}  // namespace

bool is_keyword(std::string_view word)
{
    for (auto k : k_keywords)
        if (k == word)
            return true;
    return false;
}

std::vector<Token> tokenize(std::string_view source)
{
    std::vector<Token> out;
    std::size_t i = 0;
    int line = 1;

    const auto peek2 = [&]() -> std::string_view {
        return source.substr(i, 2);
    };

    while (i < source.size()) {
        const char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (peek2() == "//") {
            while (i < source.size() && source[i] != '\n')
                ++i;
            continue;
        }
        if (peek2() == "/*") {
            const int open_line = line;
            i += 2;
            while (i < source.size() && peek2() != "*/") {
                if (source[i] == '\n')
                    ++line;
                ++i;
            }
            if (i >= source.size())
                throw Parse_error("unterminated /* comment", open_line);
            i += 2;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            long value = 0;
            const std::size_t start = i;
            while (i < source.size() &&
                   std::isdigit(static_cast<unsigned char>(source[i]))) {
                value = value * 10 + (source[i] - '0');
                ++i;
            }
            if (i < source.size() &&
                (std::isalpha(static_cast<unsigned char>(source[i])) ||
                 source[i] == '_'))
                throw Parse_error("malformed number", line);
            Token t;
            t.kind = Token_kind::number;
            t.text = std::string(source.substr(start, i - start));
            t.value = value;
            t.line = line;
            out.push_back(std::move(t));
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            const std::size_t start = i;
            while (i < source.size() &&
                   (std::isalnum(static_cast<unsigned char>(source[i])) ||
                    source[i] == '_'))
                ++i;
            Token t;
            t.text = std::string(source.substr(start, i - start));
            t.kind = is_keyword(t.text) ? Token_kind::keyword
                                        : Token_kind::identifier;
            t.line = line;
            out.push_back(std::move(t));
            continue;
        }

        // Multi-character operators (comments were handled above).
        bool matched = false;
        for (auto op : k_multi_ops) {
            if (op == "//" || op == "/*")
                continue;
            if (source.substr(i, op.size()) == op) {
                out.push_back(Token{Token_kind::punct, std::string(op), 0, line});
                i += op.size();
                matched = true;
                break;
            }
        }
        if (matched)
            continue;

        if (k_single_ops.find(c) != std::string_view::npos) {
            out.push_back(Token{Token_kind::punct, std::string(1, c), 0, line});
            ++i;
            continue;
        }
        throw Parse_error(std::string("unexpected character '") + c + "'", line);
    }

    out.push_back(Token{Token_kind::eof, "", 0, line});
    return out;
}

int count_code_lines(std::string_view source)
{
    int count = 0;
    bool in_block_comment = false;
    std::size_t pos = 0;
    while (pos <= source.size()) {
        const std::size_t nl = source.find('\n', pos);
        const std::string_view text =
            source.substr(pos, nl == std::string_view::npos ? nl : nl - pos);

        bool has_code = false;
        for (std::size_t k = 0; k < text.size(); ++k) {
            if (in_block_comment) {
                if (text.substr(k, 2) == "*/") {
                    in_block_comment = false;
                    ++k;
                }
                continue;
            }
            if (text.substr(k, 2) == "//")
                break;
            if (text.substr(k, 2) == "/*") {
                in_block_comment = true;
                ++k;
                continue;
            }
            if (!std::isspace(static_cast<unsigned char>(text[k])))
                has_code = true;
        }
        if (has_code)
            ++count;
        if (nl == std::string_view::npos)
            break;
        pos = nl + 1;
    }
    return count;
}

}  // namespace lycos::minic
