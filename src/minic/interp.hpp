// MiniC interpreter and dynamic profiler.
//
// The allocation algorithm consumes "profiling information" (p_k of
// Definition 2).  LYCOS measured it by executing the application; the
// `trip`/`prob` annotations in MiniC sources stand in for those
// measurements.  This module closes the loop: it *executes* a MiniC
// program on concrete inputs, records how often every loop iterates
// and every branch is taken, and can write the measured numbers back
// into the AST — after which lowering produces measured, not assumed,
// BSB profiles.
//
// Semantics: 64-bit signed integers, C-like operators (division
// truncates toward zero; division by zero raises Eval_error), all
// variables global except function parameters (spelled "callee.param",
// matching the lowering), counted loops run exactly their trip count,
// while loops run until their condition is false (bounded by
// `max_steps` to catch runaway programs).
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace lycos::minic {

/// Raised on runtime errors (division by zero, missing input,
/// iteration-budget exhaustion).
class Eval_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Dynamic counts for one loop or branch statement, keyed by the
/// statement's source line (unique per construct).
struct Loop_stats {
    long long entries = 0;  ///< times the loop statement was reached
    long long trips = 0;    ///< total body iterations over all entries

    double mean_trips() const
    {
        return entries == 0 ? 0.0
                            : static_cast<double>(trips) /
                                  static_cast<double>(entries);
    }
};

struct Branch_stats {
    long long total = 0;  ///< times the condition was evaluated
    long long taken = 0;  ///< times the then-branch ran

    double p_true() const
    {
        return total == 0 ? 0.5
                          : static_cast<double>(taken) /
                                static_cast<double>(total);
    }
};

/// Everything one execution produces.
struct Run_result {
    std::map<std::string, long long> variables;  ///< final variable values
    std::map<std::string, long long> outputs;    ///< declared outputs only
    std::map<int, Loop_stats> loops;             ///< keyed by statement line
    std::map<int, Branch_stats> branches;        ///< keyed by statement line
    long long steps = 0;                         ///< statements executed
};

/// Execute `program` with the given input values.  Inputs not supplied
/// default to 0; reading a never-written non-input variable also
/// yields 0 (MiniC variables are implicitly zero-initialized).
/// Throws Eval_error on division by zero or when more than
/// `max_steps` statements execute.
Run_result run(const Program& program,
               const std::map<std::string, long long>& inputs = {},
               long long max_steps = 10'000'000);

/// Overwrite the `trip` and `prob` annotations of `program` with the
/// measured statistics of `result` (loops/branches never reached keep
/// their annotations).  Returns the number of annotations updated.
int annotate_from_run(Program& program, const Run_result& result);

}  // namespace lycos::minic
