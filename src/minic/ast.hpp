// MiniC abstract syntax tree.
//
// The grammar (statements end with ';', blocks are brace-delimited):
//
//   program   := (func | statement)*
//   func      := 'func' name '(' params? ')' block
//   statement := name '=' expr ';'
//              | name '(' args? ')' ';'                  (call, inlined)
//              | 'if' '(' expr ')' ['prob' NUM] block ['else' block]
//              | 'loop' NUM block                        (counted loop)
//              | 'while' '(' expr ')' ['trip' NUM] block
//              | 'wait' NUM ';'
//              | 'input' name (',' name)* ';'
//              | 'output' name (',' name)* ';'
//   expr      := C-like precedence over
//                || && | ^ & == != < <= > >= << >> + - * / % unary- !
//
// `prob p` annotates the probability (percent, 0..100) of taking the
// then-branch; `trip N` the average iteration count of a while loop.
// Both play the role of LYCOS's profiling information.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/op.hpp"

namespace lycos::minic {

/// Expression node.
struct Expr {
    enum class Kind { number, var, unary, binary };

    Kind kind = Kind::number;
    long value = 0;          ///< number
    std::string name;        ///< var
    hw::Op_kind op{};        ///< unary/binary operation
    std::unique_ptr<Expr> lhs;
    std::unique_ptr<Expr> rhs;  ///< binary only
    int line = 0;

    static std::unique_ptr<Expr> number(long v, int line);
    static std::unique_ptr<Expr> var(std::string name, int line);
    static std::unique_ptr<Expr> unary(hw::Op_kind op, std::unique_ptr<Expr> e,
                                       int line);
    static std::unique_ptr<Expr> binary(hw::Op_kind op,
                                        std::unique_ptr<Expr> l,
                                        std::unique_ptr<Expr> r, int line);
};

struct Stmt;

/// Brace-delimited statement list.
struct Block {
    std::vector<std::unique_ptr<Stmt>> stmts;
};

/// Statement node.
struct Stmt {
    enum class Kind { assign, call, if_, loop, while_, wait, input, output };

    Kind kind = Kind::assign;
    int line = 0;

    // assign
    std::string target;
    std::unique_ptr<Expr> expr;  ///< assign value / if condition / while condition

    // call
    std::string callee;
    std::vector<std::unique_ptr<Expr>> args;

    // if
    double p_true = 0.5;
    Block then_block;
    Block else_block;  ///< may be empty

    // loop / while
    double trips = 1.0;
    Block body;

    // wait
    int wait_cycles = 0;

    // input / output
    std::vector<std::string> names;
};

/// Function definition (inlined at every call site during lowering).
struct Func {
    std::string name;
    std::vector<std::string> params;
    Block body;
    int line = 0;
};

/// A parsed program: function definitions plus top-level statements.
struct Program {
    std::vector<Func> funcs;
    Block main;

    /// Find a function by name; nullptr when absent.
    const Func* find_func(std::string_view name) const;
};

/// Count statements recursively (test helper / reporting).
std::size_t statement_count(const Block& b);

}  // namespace lycos::minic
