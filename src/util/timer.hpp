// Wall-clock timing for the "CPU sec" column of Table 1 and the
// scaling benchmarks.
#pragma once

#include <chrono>

namespace lycos::util {

/// Wall-clock stopwatch.  Starts on construction.
class Wall_timer {
public:
    Wall_timer() : start_(clock::now()) {}

    /// Restart the stopwatch.
    void reset() { start_ = clock::now(); }

    /// Elapsed seconds since construction or the last reset().
    double seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Elapsed milliseconds.
    double millis() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace lycos::util
