#include "util/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace lycos::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Nagle off: the protocol is small request/response frames and the
/// incumbent broadcasts are latency-sensitive (a delayed bound is a
/// missed prune, never a wrong answer — but why wait).
void no_delay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

sockaddr_in loopback(std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

}  // namespace

void Fd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

Listener listen_tcp(std::uint16_t port)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        throw_errno("listen_tcp: socket");
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = loopback(port);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0)
        throw_errno("listen_tcp: bind 127.0.0.1:" + std::to_string(port));
    if (::listen(fd.get(), 64) != 0)
        throw_errno("listen_tcp: listen");
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0)
        throw_errno("listen_tcp: getsockname");
    return {std::move(fd), ntohs(bound.sin_port)};
}

Fd accept_conn(const Fd& listener, int timeout_ms)
{
    pollfd p{listener.get(), POLLIN, 0};
    for (;;) {
        const int r = ::poll(&p, 1, timeout_ms);
        if (r == 0)
            return {};
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw_errno("accept_conn: poll");
        }
        break;
    }
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd < 0) {
        // The peer may have gone away between poll and accept; that is
        // a timeout-shaped non-event, not a hard failure.
        if (errno == ECONNABORTED || errno == EINTR || errno == EAGAIN ||
            errno == EWOULDBLOCK)
            return {};
        throw_errno("accept_conn: accept");
    }
    no_delay(fd);
    return Fd(fd);
}

Fd connect_tcp(const std::string& host, std::uint16_t port,
               int timeout_ms)
{
    sockaddr_in addr = loopback(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("connect_tcp: not an IPv4 address: " +
                                 host);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
        if (!fd.valid())
            throw_errno("connect_tcp: socket");
        if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0) {
            no_delay(fd.get());
            return fd;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            throw_errno("connect_tcp: " + host + ":" +
                        std::to_string(port));
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

bool send_all(const Fd& fd, const void* buf, std::size_t len)
{
    const auto* p = static_cast<const std::uint8_t*>(buf);
    while (len > 0) {
        const auto n = ::send(fd.get(), p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

long recv_some(const Fd& fd, void* buf, std::size_t len)
{
    for (;;) {
        const auto n = ::recv(fd.get(), buf, len, 0);
        if (n < 0 && errno == EINTR)
            continue;
        return static_cast<long>(n);
    }
}

}  // namespace lycos::util
