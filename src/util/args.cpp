#include "util/args.hpp"

#include <sstream>
#include <stdexcept>

namespace lycos::util {

Arg_parser::Arg_parser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void Arg_parser::add_flag(const std::string& name, const std::string& help)
{
    if (options_.contains(name))
        throw std::invalid_argument("Arg_parser: duplicate option " + name);
    options_[name] = Option{help, "false", true, false};
    order_.push_back(name);
}

void Arg_parser::add_option(const std::string& name,
                            const std::string& default_value,
                            const std::string& help)
{
    if (options_.contains(name))
        throw std::invalid_argument("Arg_parser: duplicate option " + name);
    options_[name] = Option{help, default_value, false, false};
    order_.push_back(name);
}

Arg_parser::Option& Arg_parser::find(const std::string& name)
{
    const auto it = options_.find(name);
    if (it == options_.end())
        throw std::invalid_argument("unknown option --" + name + "\n" +
                                    usage());
    return it->second;
}

const Arg_parser::Option& Arg_parser::find(const std::string& name) const
{
    const auto it = options_.find(name);
    if (it == options_.end())
        throw std::invalid_argument("unknown option --" + name);
    return it->second;
}

void Arg_parser::parse(int argc, const char* const* argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    parse(args);
}

void Arg_parser::parse(const std::vector<std::string>& args)
{
    bool options_done = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (options_done || arg.size() < 2 || arg.substr(0, 2) != "--") {
            positional_.push_back(arg);
            continue;
        }
        if (arg == "--") {
            options_done = true;
            continue;
        }
        std::string name = arg.substr(2);
        std::string inline_value;
        bool has_inline = false;
        if (const auto eq = name.find('='); eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_inline = true;
        }
        Option& opt = find(name);
        if (opt.is_flag) {
            if (has_inline)
                throw std::invalid_argument("flag --" + name +
                                            " takes no value");
            opt.value = "true";
            opt.set = true;
            continue;
        }
        if (has_inline) {
            opt.value = inline_value;
        }
        else {
            if (i + 1 >= args.size())
                throw std::invalid_argument("option --" + name +
                                            " needs a value");
            opt.value = args[++i];
        }
        opt.set = true;
    }
}

bool Arg_parser::flag(const std::string& name) const
{
    const Option& opt = find(name);
    if (!opt.is_flag)
        throw std::invalid_argument("--" + name + " is not a flag");
    return opt.value == "true";
}

const std::string& Arg_parser::value(const std::string& name) const
{
    return find(name).value;
}

bool Arg_parser::was_set(const std::string& name) const
{
    return find(name).set;
}

std::string Arg_parser::usage() const
{
    std::ostringstream os;
    os << "usage: " << program_ << " [options] [inputs]\n"
       << description_ << "\n\noptions:\n";
    for (const auto& name : order_) {
        const Option& opt = options_.at(name);
        os << "  --" << name;
        if (!opt.is_flag)
            os << " <value>  (default: " << opt.value << ")";
        os << "\n      " << opt.help << "\n";
    }
    return os.str();
}

}  // namespace lycos::util
