// Cooperative cancellation: deadlines, budgets, and deterministic
// fault injection for the anytime-solve contract.
//
// A Cancel_token is a small shared handle the engines poll at natural
// work boundaries.  Two kinds of condition can trip it:
//
//  * Live conditions — a wall-clock deadline, an eval/DP-cell budget,
//    or an external request_cancel().  These set an atomic reason flag
//    (first writer wins); every worker observes it at its next poll
//    and stops at the following chunk/row boundary.  The result is an
//    honest best-of-what-was-explored incumbent, but the exact stop
//    point depends on timing, so it is not thread-count invariant.
//
//  * The injected cut — a Fault_injector arms the token with a
//    predetermined logical-unit index.  admit(unit) is then the pure
//    predicate `unit < cut`: no clocks, no shared mutable state.  The
//    explored set is exactly [0, cut) regardless of thread count or
//    scheduling, which is what makes truncated results bit-identical
//    and testable (see docs/api.md, "Deadlines, budgets, and anytime
//    results").
//
// Polling discipline: tripped() is a single relaxed atomic load — use
// it freely.  stop() additionally reads the clock when a deadline is
// armed — call it at coarse boundaries (a restart, a pair, a DP row
// stripe), or strided in leaf-hot loops.  charge_* never read the
// clock.
//
// Ownership: the token is a value type over shared state.  Copies
// share the same flag; the caller that creates the token decides its
// lifetime and must keep it alive across the solve (Session::solve
// copies the external token into its per-solve effective token, so
// the caller's token may die as soon as solve returns).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>

namespace lycos::util {

/// How a solve ended.  `complete` means the full space was explored;
/// anything else means the result is the incumbent found before the
/// token tripped.
enum class Solve_status : std::uint8_t {
    complete,   ///< ran to the end of the search space
    deadline,   ///< wall-clock deadline expired
    budget,     ///< eval or DP-cell budget exhausted
    cancelled,  ///< external request_cancel() or injected trip
};

std::string to_string(Solve_status status);

/// Deterministic, seed-driven fault plan for tests: trip the token
/// (or simulate an allocation failure) when a specific logical work
/// unit is admitted.  Logical units are thread-invariant indices —
/// the leaf index for the exhaustive walker, the restart index for
/// hill climbing, the outer-row index for the pair tree — so the same
/// plan cuts the same prefix no matter how work is chunked.
struct Fault_injector {
    static constexpr std::uint64_t k_no_unit = ~0ull;

    /// First logical unit refused; units < trip_at are admitted.
    std::uint64_t trip_at = k_no_unit;
    /// Logical unit whose admit() throws std::bad_alloc instead.
    std::uint64_t alloc_failure_at = k_no_unit;

    bool armed() const
    {
        return trip_at != k_no_unit || alloc_failure_at != k_no_unit;
    }

    /// A reproducible plan: trip somewhere in [0, n_units) chosen by
    /// the seed.  n_units == 0 yields an unarmed injector.
    static Fault_injector from_seed(std::uint64_t seed,
                                    std::uint64_t n_units);

    /// Same, but the chosen unit *throws std::bad_alloc* from admit()
    /// instead of tripping — the seeded allocation-failure half of a
    /// chaos plan (serve::Chaos_plan mixes both kinds).
    static Fault_injector alloc_from_seed(std::uint64_t seed,
                                          std::uint64_t n_units);
};

/// A monotonically tightening incumbent time shared across workers
/// that do not share memory-order with each other's chunk state — the
/// distributed search's cross-process bound (src/dist/), fed by
/// coordinator incumbent broadcasts and sampled by the engines at
/// chunk entries, strided leaf polls, and row boundaries.
///
/// Admissibility is the whole contract: every value ever stored MUST
/// be the hybrid time of a fully evaluated real point of the search
/// space.  The engines prune only points *strictly worse* than the
/// bound (beyond the float slack), so the global best tuple and all
/// of its time-ties survive any tightening schedule — the sampled
/// value only decides how much provably dead work is skipped, never
/// which point wins (docs/distributed.md, "Determinism contract").
///
/// Lock-free: a CAS-min loop over the double's bit pattern.  Reads
/// and writes are relaxed — the bound is a hint, and a stale read is
/// just a looser (still admissible) threshold.
class Shared_bound {
public:
    /// Current bound; +infinity until the first tighten().
    double get() const { return time_ns_.load(std::memory_order_relaxed); }

    /// Lower the bound to `time_ns` if it improves it; returns true
    /// when this call changed the stored value.  NaN is ignored.
    bool tighten(double time_ns)
    {
        double cur = time_ns_.load(std::memory_order_relaxed);
        while (time_ns < cur) {
            if (time_ns_.compare_exchange_weak(cur, time_ns,
                                               std::memory_order_relaxed))
                return true;
        }
        return false;
    }

private:
    std::atomic<double> time_ns_{
        std::numeric_limits<double>::infinity()};
};

/// Shared cancellation handle.  Copyable; copies share one flag.
/// All methods are const and thread-safe.
class Cancel_token {
public:
    /// An unarmed token: never trips on its own, pollable for free.
    Cancel_token();

    /// Arm with any combination of conditions.  deadline_ms <= 0,
    /// max_* == 0 and an unarmed fault each mean "no such limit".
    /// `parent` (optional) links an external token: if the parent
    /// trips, this token observes it at the next poll.
    Cancel_token(double deadline_ms, std::uint64_t max_evals,
                 std::uint64_t max_dp_cells, Fault_injector fault,
                 const Cancel_token* parent = nullptr);

    /// True once any condition has tripped.  One relaxed load (plus a
    /// parent check when linked); never reads the clock.
    bool tripped() const;

    /// tripped(), plus a deadline check when one is armed.  This is
    /// the full poll for coarse boundaries.
    bool stop() const;

    /// Admission test for logical work unit `unit` (pure under the
    /// injected cut: exactly the units < cut are admitted, on every
    /// thread count).  Throws std::bad_alloc for the injected
    /// alloc-failure unit.  Never reads the clock.  Returns false if
    /// the unit must not be processed.
    bool admit(std::uint64_t unit) const;

    /// Charge `n` partition evaluations / DP cells against the
    /// budgets; trips with Solve_status::budget on exhaustion.  No
    /// clock access.
    void charge_evals(std::uint64_t n) const;
    void charge_dp_cells(std::uint64_t n) const;

    /// Trip from outside (a serving layer, a signal handler thread).
    void request_cancel() const;

    /// complete until tripped, then the reason that tripped first.
    Solve_status status() const;

private:
    struct State;
    void trip(Solve_status reason) const;

    std::shared_ptr<State> state_;
};

}  // namespace lycos::util
