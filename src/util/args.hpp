// Minimal command-line argument parser for the CLI tool and examples.
//
// Supports --flag, --option value, --option=value and positional
// arguments.  Unknown options raise errors with a usage string.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace lycos::util {

/// Declarative argument parser.
///
///     Arg_parser args("lycos_cli", "run the LYCOS allocation flow");
///     args.add_option("area", "8000", "ASIC area in gates");
///     args.add_flag("storage", "charge storage/interconnect");
///     args.parse(argc, argv);
///     double area = std::stod(args.value("area"));
class Arg_parser {
public:
    Arg_parser(std::string program, std::string description);

    /// Register a boolean flag (default false).
    void add_flag(const std::string& name, const std::string& help);

    /// Register a valued option with a default.
    void add_option(const std::string& name, const std::string& default_value,
                    const std::string& help);

    /// Parse; throws std::invalid_argument on unknown options or a
    /// missing value.  A `--` token ends option processing.
    void parse(int argc, const char* const* argv);
    void parse(const std::vector<std::string>& args);

    /// True if the flag was given.
    bool flag(const std::string& name) const;

    /// Current value of an option (default or parsed).  Throws on
    /// unknown names.
    const std::string& value(const std::string& name) const;

    /// True if the option was explicitly set on the command line.
    bool was_set(const std::string& name) const;

    /// Positional arguments in order.
    const std::vector<std::string>& positional() const { return positional_; }

    /// Human-readable usage text.
    std::string usage() const;

private:
    struct Option {
        std::string help;
        std::string value;
        bool is_flag = false;
        bool set = false;
    };

    Option& find(const std::string& name);
    const Option& find(const std::string& name) const;

    std::string program_;
    std::string description_;
    std::map<std::string, Option> options_;
    std::vector<std::string> order_;  // declaration order for usage()
    std::vector<std::string> positional_;
};

}  // namespace lycos::util
