// Deterministic random number generation for synthetic workloads and
// property tests.  A thin wrapper over std::mt19937_64 so every user
// of randomness in the library is seedable and reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>

namespace lycos::util {

/// Seedable random source.  All library randomness flows through this
/// class so experiments are reproducible run-to-run.
class Rng {
public:
    explicit Rng(std::uint64_t seed = k_default_seed) : engine_(seed) {}

    /// Uniform integer in [lo, hi] inclusive.
    int uniform_int(int lo, int hi)
    {
        if (lo > hi)
            throw std::invalid_argument("Rng::uniform_int: lo > hi");
        return std::uniform_int_distribution<int>(lo, hi)(engine_);
    }

    /// Uniform real in [lo, hi).
    double uniform_real(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Uniform index in [0, n).  Exact for the full long long range —
    /// unlike scaling uniform_real by (n-1), which can never produce
    /// the last index and loses precision above 2^53.
    long long uniform_index(long long n)
    {
        if (n <= 0)
            throw std::invalid_argument("Rng::uniform_index: n <= 0");
        return std::uniform_int_distribution<long long>(0, n - 1)(engine_);
    }

    /// Bernoulli trial with probability `p` of returning true.
    bool chance(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /// Pick a uniformly random element of a non-empty span.
    template <typename T>
    const T& pick(std::span<const T> items)
    {
        if (items.empty())
            throw std::invalid_argument("Rng::pick: empty span");
        return items[static_cast<std::size_t>(
            uniform_int(0, static_cast<int>(items.size()) - 1))];
    }

    std::mt19937_64& engine() { return engine_; }

private:
    static constexpr std::uint64_t k_default_seed = 0x1234'5678'9abc'def0ULL;
    std::mt19937_64 engine_;
};

}  // namespace lycos::util
