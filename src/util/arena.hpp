// Per-worker bump arenas with first-touch placement for DP rows.
//
// The search engines hand every worker its own Arena and construct
// that worker's PACE workspaces on top of it.  Two things fall out:
//   - locality: a worker's DP rows, checkpoint arena, and traceback
//     buffers live in a handful of large contiguous blocks instead of
//     being scattered across the global heap by whichever thread
//     freed memory last;
//   - first touch: blocks are zero-filled by the allocating thread at
//     carve-out time, so the OS commits their pages on the node/core
//     that will stream them (Linux first-touch NUMA policy).  Engines
//     construct workspaces inside the worker task body, which makes
//     the allocating thread the sweeping thread.
//
// Allocation is bump-pointer with 64-byte (cache-line) alignment;
// deallocation is a no-op, everything is released when the Arena
// dies.  That fits the workspace lifecycle exactly: buffers only ever
// grow, and a workspace outlives every solve it is reused across.
// Vector regrowth abandons the old block inside the arena, bounding
// waste at roughly one capacity doubling per buffer.
//
// Arena_allocator<T> adapts an Arena to the std::allocator interface;
// with a null arena it degrades to plain operator new/delete, so
// default-constructed workspaces keep working untouched.
#pragma once

#include <cstddef>
#include <vector>

namespace lycos::util {

/// Grow-only bump allocator; see the header comment.  Not
/// thread-safe — one Arena per worker is the whole point.
class Arena {
public:
    Arena() = default;
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;
    ~Arena();

    /// A 64-byte-aligned, zero-filled (first-touched) span of `bytes`
    /// bytes.  Never returns nullptr for bytes > 0.
    void* alloc(std::size_t bytes);

    /// Total bytes carved out of the blocks so far.
    std::size_t bytes_allocated() const { return bytes_allocated_; }

    /// Total bytes reserved from the OS (>= bytes_allocated()).
    std::size_t bytes_reserved() const { return bytes_reserved_; }

private:
    struct Block {
        char* base = nullptr;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    static constexpr std::size_t k_align = 64;  ///< cache line
    static constexpr std::size_t k_min_block = std::size_t{1} << 18;

    std::vector<Block> blocks_;
    std::size_t bytes_allocated_ = 0;
    std::size_t bytes_reserved_ = 0;
};

/// std::allocator adapter.  arena == nullptr falls back to the global
/// heap, so containers declared with this allocator work in contexts
/// that never set an arena up (one-shot convenience entry points).
template <class T>
class Arena_allocator {
public:
    using value_type = T;

    Arena_allocator() = default;
    explicit Arena_allocator(Arena* arena) : arena_(arena) {}
    template <class U>
    Arena_allocator(const Arena_allocator<U>& other)
        : arena_(other.arena()) {}

    T* allocate(std::size_t n) {
        if (arena_ != nullptr) {
            return static_cast<T*>(arena_->alloc(n * sizeof(T)));
        }
        return static_cast<T*>(::operator new(n * sizeof(T)));
    }

    void deallocate(T* p, std::size_t) noexcept {
        if (arena_ == nullptr) ::operator delete(p);
        // Arena memory is bump-allocated; freed with the Arena.
    }

    Arena* arena() const { return arena_; }

    friend bool operator==(const Arena_allocator& a,
                           const Arena_allocator& b) {
        return a.arena_ == b.arena_;
    }
    friend bool operator!=(const Arena_allocator& a,
                           const Arena_allocator& b) {
        return !(a == b);
    }

private:
    Arena* arena_ = nullptr;
};

/// The DP buffers' vector type: heap-backed by default, arena-backed
/// when the owning workspace was given a per-worker Arena.
template <class T>
using Arena_vector = std::vector<T, Arena_allocator<T>>;

}  // namespace lycos::util
