// Contiguous chunk-range math shared by every dispatcher of the
// deterministic searches: the local pool driver (parallel_chunks),
// the engines' worker-count clamps, and the distributed lease
// scheduler (src/dist/).
//
// All of them split the same thing — a logical unit range [0, n)
// (mixed-radix leaf indices for the exhaustive walker, a0 rows for
// the pair tree) — into contiguous ranges whose sizes differ by at
// most one, earlier ranges taking the remainder.  The split is pure
// arithmetic on (n, n_chunks, c), so a coordinator and its workers
// derive identical ranges without communicating them, and the
// in-order reduction over ranges is the same fold whether the ranges
// ran on threads of one process or on sockets across machines.
#pragma once

#include <cstddef>
#include <vector>

namespace lycos::util {

/// One contiguous range [begin, end) of logical work units.  The
/// default-constructed value is the sentinel "whole range" (end < 0),
/// used by options structs where an absent window means "no window".
struct Chunk_range {
    long long begin = 0;
    long long end = -1;

    /// True for the sentinel: no restriction, cover everything.
    bool whole() const { return end < 0; }
    long long size() const { return end - begin; }

    friend bool operator==(const Chunk_range&, const Chunk_range&) = default;
};

/// Number of chunks actually used for `n` units when `n_chunks` are
/// requested: at least 1, never more than n (empty chunks would break
/// the "sizes differ by at most one" contract the reductions index by).
std::size_t effective_chunks(long long n, std::size_t n_chunks);

/// The c-th range of the even split of [0, n) into
/// effective_chunks(n, n_chunks) ranges: base = n / k units each, the
/// first n % k ranges one unit longer.  This is bit-for-bit the
/// partition util::parallel_chunks dispatches and the engines'
/// reductions assume; chunk_of(n, k, c).begin ==
/// chunk_of(n, k, c-1).end for every c.
Chunk_range chunk_of(long long n, std::size_t n_chunks, std::size_t c);

/// All ranges of the even split, in order.  split_even(n, k) covers
/// [0, n) exactly; empty when n <= 0 or n_chunks == 0.
std::vector<Chunk_range> split_even(long long n, std::size_t n_chunks);

/// The engines' shared worker-count clamp: `requested` (0 selects
/// `fallback`, typically hardware concurrency), at most one worker
/// per unit, and never more than `cap` chunks (the reduction
/// materializes one result slot per chunk).
std::size_t clamp_chunks(int requested, std::size_t fallback, long long n,
                         long long cap = 1LL << 16);

}  // namespace lycos::util
