// Fixed-size worker-thread pool and a chunked parallel-for driver.
//
// The allocation search parallelizes by splitting the mixed-radix
// index range into contiguous chunks, one task per chunk, with no work
// stealing: chunks are coarse and equally sized, so static partitioning
// keeps the reduction deterministic and the code simple.  The pool is
// the reusable substrate (condition-variable task queue, the classic
// idiom); parallel_chunks is the driver the search actually calls.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lycos::util {

/// A fixed set of worker threads draining a task queue.
class Thread_pool {
public:
    /// Start `n_threads` workers (0 selects default_concurrency()).
    explicit Thread_pool(std::size_t n_threads = 0);

    /// Joins all workers; pending tasks are still executed.
    ~Thread_pool();

    Thread_pool(const Thread_pool&) = delete;
    Thread_pool& operator=(const Thread_pool&) = delete;

    std::size_t size() const { return threads_.size(); }

    /// Enqueue a task for execution on some worker.  Tasks must
    /// capture their own errors (as parallel_chunks does): an
    /// exception escaping a task is swallowed by the worker, since a
    /// detached thread has nowhere to rethrow it.
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished.
    void wait_idle();

    /// Number of hardware threads, at least 1.
    static std::size_t default_concurrency();

private:
    void worker_loop();

    std::vector<std::thread> threads_;
    std::queue<std::function<void()>> tasks_;
    mutable std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;  ///< tasks currently executing
    bool stopping_ = false;
};

/// Split [0, n) into `n_chunks` contiguous ranges (sizes differing by
/// at most one) and run fn(chunk_index, begin, end) for each on the
/// pool.  Blocks until all chunks are done; the first exception thrown
/// by any chunk is rethrown in the caller.
void parallel_chunks(
    Thread_pool& pool, long long n, std::size_t n_chunks,
    const std::function<void(std::size_t, long long, long long)>& fn);

}  // namespace lycos::util
