// Fixed-size worker-thread pool and a chunked parallel-for driver.
//
// The allocation search parallelizes by splitting the mixed-radix
// index range into contiguous chunks, one task per chunk, with no work
// stealing: chunks are coarse and equally sized, so static partitioning
// keeps the reduction deterministic and the code simple.  The pool is
// the reusable substrate (condition-variable task queue, the classic
// idiom); parallel_chunks is the driver the search actually calls.
//
// Error propagation is deterministic: each submitted task carries a
// sequence number, workers record the exception from the
// lowest-numbered failing task, and wait_idle() rethrows it on the
// submitting thread.  Since parallel_chunks submits chunks in index
// order, "lowest sequence" means "lowest chunk index" — the same
// winner no matter how the OS schedules the workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lycos::util {

class Cancel_token;

/// A fixed set of worker threads draining a task queue.
class Thread_pool {
public:
    /// Start `n_threads` workers (0 selects default_concurrency()).
    explicit Thread_pool(std::size_t n_threads = 0);

    /// Joins all workers; pending tasks are still executed (errors
    /// from them are recorded but have no wait_idle() left to rethrow
    /// them — call wait_idle() before destruction if you care).
    ~Thread_pool();

    Thread_pool(const Thread_pool&) = delete;
    Thread_pool& operator=(const Thread_pool&) = delete;

    std::size_t size() const { return threads_.size(); }

    /// Enqueue a task for execution on some worker.  An exception
    /// escaping the task is captured (first by submission order) and
    /// rethrown by the next wait_idle().  Throws std::runtime_error
    /// once destruction has begun — a task enqueued that late may
    /// never run (workers that found the queue empty have already
    /// exited), and a silent never-runs task would hang wait_idle()
    /// in a long-lived serving layer.
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished.  If any task
    /// threw, rethrows the exception from the earliest-submitted
    /// failing task on this thread and clears the error state.
    void wait_idle();

    /// Number of hardware threads, at least 1.
    static std::size_t default_concurrency();

private:
    struct Task {
        std::uint64_t seq;
        std::function<void()> fn;
    };

    void worker_loop();

    std::vector<std::thread> threads_;
    std::queue<Task> tasks_;
    mutable std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;  ///< tasks currently executing
    std::uint64_t next_seq_ = 0;
    std::uint64_t error_seq_ = 0;  ///< seq of first_error_ when set
    std::exception_ptr first_error_;
    bool stopping_ = false;
};

/// Split [0, n) into `n_chunks` contiguous ranges (sizes differing by
/// at most one) and run fn(chunk_index, begin, end) for each on the
/// pool.  Blocks until all chunks are done; if any chunk throws, the
/// exception from the lowest-indexed throwing chunk is rethrown in
/// the caller.  When `cancel` is given, chunks whose task starts
/// after the token tripped are skipped entirely; the return value is
/// the number of chunks skipped this way (0 otherwise).
std::size_t parallel_chunks(
    Thread_pool& pool, long long n, std::size_t n_chunks,
    const std::function<void(std::size_t, long long, long long)>& fn,
    const Cancel_token* cancel = nullptr);

}  // namespace lycos::util
