// Minimal POSIX TCP helpers for the distributed search (src/dist/).
//
// Deliberately tiny: an RAII descriptor, loopback listen/connect with
// OS-chosen ports for tests, and EINTR-safe full-buffer send / single
// recv.  Everything blocking; the coordinator multiplexes with
// poll(2) directly.  Loopback only — the coordinator binds
// 127.0.0.1, matching the threat model in docs/distributed.md (the
// wire format authenticates nothing).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace lycos::util {

/// RAII file descriptor (socket or otherwise); closes on destruction.
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
    Fd& operator=(Fd&& other) noexcept
    {
        if (this != &other)
            reset(std::exchange(other.fd_, -1));
        return *this;
    }
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    int release() { return std::exchange(fd_, -1); }
    void reset(int fd = -1);

private:
    int fd_ = -1;
};

/// A listening socket plus the port it actually bound (the interesting
/// part when the caller asked for port 0).
struct Listener {
    Fd fd;
    std::uint16_t port = 0;
};

/// Listening TCP socket on 127.0.0.1:`port` (0 = OS-chosen).  Throws
/// std::runtime_error with errno text on failure.
Listener listen_tcp(std::uint16_t port);

/// Accept one connection, waiting up to `timeout_ms` (< 0 = block).
/// Invalid Fd on timeout; throws std::runtime_error on a hard error.
Fd accept_conn(const Fd& listener, int timeout_ms);

/// Connect to `host`:`port`, retrying with a short sleep until
/// `timeout_ms` elapses (a worker typically races the coordinator's
/// listen).  Throws std::runtime_error when time runs out.
Fd connect_tcp(const std::string& host, std::uint16_t port,
               int timeout_ms);

/// Write the whole buffer (EINTR-safe, never raises SIGPIPE).  False
/// on any error — for the coordinator that is a worker death signal,
/// not an exception.
bool send_all(const Fd& fd, const void* buf, std::size_t len);

/// One recv: > 0 bytes read, 0 = orderly EOF, -1 = error.  EINTR
/// retried.
long recv_some(const Fd& fd, void* buf, std::size_t len);

}  // namespace lycos::util
