#include "util/chunk_range.hpp"

#include <algorithm>

namespace lycos::util {

std::size_t effective_chunks(long long n, std::size_t n_chunks)
{
    if (n <= 0 || n_chunks == 0)
        return 0;
    if (n_chunks > static_cast<std::size_t>(n))
        n_chunks = static_cast<std::size_t>(n);
    return n_chunks;
}

Chunk_range chunk_of(long long n, std::size_t n_chunks, std::size_t c)
{
    const std::size_t k = effective_chunks(n, n_chunks);
    if (k == 0 || c >= k)
        return {0, 0};
    const long long kk = static_cast<long long>(k);
    const long long base = n / kk;
    const long long extra = n % kk;
    const long long cc = static_cast<long long>(c);
    // First `extra` chunks carry base + 1 units: begin is c * base
    // plus one extra unit per earlier long chunk.
    const long long begin = cc * base + std::min(cc, extra);
    return {begin, begin + base + (cc < extra ? 1 : 0)};
}

std::vector<Chunk_range> split_even(long long n, std::size_t n_chunks)
{
    const std::size_t k = effective_chunks(n, n_chunks);
    std::vector<Chunk_range> out;
    out.reserve(k);
    for (std::size_t c = 0; c < k; ++c)
        out.push_back(chunk_of(n, n_chunks, c));
    return out;
}

std::size_t clamp_chunks(int requested, std::size_t fallback, long long n,
                         long long cap)
{
    std::size_t want =
        requested > 0 ? static_cast<std::size_t>(requested) : fallback;
    const long long limit = std::max(1LL, std::min(n, cap));
    return std::max<std::size_t>(
        1, std::min(want, static_cast<std::size_t>(limit)));
}

}  // namespace lycos::util
