#include "util/simd.hpp"

#include <atomic>
#include <limits>

// The AVX2 tables are compiled with per-function target attributes
// (no global -mavx2), so this translation unit builds on any x86-64
// baseline and the scalar table below stays legal everywhere.  CMake
// defines LYCOS_DISABLE_SIMD when the option is set or the compiler
// lacks target("avx2") multiversioning support.
#if defined(__x86_64__) && !defined(LYCOS_DISABLE_SIMD)
#define LYCOS_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define LYCOS_HAVE_AVX2_KERNELS 0
#endif

namespace lycos::util::simd {
namespace {

constexpr double k_inf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Scalar table.  These loops are the semantics; the AVX2 table below
// is obligated to match them bit for bit (same per-lane add and the
// same tie-goes-to-the-second-operand max, which is exactly what
// vmaxpd implements for `b > a ? b : a` spelled as max(a, b)).

void scalar_pace_row_sw(const double* cur, double* nxt, std::size_t n) {
    for (std::size_t a = 0; a < n; ++a) {
        const double v0 = cur[2 * a];
        const double v1 = cur[2 * a + 1];
        nxt[2 * a] = v0 > v1 ? v0 : v1;
        nxt[2 * a + 1] = -k_inf;
    }
}

void scalar_pace_row_hw(const double* cur, double* out, std::size_t n,
                        double gain, double gain_save) {
    for (std::size_t a = 0; a < n; ++a) {
        const double c0 = cur[2 * a] + gain;
        const double c1 = cur[2 * a + 1] + gain_save;
        out[2 * a + 1] = c0 > c1 ? c0 : c1;
    }
}

void scalar_pace_row_parent(const double* cur, std::uint8_t* parent,
                            std::size_t n, double add0, double add1) {
    for (std::size_t a = 0; a < n; ++a) {
        parent[a] =
            (cur[2 * a + 1] + add1) > (cur[2 * a] + add0) ? 1 : 0;
    }
}

std::size_t scalar_multi_shift_lane(const std::int32_t* a0,
                                    const std::int32_t* a1,
                                    const double* value, std::size_t n,
                                    std::int32_t da0, std::int32_t da1,
                                    double add, std::int32_t cap0,
                                    std::int32_t cap1, std::uint64_t* key,
                                    double* val) {
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t sa0 = a0[i] + da0;
        if (sa0 > cap0) return i;  // a0 ascending: the rest overflow too
        const std::int32_t sa1 = a1[i] + da1;
        key[i] = sa1 > cap1 ? k_invalid_key
                            : (static_cast<std::uint64_t>(sa0) << 32) |
                                  static_cast<std::uint32_t>(sa1);
        val[i] = value[i] + add;
    }
    return n;
}

double scalar_max_reduce(const double* p, std::size_t n) {
    double m = -k_inf;
    for (std::size_t i = 0; i < n; ++i) {
        if (p[i] > m) m = p[i];
    }
    return m;
}

constexpr Kernels k_scalar_kernels{
    scalar_pace_row_sw,  scalar_pace_row_hw, scalar_pace_row_parent,
    scalar_multi_shift_lane, scalar_max_reduce,
};

// ---------------------------------------------------------------------------
// AVX2 table.  One vector = 4 doubles = 2 (area, side) pairs.  Pair
// reductions swap the slots inside each 128-bit half with vpermilpd
// and take vmaxpd against the original; operand order is chosen so
// every kept slot computes `second if tie`, matching the scalar
// `v0 > v1 ? v0 : v1` exactly (including -0.0 vs +0.0).

#if LYCOS_HAVE_AVX2_KERNELS

__attribute__((target("avx2"))) void avx2_pace_row_sw(const double* cur,
                                                      double* nxt,
                                                      std::size_t n) {
    const __m256d ninf = _mm256_set1_pd(-k_inf);
    std::size_t a = 0;
    // 4x unrolled (8 pairs per iteration): the loop bookkeeping is a
    // third of the body's uops at 2 pairs, which eats the vector win.
    for (; a + 8 <= n; a += 8) {
        const __m256d v0 = _mm256_loadu_pd(cur + 2 * a);
        const __m256d v1 = _mm256_loadu_pd(cur + 2 * a + 4);
        const __m256d v2 = _mm256_loadu_pd(cur + 2 * a + 8);
        const __m256d v3 = _mm256_loadu_pd(cur + 2 * a + 12);
        // Even slots: max(v0, v1), tie -> v1 (the second operand of
        // vmaxpd is the swapped vector, which holds v1 there).
        const __m256d m0 = _mm256_max_pd(v0, _mm256_permute_pd(v0, 0b0101));
        const __m256d m1 = _mm256_max_pd(v1, _mm256_permute_pd(v1, 0b0101));
        const __m256d m2 = _mm256_max_pd(v2, _mm256_permute_pd(v2, 0b0101));
        const __m256d m3 = _mm256_max_pd(v3, _mm256_permute_pd(v3, 0b0101));
        _mm256_storeu_pd(nxt + 2 * a, _mm256_blend_pd(m0, ninf, 0b1010));
        _mm256_storeu_pd(nxt + 2 * a + 4, _mm256_blend_pd(m1, ninf, 0b1010));
        _mm256_storeu_pd(nxt + 2 * a + 8, _mm256_blend_pd(m2, ninf, 0b1010));
        _mm256_storeu_pd(nxt + 2 * a + 12,
                         _mm256_blend_pd(m3, ninf, 0b1010));
    }
    for (; a + 2 <= n; a += 2) {
        const __m256d v = _mm256_loadu_pd(cur + 2 * a);
        const __m256d m = _mm256_max_pd(v, _mm256_permute_pd(v, 0b0101));
        _mm256_storeu_pd(nxt + 2 * a, _mm256_blend_pd(m, ninf, 0b1010));
    }
    if (a < n) scalar_pace_row_sw(cur + 2 * a, nxt + 2 * a, n - a);
}

__attribute__((target("avx2"))) void avx2_pace_row_hw(const double* cur,
                                                      double* out,
                                                      std::size_t n,
                                                      double gain,
                                                      double gain_save) {
    const __m256d addv = _mm256_setr_pd(gain, gain_save, gain, gain_save);
    // Odd-slots-only masked stores: the even slots are preserved by
    // never being written, instead of by a load + blend + full store
    // round trip — fewer uops and no read-after-write traffic on the
    // destination row.
    const __m256i odd = _mm256_setr_epi64x(0, -1, 0, -1);
    std::size_t a = 0;
    for (; a + 8 <= n; a += 8) {
        const __m256d s0 = _mm256_add_pd(_mm256_loadu_pd(cur + 2 * a), addv);
        const __m256d s1 =
            _mm256_add_pd(_mm256_loadu_pd(cur + 2 * a + 4), addv);
        const __m256d s2 =
            _mm256_add_pd(_mm256_loadu_pd(cur + 2 * a + 8), addv);
        const __m256d s3 =
            _mm256_add_pd(_mm256_loadu_pd(cur + 2 * a + 12), addv);
        // Odd slots: max(c0, c1), tie -> c1 (`s` holds c1 there).
        const __m256d m0 = _mm256_max_pd(_mm256_permute_pd(s0, 0b0101), s0);
        const __m256d m1 = _mm256_max_pd(_mm256_permute_pd(s1, 0b0101), s1);
        const __m256d m2 = _mm256_max_pd(_mm256_permute_pd(s2, 0b0101), s2);
        const __m256d m3 = _mm256_max_pd(_mm256_permute_pd(s3, 0b0101), s3);
        _mm256_maskstore_pd(out + 2 * a, odd, m0);
        _mm256_maskstore_pd(out + 2 * a + 4, odd, m1);
        _mm256_maskstore_pd(out + 2 * a + 8, odd, m2);
        _mm256_maskstore_pd(out + 2 * a + 12, odd, m3);
    }
    for (; a + 2 <= n; a += 2) {
        const __m256d s = _mm256_add_pd(_mm256_loadu_pd(cur + 2 * a), addv);
        const __m256d m = _mm256_max_pd(_mm256_permute_pd(s, 0b0101), s);
        _mm256_maskstore_pd(out + 2 * a, odd, m);
    }
    if (a < n) scalar_pace_row_hw(cur + 2 * a, out + 2 * a, n - a, gain,
                                  gain_save);
}

__attribute__((target("avx2"))) void avx2_pace_row_parent(
    const double* cur, std::uint8_t* parent, std::size_t n, double add0,
    double add1) {
    const __m256d addv = _mm256_setr_pd(add0, add1, add0, add1);
    std::size_t a = 0;
    for (; a + 4 <= n; a += 4) {
        const __m256d s0 = _mm256_add_pd(_mm256_loadu_pd(cur + 2 * a), addv);
        const __m256d s1 =
            _mm256_add_pd(_mm256_loadu_pd(cur + 2 * a + 4), addv);
        // Slots 0 and 2 compare c1 > c0 for the two pairs.
        const int m0 = _mm256_movemask_pd(
            _mm256_cmp_pd(_mm256_permute_pd(s0, 0b0101), s0, _CMP_GT_OQ));
        const int m1 = _mm256_movemask_pd(
            _mm256_cmp_pd(_mm256_permute_pd(s1, 0b0101), s1, _CMP_GT_OQ));
        parent[a] = static_cast<std::uint8_t>(m0 & 1);
        parent[a + 1] = static_cast<std::uint8_t>((m0 >> 2) & 1);
        parent[a + 2] = static_cast<std::uint8_t>(m1 & 1);
        parent[a + 3] = static_cast<std::uint8_t>((m1 >> 2) & 1);
    }
    for (; a + 2 <= n; a += 2) {
        const __m256d s = _mm256_add_pd(_mm256_loadu_pd(cur + 2 * a), addv);
        const int mask = _mm256_movemask_pd(
            _mm256_cmp_pd(_mm256_permute_pd(s, 0b0101), s, _CMP_GT_OQ));
        parent[a] = static_cast<std::uint8_t>(mask & 1);
        parent[a + 1] = static_cast<std::uint8_t>((mask >> 2) & 1);
    }
    if (a < n)
        scalar_pace_row_parent(cur + 2 * a, parent + a, n - a, add0, add1);
}

__attribute__((target("avx2"))) std::size_t avx2_multi_shift_lane(
    const std::int32_t* a0, const std::int32_t* a1, const double* value,
    std::size_t n, std::int32_t da0, std::int32_t da1, double add,
    std::int32_t cap0, std::int32_t cap1, std::uint64_t* key, double* val) {
    const __m128i da0v = _mm_set1_epi32(da0);
    const __m128i da1v = _mm_set1_epi32(da1);
    const __m128i cap0v = _mm_set1_epi32(cap0);
    const __m128i cap1v = _mm_set1_epi32(cap1);
    const __m256d addv = _mm256_set1_pd(add);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i sa0 = _mm_add_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a0 + i)), da0v);
        // Any a0 overflow in this block: finish scalar to find the
        // exact truncation point (a0 ascending).
        if (_mm_movemask_epi8(_mm_cmpgt_epi32(sa0, cap0v)) != 0) break;
        const __m128i sa1 = _mm_add_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a1 + i)), da1v);
        const __m128i over1 = _mm_cmpgt_epi32(sa1, cap1v);
        const __m256i k = _mm256_or_si256(
            _mm256_slli_epi64(_mm256_cvtepi32_epi64(sa0), 32),
            _mm256_cvtepi32_epi64(sa1));
        // a1 overflow -> all-ones mask -> key becomes k_invalid_key.
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(key + i),
            _mm256_or_si256(k, _mm256_cvtepi32_epi64(over1)));
        _mm256_storeu_pd(val + i,
                         _mm256_add_pd(_mm256_loadu_pd(value + i), addv));
    }
    return i + scalar_multi_shift_lane(a0 + i, a1 + i, value + i, n - i, da0,
                                       da1, add, cap0, cap1, key + i,
                                       val + i);
}

__attribute__((target("avx2"))) double avx2_max_reduce(const double* p,
                                                       std::size_t n) {
    __m256d m = _mm256_set1_pd(-k_inf);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        m = _mm256_max_pd(m, _mm256_loadu_pd(p + i));
    }
    const __m128d m2 =
        _mm_max_pd(_mm256_castpd256_pd128(m), _mm256_extractf128_pd(m, 1));
    double out = _mm_cvtsd_f64(_mm_max_sd(m2, _mm_unpackhi_pd(m2, m2)));
    for (; i < n; ++i) {
        if (p[i] > out) out = p[i];
    }
    return out;
}

constexpr Kernels k_avx2_kernels{
    avx2_pace_row_sw,  avx2_pace_row_hw, avx2_pace_row_parent,
    avx2_multi_shift_lane, avx2_max_reduce,
};

#endif  // LYCOS_HAVE_AVX2_KERNELS

Isa detect_best_isa() {
#if LYCOS_HAVE_AVX2_KERNELS
    if (__builtin_cpu_supports("avx2")) return Isa::avx2;
#endif
    return Isa::scalar;
}

// The active level, selected once on first use; force_isa stores a
// clamped override.  Relaxed is enough: the tables are immutable and
// every level computes identical bits.
std::atomic<int> g_active_isa{-1};

Isa resolve_active() {
    int cur = g_active_isa.load(std::memory_order_relaxed);
    if (cur < 0) {
        cur = static_cast<int>(detect_best_isa());
        g_active_isa.store(cur, std::memory_order_relaxed);
    }
    return static_cast<Isa>(cur);
}

}  // namespace

const Kernels& kernels(Isa isa) {
#if LYCOS_HAVE_AVX2_KERNELS
    if (isa == Isa::avx2 && best_isa() == Isa::avx2) return k_avx2_kernels;
#endif
    (void)isa;
    return k_scalar_kernels;
}

const Kernels& kernels() { return kernels(resolve_active()); }

Isa active_isa() { return resolve_active(); }

Isa best_isa() {
    static const Isa best = detect_best_isa();
    return best;
}

void force_isa(Isa isa) {
    if (isa > best_isa()) isa = best_isa();
    g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

const char* isa_name(Isa isa) {
    switch (isa) {
        case Isa::avx2:
            return "avx2";
        case Isa::scalar:
            break;
    }
    return "scalar";
}

}  // namespace lycos::util::simd
