#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lycos::util {

Table_printer::Table_printer(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        throw std::invalid_argument("Table_printer: empty header");
    align_.assign(header_.size(), Align::right);
    align_[0] = Align::left;
}

void Table_printer::set_align(std::size_t col, Align a)
{
    if (col >= align_.size())
        throw std::invalid_argument("Table_printer: column out of range");
    align_[col] = a;
}

void Table_printer::add_row(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        throw std::invalid_argument("Table_printer: row arity mismatch");
    rows_.push_back(std::move(row));
    ++n_data_rows_;
}

void Table_printer::add_separator()
{
    rows_.emplace_back();
}

void Table_printer::print(std::ostream& os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c != 0)
                os << "  ";
            const auto pad = width[c] - cells[c].size();
            if (align_[c] == Align::right)
                os << std::string(pad, ' ') << cells[c];
            else
                os << cells[c] << std::string(pad, ' ');
        }
        os << '\n';
    };

    auto rule = [&] {
        std::size_t total = 0;
        for (auto w : width)
            total += w;
        total += 2 * (width.size() - 1);
        os << std::string(total, '-') << '\n';
    };

    emit(header_);
    rule();
    for (const auto& row : rows_) {
        if (row.empty())
            rule();
        else
            emit(row);
    }
}

std::string Table_printer::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

}  // namespace lycos::util
