// Minimal CSV writer so bench output can also be captured for
// plotting (figure-style experiments emit both a table and a CSV).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lycos::util {

/// Streams rows in RFC-4180-ish CSV (quotes cells containing commas,
/// quotes or newlines).
class Csv_writer {
public:
    /// Writes into `os`; the stream must outlive the writer.
    explicit Csv_writer(std::ostream& os) : os_(os) {}

    /// Write one row of cells.
    void row(const std::vector<std::string>& cells);

    /// Convenience: write a row of doubles with fixed precision.
    void row_numeric(const std::vector<double>& cells, int digits = 6);

private:
    static std::string escape(const std::string& cell);
    std::ostream& os_;
};

}  // namespace lycos::util
