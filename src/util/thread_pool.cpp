#include "util/thread_pool.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "util/cancel.hpp"
#include "util/chunk_range.hpp"

namespace lycos::util {

Thread_pool::Thread_pool(std::size_t n_threads)
{
    if (n_threads == 0)
        n_threads = default_concurrency();
    threads_.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

Thread_pool::~Thread_pool()
{
    {
        std::unique_lock lock(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& t : threads_)
        t.join();
}

void Thread_pool::submit(std::function<void()> task)
{
    {
        std::unique_lock lock(mutex_);
        // A task enqueued while the pool shuts down can be stranded
        // forever: a worker that found the queue empty has already
        // exited and will never come back for it.  A long-lived
        // serving layer must hear about that loudly, not hang a
        // wait_idle() on work nobody will run.
        if (stopping_)
            throw std::runtime_error(
                "Thread_pool::submit: pool is shutting down");
        tasks_.push({next_seq_++, std::move(task)});
    }
    task_ready_.notify_one();
}

void Thread_pool::wait_idle()
{
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
    if (first_error_) {
        auto error = std::exchange(first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

std::size_t Thread_pool::default_concurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void Thread_pool::worker_loop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock lock(mutex_);
            task_ready_.wait(lock,
                             [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty())
                return;  // stopping and drained
            task = std::move(tasks_.front());
            tasks_.pop();
            ++in_flight_;
        }
        try {
            task.fn();
        }
        catch (...) {
            // Keep the error from the earliest-submitted failing task
            // so propagation is deterministic under any scheduling.
            std::unique_lock lock(mutex_);
            if (!first_error_ || task.seq < error_seq_) {
                first_error_ = std::current_exception();
                error_seq_ = task.seq;
            }
        }
        {
            std::unique_lock lock(mutex_);
            --in_flight_;
            if (tasks_.empty() && in_flight_ == 0)
                idle_.notify_all();
        }
    }
}

std::size_t parallel_chunks(
    Thread_pool& pool, long long n, std::size_t n_chunks,
    const std::function<void(std::size_t, long long, long long)>& fn,
    const Cancel_token* cancel)
{
    const std::size_t k = effective_chunks(n, n_chunks);
    if (k == 0)
        return 0;

    std::atomic<std::size_t> skipped{0};
    for (std::size_t c = 0; c < k; ++c) {
        const Chunk_range range = chunk_of(n, k, c);
        pool.submit([&, c, range] {
            if (cancel && cancel->tripped()) {
                skipped.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            fn(c, range.begin, range.end);
        });
    }
    pool.wait_idle();
    return skipped.load();
}

}  // namespace lycos::util
