#include "util/thread_pool.hpp"

#include <exception>

namespace lycos::util {

Thread_pool::Thread_pool(std::size_t n_threads)
{
    if (n_threads == 0)
        n_threads = default_concurrency();
    threads_.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

Thread_pool::~Thread_pool()
{
    {
        std::unique_lock lock(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& t : threads_)
        t.join();
}

void Thread_pool::submit(std::function<void()> task)
{
    {
        std::unique_lock lock(mutex_);
        tasks_.push(std::move(task));
    }
    task_ready_.notify_one();
}

void Thread_pool::wait_idle()
{
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

std::size_t Thread_pool::default_concurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void Thread_pool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            task_ready_.wait(lock,
                             [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty())
                return;  // stopping and drained
            task = std::move(tasks_.front());
            tasks_.pop();
            ++in_flight_;
        }
        try {
            task();
        }
        catch (...) {
            // Swallow: a detached worker has nowhere to rethrow, and
            // terminating the process (or leaking in_flight_ and
            // hanging wait_idle) would be worse.  submit() documents
            // that tasks must capture their own errors, as
            // parallel_chunks does.
        }
        {
            std::unique_lock lock(mutex_);
            --in_flight_;
            if (tasks_.empty() && in_flight_ == 0)
                idle_.notify_all();
        }
    }
}

void parallel_chunks(
    Thread_pool& pool, long long n, std::size_t n_chunks,
    const std::function<void(std::size_t, long long, long long)>& fn)
{
    if (n <= 0 || n_chunks == 0)
        return;
    if (n_chunks > static_cast<std::size_t>(n))
        n_chunks = static_cast<std::size_t>(n);

    std::mutex error_mutex;
    std::exception_ptr first_error;

    const long long base = n / static_cast<long long>(n_chunks);
    const long long extra = n % static_cast<long long>(n_chunks);
    long long begin = 0;
    for (std::size_t c = 0; c < n_chunks; ++c) {
        const long long len = base + (static_cast<long long>(c) < extra);
        const long long end = begin + len;
        pool.submit([&, c, begin, end] {
            try {
                fn(c, begin, end);
            }
            catch (...) {
                std::scoped_lock lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        });
        begin = end;
    }
    pool.wait_idle();
    if (first_error)
        std::rethrow_exception(first_error);
}

}  // namespace lycos::util
