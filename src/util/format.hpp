// Small numeric formatting helpers shared by the benches and examples.
#pragma once

#include <string>

namespace lycos::util {

/// Format `v` with `digits` digits after the decimal point.
std::string fixed(double v, int digits = 2);

/// Format a ratio as a percentage string, e.g. 0.62 -> "62%".
std::string percent(double ratio, int digits = 0);

/// Format a speed-up as the paper prints it: (t_old/t_new - 1)*100
/// rendered as e.g. "4173%".
std::string speedup_percent(double pct, int digits = 0);

/// Thousands-separated integer, e.g. 1048576 -> "1,048,576".
std::string with_commas(long long v);

}  // namespace lycos::util
