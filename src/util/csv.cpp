#include "util/csv.hpp"

#include <ostream>

#include "util/format.hpp"

namespace lycos::util {

std::string Csv_writer::escape(const std::string& cell)
{
    const bool needs_quote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += "\"\"";
        else
            out.push_back(ch);
    }
    out.push_back('"');
    return out;
}

void Csv_writer::row(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0)
            os_ << ',';
        os_ << escape(cells[i]);
    }
    os_ << '\n';
}

void Csv_writer::row_numeric(const std::vector<double>& cells, int digits)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells)
        text.push_back(fixed(v, digits));
    row(text);
}

}  // namespace lycos::util
