#include "util/format.hpp"

#include <cmath>
#include <cstdio>

namespace lycos::util {

std::string fixed(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    return buf;
}

std::string percent(double ratio, int digits)
{
    return fixed(ratio * 100.0, digits) + "%";
}

std::string speedup_percent(double pct, int digits)
{
    return fixed(pct, digits) + "%";
}

std::string with_commas(long long v)
{
    const bool neg = v < 0;
    unsigned long long u = neg ? static_cast<unsigned long long>(-(v + 1)) + 1ULL
                               : static_cast<unsigned long long>(v);
    std::string digits = std::to_string(u);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    if (neg)
        out.push_back('-');
    return {out.rbegin(), out.rend()};
}

}  // namespace lycos::util
