// Aligned plain-text table printer used by the benchmark harnesses to
// regenerate the paper's tables in a readable form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lycos::util {

/// Column alignment for Table_printer.
enum class Align { left, right };

/// Collects rows of strings and prints them with per-column padding.
///
/// Usage:
///     Table_printer t({"Example", "Lines", "SU"});
///     t.add_row({"hal", "61", "4173%"});
///     t.print(std::cout);
class Table_printer {
public:
    /// Construct with header cells; every row must have the same arity.
    explicit Table_printer(std::vector<std::string> header);

    /// Set the alignment of column `col` (default: left for the first
    /// column, right for all others).
    void set_align(std::size_t col, Align a);

    /// Append one data row.  Throws std::invalid_argument on arity
    /// mismatch.
    void add_row(std::vector<std::string> row);

    /// Append a horizontal separator line at the current position.
    void add_separator();

    /// Number of data rows added so far (separators excluded).
    std::size_t row_count() const { return n_data_rows_; }

    /// Render the table to `os`.
    void print(std::ostream& os) const;

    /// Render the table to a string (convenience for tests).
    std::string str() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;  // empty row == separator
    std::vector<Align> align_;
    std::size_t n_data_rows_ = 0;
};

}  // namespace lycos::util
