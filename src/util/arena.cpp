#include "util/arena.hpp"

#include <cstring>
#include <new>

namespace lycos::util {

Arena::~Arena() {
    for (const Block& b : blocks_) {
        ::operator delete(b.base, std::align_val_t{k_align});
    }
}

void* Arena::alloc(std::size_t bytes) {
    if (bytes == 0) bytes = k_align;
    bytes = (bytes + k_align - 1) & ~(k_align - 1);
    if (blocks_.empty() ||
        blocks_.back().size - blocks_.back().used < bytes) {
        // Geometric block growth keeps the block count logarithmic in
        // total footprint, so big row buffers stay contiguous.
        std::size_t size = blocks_.empty() ? k_min_block
                                           : blocks_.back().size * 2;
        if (size < bytes) size = bytes;
        char* base = static_cast<char*>(
            ::operator new(size, std::align_val_t{k_align}));
        // First touch: commit the pages from the allocating (worker)
        // thread so they land on its NUMA node.
        std::memset(base, 0, size);
        blocks_.push_back(Block{base, size, 0});
        bytes_reserved_ += size;
    }
    Block& b = blocks_.back();
    void* p = b.base + b.used;
    b.used += bytes;
    bytes_allocated_ += bytes;
    return p;
}

}  // namespace lycos::util
