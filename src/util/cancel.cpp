#include "util/cancel.hpp"

#include <new>

namespace lycos::util {

std::string to_string(Solve_status status)
{
    switch (status) {
    case Solve_status::complete:
        return "complete";
    case Solve_status::deadline:
        return "deadline";
    case Solve_status::budget:
        return "budget";
    case Solve_status::cancelled:
        return "cancelled";
    }
    return "unknown";
}

Fault_injector Fault_injector::from_seed(std::uint64_t seed,
                                         std::uint64_t n_units)
{
    Fault_injector fault;
    if (n_units == 0)
        return fault;
    // splitmix64: a full-period mix so nearby seeds land on spread-out
    // cut points.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    fault.trip_at = z % n_units;
    return fault;
}

Fault_injector Fault_injector::alloc_from_seed(std::uint64_t seed,
                                               std::uint64_t n_units)
{
    Fault_injector fault;
    if (n_units == 0)
        return fault;
    // Same mix as from_seed, domain-separated so the two plans for one
    // seed land on independent units.
    std::uint64_t z = ~seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    fault.alloc_failure_at = z % n_units;
    return fault;
}

struct Cancel_token::State {
    // 0 encodes "not tripped"; otherwise holds a Solve_status reason.
    // First writer wins via compare-exchange, so status() reports the
    // condition that actually tripped first.
    std::atomic<std::uint8_t> reason{0};

    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};

    std::uint64_t max_evals = 0;
    std::uint64_t max_dp_cells = 0;
    std::atomic<std::uint64_t> evals{0};
    std::atomic<std::uint64_t> dp_cells{0};

    Fault_injector fault;

    // Linked external token: its trip is adopted (as cancelled unless
    // it carries its own reason) at the next poll.
    std::shared_ptr<const State> parent;
};

namespace {

constexpr std::uint8_t encode(Solve_status s)
{
    return static_cast<std::uint8_t>(s) + 1;
}

}  // namespace

Cancel_token::Cancel_token() : state_(std::make_shared<State>()) {}

Cancel_token::Cancel_token(double deadline_ms, std::uint64_t max_evals,
                           std::uint64_t max_dp_cells, Fault_injector fault,
                           const Cancel_token* parent)
    : state_(std::make_shared<State>())
{
    if (deadline_ms > 0) {
        state_->has_deadline = true;
        state_->deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(deadline_ms));
    }
    state_->max_evals = max_evals;
    state_->max_dp_cells = max_dp_cells;
    state_->fault = fault;
    if (parent)
        state_->parent = parent->state_;
}

void Cancel_token::trip(Solve_status reason) const
{
    std::uint8_t expected = 0;
    state_->reason.compare_exchange_strong(expected, encode(reason),
                                           std::memory_order_relaxed);
}

bool Cancel_token::tripped() const
{
    if (state_->reason.load(std::memory_order_relaxed) != 0)
        return true;
    if (state_->parent &&
        state_->parent->reason.load(std::memory_order_relaxed) != 0) {
        // Adopt the parent's trip so status() reports it locally.
        const auto r = state_->parent->reason.load(std::memory_order_relaxed);
        std::uint8_t expected = 0;
        state_->reason.compare_exchange_strong(expected, r,
                                               std::memory_order_relaxed);
        return true;
    }
    return false;
}

bool Cancel_token::stop() const
{
    if (tripped())
        return true;
    if (state_->has_deadline &&
        std::chrono::steady_clock::now() >= state_->deadline) {
        trip(Solve_status::deadline);
        return true;
    }
    return false;
}

bool Cancel_token::admit(std::uint64_t unit) const
{
    // The injected cut first: a pure predicate on the unit index, so
    // the admitted set is identical on every thread count.
    if (unit == state_->fault.alloc_failure_at)
        throw std::bad_alloc();
    if (unit >= state_->fault.trip_at)
        return false;
    return !tripped();
}

void Cancel_token::charge_evals(std::uint64_t n) const
{
    if (state_->max_evals == 0)
        return;
    const auto total =
        state_->evals.fetch_add(n, std::memory_order_relaxed) + n;
    if (total > state_->max_evals)
        trip(Solve_status::budget);
}

void Cancel_token::charge_dp_cells(std::uint64_t n) const
{
    if (state_->max_dp_cells == 0)
        return;
    const auto total =
        state_->dp_cells.fetch_add(n, std::memory_order_relaxed) + n;
    if (total > state_->max_dp_cells)
        trip(Solve_status::budget);
}

void Cancel_token::request_cancel() const
{
    trip(Solve_status::cancelled);
}

Solve_status Cancel_token::status() const
{
    // tripped() also adopts a parent trip into the local reason.
    if (!tripped())
        return Solve_status::complete;
    const auto r = state_->reason.load(std::memory_order_relaxed);
    return static_cast<Solve_status>(r - 1);
}

}  // namespace lycos::util
