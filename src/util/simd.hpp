// Runtime-dispatched SIMD kernel layer for the DP store kernels.
//
// The PACE value sweeps are rows of *pure stores*: every destination
// cell has exactly one source cell, combined with one add and one max
// per lane.  Those rows vectorize without changing a single bit —
// vaddpd/vmaxpd apply the identical IEEE add and the identical
// max-with-tie-to-second-operand per lane that the scalar kernels
// spell out — so the SIMD kernels are bit-identical to the scalar
// ones by construction (values AND the parent comparisons the traced
// sweep derives from them), not merely numerically close.  The
// randomized equivalence suite in tests/test_simd_kernels.cpp pins
// this.
//
// Dispatch model: each kernel exists once per ISA level in a
// `Kernels` table.  The active table is selected once per process on
// first use (best compiled level the CPU supports); callers grab
// `kernels()` at the top of a sweep and call through it, so the
// per-row cost is one predictable indirect call.  The scalar table is
// always built — LYCOS_DISABLE_SIMD (CMake option, or a compiler
// without target("avx2") support) compiles nothing else — and
// `force_isa` clamps the selection downward for A/B runs
// (lycos_cli --no-simd) and for the equivalence tests.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lycos::util::simd {

/// Kernel instruction-set levels, in increasing order.
enum class Isa {
    scalar,
    avx2,
};

/// Sentinel key multi_shift_lane writes for states whose shifted a1
/// overflows its cap: larger than every valid (a0 << 32 | a1) key, so
/// the dominance merge skips it without a validity side-channel.
inline constexpr std::uint64_t k_invalid_key = ~std::uint64_t{0};

/// One table of kernel entry points per ISA level.  All tables have
/// identical semantics bit for bit; only the speed differs.
struct Kernels {
    /// Single-ASIC value-sweep row, software lane over `n` (area,
    /// side) pairs:
    ///   nxt[2a]   = cur[2a] > cur[2a+1] ? cur[2a] : cur[2a+1]
    ///   nxt[2a+1] = -inf
    void (*pace_row_sw)(const double* cur, double* nxt, std::size_t n);

    /// Hardware lane over `n` pairs, destination pre-shifted by the
    /// BSB's quantized area (out = nxt + qa * 2); even slots of `out`
    /// are preserved:
    ///   c0 = cur[2a] + gain; c1 = cur[2a+1] + gain_save
    ///   out[2a+1] = c0 > c1 ? c0 : c1
    void (*pace_row_hw)(const double* cur, double* out, std::size_t n,
                        double gain, double gain_save);

    /// Traceback parents for one destination lane over `n` pairs:
    ///   parent[a] = (cur[2a+1] + add1) > (cur[2a] + add0) ? 1 : 0
    /// (add0 = add1 = 0 reproduces the software lane's v1 > v0 test;
    /// add0 = gain, add1 = gain_save the hardware lane's c1 > c0).
    void (*pace_row_parent)(const double* cur, std::uint8_t* parent,
                            std::size_t n, double add0, double add1);

    /// Multi-ASIC dominance-merge scan: shift one SoA source lane by
    /// this row's quantized areas and pre-add its gain, producing the
    /// packed keys and values the 3-way merge consumes.
    ///   key[i] = (a0[i] + da0) << 32 | (a1[i] + da1)
    ///   val[i] = value[i] + add
    /// Entries whose shifted a1 exceeds cap1 get key = k_invalid_key
    /// (skipped singles); the scan stops at the first entry whose
    /// shifted a0 exceeds cap0 (a0 ascending input: the rest of the
    /// lane is dead too) and returns the number of entries written.
    std::size_t (*multi_shift_lane)(const std::int32_t* a0,
                                    const std::int32_t* a1,
                                    const double* value, std::size_t n,
                                    std::int32_t da0, std::int32_t da1,
                                    double add, std::int32_t cap0,
                                    std::int32_t cap1, std::uint64_t* key,
                                    double* val);

    /// Max over `n` contiguous doubles (-inf for n = 0) — the blocked
    /// prefix-max's streaming block scan.  Max is order-independent
    /// over non-NaN inputs, so every table returns the same value.
    double (*max_reduce)(const double* p, std::size_t n);
};

/// The active kernel table.  Selected once per process on first call
/// (the best compiled level the running CPU supports), downgradable
/// via force_isa; grab the reference once per sweep.
const Kernels& kernels();

/// A specific level's table; levels above best_isa() fall back to the
/// best available one.  The bench harness times scalar() against the
/// active table without flipping process-wide state.
const Kernels& kernels(Isa isa);

/// The level `kernels()` currently dispatches to.
Isa active_isa();

/// The best level this build + CPU can run (scalar when compiled with
/// LYCOS_DISABLE_SIMD or on a CPU without AVX2).
Isa best_isa();

/// Clamp dispatch to min(isa, best_isa()) — for scalar A/B runs
/// (lycos_cli --no-simd) and the scalar-vs-SIMD equivalence tests.
/// Results are bit-identical at every level; only speed changes.
void force_isa(Isa isa);

/// "scalar" / "avx2".
const char* isa_name(Isa isa);

}  // namespace lycos::util::simd
