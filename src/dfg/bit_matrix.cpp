#include "dfg/bit_matrix.hpp"

#include <bit>

namespace lycos::dfg {

Bit_matrix::Bit_matrix(std::size_t n)
    : n_(n), stride_((n + 63) / 64), words_(n * stride_, 0)
{
}

void Bit_matrix::or_row_into(std::size_t src, std::size_t dst)
{
    for (std::size_t w = 0; w < stride_; ++w)
        words_[dst * stride_ + w] |= words_[src * stride_ + w];
}

std::size_t Bit_matrix::row_count(std::size_t row) const
{
    std::size_t count = 0;
    for (std::size_t w = 0; w < stride_; ++w)
        count += static_cast<std::size_t>(
            std::popcount(words_[row * stride_ + w]));
    return count;
}

}  // namespace lycos::dfg
