#include "dfg/dot.hpp"

#include <ostream>
#include <sstream>

namespace lycos::dfg {

namespace {

/// Escape double quotes for DOT string literals.
std::string escape(std::string_view text)
{
    std::string out;
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

}  // namespace

void write_dot(std::ostream& os, const Dfg& g, std::string_view name)
{
    os << "digraph \"" << escape(name) << "\" {\n";
    os << "  rankdir=TB;\n";
    os << "  node [shape=ellipse, fontsize=10];\n";

    for (std::size_t i = 0; i < g.size(); ++i) {
        const auto& op = g.op(static_cast<Op_id>(i));
        os << "  n" << i << " [label=\"" << hw::to_string(op.kind);
        if (!op.name.empty())
            os << "\\n" << escape(op.name);
        os << "\"];\n";
    }
    for (std::size_t i = 0; i < g.size(); ++i)
        for (auto s : g.succs(static_cast<Op_id>(i)))
            os << "  n" << i << " -> n" << s << ";\n";

    for (std::size_t i = 0; i < g.live_ins().size(); ++i)
        os << "  in" << i << " [label=\"" << escape(g.live_ins()[i])
           << "\", shape=plaintext, style=dashed];\n";
    for (std::size_t i = 0; i < g.live_outs().size(); ++i)
        os << "  out" << i << " [label=\"" << escape(g.live_outs()[i])
           << "\", shape=plaintext, style=dashed];\n";

    os << "}\n";
}

std::string to_dot(const Dfg& g, std::string_view name)
{
    std::ostringstream os;
    write_dot(os, g, name);
    return os.str();
}

}  // namespace lycos::dfg
