// Square boolean matrix with bit-packed rows.
//
// Used for the transitive-successor relation Succ(i) of Definition 2:
// row i holds the set of all (direct and indirect) successors of
// operation i, so the FURO computation can test "j in Succ(i)" in O(1).
#pragma once

#include <cstdint>
#include <vector>

namespace lycos::dfg {

/// n-by-n boolean matrix; rows are packed into 64-bit words.
class Bit_matrix {
public:
    Bit_matrix() = default;

    /// All-false n-by-n matrix.
    explicit Bit_matrix(std::size_t n);

    std::size_t size() const { return n_; }

    bool get(std::size_t row, std::size_t col) const
    {
        return (words_[row * stride_ + col / 64] >> (col % 64)) & 1U;
    }

    void set(std::size_t row, std::size_t col, bool value = true)
    {
        const std::uint64_t mask = std::uint64_t{1} << (col % 64);
        auto& w = words_[row * stride_ + col / 64];
        if (value)
            w |= mask;
        else
            w &= ~mask;
    }

    /// row |= other row (set union); rows must belong to this matrix.
    void or_row_into(std::size_t src, std::size_t dst);

    /// Number of true cells in `row`.
    std::size_t row_count(std::size_t row) const;

    friend bool operator==(const Bit_matrix&, const Bit_matrix&) = default;

private:
    std::size_t n_ = 0;
    std::size_t stride_ = 0;  // words per row
    std::vector<std::uint64_t> words_;
};

}  // namespace lycos::dfg
