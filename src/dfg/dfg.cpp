#include "dfg/dfg.hpp"

#include <algorithm>
#include <stdexcept>

namespace lycos::dfg {

Op_id Dfg::add_op(hw::Op_kind kind, std::string_view name)
{
    ops_.push_back(Op{kind, std::string(name)});
    preds_.emplace_back();
    succs_.emplace_back();
    return static_cast<Op_id>(ops_.size() - 1);
}

void Dfg::add_edge(Op_id producer, Op_id consumer)
{
    if (producer < 0 || consumer < 0 ||
        static_cast<std::size_t>(producer) >= ops_.size() ||
        static_cast<std::size_t>(consumer) >= ops_.size())
        throw std::out_of_range("Dfg::add_edge: bad op id");
    if (producer == consumer)
        throw std::invalid_argument("Dfg::add_edge: self edge");
    auto& s = succs_[static_cast<std::size_t>(producer)];
    if (std::find(s.begin(), s.end(), consumer) != s.end())
        return;  // duplicate edge, keep graph simple
    s.push_back(consumer);
    preds_[static_cast<std::size_t>(consumer)].push_back(producer);
}

void Dfg::add_live_in(std::string name)
{
    if (std::find(live_ins_.begin(), live_ins_.end(), name) == live_ins_.end())
        live_ins_.push_back(std::move(name));
}

void Dfg::add_live_out(std::string name)
{
    if (std::find(live_outs_.begin(), live_outs_.end(), name) ==
        live_outs_.end())
        live_outs_.push_back(std::move(name));
}

int Dfg::count(hw::Op_kind k) const
{
    int n = 0;
    for (const auto& o : ops_)
        if (o.kind == k)
            ++n;
    return n;
}

hw::Per_op<int> Dfg::kind_histogram() const
{
    hw::Per_op<int> h;
    for (const auto& o : ops_)
        ++h[o.kind];
    return h;
}

hw::Op_set Dfg::used_ops() const
{
    hw::Op_set s;
    for (const auto& o : ops_)
        s.insert(o.kind);
    return s;
}

std::vector<Op_id> Dfg::topo_order() const
{
    const auto n = ops_.size();
    std::vector<int> in_degree(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        in_degree[i] = static_cast<int>(preds_[i].size());

    std::vector<Op_id> order;
    order.reserve(n);
    std::vector<Op_id> ready;
    for (std::size_t i = 0; i < n; ++i)
        if (in_degree[i] == 0)
            ready.push_back(static_cast<Op_id>(i));

    // Pop the smallest id first so the order is deterministic.
    while (!ready.empty()) {
        auto it = std::min_element(ready.begin(), ready.end());
        const Op_id v = *it;
        *it = ready.back();
        ready.pop_back();
        order.push_back(v);
        for (Op_id s : succs_[static_cast<std::size_t>(v)])
            if (--in_degree[static_cast<std::size_t>(s)] == 0)
                ready.push_back(s);
    }

    if (order.size() != n)
        throw std::logic_error("Dfg::topo_order: graph has a cycle");
    return order;
}

bool Dfg::is_dag() const
{
    try {
        (void)topo_order();
        return true;
    }
    catch (const std::logic_error&) {
        return false;
    }
}

Bit_matrix Dfg::transitive_successors() const
{
    const auto order = topo_order();  // throws on cycles
    Bit_matrix succ(ops_.size());
    // Walk in reverse topological order: when processing v, the rows
    // of all its direct successors are already complete.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const Op_id v = *it;
        for (Op_id s : succs_[static_cast<std::size_t>(v)]) {
            succ.set(static_cast<std::size_t>(v), static_cast<std::size_t>(s));
            succ.or_row_into(static_cast<std::size_t>(s),
                             static_cast<std::size_t>(v));
        }
    }
    return succ;
}

int Dfg::critical_path_ops() const
{
    const auto order = topo_order();
    std::vector<int> depth(ops_.size(), 1);
    int longest = ops_.empty() ? 0 : 1;
    for (Op_id v : order) {
        for (Op_id s : succs_[static_cast<std::size_t>(v)]) {
            depth[static_cast<std::size_t>(s)] =
                std::max(depth[static_cast<std::size_t>(s)],
                         depth[static_cast<std::size_t>(v)] + 1);
            longest = std::max(longest, depth[static_cast<std::size_t>(s)]);
        }
    }
    return longest;
}

}  // namespace lycos::dfg
