// Graphviz (DOT) export for data-flow graphs.
//
// Debugging aid: renders a DFG with one node per operation (labelled
// kind plus optional name), dashed entries for live-ins and live-outs,
// and solid edges for data dependencies.  `dot -Tpng` turns the output
// into the pictures of Figure 4/5 style.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "dfg/dfg.hpp"

namespace lycos::dfg {

/// Write `g` in DOT syntax to `os` as a digraph named `name`.
void write_dot(std::ostream& os, const Dfg& g,
               std::string_view name = "dfg");

/// Convenience: DOT text as a string.
std::string to_dot(const Dfg& g, std::string_view name = "dfg");

}  // namespace lycos::dfg
