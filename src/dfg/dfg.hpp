// Data-flow graphs: the computation inside a leaf BSB.
//
// A DFG is a DAG whose nodes are operations (Op_kind) and whose edges
// are data dependencies (producer -> consumer).  Values flowing into
// the BSB from outside are its live-ins (the read set), values it
// produces for later BSBs are its live-outs (the write set); both are
// used by the HW/SW communication estimate.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dfg/bit_matrix.hpp"
#include "hw/op.hpp"

namespace lycos::dfg {

/// Index of an operation inside its Dfg.
using Op_id = int;

/// One operation node.
struct Op {
    hw::Op_kind kind;
    std::string name;  ///< optional label, useful in tests and dumps
};

/// A data-flow graph.  Edges must form a DAG; validate() checks this.
class Dfg {
public:
    Dfg() = default;

    /// Add an operation node; returns its id (ids are dense from 0).
    Op_id add_op(hw::Op_kind kind, std::string_view name = {});

    /// Add the data dependency `producer -> consumer`.  Self-edges are
    /// rejected; duplicate edges are ignored.
    void add_edge(Op_id producer, Op_id consumer);

    /// Declare a named value flowing into this BSB from outside.
    void add_live_in(std::string name);

    /// Declare a named value this BSB produces for the outside.
    void add_live_out(std::string name);

    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }

    const Op& op(Op_id id) const { return ops_.at(static_cast<std::size_t>(id)); }

    std::span<const Op_id> preds(Op_id id) const
    {
        return preds_.at(static_cast<std::size_t>(id));
    }
    std::span<const Op_id> succs(Op_id id) const
    {
        return succs_.at(static_cast<std::size_t>(id));
    }

    std::span<const std::string> live_ins() const { return live_ins_; }
    std::span<const std::string> live_outs() const { return live_outs_; }

    /// Number of operations of kind `k`.
    int count(hw::Op_kind k) const;

    /// Per-kind operation counts.
    hw::Per_op<int> kind_histogram() const;

    /// Set of kinds that occur at least once.
    hw::Op_set used_ops() const;

    /// Topological order of all operations.  Throws std::logic_error
    /// if the graph has a cycle.
    std::vector<Op_id> topo_order() const;

    /// True iff the edge relation is acyclic.
    bool is_dag() const;

    /// Transitive successor matrix: row i is Succ(i) of Definition 2,
    /// the set of all operations reachable from i along data
    /// dependencies.  Throws std::logic_error on a cyclic graph.
    Bit_matrix transitive_successors() const;

    /// Length (in operations, not cycles) of the longest dependency
    /// chain; 0 for an empty graph.
    int critical_path_ops() const;

private:
    std::vector<Op> ops_;
    std::vector<std::vector<Op_id>> preds_;
    std::vector<std::vector<Op_id>> succs_;
    std::vector<std::string> live_ins_;
    std::vector<std::string> live_outs_;
};

}  // namespace lycos::dfg
