#include "estimate/hw_time.hpp"

namespace lycos::estimate {

std::optional<int> hw_cycles(const dfg::Dfg& g, const hw::Hw_library& lib,
                             std::span<const int> counts)
{
    const auto sched = sched::list_schedule(g, lib, counts);
    if (!sched.feasible)
        return std::nullopt;
    return sched.length;
}

std::optional<double> hw_time_ns(const dfg::Dfg& g, const hw::Hw_library& lib,
                                 std::span<const int> counts,
                                 const hw::Asic_model& asic)
{
    const auto cycles = hw_cycles(g, lib, counts);
    if (!cycles)
        return std::nullopt;
    return *cycles * asic.cycle_ns();
}

}  // namespace lycos::estimate
