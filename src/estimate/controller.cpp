#include "estimate/controller.hpp"

#include <cmath>
#include <stdexcept>

namespace lycos::estimate {

double controller_area(int n_states, const hw::Gate_areas& gates)
{
    if (n_states < 1)
        throw std::invalid_argument("controller_area: n_states < 1");
    const double n = n_states;
    return gates.reg + gates.and2 + gates.or2 +
           std::log2(n) * gates.reg +
           (n - 1.0) * (gates.inv + 2.0 * gates.and2);
}

}  // namespace lycos::estimate
