#include "estimate/sw_time.hpp"

namespace lycos::estimate {

long long sw_cycles(const dfg::Dfg& g, const hw::Processor_model& cpu)
{
    long long cycles = 0;
    for (std::size_t i = 0; i < g.size(); ++i)
        cycles += cpu.cycles_per_op[g.op(static_cast<dfg::Op_id>(i)).kind];
    return cycles;
}

double sw_time_ns(const dfg::Dfg& g, const hw::Processor_model& cpu)
{
    return static_cast<double>(sw_cycles(g, cpu)) * 1e3 / cpu.clock_mhz;
}

double total_sw_time_ns(const bsb::Bsb& b, const hw::Processor_model& cpu)
{
    return sw_time_ns(b.graph, cpu) * b.profile;
}

}  // namespace lycos::estimate
