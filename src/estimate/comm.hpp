// HW/SW communication time estimation.
//
// The target architecture assumes a memory-mapped communication scheme
// (§1).  A BSB executing in hardware must receive its read set (live-in
// values) from and deliver its write set (live-out values) to the
// shared memory; each value costs one bus word transfer.  Two
// *adjacent* BSBs that are both in hardware hand shared values over
// directly in the data-path and save the two transfers (write + read)
// those values would otherwise cost — this is the adjacency effect the
// PACE dynamic program exploits.
#pragma once

#include "bsb/bsb.hpp"
#include "hw/target.hpp"

namespace lycos::estimate {

/// Words transferred for one hardware execution of `b` (|read set| +
/// |write set|).
int comm_words(const bsb::Bsb& b);

/// Nanoseconds of bus traffic for one hardware execution of `b`.
double comm_time_ns(const bsb::Bsb& b, const hw::Bus_model& bus);

/// Number of values produced by `a` and consumed by `b` (live-out of
/// `a` intersected with live-in of `b`): the values that stay in the
/// data-path when both BSBs are in hardware.
int shared_values(const bsb::Bsb& a, const bsb::Bsb& b);

/// Profile-weighted nanoseconds saved on the bus when adjacent BSBs
/// `a` (earlier) and `b` (later) are both in hardware: each shared
/// value saves one write by `a` and one read by `b` per co-executed
/// iteration (min of the profiles).
double adjacency_saving_ns(const bsb::Bsb& a, const bsb::Bsb& b,
                           const hw::Bus_model& bus);

}  // namespace lycos::estimate
