// Software execution time estimation.
//
// "In software, operations are executed serially" (§2): the software
// time of one BSB execution is the sum over its operations of the
// processor's per-operation cycle counts, converted to nanoseconds by
// the processor clock.
#pragma once

#include "bsb/bsb.hpp"
#include "hw/target.hpp"

namespace lycos::estimate {

/// Processor cycles for one execution of the BSB's DFG.
long long sw_cycles(const dfg::Dfg& g, const hw::Processor_model& cpu);

/// Nanoseconds for one execution of the BSB's DFG.
double sw_time_ns(const dfg::Dfg& g, const hw::Processor_model& cpu);

/// Profile-weighted nanoseconds over the whole application run.
double total_sw_time_ns(const bsb::Bsb& b, const hw::Processor_model& cpu);

}  // namespace lycos::estimate
