// Hardware execution time estimation.
//
// Hardware exploits the parallelism between operations in a BSB (§2):
// the hardware time of one BSB execution is the length of its
// resource-constrained list schedule under the candidate data-path
// allocation, converted to nanoseconds by the ASIC clock.  A BSB whose
// operations the allocation cannot cover is infeasible in hardware.
#pragma once

#include <optional>
#include <span>

#include "bsb/bsb.hpp"
#include "hw/resource.hpp"
#include "hw/target.hpp"
#include "sched/list_scheduler.hpp"

namespace lycos::estimate {

/// ASIC cycles for one execution of `g` with `counts[r]` instances of
/// each library resource type; nullopt if some operation kind of `g`
/// has no allocated executor.
std::optional<int> hw_cycles(const dfg::Dfg& g, const hw::Hw_library& lib,
                             std::span<const int> counts);

/// Nanoseconds for one execution; nullopt if infeasible.
std::optional<double> hw_time_ns(const dfg::Dfg& g, const hw::Hw_library& lib,
                                 std::span<const int> counts,
                                 const hw::Asic_model& asic);

}  // namespace lycos::estimate
