// Controller area estimation (§4.2, from Knudsen's thesis [6]).
//
// Each BSB moved to hardware needs a finite-state-machine controller.
// The number of states N is estimated as the schedule length; the
// controller needs log2(N) state register bits plus decode logic
// proportional to N:
//
//     ECA = A_R + A_AG + A_OG + log2(N)*A_R + (N-1)*(A_IG + 2*A_AG)
//
// The pre-allocation algorithm uses the *optimistic* ASAP length
// (there is no allocation yet to drive a list schedule — "the
// allocation is what we are looking for").  §5.1 studies the effect of
// this optimism; `real_controller_area` plugs in the list-schedule
// length instead.
#pragma once

#include "hw/technology.hpp"

namespace lycos::estimate {

/// The ECA formula for a controller with `n_states` states (>= 1).
double controller_area(int n_states, const hw::Gate_areas& gates);

/// Estimated Controller Area: optimistic, `asap_length` states.
inline double eca(int asap_length, const hw::Gate_areas& gates)
{
    return controller_area(asap_length, gates);
}

/// Post-scheduling controller area: `list_length` states as produced
/// by the resource-constrained list schedule (>= ASAP length).
inline double real_controller_area(int list_length, const hw::Gate_areas& gates)
{
    return controller_area(list_length, gates);
}

}  // namespace lycos::estimate
