// Storage and interconnect estimation (the paper's third future-work
// direction, §6: "incorporating interconnect and storage size
// estimates would be interesting to look into").
//
// The base flow ignores both (Table 1's caption: "interconnect and
// storage are ignored in these figures").  This module supplies the
// missing estimates so their effect can be studied:
//
//   * storage: the number of data-path registers is the peak number of
//     simultaneously-live values in the BSB's schedule (a value lives
//     from the cycle its producer finishes until its last consumer
//     starts; live-ins from cycle 1, live-outs to the end);
//   * interconnect: every resource instance executing more than one
//     operation needs input multiplexers; each extra operation bound
//     to an instance adds (2 operand ports worth of) mux inputs.
#pragma once

#include "dfg/dfg.hpp"
#include "hw/resource.hpp"
#include "sched/list_scheduler.hpp"

namespace lycos::estimate {

/// Datapath storage/interconnect technology parameters.
struct Storage_model {
    double reg_area = 96.0;        ///< one data-path word register
    double mux_input_area = 12.0;  ///< one multiplexer input (word wide)
};

/// Peak number of simultaneously live values of `g` under `sched`
/// (which must be feasible).  Includes live-ins and live-outs.
int max_live_values(const dfg::Dfg& g, const hw::Hw_library& lib,
                    const sched::List_schedule& sched);

/// Register area for one BSB: max_live_values * reg_area.
double storage_area(const dfg::Dfg& g, const hw::Hw_library& lib,
                    const sched::List_schedule& sched,
                    const Storage_model& model);

/// Multiplexer area for one BSB: every resource instance with k > 1
/// bound operations contributes 2*(k-1) mux inputs.
double interconnect_area(const dfg::Dfg& g, const hw::Hw_library& lib,
                         const sched::List_schedule& sched,
                         const Storage_model& model);

}  // namespace lycos::estimate
