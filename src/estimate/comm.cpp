#include "estimate/comm.hpp"

#include <algorithm>
#include <string>

namespace lycos::estimate {

int comm_words(const bsb::Bsb& b)
{
    return static_cast<int>(b.graph.live_ins().size() +
                            b.graph.live_outs().size());
}

double comm_time_ns(const bsb::Bsb& b, const hw::Bus_model& bus)
{
    return comm_words(b) * bus.ns_per_word;
}

int shared_values(const bsb::Bsb& a, const bsb::Bsb& b)
{
    int n = 0;
    for (const auto& out : a.graph.live_outs()) {
        const auto ins = b.graph.live_ins();
        if (std::find(ins.begin(), ins.end(), out) != ins.end())
            ++n;
    }
    return n;
}

double adjacency_saving_ns(const bsb::Bsb& a, const bsb::Bsb& b,
                           const hw::Bus_model& bus)
{
    const double co_runs = std::min(a.profile, b.profile);
    return 2.0 * shared_values(a, b) * bus.ns_per_word * co_runs;
}

}  // namespace lycos::estimate
