#include "estimate/storage.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

namespace lycos::estimate {

int max_live_values(const dfg::Dfg& g, const hw::Hw_library& lib,
                    const sched::List_schedule& sched)
{
    if (!sched.feasible)
        throw std::invalid_argument("max_live_values: infeasible schedule");
    if (g.empty())
        return static_cast<int>(g.live_ins().size() + g.live_outs().size());

    const int horizon = sched.length + 1;
    // delta sweep over cycles 1..horizon
    std::vector<int> delta(static_cast<std::size_t>(horizon) + 2, 0);

    auto add_interval = [&](int from, int to) {
        // inclusive [from, to]; clamp into [1, horizon]
        from = std::max(1, from);
        to = std::min(horizon, to);
        if (from > to)
            return;
        delta[static_cast<std::size_t>(from)] += 1;
        delta[static_cast<std::size_t>(to) + 1] -= 1;
    };

    // Values produced by operations: live from the producer's finish
    // cycle until the start of the last consumer (or, for live-out
    // producers, the end of the schedule).
    for (std::size_t v = 0; v < g.size(); ++v) {
        const auto id = static_cast<dfg::Op_id>(v);
        const int lat = lib[sched.resource[v]].latency_cycles;
        const int born = sched.start[v] + lat - 1;
        int last_use = born;
        for (auto s : g.succs(id))
            last_use = std::max(last_use,
                                sched.start[static_cast<std::size_t>(s)]);
        // Conservatively keep sink values (no consumers) to the end:
        // they are the BSB's results.
        if (g.succs(id).empty())
            last_use = horizon;
        add_interval(born, last_use);
    }

    // Live-ins are available from the start until the schedule ends
    // (the conservative assumption without per-value use information).
    for (std::size_t i = 0; i < g.live_ins().size(); ++i)
        add_interval(1, horizon);

    int level = 0;
    int peak = 0;
    for (int c = 1; c <= horizon; ++c) {
        level += delta[static_cast<std::size_t>(c)];
        peak = std::max(peak, level);
    }
    return peak;
}

double storage_area(const dfg::Dfg& g, const hw::Hw_library& lib,
                    const sched::List_schedule& sched,
                    const Storage_model& model)
{
    return max_live_values(g, lib, sched) * model.reg_area;
}

double interconnect_area(const dfg::Dfg& g, const hw::Hw_library& lib,
                         const sched::List_schedule& sched,
                         const Storage_model& model)
{
    if (!sched.feasible)
        throw std::invalid_argument("interconnect_area: infeasible schedule");
    (void)lib;
    // Count operations bound to each (resource type, instance slot).
    // The list scheduler reports only the type; approximate instance
    // sharing by the per-type op count divided by nothing — i.e. each
    // op beyond the first on a type contributes mux inputs.  This is
    // conservative for multi-instance allocations and exact for one
    // instance per type.
    std::map<int, int> ops_per_type;
    for (std::size_t v = 0; v < g.size(); ++v)
        ++ops_per_type[sched.resource[v]];

    double area = 0.0;
    for (const auto& [type, count] : ops_per_type)
        if (count > 1)
            area += 2.0 * (count - 1) * model.mux_input_area;
    return area;
}

}  // namespace lycos::estimate
