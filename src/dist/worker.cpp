// The distributed-search worker (src/dist/dist.hpp).
//
// Two threads: a reader demultiplexing the socket — incumbent
// broadcasts tighten the worker's util::Shared_bound immediately, so
// the bound sharpens *mid-solve*; job/lease/done queue for the main
// thread — and the main thread running ordinary windowed solves on
// one Session reused across leases (the warm Eval_cache is why later
// leases are cheaper; results are bit-identical either way).
//
// Chaos mode: when the job says chaos_die, the worker arms a
// Fault_injector cut half-way into its first lease, does the real
// partial work up to it, then closes the socket without reporting —
// the observable worker death the coordinator's reassignment path and
// the CI chaos leg exercise.
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dist/dist.hpp"
#include "dist/wire.hpp"
#include "util/cancel.hpp"
#include "util/net.hpp"

namespace lycos::dist {

namespace {

/// State shared between the reader thread and the solving thread.
struct Mailbox {
    util::Shared_bound bound;
    std::atomic<long long> incumbents_applied{0};

    std::mutex mu;
    std::condition_variable cv;
    std::deque<Unframed> queue;  ///< job / lease / done, in order
    bool closed = false;

    void push(Unframed msg)
    {
        {
            std::lock_guard lock(mu);
            queue.push_back(std::move(msg));
        }
        cv.notify_one();
    }

    void close()
    {
        {
            std::lock_guard lock(mu);
            closed = true;
        }
        cv.notify_one();
    }

    /// Next control message; nullopt = connection closed and drained.
    std::optional<Unframed> pop()
    {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return !queue.empty() || closed; });
        if (queue.empty())
            return std::nullopt;
        Unframed msg = std::move(queue.front());
        queue.pop_front();
        return msg;
    }
};

void reader_loop(const util::Fd& fd, Mailbox& box)
{
    std::vector<std::uint8_t> inbuf;
    std::uint8_t buf[16384];
    for (;;) {
        const long n = util::recv_some(fd, buf, sizeof buf);
        if (n <= 0)
            break;
        inbuf.insert(inbuf.end(), buf, buf + n);
        for (;;) {
            Unframed msg;
            const auto st =
                try_unframe(inbuf.data(), inbuf.size(), msg);
            if (st == Unframe_status::need_more)
                break;
            if (st == Unframe_status::corrupt) {
                box.close();
                return;
            }
            inbuf.erase(inbuf.begin(),
                        inbuf.begin() + static_cast<long>(msg.consumed));
            if (msg.type == Msg::incumbent) {
                double time_ns = 0.0;
                if (decode_incumbent(msg.payload, time_ns) &&
                    box.bound.tighten(time_ns))
                    box.incumbents_applied.fetch_add(
                        1, std::memory_order_relaxed);
            }
            else {
                box.push(std::move(msg));
            }
        }
    }
    box.close();
}

Lease_result_msg to_lease_result(std::uint64_t lease_id,
                                 const std::string& strategy,
                                 const solver::Solve_result& r,
                                 long long incumbents_applied)
{
    Lease_result_msg m;
    m.lease_id = lease_id;
    m.have_best = r.have_best;
    if (r.have_best) {
        if (strategy == "multi_asic_bb") {
            m.best_time = r.multi.partition.time_hybrid_ns;
            m.best_area =
                r.multi.datapath_area[0] + r.multi.datapath_area[1];
            m.datapaths = {r.multi.datapaths[0], r.multi.datapaths[1]};
        }
        else {
            m.best_time = r.best.partition.time_hybrid_ns;
            m.best_area = r.best.datapath_area;
            m.datapaths = {r.best.datapath};
        }
    }
    m.n_evaluated = r.n_evaluated;
    m.n_pruned = r.n_pruned;
    m.n_pruned_remote = r.n_pruned_remote;
    m.dp_rows_reused = r.dp_rows_reused;
    m.dp_rows_swept = r.dp_rows_swept;
    m.rows_visited = r.multi.rows_visited;
    m.rows_pruned = r.multi.rows_pruned;
    m.dp_states_swept = r.multi.dp_states_swept;
    m.dp_cells_dense = r.multi.dp_cells_dense;
    m.incumbents_applied = incumbents_applied;
    return m;
}

}  // namespace

int run_worker(const std::string& host, std::uint16_t port,
               const Worker_options& options)
{
    util::Fd fd;
    try {
        fd = util::connect_tcp(
            host, port,
            static_cast<int>(options.connect_timeout_ms));
    }
    catch (const std::exception&) {
        return 1;
    }
    {
        const auto f = frame(Msg::hello, encode_hello());
        if (!util::send_all(fd, f.data(), f.size()))
            return 1;
    }

    Mailbox box;
    std::thread reader([&] { reader_loop(fd, box); });
    // Whatever exit path below: shut the socket so the reader's recv
    // returns, then join.
    struct Join_guard {
        const util::Fd& fd;
        std::thread& t;
        ~Join_guard()
        {
            ::shutdown(fd.get(), SHUT_RDWR);
            if (t.joinable())
                t.join();
        }
    } guard{fd, reader};

    // First control message must be the job.
    auto first = box.pop();
    if (!first.has_value() || first->type != Msg::job)
        return 1;
    Job_msg job;
    if (!decode_job(first->payload, job))
        return 1;

    std::optional<solver::Session> session;
    try {
        session.emplace(job.problem.problem());
    }
    catch (const std::exception&) {
        return 1;  // coordinator sent an invalid problem
    }

    solver::Solve_options base;
    base.n_threads = job.options.n_threads;
    base.use_cache = job.options.use_cache;
    base.use_pruning = job.options.use_pruning;
    base.cache_capacity =
        static_cast<std::size_t>(job.options.cache_capacity);
    if (job.strategy == "multi_asic_bb") {
        solver::Multi_asic_extras extras;
        extras.pair_limit = job.options.pair_limit;
        extras.use_row_bound = job.options.use_row_bound;
        base.extras = extras;
    }
    base.incumbent_bound = &box.bound;

    bool first_lease = true;
    for (;;) {
        auto msg = box.pop();
        if (!msg.has_value())
            return 1;  // connection dropped mid-search
        if (msg->type == Msg::done)
            return 0;
        if (msg->type != Msg::lease)
            return 1;
        Lease_msg lease;
        if (!decode_lease(msg->payload, lease) ||
            lease.end > job.n_units)
            return 1;

        solver::Solve_options opts = base;
        opts.window = {lease.begin, lease.end};
        const bool die = job.chaos_die && first_lease;
        if (die)
            // Trip half-way into the range: the Fault_injector refuses
            // logical units >= trip_at, so the solve does the real
            // work of the first half and stops at a unit boundary.
            opts.fault.trip_at = static_cast<std::uint64_t>(
                lease.begin + std::max<long long>(
                                  1, (lease.end - lease.begin) / 2));
        first_lease = false;

        solver::Solve_result r;
        try {
            r = session->solve(job.strategy, opts);
        }
        catch (const std::exception&) {
            return 1;
        }
        if (die)
            return 0;  // die without reporting: the chaos worker death

        // The worker's own completed leases are real evaluated points
        // too — tightening its bound with them lets later leases prune
        // without waiting for the coordinator's echo.
        if (r.have_best) {
            const double t = job.strategy == "multi_asic_bb"
                                 ? r.multi.partition.time_hybrid_ns
                                 : r.best.partition.time_hybrid_ns;
            box.bound.tighten(t);
        }

        const auto m = to_lease_result(
            lease.lease_id, job.strategy, r,
            box.incumbents_applied.load(std::memory_order_relaxed));
        const auto f = frame(Msg::lease_result, encode_lease_result(m));
        if (!util::send_all(fd, f.data(), f.size()))
            return 1;
    }
}

}  // namespace lycos::dist
