// The distributed-search coordinator (src/dist/dist.hpp).
//
// Single-threaded poll(2) event loop: accepts workers, ships the job,
// streams range leases (one outstanding per worker — which is what
// makes the chaos reassignment count deterministic), folds lease
// results in range order with the strict better_tuple rule, and
// broadcasts strict incumbent improvements.  The winner's full
// Evaluation / two-ASIC partition is *recomputed locally* from the
// reported datapath(s) — deterministic functions of (context,
// allocation), so the result is bitwise what the engine itself would
// have produced — instead of serializing the whole partition.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <poll.h>
#include <stdexcept>
#include <vector>

#include "dist/dist.hpp"
#include "dist/wire.hpp"
#include "search/alloc_space.hpp"
#include "search/evaluate.hpp"
#include "solver/internal.hpp"
#include "util/chunk_range.hpp"
#include "util/net.hpp"
#include "util/timer.hpp"

namespace lycos::dist {

namespace {

using Clock = std::chrono::steady_clock;

struct Worker_conn {
    util::Fd fd;
    std::vector<std::uint8_t> inbuf;
    bool alive = true;
    bool ready = false;  ///< hello received, job sent
    bool has_lease = false;
    std::uint64_t lease_id = 0;
    util::Chunk_range lease;
    Clock::time_point lease_deadline{};
    solver::Dist_worker_stats stats;
};

/// One completed range, however it was solved (a worker lease or the
/// coordinator's local fallback).
struct Range_result {
    Lease_result_msg msg;
};

solver::Multi_asic_extras multi_extras_of(
    const solver::Solve_options& solve)
{
    if (const auto* e =
            std::get_if<solver::Multi_asic_extras>(&solve.extras))
        return *e;
    return {};
}

/// The leased logical-unit count of `strategy` over `session`'s
/// problem: leaf indices for exhaustive_bb, a0 rows for multi_asic_bb
/// — exactly the ranges Solve_options::window accepts.  For multi the
/// axis filter is re-enumerated here with the same arithmetic as the
/// engine (axis sizes are also reported back through `axis_points`).
long long count_units(solver::Session& session,
                      const std::string& strategy,
                      const solver::Solve_options& solve,
                      std::array<long long, 2>& axis_points,
                      long long& pairs_out)
{
    if (strategy == "exhaustive_bb") {
        return session.space_size();
    }
    if (strategy == "multi_asic_bb") {
        const auto& ctx = session.context();
        const auto budgets =
            solver::detail::multi_asic_budgets(session.problem());
        const search::Alloc_space space(ctx.lib,
                                        session.problem().restrictions);
        if (space.size() > (1LL << 22))
            throw std::invalid_argument(
                "solve_distributed: single-ASIC space too large to "
                "enumerate per axis");
        long long f0 = 0;
        long long f1 = 0;
        const double max_budget = std::max(budgets[0], budgets[1]);
        space.for_each(max_budget, [&](const core::Rmap& a) {
            const double area = a.area(ctx.lib);
            if (area <= budgets[0])
                ++f0;
            if (area <= budgets[1])
                ++f1;
            return true;
        });
        axis_points = {f0, f1};
        const long long pairs = f0 * f1;
        pairs_out = pairs;
        const auto extras = multi_extras_of(solve);
        const long long walked = extras.pair_limit > 0
                                     ? std::min(pairs, extras.pair_limit)
                                     : pairs;
        return walked == 0 ? 0 : (walked + f1 - 1) / f1;
    }
    throw std::invalid_argument(
        "solve_distributed: strategy \"" + strategy +
        "\" has no contiguous unit range to lease");
}

/// A local Solve_result (fallback path) viewed as a lease result, so
/// the fold has one shape.
Lease_result_msg to_lease_result(const std::string& strategy,
                                 const solver::Solve_result& r)
{
    Lease_result_msg m;
    m.have_best = r.have_best;
    if (r.have_best) {
        if (strategy == "multi_asic_bb") {
            m.best_time = r.multi.partition.time_hybrid_ns;
            m.best_area =
                r.multi.datapath_area[0] + r.multi.datapath_area[1];
            m.datapaths = {r.multi.datapaths[0], r.multi.datapaths[1]};
        }
        else {
            m.best_time = r.best.partition.time_hybrid_ns;
            m.best_area = r.best.datapath_area;
            m.datapaths = {r.best.datapath};
        }
    }
    m.n_evaluated = r.n_evaluated;
    m.n_pruned = r.n_pruned;
    m.n_pruned_remote = r.n_pruned_remote;
    m.dp_rows_reused = r.dp_rows_reused;
    m.dp_rows_swept = r.dp_rows_swept;
    m.rows_visited = r.multi.rows_visited;
    m.rows_pruned = r.multi.rows_pruned;
    m.dp_states_swept = r.multi.dp_states_swept;
    m.dp_cells_dense = r.multi.dp_cells_dense;
    return m;
}

/// Recompute the winner's full single-ASIC Evaluation from its
/// datapath — the same context pinning the exhaustive engine applies
/// (DP table width fixed to the total ASIC area under an explicit
/// search quantum), so the result is bitwise the engine's own.
void fill_winner_single(solver::Session& session,
                        const solver::Solve_options& solve,
                        const core::Rmap& dp, solver::Solve_result& out)
{
    search::Eval_context run_ctx = session.context();
    if (run_ctx.area_quantum > 0.0)
        run_ctx.dp_table_budget = run_ctx.target.asic.total_area;
    search::Eval_cache* cache =
        solve.use_cache ? &session.cache(solve.cache_capacity) : nullptr;
    out.best = search::evaluate_allocation(run_ctx, dp, cache);
    out.have_best = true;
}

/// Same for the two-ASIC winner: rebuild the pair's combined costs
/// through the cache and rerun the sparse partition DP with the exact
/// options the engine used for that pair.
void fill_winner_multi(solver::Session& session,
                       const solver::Solve_options& solve,
                       const core::Rmap& dp0, const core::Rmap& dp1,
                       solver::Solve_result& out)
{
    const auto& ctx = session.context();
    const auto budgets =
        solver::detail::multi_asic_budgets(session.problem());
    std::optional<search::Eval_cache> local;
    search::Eval_cache& cache =
        solve.use_cache
            ? session.cache(solve.cache_capacity)
            : local.emplace(ctx, solve.cache_capacity,
                            session.invariants());
    std::vector<pace::Bsb_cost> c0;
    std::vector<pace::Bsb_cost> c1;
    cache.costs_for(dp0, c0);
    cache.costs_for(dp1, c1);
    std::vector<pace::Multi_bsb_cost> mcosts(c0.size());
    for (std::size_t k = 0; k < c0.size(); ++k) {
        mcosts[k].t_sw = c0[k].t_sw;
        mcosts[k].hw[0] = c0[k];
        mcosts[k].hw[1] = c1[k];
    }
    const double a0 = dp0.area(ctx.lib);
    const double a1 = dp1.area(ctx.lib);
    pace::Multi_pace_options mo;
    mo.ctrl_area_budgets = {budgets[0] - a0, budgets[1] - a1};
    mo.area_quantum = ctx.area_quantum;
    pace::Multi_pace_workspace mws;
    out.multi.partition = pace::multi_pace_partition(mcosts, mo, &mws);
    out.multi.datapaths = {dp0, dp1};
    out.multi.datapath_area = {a0, a1};
    out.have_best = true;
}

}  // namespace

solver::Solve_result solve_distributed(const solver::Problem& problem,
                                       const Coordinator_options& options)
{
    util::Wall_timer timer;
    if (options.strategy != "exhaustive_bb" &&
        options.strategy != "multi_asic_bb")
        throw std::invalid_argument(
            "solve_distributed: strategy \"" + options.strategy +
            "\" has no contiguous unit range to lease");

    solver::Session session(problem);  // validates; throws on defects
    const bool multi = options.strategy == "multi_asic_bb";
    std::array<long long, 2> axis_points{0, 0};
    long long pairs = 0;
    const long long n_units = count_units(session, options.strategy,
                                          options.solve, axis_points,
                                          pairs);

    solver::Solve_result out;
    out.strategy = options.strategy;
    out.dist.active = true;
    out.dist.n_units = n_units;
    if (multi) {
        out.multi.active = true;
        out.multi.asic_areas =
            solver::detail::multi_asic_budgets(session.problem());
        out.multi.axis_points = axis_points;
        out.space_size = pairs;
        const auto extras = multi_extras_of(options.solve);
        const long long walked =
            extras.pair_limit > 0 ? std::min(pairs, extras.pair_limit)
                                  : pairs;
        out.multi.pairs_skipped = pairs - walked;
    }
    else {
        out.space_size = session.space_size();
    }
    if (n_units == 0) {
        out.seconds = timer.seconds();
        return out;
    }

    // The lease schedule: deterministic contiguous ranges, in order.
    const int workers_hint = std::max(1, options.n_workers);
    long long lease_units = options.lease_units;
    if (lease_units <= 0)
        lease_units = std::max<long long>(
            1, n_units / (8 * static_cast<long long>(workers_hint)));
    std::vector<util::Chunk_range> ranges;
    for (long long b = 0; b < n_units; b += lease_units)
        ranges.push_back({b, std::min(n_units, b + lease_units)});
    std::deque<util::Chunk_range> pending(ranges.begin(), ranges.end());
    std::map<long long, Range_result> results;  // keyed by range begin

    // The job every worker receives.
    Job_msg job;
    job.problem = Problem_blob::from_problem(problem);
    job.strategy = options.strategy;
    job.options.n_threads = options.solve.n_threads;
    job.options.use_cache = options.solve.use_cache;
    job.options.use_pruning = options.solve.use_pruning;
    job.options.cache_capacity = options.solve.cache_capacity;
    {
        const auto extras = multi_extras_of(options.solve);
        job.options.pair_limit = extras.pair_limit;
        job.options.use_row_bound = extras.use_row_bound;
    }
    job.n_units = n_units;
    const std::vector<std::uint8_t> job_frame_plain =
        frame(Msg::job, encode_job(job));
    job.chaos_die = true;
    const std::vector<std::uint8_t> job_frame_chaos =
        frame(Msg::job, encode_job(job));
    const bool chaos = options.chaos_seed != 0;
    const int chaos_victim = static_cast<int>(
        options.chaos_seed % static_cast<std::uint64_t>(workers_hint));

    auto listener = util::listen_tcp(options.port);
    if (options.on_listen)
        options.on_listen(listener.port);

    std::deque<Worker_conn> workers;
    std::uint64_t next_lease_id = 1;
    int hellos = 0;
    double bcast_time = std::numeric_limits<double>::infinity();
    const auto accept_deadline =
        Clock::now() + std::chrono::milliseconds(static_cast<long long>(
                           options.accept_timeout_ms));
    const auto lease_timeout = std::chrono::milliseconds(
        static_cast<long long>(options.lease_timeout_ms));

    const auto lose_worker = [&](Worker_conn& w) {
        if (!w.alive)
            return;
        w.alive = false;
        w.fd.reset();
        ++out.dist.workers_lost;
        if (w.has_lease) {
            // Back to the *front*: the lowest unfinished range gates
            // the in-order fold, so it should complete first.
            pending.push_front(w.lease);
            w.has_lease = false;
            ++out.dist.leases_reassigned;
        }
    };

    const auto grant_lease = [&](Worker_conn& w) {
        if (!w.alive || !w.ready || w.has_lease || pending.empty())
            return;
        // Hold leasing until the expected fleet said hello (or the
        // accept window lapsed): with n_workers > 1 a fast first
        // worker must not drain the whole schedule before the others
        // connect — the property the multi-process CI leg pins.
        if (hellos < options.n_workers && Clock::now() < accept_deadline)
            return;
        Lease_msg lease;
        lease.lease_id = next_lease_id++;
        lease.begin = pending.front().begin;
        lease.end = pending.front().end;
        pending.pop_front();
        w.lease = {lease.begin, lease.end};
        w.lease_id = lease.lease_id;
        w.has_lease = true;
        w.lease_deadline = Clock::now() + lease_timeout;
        ++out.dist.leases_granted;
        const auto f = frame(Msg::lease, encode_lease(lease));
        if (!util::send_all(w.fd, f.data(), f.size()))
            lose_worker(w);
    };

    const auto broadcast_incumbent = [&](double time_ns,
                                         const Worker_conn* except) {
        if (!(time_ns < bcast_time))
            return;
        bcast_time = time_ns;
        const auto f = frame(Msg::incumbent, encode_incumbent(time_ns));
        for (auto& w : workers) {
            if (!w.alive || !w.ready || &w == except)
                continue;
            if (!util::send_all(w.fd, f.data(), f.size()))
                lose_worker(w);
            else
                ++out.dist.incumbent_broadcasts;
        }
    };

    const auto accept_result = [&](Worker_conn& w,
                                   const Lease_result_msg& m) -> bool {
        if (!w.has_lease || m.lease_id != w.lease_id)
            return false;  // stale or never-granted: protocol error
        const long long begin = w.lease.begin;
        w.has_lease = false;
        ++w.stats.ranges_served;
        w.stats.incumbents_applied = m.incumbents_applied;
        w.stats.remote_bound_kills += m.n_pruned_remote;
        // First result for a range wins; a re-run after a timeout of a
        // worker that was merely slow is dropped (both are the same
        // deterministic answer anyway).
        if (results.emplace(begin, Range_result{m}).second &&
            m.have_best)
            broadcast_incumbent(m.best_time, &w);
        grant_lease(w);
        return true;
    };

    // --- event loop ---------------------------------------------------
    while (results.size() < ranges.size()) {
        const bool any_live = std::any_of(
            workers.begin(), workers.end(),
            [](const Worker_conn& w) { return w.alive; });
        const auto now = Clock::now();
        if (!any_live && now >= accept_deadline) {
            // Nobody (left) to lease to: the coordinator is its own
            // worker of last resort, solving the remaining ranges as
            // ordinary windowed solves on its session.
            while (!pending.empty()) {
                const util::Chunk_range range = pending.front();
                pending.pop_front();
                solver::Solve_options o = options.solve;
                o.window = range;
                const auto r = session.solve(options.strategy, o);
                results.emplace(range.begin,
                                Range_result{to_lease_result(
                                    options.strategy, r)});
                ++out.dist.leases_solved_locally;
            }
            break;
        }

        std::vector<pollfd> pfds;
        pfds.push_back({listener.fd.get(), POLLIN, 0});
        std::vector<Worker_conn*> polled;
        for (auto& w : workers)
            if (w.alive) {
                pfds.push_back({w.fd.get(), POLLIN, 0});
                polled.push_back(&w);
            }
        const int r = ::poll(pfds.data(), pfds.size(), 100);
        if (r < 0 && errno != EINTR)
            throw std::runtime_error("solve_distributed: poll failed");

        // New workers (any time, not just during the accept window).
        if (r > 0 && (pfds[0].revents & POLLIN) != 0) {
            util::Fd conn = util::accept_conn(listener.fd, 0);
            if (conn.valid()) {
                Worker_conn w;
                w.fd = std::move(conn);
                workers.push_back(std::move(w));
            }
        }

        for (std::size_t i = 0; i < polled.size(); ++i) {
            Worker_conn& w = *polled[i];
            if (!w.alive ||
                (pfds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            std::uint8_t buf[16384];
            const long n = util::recv_some(w.fd, buf, sizeof buf);
            if (n <= 0) {
                lose_worker(w);
                continue;
            }
            w.inbuf.insert(w.inbuf.end(), buf, buf + n);
            for (;;) {
                Unframed msg;
                const auto st =
                    try_unframe(w.inbuf.data(), w.inbuf.size(), msg);
                if (st == Unframe_status::need_more)
                    break;
                if (st == Unframe_status::corrupt) {
                    lose_worker(w);
                    break;
                }
                w.inbuf.erase(w.inbuf.begin(),
                              w.inbuf.begin() +
                                  static_cast<long>(msg.consumed));
                if (msg.type == Msg::hello && !w.ready) {
                    std::uint32_t version = 0;
                    if (!decode_hello(msg.payload, version) ||
                        version != k_protocol_version) {
                        lose_worker(w);
                        break;
                    }
                    const int index = hellos++;
                    const bool die = chaos && index == chaos_victim;
                    const auto& jf =
                        die ? job_frame_chaos : job_frame_plain;
                    if (!util::send_all(w.fd, jf.data(), jf.size())) {
                        lose_worker(w);
                        break;
                    }
                    w.ready = true;
                    ++out.dist.n_workers;
                    out.dist.workers.emplace_back();
                    grant_lease(w);
                }
                else if (msg.type == Msg::lease_result && w.ready) {
                    Lease_result_msg lr;
                    if (!decode_lease_result(msg.payload, lr) ||
                        !accept_result(w, lr)) {
                        lose_worker(w);
                        break;
                    }
                }
                else {
                    lose_worker(w);  // protocol violation
                    break;
                }
            }
        }

        // Lease deadlines: a worker sitting on a range past the
        // timeout is treated as dead (its socket is closed, so a late
        // result cannot arrive and double-count).
        const auto sweep_now = Clock::now();
        for (auto& w : workers)
            if (w.alive && w.has_lease && sweep_now >= w.lease_deadline)
                lose_worker(w);

        // Idle-but-ready workers pick up reassigned ranges.
        for (auto& w : workers)
            grant_lease(w);
    }

    // Drain: tell everyone still connected we are done.
    {
        const auto f = frame(Msg::done, {});
        for (auto& w : workers)
            if (w.alive)
                util::send_all(w.fd, f.data(), f.size());
    }

    // --- the in-order fold -------------------------------------------
    // Range order == enumeration order; the strict better_tuple keeps
    // the earliest range on ties, exactly like the engines' in-order
    // chunk reduce — so the tuple below is the single-process one.
    bool have_best = false;
    double best_time = 0.0;
    double best_area = 0.0;
    const Lease_result_msg* winner = nullptr;
    for (const auto& range : ranges) {
        const auto& m = results.at(range.begin).msg;
        out.n_evaluated += m.n_evaluated;
        out.n_pruned += m.n_pruned;
        out.n_pruned_remote += m.n_pruned_remote;
        out.dp_rows_reused += m.dp_rows_reused;
        out.dp_rows_swept += m.dp_rows_swept;
        out.multi.rows_visited += m.rows_visited;
        out.multi.rows_pruned += m.rows_pruned;
        out.multi.dp_states_swept += m.dp_states_swept;
        out.multi.dp_cells_dense += m.dp_cells_dense;
        if (m.have_best &&
            (!have_best || search::better_tuple(m.best_time, m.best_area,
                                                best_time, best_area))) {
            best_time = m.best_time;
            best_area = m.best_area;
            winner = &m;
            have_best = true;
        }
    }
    if (winner != nullptr) {
        if (multi)
            fill_winner_multi(session, options.solve,
                              winner->datapaths.at(0),
                              winner->datapaths.at(1), out);
        else
            fill_winner_single(session, options.solve,
                               winner->datapaths.at(0), out);
    }

    // Per-worker stats, in hello order.
    {
        std::size_t slot = 0;
        for (const auto& w : workers)
            if (w.ready && slot < out.dist.workers.size())
                out.dist.workers[slot++] = w.stats;
    }

    out.n_threads = 1;
    out.seconds = timer.seconds();
    return out;
}

}  // namespace lycos::dist
