#include "dist/wire.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace lycos::dist {

// --- primitives ------------------------------------------------------

void Wire_writer::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Wire_writer::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Wire_writer::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void Wire_writer::str(const std::string& s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

bool Wire_reader::take(std::size_t n)
{
    if (!ok_ || len_ - pos_ < n) {
        ok_ = false;
        return false;
    }
    return true;
}

std::uint8_t Wire_reader::u8()
{
    if (!take(1))
        return 0;
    return data_[pos_++];
}

std::uint32_t Wire_reader::u32()
{
    if (!take(4))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
}

std::uint64_t Wire_reader::u64()
{
    if (!take(8))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
}

double Wire_reader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string Wire_reader::str()
{
    const std::uint32_t n = u32();
    if (!take(n))
        return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
}

// --- framing ---------------------------------------------------------

std::vector<std::uint8_t> frame(Msg type,
                                const std::vector<std::uint8_t>& payload)
{
    Wire_writer w;
    w.u32(k_magic);
    w.u8(static_cast<std::uint8_t>(type));
    w.u32(static_cast<std::uint32_t>(payload.size()));
    auto out = w.take();
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

Unframe_status try_unframe(const std::uint8_t* data, std::size_t len,
                           Unframed& out)
{
    constexpr std::size_t header = 4 + 1 + 4;
    if (len < header)
        return Unframe_status::need_more;
    Wire_reader r(data, len);
    if (r.u32() != k_magic)
        return Unframe_status::corrupt;
    const std::uint8_t type = r.u8();
    if (type < static_cast<std::uint8_t>(Msg::hello) ||
        type > static_cast<std::uint8_t>(Msg::done))
        return Unframe_status::corrupt;
    const std::uint32_t n = r.u32();
    if (n > k_max_payload)
        return Unframe_status::corrupt;
    if (len - header < n)
        return Unframe_status::need_more;
    out.type = static_cast<Msg>(type);
    out.payload.assign(data + header, data + header + n);
    out.consumed = header + n;
    return Unframe_status::ok;
}

// --- the Problem encoding --------------------------------------------

namespace {

void put_rmap(Wire_writer& w, const core::Rmap& m)
{
    w.u32(static_cast<std::uint32_t>(m.entries().size()));
    for (const auto& [id, count] : m.entries()) {
        w.u32(static_cast<std::uint32_t>(id));
        w.u32(static_cast<std::uint32_t>(count));
    }
}

/// `n_resources` < 0 skips the id range check (lease results carry
/// datapaths whose library the decoder has not seen; the coordinator
/// validates against its own).
bool get_rmap(Wire_reader& r, long n_resources, core::Rmap& out)
{
    const std::uint32_t n = r.u32();
    if (n > r.remaining() / 8) {
        r.fail();
        return false;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t id = r.u32();
        const std::uint32_t count = r.u32();
        if (!r.ok() || count == 0 ||
            (n_resources >= 0 && id >= static_cast<std::uint32_t>(
                                           n_resources))) {
            r.fail();
            return false;
        }
        out.set(static_cast<hw::Resource_id>(id),
                static_cast<int>(count));
    }
    return r.ok();
}

void put_dfg(Wire_writer& w, const dfg::Dfg& g)
{
    w.u32(static_cast<std::uint32_t>(g.size()));
    for (std::size_t i = 0; i < g.size(); ++i) {
        const auto& op = g.op(static_cast<dfg::Op_id>(i));
        w.u8(static_cast<std::uint8_t>(op.kind));
        w.str(op.name);
        const auto preds = g.preds(static_cast<dfg::Op_id>(i));
        w.u32(static_cast<std::uint32_t>(preds.size()));
        for (const dfg::Op_id p : preds)
            w.u32(static_cast<std::uint32_t>(p));
    }
    w.u32(static_cast<std::uint32_t>(g.live_ins().size()));
    for (const auto& s : g.live_ins())
        w.str(s);
    w.u32(static_cast<std::uint32_t>(g.live_outs().size()));
    for (const auto& s : g.live_outs())
        w.str(s);
}

bool get_dfg(Wire_reader& r, dfg::Dfg& out)
{
    const std::uint32_t n_ops = r.u32();
    // Every op costs at least kind + name length = 9 bytes.
    if (n_ops > r.remaining() / 9) {
        r.fail();
        return false;
    }
    struct Pending_edges {
        dfg::Op_id consumer;
        std::vector<std::uint32_t> preds;
    };
    std::vector<Pending_edges> edges;
    for (std::uint32_t i = 0; i < n_ops; ++i) {
        const std::uint8_t kind = r.u8();
        const std::string name = r.str();
        if (!r.ok() || kind >= hw::n_op_kinds) {
            r.fail();
            return false;
        }
        const dfg::Op_id id =
            out.add_op(static_cast<hw::Op_kind>(kind), name);
        const std::uint32_t n_preds = r.u32();
        if (n_preds > r.remaining() / 4) {
            r.fail();
            return false;
        }
        Pending_edges pe{id, {}};
        pe.preds.reserve(n_preds);
        for (std::uint32_t j = 0; j < n_preds; ++j)
            pe.preds.push_back(r.u32());
        edges.push_back(std::move(pe));
    }
    // Edges applied after all ops exist: a pred may name any op of the
    // graph (ids are dense), but never itself or a ghost.
    for (const auto& pe : edges)
        for (const std::uint32_t p : pe.preds) {
            if (p >= n_ops ||
                static_cast<dfg::Op_id>(p) == pe.consumer) {
                r.fail();
                return false;
            }
            out.add_edge(static_cast<dfg::Op_id>(p), pe.consumer);
        }
    if (!out.is_dag()) {
        r.fail();
        return false;
    }
    const std::uint32_t n_ins = r.u32();
    if (n_ins > r.remaining() / 4) {
        r.fail();
        return false;
    }
    for (std::uint32_t i = 0; i < n_ins; ++i)
        out.add_live_in(r.str());
    const std::uint32_t n_outs = r.u32();
    if (n_outs > r.remaining() / 4) {
        r.fail();
        return false;
    }
    for (std::uint32_t i = 0; i < n_outs; ++i)
        out.add_live_out(r.str());
    return r.ok();
}

void put_problem(Wire_writer& w, const Problem_blob& b)
{
    // Library.
    w.u32(static_cast<std::uint32_t>(b.lib.size()));
    for (const auto& t : b.lib.types()) {
        w.str(t.name);
        w.u32(t.ops.bits());
        w.f64(t.area);
        w.u32(static_cast<std::uint32_t>(t.latency_cycles));
    }
    // Target.
    w.str(b.target.cpu.name);
    w.f64(b.target.cpu.clock_mhz);
    for (const hw::Op_kind k : hw::all_op_kinds())
        w.u32(static_cast<std::uint32_t>(b.target.cpu.cycles_per_op[k]));
    w.f64(b.target.asic.clock_mhz);
    w.f64(b.target.asic.total_area);
    w.f64(b.target.bus.ns_per_word);
    w.f64(b.target.gates.reg);
    w.f64(b.target.gates.and2);
    w.f64(b.target.gates.or2);
    w.f64(b.target.gates.inv);
    // Restrictions + knobs.
    put_rmap(w, b.restrictions);
    w.u8(b.ctrl_mode);
    w.u8(b.scheduler);
    w.f64(b.area_quantum);
    w.f64(b.dp_table_budget);
    w.f64(b.asic_areas[0]);
    w.f64(b.asic_areas[1]);
    w.u8(b.storage.has_value() ? 1 : 0);
    if (b.storage.has_value()) {
        w.f64(b.storage->reg_area);
        w.f64(b.storage->mux_input_area);
    }
    // BSBs.
    w.u32(static_cast<std::uint32_t>(b.bsbs.size()));
    for (const auto& bsb : b.bsbs) {
        w.str(bsb.name);
        w.f64(bsb.profile);
        w.i64(bsb.source);
        put_dfg(w, bsb.graph);
    }
}

bool get_problem(Wire_reader& r, Problem_blob& b)
{
    // Hw_library::add and Rmap::set enforce their own invariants by
    // throwing; a fuzzer hitting one is a decode failure, not UB.
    try {
        const std::uint32_t n_types = r.u32();
        if (n_types > r.remaining() / 17) {
            r.fail();
            return false;
        }
        for (std::uint32_t i = 0; i < n_types; ++i) {
            hw::Resource_type t;
            t.name = r.str();
            const std::uint32_t bits = r.u32();
            for (const hw::Op_kind k : hw::all_op_kinds())
                if (bits & (1u << hw::op_index(k)))
                    t.ops.insert(k);
            t.area = r.f64();
            t.latency_cycles = static_cast<int>(r.u32());
            if (!r.ok())
                return false;
            b.lib.add(std::move(t));
        }
        b.target.cpu.name = r.str();
        b.target.cpu.clock_mhz = r.f64();
        for (const hw::Op_kind k : hw::all_op_kinds())
            b.target.cpu.cycles_per_op[k] = static_cast<int>(r.u32());
        b.target.asic.clock_mhz = r.f64();
        b.target.asic.total_area = r.f64();
        b.target.bus.ns_per_word = r.f64();
        b.target.gates.reg = r.f64();
        b.target.gates.and2 = r.f64();
        b.target.gates.or2 = r.f64();
        b.target.gates.inv = r.f64();
        if (!get_rmap(r, static_cast<long>(b.lib.size()),
                      b.restrictions))
            return false;
        b.ctrl_mode = r.u8();
        b.scheduler = r.u8();
        if (b.ctrl_mode > 1 || b.scheduler > 1) {
            r.fail();
            return false;
        }
        b.area_quantum = r.f64();
        b.dp_table_budget = r.f64();
        b.asic_areas[0] = r.f64();
        b.asic_areas[1] = r.f64();
        const std::uint8_t has_storage = r.u8();
        if (has_storage > 1) {
            r.fail();
            return false;
        }
        if (has_storage == 1) {
            estimate::Storage_model s;
            s.reg_area = r.f64();
            s.mux_input_area = r.f64();
            b.storage = s;
        }
        const std::uint32_t n_bsbs = r.u32();
        if (n_bsbs > r.remaining() / 20) {
            r.fail();
            return false;
        }
        b.bsbs.reserve(n_bsbs);
        for (std::uint32_t i = 0; i < n_bsbs; ++i) {
            bsb::Bsb bsb;
            bsb.name = r.str();
            bsb.profile = r.f64();
            bsb.source = static_cast<cdfg::Node_id>(r.i64());
            if (!get_dfg(r, bsb.graph))
                return false;
            b.bsbs.push_back(std::move(bsb));
        }
        return r.ok();
    }
    catch (const std::exception&) {
        r.fail();
        return false;
    }
}

}  // namespace

Problem_blob Problem_blob::from_problem(const solver::Problem& p)
{
    Problem_blob b;
    b.bsbs.assign(p.bsbs.begin(), p.bsbs.end());
    b.lib = *p.lib;
    b.target = p.target;
    b.restrictions = p.restrictions;
    b.ctrl_mode = static_cast<std::uint8_t>(p.ctrl_mode);
    b.scheduler = static_cast<std::uint8_t>(p.scheduler);
    b.area_quantum = p.area_quantum;
    b.dp_table_budget = p.dp_table_budget;
    b.asic_areas = p.asic_areas;
    if (p.storage != nullptr)
        b.storage = *p.storage;
    return b;
}

solver::Problem Problem_blob::problem() const
{
    solver::Problem p;
    p.bsbs = bsbs;
    p.lib = &lib;
    p.target = target;
    p.restrictions = restrictions;
    p.ctrl_mode = static_cast<pace::Controller_mode>(ctrl_mode);
    p.scheduler = static_cast<sched::Scheduler_kind>(scheduler);
    p.area_quantum = area_quantum;
    p.dp_table_budget = dp_table_budget;
    p.asic_areas = asic_areas;
    if (storage.has_value())
        p.storage = &*storage;
    return p;
}

// --- message payloads ------------------------------------------------

std::vector<std::uint8_t> encode_hello()
{
    Wire_writer w;
    w.u32(k_protocol_version);
    return w.take();
}

bool decode_hello(const std::vector<std::uint8_t>& payload,
                  std::uint32_t& version)
{
    Wire_reader r(payload.data(), payload.size());
    version = r.u32();
    return r.at_end();
}

std::vector<std::uint8_t> encode_job(const Job_msg& m)
{
    Wire_writer w;
    put_problem(w, m.problem);
    w.str(m.strategy);
    w.u32(static_cast<std::uint32_t>(m.options.n_threads));
    w.u8(m.options.use_cache ? 1 : 0);
    w.u8(m.options.use_pruning ? 1 : 0);
    w.u64(m.options.cache_capacity);
    w.i64(m.options.pair_limit);
    w.u8(m.options.use_row_bound ? 1 : 0);
    w.i64(m.n_units);
    w.u8(m.chaos_die ? 1 : 0);
    return w.take();
}

bool decode_job(const std::vector<std::uint8_t>& payload, Job_msg& out)
{
    Wire_reader r(payload.data(), payload.size());
    if (!get_problem(r, out.problem))
        return false;
    out.strategy = r.str();
    out.options.n_threads = static_cast<std::int32_t>(r.u32());
    out.options.use_cache = r.u8() != 0;
    out.options.use_pruning = r.u8() != 0;
    out.options.cache_capacity = r.u64();
    out.options.pair_limit = r.i64();
    out.options.use_row_bound = r.u8() != 0;
    out.n_units = r.i64();
    out.chaos_die = r.u8() != 0;
    return r.at_end() && out.n_units >= 0;
}

std::vector<std::uint8_t> encode_lease(const Lease_msg& m)
{
    Wire_writer w;
    w.u64(m.lease_id);
    w.i64(m.begin);
    w.i64(m.end);
    return w.take();
}

bool decode_lease(const std::vector<std::uint8_t>& payload,
                  Lease_msg& out)
{
    Wire_reader r(payload.data(), payload.size());
    out.lease_id = r.u64();
    out.begin = r.i64();
    out.end = r.i64();
    return r.at_end() && out.begin >= 0 && out.begin <= out.end;
}

std::vector<std::uint8_t> encode_lease_result(const Lease_result_msg& m)
{
    Wire_writer w;
    w.u64(m.lease_id);
    w.u8(m.have_best ? 1 : 0);
    w.f64(m.best_time);
    w.f64(m.best_area);
    w.u32(static_cast<std::uint32_t>(m.datapaths.size()));
    for (const auto& dp : m.datapaths)
        put_rmap(w, dp);
    w.i64(m.n_evaluated);
    w.i64(m.n_pruned);
    w.i64(m.n_pruned_remote);
    w.i64(m.dp_rows_reused);
    w.i64(m.dp_rows_swept);
    w.i64(m.rows_visited);
    w.i64(m.rows_pruned);
    w.i64(m.dp_states_swept);
    w.i64(m.dp_cells_dense);
    w.i64(m.incumbents_applied);
    return w.take();
}

bool decode_lease_result(const std::vector<std::uint8_t>& payload,
                         Lease_result_msg& out)
{
    Wire_reader r(payload.data(), payload.size());
    out.lease_id = r.u64();
    out.have_best = r.u8() != 0;
    out.best_time = r.f64();
    out.best_area = r.f64();
    const std::uint32_t n_dps = r.u32();
    if (n_dps > 2) {
        return false;
    }
    try {
        for (std::uint32_t i = 0; i < n_dps; ++i) {
            core::Rmap dp;
            if (!get_rmap(r, -1, dp))
                return false;
            out.datapaths.push_back(std::move(dp));
        }
    }
    catch (const std::exception&) {
        return false;
    }
    out.n_evaluated = r.i64();
    out.n_pruned = r.i64();
    out.n_pruned_remote = r.i64();
    out.dp_rows_reused = r.i64();
    out.dp_rows_swept = r.i64();
    out.rows_visited = r.i64();
    out.rows_pruned = r.i64();
    out.dp_states_swept = r.i64();
    out.dp_cells_dense = r.i64();
    out.incumbents_applied = r.i64();
    return r.at_end() &&
           (out.have_best ? !out.datapaths.empty()
                          : out.datapaths.empty());
}

std::vector<std::uint8_t> encode_incumbent(double time_ns)
{
    Wire_writer w;
    w.f64(time_ns);
    return w.take();
}

bool decode_incumbent(const std::vector<std::uint8_t>& payload,
                      double& time_ns)
{
    Wire_reader r(payload.data(), payload.size());
    time_ns = r.f64();
    return r.at_end();
}

}  // namespace lycos::dist
