// The distributed search's wire format (docs/distributed.md).
//
// A small length-prefixed binary protocol:
//
//   frame   = magic u32 ("LYD1") | type u8 | payload_len u32 | payload
//
// All integers little-endian; doubles travel as their IEEE-754 bit
// patterns (never reformatted through text), which is what makes the
// distributed reduce *bit*-identical to a local solve.  Payloads are
// capped (k_max_payload) so a corrupt length cannot allocate the
// machine away, and every decoder is bounds-checked: truncated or
// garbage input yields `false` from decode_* (or `corrupt` /
// `need_more` from try_unframe), never UB — the property tests in
// tests/test_dist.cpp fuzz exactly this under ASan.
//
// Message catalogue (direction, payload):
//
//   hello         worker -> coord   protocol version
//   job           coord -> worker   Problem + strategy + solve knobs
//   lease         coord -> worker   one contiguous unit range to solve
//   lease_result  worker -> coord   best tuple + datapath(s) + counters
//   incumbent     coord -> worker   a tightened global bound (f64 bits)
//   done          coord -> worker   no more leases; disconnect
//
// The Problem encoding is canonical and self-contained: library,
// target, restrictions, every BSB's DFG (ops, edges, live sets),
// and the scalar knobs.  Problem_blob owns the deep copies so a
// decoded problem can outlive the buffer it came from.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bsb/bsb.hpp"
#include "core/rmap.hpp"
#include "estimate/storage.hpp"
#include "hw/resource.hpp"
#include "hw/target.hpp"
#include "solver/solver.hpp"

namespace lycos::dist {

/// Frame magic: "LYD1" as little-endian bytes.
inline constexpr std::uint32_t k_magic = 0x3144594Cu;

/// Largest payload a frame may carry (64 MiB) — an upper bound on any
/// real Problem this repo builds, and the allocation cap a corrupt
/// length prefix runs into.
inline constexpr std::uint32_t k_max_payload = 1u << 26;

inline constexpr std::uint32_t k_protocol_version = 1;

enum class Msg : std::uint8_t {
    hello = 1,
    job = 2,
    lease = 3,
    lease_result = 4,
    incumbent = 5,
    done = 6,
};

// --- primitive serialization -----------------------------------------

/// Append-only little-endian byte writer.
class Wire_writer {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    /// IEEE-754 bit pattern — the double survives bit-for-bit.
    void f64(double v);
    /// u32 length + raw bytes.
    void str(const std::string& s);

    const std::vector<std::uint8_t>& bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader.  Any overrun latches !ok()
/// and every subsequent read returns a zero value — decoders check
/// ok() (and at_end(), rejecting trailing garbage) once at the end
/// instead of after every field.
class Wire_reader {
public:
    Wire_reader(const std::uint8_t* data, std::size_t len)
        : data_(data), len_(len)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    std::string str();

    bool ok() const { return ok_; }
    bool at_end() const { return ok_ && pos_ == len_; }
    std::size_t remaining() const { return ok_ ? len_ - pos_ : 0; }
    void fail() { ok_ = false; }

private:
    bool take(std::size_t n);
    const std::uint8_t* data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

// --- framing ---------------------------------------------------------

/// Wrap a payload in a frame ready for send_all.
std::vector<std::uint8_t> frame(Msg type,
                                const std::vector<std::uint8_t>& payload);

enum class Unframe_status : std::uint8_t {
    ok,         ///< one complete frame extracted
    need_more,  ///< prefix is consistent but incomplete — read more
    corrupt,    ///< bad magic, unknown type, or oversized length
};

struct Unframed {
    Msg type = Msg::hello;
    std::vector<std::uint8_t> payload;
    std::size_t consumed = 0;  ///< bytes to drop from the stream buffer
};

/// Try to extract one frame from the front of a stream buffer.
Unframe_status try_unframe(const std::uint8_t* data, std::size_t len,
                           Unframed& out);

// --- the Problem encoding --------------------------------------------

/// A solver::Problem deep-copied into owned storage: the decoded side
/// of the job message.  problem() returns a view whose span/pointers
/// reference this blob — keep it alive as long as any Session built
/// from it (same lifetime rule as solver::Problem itself).
struct Problem_blob {
    std::vector<bsb::Bsb> bsbs;
    hw::Hw_library lib;
    hw::Target target;
    core::Rmap restrictions;
    std::uint8_t ctrl_mode = 0;
    std::uint8_t scheduler = 0;
    double area_quantum = 0.0;
    double dp_table_budget = 0.0;
    std::array<double, 2> asic_areas{0.0, 0.0};
    std::optional<estimate::Storage_model> storage;

    static Problem_blob from_problem(const solver::Problem& p);
    solver::Problem problem() const;
};

// --- message payloads ------------------------------------------------

/// The Solve_options subset that travels: everything answer-shaping
/// or perf-relevant; deadlines/faults/windows stay per-side.
struct Wire_options {
    std::int32_t n_threads = 0;
    bool use_cache = true;
    bool use_pruning = true;
    std::uint64_t cache_capacity = 0;
    // Multi_asic_extras (applied only when strategy=multi_asic_bb):
    std::int64_t pair_limit = 1LL << 23;
    bool use_row_bound = true;
};

struct Job_msg {
    Problem_blob problem;
    std::string strategy;
    Wire_options options;
    std::int64_t n_units = 0;  ///< leased index space (leaves / rows)
    /// Chaos: this worker must die mid-way through its first lease
    /// (close the socket without reporting) — tests/CI only.
    bool chaos_die = false;
};

struct Lease_msg {
    std::uint64_t lease_id = 0;
    std::int64_t begin = 0;
    std::int64_t end = 0;
};

struct Lease_result_msg {
    std::uint64_t lease_id = 0;
    bool have_best = false;
    double best_time = 0.0;  ///< hybrid ns of the window's best tuple
    double best_area = 0.0;  ///< datapath area (summed for multi)
    /// The winning datapath(s): 1 entry for single-ASIC strategies, 2
    /// for multi_asic_bb.  The coordinator re-evaluates these locally
    /// — deterministic functions of (context, allocation) — instead of
    /// shipping the full partition.
    std::vector<core::Rmap> datapaths;
    // Counters folded into the coordinator's Solve_result:
    std::int64_t n_evaluated = 0;
    std::int64_t n_pruned = 0;
    std::int64_t n_pruned_remote = 0;
    std::int64_t dp_rows_reused = 0;
    std::int64_t dp_rows_swept = 0;
    std::int64_t rows_visited = 0;
    std::int64_t rows_pruned = 0;
    std::int64_t dp_states_swept = 0;
    std::int64_t dp_cells_dense = 0;
    /// Cumulative on the worker: broadcasts that tightened its bound.
    std::int64_t incumbents_applied = 0;
};

// --- encoders / decoders ---------------------------------------------
//
// Encoders return the raw payload (frame it with frame()).  Decoders
// return false on truncated, oversized, or structurally invalid input
// — including DFG edges naming unknown ops, cyclic graphs, op kinds
// past the enum, and restriction ids outside the library.

std::vector<std::uint8_t> encode_hello();
bool decode_hello(const std::vector<std::uint8_t>& payload,
                  std::uint32_t& version);

std::vector<std::uint8_t> encode_job(const Job_msg& m);
bool decode_job(const std::vector<std::uint8_t>& payload, Job_msg& out);

std::vector<std::uint8_t> encode_lease(const Lease_msg& m);
bool decode_lease(const std::vector<std::uint8_t>& payload,
                  Lease_msg& out);

std::vector<std::uint8_t> encode_lease_result(const Lease_result_msg& m);
bool decode_lease_result(const std::vector<std::uint8_t>& payload,
                         Lease_result_msg& out);

std::vector<std::uint8_t> encode_incumbent(double time_ns);
bool decode_incumbent(const std::vector<std::uint8_t>& payload,
                      double& time_ns);

}  // namespace lycos::dist
