// lycos::dist — the coordinator/worker distributed search
// (docs/distributed.md).
//
// One coordinator owns the Problem; N workers connect over loopback
// TCP, receive the canonical Problem encoding plus the resolved solve
// knobs (src/dist/wire.hpp), and lease deterministic contiguous
// ranges of the strategy's logical-unit space — leaf indices for
// `exhaustive_bb`, a0 rows for `multi_asic_bb` (the same units
// Solve_options::window restricts and Fault_injector cuts at).  Each
// lease runs the ordinary engine over its window; results stream back
// and the coordinator folds them **in range order with the strict
// better_tuple rule**, so the winning (time, area, datapath) tuple is
// bit-identical to a single-process solve for any worker count, any
// lease interleaving, and any incumbent-broadcast timing — the
// contract tests/test_dist.cpp and the CI `distributed` job pin.
//
// Incumbents: every accepted lease result carrying a fully evaluated
// best tightens the coordinator's global bound; strict improvements
// are broadcast so remote admissible bounds tighten mid-search
// (util::Shared_bound's contract keeps this answer-preserving).
//
// Failure model: a worker death — EOF, send failure, or a lease
// outliving Coordinator_options::lease_timeout_ms — re-queues its
// outstanding range at the *front* of the pending deque and the
// search continues; with no live workers left the coordinator solves
// the remaining ranges itself (leases_solved_locally).  The seeded
// chaos mode kills one worker mid-range to exercise exactly this
// path; the final tuple must not change.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "solver/solver.hpp"

namespace lycos::dist {

struct Coordinator_options {
    /// Registry strategy to distribute: `exhaustive_bb` or
    /// `multi_asic_bb` (`hill_climb` has no unit range to lease —
    /// solve_distributed throws).
    std::string strategy = "exhaustive_bb";

    /// Solve knobs shipped to every worker (n_threads, caches,
    /// pruning, extras).  Deadlines/faults/windows/cancel are
    /// coordinator-local concerns and are not forwarded.
    solver::Solve_options solve;

    /// Workers expected to connect.  The coordinator waits up to
    /// accept_timeout_ms for the first `n_workers` hellos, then
    /// starts; late workers still join mid-search.  0 = start leasing
    /// to whoever shows up within the timeout (and fall back to a
    /// local solve when nobody does).
    int n_workers = 0;

    std::uint16_t port = 0;  ///< 0 = OS-chosen (reported via on_listen)

    /// Units per lease (0 = auto: ~8 leases per expected worker).
    long long lease_units = 0;

    double lease_timeout_ms = 10000.0;
    double accept_timeout_ms = 2000.0;

    /// Non-zero arms the chaos mode: worker (seed % max(1, n_workers))
    /// in hello order is told to die mid-way through its first lease
    /// without reporting.  Tests/CI only.
    std::uint64_t chaos_seed = 0;

    /// Called with the bound port once the listener is up — how tests
    /// and the CLI connect in-process workers to an OS-chosen port.
    std::function<void(std::uint16_t)> on_listen;
};

/// Run `problem` distributed.  Returns the same Solve_result a local
/// Session::solve(strategy) would, with Solve_result::dist populated;
/// the best tuple (value and traceback) is bit-identical.  Throws
/// std::invalid_argument for invalid problems or non-leasable
/// strategies, std::runtime_error for socket-layer failures.
solver::Solve_result solve_distributed(const solver::Problem& problem,
                                       const Coordinator_options& options);

struct Worker_options {
    double connect_timeout_ms = 5000.0;
};

/// Run one worker against `host`:`port` until the coordinator sends
/// `done` or the connection drops.  Returns 0 on a clean done, 1 on a
/// protocol or connection error.  Blocking; run it on its own thread
/// (tests, `lycos_cli --dist-workers`) or as the whole process
/// (`lycos_cli --worker`).
int run_worker(const std::string& host, std::uint16_t port,
               const Worker_options& options = {});

}  // namespace lycos::dist
