// Deprecated shims over the session API.  The old free functions keep
// their lycos::search signatures (declared in search/exhaustive.hpp /
// search/hill_climb.hpp) but are *defined* here: they construct a
// one-shot solver::Session and delegate, and the solver layer already
// depends on the search engines — defining them in src/search would
// make the dependency circular.  The shims are pinned bit-identical
// to the Session API for any thread count by tests/test_solver.cpp
// and the BENCH_search.json `shims_match_session` gate.
#include "search/exhaustive.hpp"
#include "search/hill_climb.hpp"
#include "solver/solver.hpp"

// The definitions themselves necessarily name the deprecated
// declarations.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace lycos::search {

Search_result exhaustive_search(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Exhaustive_options& options)
{
    solver::Session session(solver::make_problem(ctx, restrictions));
    solver::Solve_options opts;
    opts.n_threads = options.n_threads;
    opts.use_cache = options.use_cache;
    opts.use_pruning = options.use_pruning;
    opts.cache_capacity = options.cache_capacity;
    opts.shared_cache = options.shared_cache;
    return solver::to_search_result(session.solve("exhaustive_bb", opts));
}

Search_result hill_climb_search(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Hill_climb_options& options,
                                util::Rng& rng)
{
    solver::Session session(solver::make_problem(ctx, restrictions));
    solver::Solve_options opts;
    opts.n_threads = options.n_threads;
    opts.cache_capacity = options.cache_capacity;
    opts.shared_cache = options.shared_cache;
    solver::Hill_climb_extras extras;
    extras.n_restarts = options.n_restarts;
    extras.max_steps = options.max_steps;
    extras.rng = &rng;
    opts.extras = extras;
    return solver::to_search_result(session.solve("hill_climb", opts));
}

}  // namespace lycos::search
