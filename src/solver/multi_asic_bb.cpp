// multi_asic_bb — the first multi-ASIC allocation *search*.
//
// PR 3 made the two-ASIC partition DP fast (frontier sweep, caller
// workspace, value-only screening), but nothing enumerated two-ASIC
// allocation spaces: the pre-allocation still came from the greedy
// generalized Algorithm 1 alone.  This strategy closes that gap: it
// enumerates *pairs* of data-path allocations (one per ASIC, each
// within the §4.3 restrictions and its ASIC's area budget) and scores
// each pair with the two-ASIC PACE DP, exactly mirroring the paper's
// single-ASIC methodology of §5.
//
// The walk is the exhaustive search's shape transplanted to pairs:
//   * per-axis area filter: the per-ASIC point lists are materialized
//     once, restricted to allocations whose data-path fits that ASIC
//     — the pair space is their cross product, enumerated row-major
//     (a0-major) so per-BSB costs for a0 are fetched once per row,
//   * chunk-parallel: contiguous pair-index chunks, one per worker,
//     each with a private Eval_cache (shared immutable invariants)
//     and Multi_pace_workspace, reduced in chunk order,
//   * admissible prunes: a budget-free multi_max_gain bound kills
//     pairs cheaply, survivors run the value-only screening DP
//     (multi_pace_best_saving), and only pairs whose screened time
//     can still beat the incumbent pay for the full partition with
//     traceback.  Screened pairs count as evaluated (they were
//     scored); bound-killed pairs count as pruned.
// Every prune removes only pairs provably worse than a pair that is
// actually evaluated, and the reduction applies the same strict
// comparison in enumeration order — so the best (time, combined
// area, pair) tuple is bit-identical for any thread count or
// chunking, the same determinism contract the single-ASIC strategies
// carry.
#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "search/alloc_space.hpp"
#include "solver/internal.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace lycos::solver::detail {

namespace {

/// One enumerable allocation of one ASIC (area pre-computed: the
/// inner loop compares it millions of times).
struct Axis_point {
    core::Rmap alloc;
    double area = 0.0;
};

/// Largest single-ASIC space the per-axis enumeration will walk while
/// building the filtered point lists.
constexpr long long k_axis_enum_limit = 1LL << 22;

/// What one worker accumulates over its chunk of the pair range.
struct Pair_chunk {
    bool have_best = false;
    double best_time = 0.0;
    double best_area_sum = 0.0;
    long long best_i = 0;
    long long best_j = 0;
    pace::Multi_pace_result best_partition;
    long long n_evaluated = 0;
    long long n_pruned = 0;
    search::Eval_cache_stats stats;
};

/// Greedy per-axis probe (the prime_incumbent idea): fill each
/// dimension up to its bound while the data-path still fits the
/// budget.  The result is a point of the filtered axis list, so
/// priming against its screened time can only remove pairs strictly
/// worse than a pair the enumeration scores anyway.
core::Rmap greedy_fill(const search::Alloc_space& space,
                       const hw::Hw_library& lib, double budget)
{
    core::Rmap greedy;
    double area = 0.0;
    for (const auto& [id, bound] : space.dims()) {
        const double unit = lib[id].area;
        int c = bound;
        while (c > 0 && area + unit * c > budget)
            --c;
        greedy.set(id, c);
        area += unit * c;
    }
    return greedy;
}

/// Fill the a0 half of the combined costs (t_sw is allocation-
/// independent and rides along).  Done once per a0 row of the walk;
/// set_asic1_costs patches only the a1 half per pair.
void set_asic0_costs(std::span<const pace::Bsb_cost> c0,
                     std::vector<pace::Multi_bsb_cost>& out)
{
    out.resize(c0.size());
    for (std::size_t k = 0; k < c0.size(); ++k) {
        out[k].t_sw = c0[k].t_sw;
        out[k].hw[0] = c0[k];
    }
}

void set_asic1_costs(std::span<const pace::Bsb_cost> c1,
                     std::vector<pace::Multi_bsb_cost>& out)
{
    for (std::size_t k = 0; k < c1.size(); ++k)
        out[k].hw[1] = c1[k];
}

void combine_costs(std::span<const pace::Bsb_cost> c0,
                   std::span<const pace::Bsb_cost> c1,
                   std::vector<pace::Multi_bsb_cost>& out)
{
    set_asic0_costs(c0, out);
    set_asic1_costs(c1, out);
}

}  // namespace

Solve_result solve_multi_asic_bb(Session& session,
                                 const Solve_options& options)
{
    util::Wall_timer timer;
    const auto extras =
        extras_or_default<Multi_asic_extras>(options, "multi_asic_bb");
    const search::Eval_context& ctx = session.context();
    const auto budgets = multi_asic_budgets(session.problem());

    const search::Alloc_space space(ctx.lib,
                                    session.problem().restrictions);
    if (space.size() > k_axis_enum_limit)
        throw std::invalid_argument(
            "multi_asic_bb: single-ASIC space too large to enumerate per "
            "axis (" +
            std::to_string(space.size()) + " points); tighten restrictions");

    // Materialize the per-ASIC point lists: every allocation whose
    // data-path fits that ASIC, in mixed-radix enumeration order.
    std::array<std::vector<Axis_point>, 2> axis;
    {
        const double max_budget = std::max(budgets[0], budgets[1]);
        space.for_each(max_budget, [&](const core::Rmap& a) {
            const double area = a.area(ctx.lib);
            for (std::size_t k = 0; k < 2; ++k)
                if (area <= budgets[k])
                    axis[k].push_back({a, area});
            return true;
        });
    }
    const long long f0 = static_cast<long long>(axis[0].size());
    const long long f1 = static_cast<long long>(axis[1].size());
    const long long pairs = f0 * f1;  // each axis <= 2^22, no overflow
    if (pairs > extras.pair_limit)
        throw std::invalid_argument(
            "multi_asic_bb: " + std::to_string(pairs) +
            " allocation pairs exceed Multi_asic_extras::pair_limit (" +
            std::to_string(extras.pair_limit) +
            "); tighten restrictions or raise the cap");

    Solve_result out;
    out.strategy = "multi_asic_bb";
    out.space_size = pairs;
    out.multi.active = true;
    out.multi.asic_areas = budgets;
    out.multi.axis_points = {f0, f1};
    if (pairs == 0) {
        out.seconds = timer.seconds();
        return out;
    }

    // Resolve the shared immutable invariants before any worker runs:
    // Session::invariants() is lazily computed and not thread-safe.
    const auto invariants = session.invariants();

    // Shared prep: the all-software baseline, the float-safety slack,
    // and a primed time-to-beat from the greedy probe pair so every
    // worker prunes from the start.  The probes run on worker 0's
    // cache so the first chunk starts warm — but only when caching is
    // on: an uncached solve must not mutate the caller's shared cache
    // or instantiate the session one, so it probes on a throwaway.
    search::Eval_cache* chunk0_cache = nullptr;
    search::Eval_cache_stats shared_before;
    if (options.use_cache) {
        chunk0_cache = options.shared_cache != nullptr
                           ? options.shared_cache
                           : &session.cache(options.cache_capacity);
        shared_before = chunk0_cache->stats();
    }

    double all_sw = 0.0;
    double prime_time = std::numeric_limits<double>::infinity();
    std::vector<pace::Bsb_cost> probe0;
    std::vector<pace::Bsb_cost> probe1;
    std::vector<pace::Multi_bsb_cost> probe_costs;
    {
        std::optional<search::Eval_cache> prep_local;
        search::Eval_cache& prep =
            chunk0_cache != nullptr
                ? *chunk0_cache
                : prep_local.emplace(ctx, options.cache_capacity,
                                     invariants);
        const auto g0 = greedy_fill(space, ctx.lib, budgets[0]);
        const auto g1 = greedy_fill(space, ctx.lib, budgets[1]);
        prep.costs_for(g0, probe0);
        prep.costs_for(g1, probe1);
        combine_costs(probe0, probe1, probe_costs);
        for (const auto& c : probe_costs)
            all_sw += c.t_sw;
        if (options.use_pruning) {
            pace::Multi_pace_options mo;
            mo.ctrl_area_budgets = {budgets[0] - g0.area(ctx.lib),
                                    budgets[1] - g1.area(ctx.lib)};
            mo.area_quantum = ctx.area_quantum;
            pace::Multi_pace_workspace mws;
            prime_time =
                all_sw - pace::multi_pace_best_saving(probe_costs, mo, &mws);
        }
    }
    const double slack = 1e-7 * std::max(1.0, std::abs(all_sw));

    std::size_t n_threads =
        options.n_threads > 0
            ? static_cast<std::size_t>(options.n_threads)
            : util::Thread_pool::default_concurrency();
    n_threads = std::max<std::size_t>(
        1, std::min(n_threads, static_cast<std::size_t>(
                                   std::min(pairs, 1LL << 16))));
    out.n_threads = static_cast<int>(n_threads);

    std::vector<Pair_chunk> chunks(n_threads);
    const auto run_chunk = [&](std::size_t c, long long begin, long long end) {
        Pair_chunk& chunk = chunks[c];
        search::Eval_cache* cache = nullptr;
        std::optional<search::Eval_cache> own_cache;
        if (options.use_cache && c == 0)
            cache = chunk0_cache;
        if (cache == nullptr) {
            // Workers 1..n-1 — and every worker of an uncached run —
            // use a private cache; the pair walk always fetches costs
            // through one (memoized values are bit-identical to
            // direct builds), uncached mode just drops the sharing.
            own_cache.emplace(ctx, options.cache_capacity, invariants);
            cache = &*own_cache;
        }

        std::vector<pace::Bsb_cost> costs0;
        std::vector<pace::Bsb_cost> costs1;
        std::vector<pace::Multi_bsb_cost> mcosts;
        pace::Multi_pace_workspace mws;
        long long i = begin / f1;
        long long j = begin % f1;
        cache->costs_for(axis[0][static_cast<std::size_t>(i)].alloc, costs0);
        set_asic0_costs(costs0, mcosts);
        for (long long idx = begin; idx < end; ++idx) {
            if (j == f1) {
                j = 0;
                ++i;
                cache->costs_for(axis[0][static_cast<std::size_t>(i)].alloc,
                                 costs0);
                set_asic0_costs(costs0, mcosts);
            }
            const auto& p0 = axis[0][static_cast<std::size_t>(i)];
            const auto& p1 = axis[1][static_cast<std::size_t>(j)];
            cache->costs_for(p1.alloc, costs1);
            set_asic1_costs(costs1, mcosts);

            const double threshold =
                chunk.have_best ? std::min(prime_time, chunk.best_time)
                                : prime_time;

            pace::Multi_pace_options mo;
            mo.ctrl_area_budgets = {budgets[0] - p0.area,
                                    budgets[1] - p1.area};
            mo.area_quantum = ctx.area_quantum;

            if (options.use_pruning) {
                // Budget-free bound: no placement of this pair can
                // save more than multi_max_gain, whatever the
                // controller areas turn out to be.
                if (all_sw - pace::multi_max_gain(mcosts) >
                    threshold + slack) {
                    ++chunk.n_pruned;
                    ++j;
                    continue;
                }
                // Screening pass: the DP's optimal value without the
                // traceback arena.  A killed pair was scored — it
                // counts as evaluated, like the single-ASIC walker's
                // screened leaves.
                const double saving =
                    pace::multi_pace_best_saving(mcosts, mo, &mws);
                if (all_sw - saving > threshold + slack) {
                    ++chunk.n_evaluated;
                    ++j;
                    continue;
                }
            }

            const auto full = pace::multi_pace_partition(mcosts, mo, &mws);
            ++chunk.n_evaluated;
            const double area_sum = p0.area + p1.area;
            if (!chunk.have_best ||
                search::better_tuple(full.time_hybrid_ns, area_sum, chunk.best_time,
                            chunk.best_area_sum)) {
                chunk.best_time = full.time_hybrid_ns;
                chunk.best_area_sum = area_sum;
                chunk.best_i = i;
                chunk.best_j = j;
                chunk.best_partition = full;
                chunk.have_best = true;
            }
            ++j;
        }
        if (options.use_cache && cache != nullptr) {
            chunk.stats = cache == chunk0_cache
                              ? cache->stats().minus(shared_before)
                              : cache->stats();
        }
    };

    if (n_threads == 1) {
        run_chunk(0, 0, pairs);
    }
    else {
        util::parallel_chunks(session.pool(n_threads), pairs, n_threads,
                              run_chunk);
    }

    // Reduce in chunk (= enumeration) order with the same strict
    // comparison, so ties resolve toward the lowest pair index.
    bool have_best = false;
    double best_time = 0.0;
    double best_area_sum = 0.0;
    for (const auto& chunk : chunks) {
        out.n_evaluated += chunk.n_evaluated;
        out.n_pruned += chunk.n_pruned;
        out.cache_stats += chunk.stats;
        if (chunk.have_best &&
            (!have_best || search::better_tuple(chunk.best_time, chunk.best_area_sum,
                                       best_time, best_area_sum))) {
            best_time = chunk.best_time;
            best_area_sum = chunk.best_area_sum;
            const auto& p0 =
                axis[0][static_cast<std::size_t>(chunk.best_i)];
            const auto& p1 =
                axis[1][static_cast<std::size_t>(chunk.best_j)];
            out.multi.datapaths = {p0.alloc, p1.alloc};
            out.multi.datapath_area = {p0.area, p1.area};
            out.multi.partition = chunk.best_partition;
            have_best = true;
        }
    }

    out.seconds = timer.seconds();
    return out;
}

}  // namespace lycos::solver::detail
