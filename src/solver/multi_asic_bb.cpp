// multi_asic_bb — branch-and-bound over the two-ASIC pair *tree*.
//
// PR 4 introduced the first multi-ASIC allocation search as a flat
// quadratic pair walk: every (a0 allocation, a1 allocation) pair of
// the per-axis filtered point lists was visited, bounded per pair,
// and hard-capped by Multi_asic_extras::pair_limit (an exception).
// This engine restructures the walk as a deterministic branch-and-
// bound over the a0-major pair tree:
//
//   * rows are the tree's first level: one a0 axis point = one row of
//     f1 pairs.  Before any per-pair DP runs in a row, an admissible
//     *row bound* may kill the whole row: the sparse value-only DP
//     (multi_pace_best_saving) over the row's exact asic0 costs and a
//     per-BSB best-case relaxation of every asic1 axis point (minimal
//     t_hw/comm/ctrl_area, maximal adjacency saving over the axis,
//     the axis's smallest data-path area as the budget debit), with
//     Multi_pace_options::optimistic_rounding so quantization can
//     only widen the bound.  No pair in the row can beat it, so a
//     killed row prunes f1 pairs for one O(states) sweep — cheaper
//     still, a budget-free multi_max_gain over the same relaxed costs
//     screens the row in O(n) first,
//   * surviving rows run the PR 4 per-pair ladder: multi_max_gain,
//     then the sparse screening DP, then the full sparse partition
//     with traceback — all over the Pareto-sparse state sets now,
//   * rows are dispatched chunk-parallel over the Session pool (one
//     contiguous row range per worker, private Eval_cache and
//     Multi_pace_workspace, in-order reduction),
//   * pair_limit is a *soft* guard: a pair space beyond it is walked
//     up to exactly pair_limit pairs in a0-major order —
//     deterministically, whatever the chunking — with the remainder
//     reported as Multi_solve_result::pairs_skipped instead of
//     thrown.  Incumbent priming is disabled in that case, so every
//     prune compares against a pair inside the walked prefix and the
//     best pair equals the brute-force best of the prefix.
//
// Every prune (row or pair) removes only pairs provably worse in
// time than a pair that is actually evaluated, and the reduction
// applies the same strict comparison in enumeration order — so the
// best (time, combined area, pair) tuple is bit-identical to the
// brute-force pair scan for any thread count, chunking, or bound
// setting, the determinism contract all strategies carry.
#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>

#include "search/alloc_space.hpp"
#include "search/workspace_pool.hpp"
#include "solver/internal.hpp"
#include "util/cancel.hpp"
#include "util/chunk_range.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace lycos::solver::detail {

namespace {

/// One enumerable allocation of one ASIC (area pre-computed: the
/// inner loop compares it millions of times).
struct Axis_point {
    core::Rmap alloc;
    double area = 0.0;
};

/// Largest single-ASIC space the per-axis enumeration will walk while
/// building the filtered point lists.
constexpr long long k_axis_enum_limit = 1LL << 22;

/// What one worker accumulates over its chunk of the row range.
struct Pair_chunk {
    bool have_best = false;
    double best_time = 0.0;
    double best_area_sum = 0.0;
    long long best_i = 0;
    long long best_j = 0;
    pace::Multi_pace_result best_partition;
    long long n_evaluated = 0;
    long long n_pruned = 0;
    long long n_pruned_remote = 0;  ///< kills only the external bound made
    long long rows_visited = 0;
    long long rows_pruned = 0;
    long long dp_states_swept = 0;
    long long dp_cells_dense = 0;
    long long rows_abandoned = 0;
    bool stopped = false;
    search::Eval_cache_stats stats;
};

/// Fill the a0 half of the combined costs (t_sw is allocation-
/// independent and rides along).  Done once per a0 row of the walk;
/// set_asic1_costs patches only the a1 half per pair.
void set_asic0_costs(std::span<const pace::Bsb_cost> c0,
                     std::vector<pace::Multi_bsb_cost>& out)
{
    out.resize(c0.size());
    for (std::size_t k = 0; k < c0.size(); ++k) {
        out[k].t_sw = c0[k].t_sw;
        out[k].hw[0] = c0[k];
    }
}

void set_asic1_costs(std::span<const pace::Bsb_cost> c1,
                     std::vector<pace::Multi_bsb_cost>& out)
{
    for (std::size_t k = 0; k < c1.size(); ++k)
        out[k].hw[1] = c1[k];
}

void combine_costs(std::span<const pace::Bsb_cost> c0,
                   std::span<const pace::Bsb_cost> c1,
                   std::vector<pace::Multi_bsb_cost>& out)
{
    set_asic0_costs(c0, out);
    set_asic1_costs(c1, out);
}

/// Per-BSB best case over every asic1 axis point — the admissible
/// relaxation behind the row bound.  Each field is optimistic
/// independently (the jointly-best point need not exist), so any DP
/// or gain bound over these costs upper-bounds every concrete pair's:
/// minimal hardware and bus time, minimal controller area, maximal
/// adjacency credit.  A BSB infeasible on the whole axis keeps the
/// infinite cost and can only go to asic0 or software in the bound —
/// exactly as in every concrete pair.
struct Axis_relaxation {
    std::vector<pace::Bsb_cost> best_case;  ///< per BSB
    double min_area = 0.0;  ///< smallest data-path area on the axis
};

Axis_relaxation relax_axis(std::span<const Axis_point> axis,
                           search::Eval_cache& cache,
                           std::vector<pace::Bsb_cost>& scratch)
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    Axis_relaxation r;
    r.min_area = inf;
    for (const auto& point : axis) {
        cache.costs_for(point.alloc, scratch);
        if (r.best_case.empty()) {
            r.best_case = scratch;
            for (auto& c : r.best_case)
                if (std::isinf(c.t_hw)) {
                    c.comm = 0.0;
                    c.save_prev = 0.0;
                }
        }
        else {
            for (std::size_t k = 0; k < scratch.size(); ++k) {
                auto& b = r.best_case[k];
                const auto& c = scratch[k];
                if (std::isinf(c.t_hw))
                    continue;
                if (std::isinf(b.t_hw)) {
                    b = c;
                    continue;
                }
                b.t_hw = std::min(b.t_hw, c.t_hw);
                b.comm = std::min(b.comm, c.comm);
                b.ctrl_area = std::min(b.ctrl_area, c.ctrl_area);
                b.save_prev = std::max(b.save_prev, c.save_prev);
            }
        }
        r.min_area = std::min(r.min_area, point.area);
    }
    if (std::isinf(r.min_area))
        r.min_area = 0.0;
    return r;
}

}  // namespace

Solve_result solve_multi_asic_bb(Session& session,
                                 const Solve_options& options)
{
    util::Wall_timer timer;
    const auto extras =
        extras_or_default<Multi_asic_extras>(options, "multi_asic_bb");
    const search::Eval_context& ctx = session.context();
    const auto budgets = multi_asic_budgets(session.problem());

    const search::Alloc_space space(ctx.lib,
                                    session.problem().restrictions);
    if (space.size() > k_axis_enum_limit)
        throw std::invalid_argument(
            "multi_asic_bb: single-ASIC space too large to enumerate per "
            "axis (" +
            std::to_string(space.size()) + " points); tighten restrictions");

    // Materialize the per-ASIC point lists: every allocation whose
    // data-path fits that ASIC, in mixed-radix enumeration order.
    std::array<std::vector<Axis_point>, 2> axis;
    {
        const double max_budget = std::max(budgets[0], budgets[1]);
        space.for_each(max_budget, [&](const core::Rmap& a) {
            const double area = a.area(ctx.lib);
            for (std::size_t k = 0; k < 2; ++k)
                if (area <= budgets[k])
                    axis[k].push_back({a, area});
            return true;
        });
    }
    const long long f0 = static_cast<long long>(axis[0].size());
    const long long f1 = static_cast<long long>(axis[1].size());
    const long long pairs = f0 * f1;  // each axis <= 2^22, no overflow

    // Soft pair cap: walk exactly the first `walked` pairs (a0-major
    // order), skip the rest deterministically — the PR 4 hard throw
    // retired.  <= 0 means unlimited.
    const long long walked =
        extras.pair_limit > 0 ? std::min(pairs, extras.pair_limit) : pairs;

    Solve_result out;
    out.strategy = "multi_asic_bb";
    out.space_size = pairs;
    out.multi.active = true;
    out.multi.asic_areas = budgets;
    out.multi.axis_points = {f0, f1};
    out.multi.pairs_skipped = pairs - walked;
    if (walked == 0) {
        out.seconds = timer.seconds();
        return out;
    }
    const long long n_rows = (walked + f1 - 1) / f1;

    // Resolve the a0-row window (a distributed range lease, or all
    // rows).  Everything derived from the full walk — axis lists,
    // prefix truncation, priming, the row relaxation — is computed
    // identically whatever the window, so per-window bests fold to
    // the full-space best bit-identically.
    const long long r_begin =
        options.window.whole() ? 0 : options.window.begin;
    const long long r_end =
        options.window.whole() ? n_rows : options.window.end;
    if (r_begin < 0 || r_begin > r_end || r_end > n_rows)
        throw std::invalid_argument(
            "multi_asic_bb: window [" + std::to_string(r_begin) + ", " +
            std::to_string(r_end) + ") outside the row range [0, " +
            std::to_string(n_rows) + ")");
    const long long n_rows_work = r_end - r_begin;
    if (n_rows_work == 0) {
        out.seconds = timer.seconds();
        return out;
    }

    // Resolve the shared immutable invariants before any worker runs:
    // Session::invariants() is lazily computed and not thread-safe.
    const auto invariants = session.invariants();

    // Shared prep: the all-software baseline, the float-safety slack,
    // the asic1 axis relaxation behind the row bound, and a primed
    // time-to-beat from the greedy probe pair so every worker prunes
    // from the start.  The probes run on worker 0's cache so the
    // first chunk starts warm — but only when caching is on: an
    // uncached solve must not mutate the caller's shared cache or
    // instantiate the session one, so it probes on a throwaway.
    search::Eval_cache* chunk0_cache = nullptr;
    search::Eval_cache_stats shared_before;
    if (options.use_cache) {
        chunk0_cache = options.shared_cache != nullptr
                           ? options.shared_cache
                           : &session.cache(options.cache_capacity);
        shared_before = chunk0_cache->stats();
    }

    const bool use_row_bound = options.use_pruning && extras.use_row_bound;
    double all_sw = 0.0;
    double prime_time = std::numeric_limits<double>::infinity();
    Axis_relaxation relax1;
    {
        std::optional<search::Eval_cache> prep_local;
        search::Eval_cache& prep =
            chunk0_cache != nullptr
                ? *chunk0_cache
                : prep_local.emplace(ctx, options.cache_capacity,
                                     invariants);
        std::vector<pace::Bsb_cost> probe0;
        std::vector<pace::Bsb_cost> probe1;
        std::vector<pace::Multi_bsb_cost> probe_costs;
        // Greedy per-axis probe (the prime_incumbent idea): a point of
        // the filtered axis list, so priming against its screened time
        // can only remove pairs strictly worse than a pair the
        // enumeration scores anyway.
        const auto g0 = space.greedy_fill(ctx.lib, budgets[0]);
        const auto g1 = space.greedy_fill(ctx.lib, budgets[1]);
        prep.costs_for(g0, probe0);
        prep.costs_for(g1, probe1);
        combine_costs(probe0, probe1, probe_costs);
        for (const auto& c : probe_costs)
            all_sw += c.t_sw;
        // Priming is only sound when the greedy pair is guaranteed to
        // be *walked*: with a truncated prefix it may lie outside, and
        // pruning against an unwalked pair could starve the prefix of
        // its own best.  Prefix runs prune from chunk incumbents only.
        // A cancellation token truncates the same way (at an index
        // unknown in advance), so it disables priming identically.
        if (options.use_pruning && out.multi.pairs_skipped == 0 &&
            options.cancel == nullptr) {
            pace::Multi_pace_options mo;
            mo.ctrl_area_budgets = {budgets[0] - g0.area(ctx.lib),
                                    budgets[1] - g1.area(ctx.lib)};
            mo.area_quantum = ctx.area_quantum;
            pace::Multi_pace_workspace mws;
            prime_time =
                all_sw - pace::multi_pace_best_saving(probe_costs, mo, &mws);
        }
        if (use_row_bound) {
            // Under a truncating pair_limit no row ever reaches axis
            // points past the walked prefix — relaxing over just the
            // reachable ones is cheaper (they are scheduled serially
            // here) and a tighter, still admissible bound.
            const auto reachable = static_cast<std::size_t>(
                std::min<long long>(f1, walked));
            relax1 = relax_axis(
                std::span<const Axis_point>(axis[1]).first(reachable),
                prep, probe1);
        }
    }
    const double slack = 1e-7 * std::max(1.0, std::abs(all_sw));

    const std::size_t n_threads = util::clamp_chunks(
        options.n_threads, util::Thread_pool::default_concurrency(),
        n_rows_work);
    out.n_threads = static_cast<int>(n_threads);

    // Session-persistent DP workspaces: worker c's Multi_pace_workspace
    // (sparse state sets, frontier rows, traceback arena) lives on pool
    // slot c, so its grow-only buffers survive between solves and a
    // repeat solve pays no re-allocation — the multi-ASIC share of the
    // serve layer's cross-request reuse.
    session.workspaces().prepare(n_threads);
    std::vector<Pair_chunk> chunks(n_threads);
    const auto run_chunk = [&](std::size_t c, long long row_begin,
                               long long row_end) {
        Pair_chunk& chunk = chunks[c];
        search::Eval_cache* cache = nullptr;
        std::optional<search::Eval_cache> own_cache;
        if (options.use_cache && c == 0)
            cache = chunk0_cache;
        if (cache == nullptr) {
            // Workers 1..n-1 — and every worker of an uncached run —
            // use a private cache; the pair walk always fetches costs
            // through one (memoized values are bit-identical to
            // direct builds), uncached mode just drops the sharing.
            own_cache.emplace(ctx, options.cache_capacity, invariants);
            cache = &*own_cache;
        }

        std::vector<pace::Bsb_cost> costs0;
        std::vector<pace::Bsb_cost> costs1;
        std::vector<pace::Multi_bsb_cost> mcosts;
        // Per-worker workspace from the session pool: this lambda IS
        // the task body, and distinct chunks use distinct slots.
        pace::Multi_pace_workspace& mws =
            session.workspaces().slot(c).multi;
        // External incumbent (a distributed coordinator's broadcast):
        // admissible by the Shared_bound contract, so min()ing it into
        // every threshold only removes pairs provably worse than a
        // fully evaluated real pair — the winning tuple is unchanged.
        const util::Shared_bound* ext = options.incumbent_bound;
        double ext_val = std::numeric_limits<double>::infinity();
        for (long long i = row_begin; i < row_end; ++i) {
            // Admission gate per a0 row — the thread-invariant work
            // unit: an injected cut walks exactly the rows below it,
            // whatever the chunking, so truncated incumbents stay
            // bit-identical for any thread count.
            if (options.cancel != nullptr &&
                !options.cancel->admit(static_cast<std::uint64_t>(i))) {
                if (options.cancel->tripped()) {
                    chunk.rows_abandoned += row_end - i;
                    chunk.stopped = true;
                    break;
                }
                ++chunk.rows_abandoned;
                continue;
            }
            const auto& p0 = axis[0][static_cast<std::size_t>(i)];
            // The final row of a truncated prefix may be partial.
            const long long j_end = std::min(f1, walked - i * f1);
            cache->costs_for(p0.alloc, costs0);
            set_asic0_costs(costs0, mcosts);
            ++chunk.rows_visited;

            const double local_row =
                chunk.have_best ? std::min(prime_time, chunk.best_time)
                                : prime_time;
            if (ext != nullptr)
                ext_val = ext->get();
            const double threshold_row = std::min(local_row, ext_val);
            if (use_row_bound && std::isfinite(threshold_row)) {
                // Level 1: budget-free O(n) gain bound over the row's
                // exact asic0 costs and the axis-relaxed asic1 costs.
                double bound_time =
                    all_sw -
                    pace::multi_max_gain(costs0, relax1.best_case);
                bool killed = bound_time > threshold_row + slack;
                if (!killed) {
                    // Level 2: the sparse value-only DP over the same
                    // relaxed costs, budget0 exact for this row,
                    // budget1 at the axis's smallest data-path debit,
                    // areas rounded optimistically so quantization
                    // differences can only widen the bound.
                    set_asic1_costs(relax1.best_case, mcosts);
                    pace::Multi_pace_options mo;
                    mo.ctrl_area_budgets = {budgets[0] - p0.area,
                                            budgets[1] - relax1.min_area};
                    mo.area_quantum = ctx.area_quantum;
                    mo.optimistic_rounding = true;
                    mo.cancel = options.cancel;
                    const double bound_saving =
                        pace::multi_pace_best_saving(mcosts, mo, &mws);
                    chunk.dp_states_swept += mws.last_cells_swept();
                    chunk.dp_cells_dense += mws.last_cells_dense();
                    bound_time = all_sw - bound_saving;
                    killed = bound_time > threshold_row + slack;
                }
                if (killed) {
                    chunk.n_pruned += j_end;
                    // A kill the local threshold alone would not have
                    // made is credited to the remote bound.
                    if (!(bound_time > local_row + slack))
                        chunk.n_pruned_remote += j_end;
                    ++chunk.rows_pruned;
                    continue;
                }
            }

            for (long long j = 0; j < j_end; ++j) {
                // Live-condition poll once per pair: a tripped token
                // abandons the rest of the chunk's rows and keeps the
                // incumbent found so far.
                if (options.cancel != nullptr && options.cancel->stop()) {
                    chunk.rows_abandoned += row_end - i;
                    chunk.stopped = true;
                    break;
                }
                const auto& p1 = axis[1][static_cast<std::size_t>(j)];
                cache->costs_for(p1.alloc, costs1);
                set_asic1_costs(costs1, mcosts);

                const double local_thr =
                    chunk.have_best ? std::min(prime_time, chunk.best_time)
                                    : prime_time;
                if (ext != nullptr)
                    ext_val = ext->get();
                const double threshold = std::min(local_thr, ext_val);

                pace::Multi_pace_options mo;
                mo.ctrl_area_budgets = {budgets[0] - p0.area,
                                        budgets[1] - p1.area};
                mo.area_quantum = ctx.area_quantum;
                mo.cancel = options.cancel;

                if (options.use_pruning) {
                    // Budget-free bound: no placement of this pair can
                    // save more than multi_max_gain, whatever the
                    // controller areas turn out to be.
                    const double gain_time =
                        all_sw - pace::multi_max_gain(mcosts);
                    if (gain_time > threshold + slack) {
                        ++chunk.n_pruned;
                        if (!(gain_time > local_thr + slack))
                            ++chunk.n_pruned_remote;
                        continue;
                    }
                    // Screening pass: the sparse DP's optimal value
                    // without the traceback arena.  A killed pair was
                    // scored — it counts as evaluated, like the
                    // single-ASIC walker's screened leaves.
                    const double saving =
                        pace::multi_pace_best_saving(mcosts, mo, &mws);
                    chunk.dp_states_swept += mws.last_cells_swept();
                    chunk.dp_cells_dense += mws.last_cells_dense();
                    const double screen_time = all_sw - saving;
                    if (screen_time > threshold + slack) {
                        ++chunk.n_evaluated;
                        if (!(screen_time > local_thr + slack))
                            ++chunk.n_pruned_remote;
                        if (options.cancel != nullptr)
                            options.cancel->charge_evals(1);
                        continue;
                    }
                }

                const auto full =
                    pace::multi_pace_partition(mcosts, mo, &mws);
                chunk.dp_states_swept += mws.last_cells_swept();
                chunk.dp_cells_dense += mws.last_cells_dense();
                ++chunk.n_evaluated;
                if (options.cancel != nullptr)
                    options.cancel->charge_evals(1);
                const double area_sum = p0.area + p1.area;
                if (!chunk.have_best ||
                    search::better_tuple(full.time_hybrid_ns, area_sum,
                                         chunk.best_time,
                                         chunk.best_area_sum)) {
                    chunk.best_time = full.time_hybrid_ns;
                    chunk.best_area_sum = area_sum;
                    chunk.best_i = i;
                    chunk.best_j = j;
                    chunk.best_partition = full;
                    chunk.have_best = true;
                }
            }
            if (chunk.stopped)
                break;
        }
        if (options.use_cache && cache != nullptr) {
            chunk.stats = cache == chunk0_cache
                              ? cache->stats().minus(shared_before)
                              : cache->stats();
        }
    };

    std::size_t chunks_skipped = 0;
    if (n_threads == 1) {
        run_chunk(0, r_begin, r_end);
    }
    else {
        const auto run_chunk_abs = [&](std::size_t c, long long begin,
                                       long long end) {
            run_chunk(c, r_begin + begin, r_begin + end);
        };
        chunks_skipped =
            util::parallel_chunks(session.pool(n_threads), n_rows_work,
                                  n_threads, run_chunk_abs,
                                  options.cancel);
    }

    // Reduce in chunk (= enumeration) order with the same strict
    // comparison, so ties resolve toward the lowest pair index.
    bool have_best = false;
    double best_time = 0.0;
    double best_area_sum = 0.0;
    for (const auto& chunk : chunks) {
        out.n_evaluated += chunk.n_evaluated;
        out.n_pruned += chunk.n_pruned;
        out.n_pruned_remote += chunk.n_pruned_remote;
        out.rows_abandoned += chunk.rows_abandoned;
        out.chunks_abandoned += chunk.stopped ? 1 : 0;
        out.multi.rows_visited += chunk.rows_visited;
        out.multi.rows_pruned += chunk.rows_pruned;
        out.multi.dp_states_swept += chunk.dp_states_swept;
        out.multi.dp_cells_dense += chunk.dp_cells_dense;
        out.cache_stats += chunk.stats;
        if (chunk.have_best &&
            (!have_best || search::better_tuple(chunk.best_time,
                                                chunk.best_area_sum,
                                                best_time, best_area_sum))) {
            best_time = chunk.best_time;
            best_area_sum = chunk.best_area_sum;
            const auto& p0 =
                axis[0][static_cast<std::size_t>(chunk.best_i)];
            const auto& p1 =
                axis[1][static_cast<std::size_t>(chunk.best_j)];
            out.multi.datapaths = {p0.alloc, p1.alloc};
            out.multi.datapath_area = {p0.area, p1.area};
            out.multi.partition = chunk.best_partition;
            have_best = true;
        }
    }
    out.have_best = have_best;
    out.chunks_abandoned += static_cast<long long>(chunks_skipped);
    if (options.cancel != nullptr) {
        out.status = options.cancel->status();
        if (out.status == util::Solve_status::complete &&
            (out.rows_abandoned > 0 || out.chunks_abandoned > 0))
            out.status = util::Solve_status::cancelled;
    }

    out.seconds = timer.seconds();
    return out;
}

}  // namespace lycos::solver::detail
