// lycos::solver — the unified session API over the §5 methodology.
//
// The paper's pipeline is one loop — allocate, schedule, PACE-
// partition, score — but the repo grew four divergent entry points
// for it (exhaustive_search, hill_climb_search, find_best,
// multi_pace_partition), each with its own options struct and with
// caches, workspaces and thread pools threaded by every caller.  This
// module is the facade that owns all of that once:
//
//   Problem   what to solve: BSBs, target ASIC(s), restrictions and
//             the objective — a pure description, no machinery.
//   Session   the machinery for one problem: the thread pool, the
//             shared Eval_cache serving worker 0 and re-scores, and —
//             computed once and read by every worker — the shared
//             immutable cost invariants/frames (Eval_invariants) each
//             worker cache used to recompute privately.
//   Strategy  a registered, named way to search: `exhaustive_bb`
//             (branch-and-bound over the full space), `hill_climb`
//             (iterated restarts with value-DP screening), and
//             `multi_asic_bb` — the first multi-ASIC allocation
//             *search*, enumerating two-ASIC allocation pairs over
//             the frontier DP.
//
// Determinism contract (all strategies): the best tuple is
// bit-identical for any thread count, any chunking, any cache
// capacity, shared or private invariants.  The old free functions
// survive as thin deprecated shims delegating to a one-shot Session,
// pinned bit-identical by tests/test_solver.cpp and the CI bench
// cross-check.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/rmap.hpp"
#include "pace/multi_asic.hpp"
#include "search/eval_cache.hpp"
#include "search/evaluate.hpp"
#include "util/cancel.hpp"
#include "util/chunk_range.hpp"
#include "util/rng.hpp"

namespace lycos::util {
class Thread_pool;
}

namespace lycos::search {
struct Search_result;
class Dp_workspace_pool;
}

namespace lycos::solver {

/// What the search optimizes.  One objective today — the paper's:
/// minimal hybrid execution time, ties toward smaller data-path area,
/// then toward enumeration order.  The enum pins that contract in the
/// Problem instead of leaving it implicit in each entry point.
enum class Objective {
    min_hybrid_time,
};

/// One structural defect of a Problem description, as reported by
/// Problem::validate: which field is wrong and why, in plain words.
struct Problem_defect {
    std::string field;    ///< e.g. "lib", "restrictions"
    std::string message;  ///< human-readable explanation
};

/// A complete description of one allocation-search problem: the
/// application, the target silicon, the §4.3 restrictions bounding
/// the space, and the objective.  Pure data — building one runs
/// nothing; a Session adds the machinery.  The referenced BSBs,
/// library and storage model must outlive every Session built from
/// the Problem (the target is held by value).
struct Problem {
    std::span<const bsb::Bsb> bsbs;
    const hw::Hw_library* lib = nullptr;
    hw::Target target;
    core::Rmap restrictions;
    Objective objective = Objective::min_hybrid_time;

    pace::Controller_mode ctrl_mode = pace::Controller_mode::list_schedule;

    /// PACE area quantum used while searching (0 = exact default);
    /// Session::rescore always re-evaluates at the exact quantum.
    double area_quantum = 0.0;

    /// Forwarded to Eval_context::dp_table_budget (the engines pin it
    /// themselves when a search quantum is set).
    double dp_table_budget = 0.0;

    const estimate::Storage_model* storage = nullptr;
    sched::Scheduler_kind scheduler = sched::Scheduler_kind::event_driven;

    /// The two-ASIC target for `multi_asic_bb`: per-ASIC total areas.
    /// {0, 0} splits the single target's area evenly — the same
    /// default split the two-ASIC benches use.  Ignored by the
    /// single-ASIC strategies.
    std::array<double, 2> asic_areas{0.0, 0.0};

    /// Every structural defect of this description, not just the
    /// first: null library, no BSBs, negative areas or budgets,
    /// restrictions naming resources outside the library.  Empty =
    /// the Problem is well-formed.  The Session constructor calls
    /// this and throws one std::invalid_argument joining the full
    /// report, so a caller fixing a hand-built Problem sees every
    /// mistake at once instead of one per run.
    std::vector<Problem_defect> validate() const;
};

/// Problem from an existing Eval_context + restrictions — what the
/// deprecated shims (and callers mid-migration) use.
Problem make_problem(const search::Eval_context& ctx,
                     const core::Rmap& restrictions);

/// Extra knobs of the `hill_climb` strategy.
struct Hill_climb_extras {
    int n_restarts = 12;  ///< restart 0 = empty allocation, rest random
    int max_steps = 128;  ///< safety bound per climb
    /// Start points are drawn from this seed in restart order (the
    /// repo's fixed reproducible seed by default)...
    std::uint64_t seed = 0xD47E1998;
    /// ...or from this live generator when non-null (the deprecated
    /// shim passes its caller's rng through here).
    util::Rng* rng = nullptr;
};

/// Extra knobs of the `multi_asic_bb` strategy.
struct Multi_asic_extras {
    /// Soft cap on the walked pair space (after the per-axis area
    /// filter).  A pair space larger than this no longer throws: the
    /// search walks exactly the first `pair_limit` pairs in a0-major
    /// order — deterministically, whatever the thread count — and
    /// reports the rest in Multi_solve_result::pairs_skipped, so
    /// callers degrade to a best-of-prefix instead of failing
    /// mid-search.  The per-a0-row bound makes the default
    /// unreachable on the standard bench spaces (whole rows die
    /// before any pair DP runs); raise it (`lycos_cli --pair-limit`)
    /// or set it <= 0 (unlimited) for eigen-scale spaces.  When pairs
    /// are skipped, incumbent priming is disabled so pruning can only
    /// compare against pairs inside the walked prefix (the best pair
    /// stays exactly the brute-force best of that prefix).
    long long pair_limit = 1LL << 23;

    /// Branch-and-bound over the a0-major pair *tree*: before any
    /// per-pair DP runs in a row, an admissible per-row bound (the
    /// sparse value-only DP over the row's exact asic0 costs and a
    /// best-case relaxation of every asic1 axis point, areas rounded
    /// optimistically) may kill the whole row.  Off = the flat
    /// per-pair walk (useful as a reference; results are identical).
    bool use_row_bound = true;
};

/// Unified knobs across strategies; per-strategy extras ride in the
/// variant (monostate = strategy defaults; a mismatched alternative
/// throws).  Where a flat knob cannot apply it says so below, rather
/// than pretending: hill_climb and multi_asic_bb evaluate *through*
/// memoized costs by construction, so for them use_cache=false only
/// drops the shared session cache (each worker still memoizes
/// privately, bounded by cache_capacity).  For hill_climb,
/// use_pruning toggles the admissible proxy-cost screen on neighbour
/// evaluation (Eval_cache::find_one + optimistic stand-in costs;
/// candidates the proxy proves non-improving skip their exact screen
/// — the climb trajectory and best tuple are identical either way).
struct Solve_options {
    int n_threads = 0;        ///< 0 = hardware concurrency
    bool use_cache = true;    ///< memoize per-BSB scheduling (see above)
    bool use_pruning = true;  ///< branch-and-bound / screening prunes
    std::size_t cache_capacity = 0;  ///< per-worker cache cap (0 = unbounded)

    /// Caller-owned cache for worker 0 instead of the session's (the
    /// deprecated shims pass their caller's cache through here).
    search::Eval_cache* shared_cache = nullptr;

    // --- Deadlines, budgets, and anytime results (docs/api.md) ---
    // When any of these is armed, Session::solve builds a
    // util::Cancel_token for the run and every strategy degrades to
    // an anytime solve: it stops cooperatively at a chunk/row
    // boundary, returns the best of what it explored, and reports
    // why in Solve_result::status.

    /// Wall-clock budget for the solve in milliseconds (0 = none).
    /// Checked cooperatively, so the overrun is bounded by one DP
    /// row / one evaluation, not by a thread preemption.
    double deadline_ms = 0.0;

    /// Cap on scored points — screened or fully evaluated, the same
    /// work Solve_result::n_evaluated counts (0 = unlimited).
    std::uint64_t max_evals = 0;

    /// Cap on DP cells/states swept across every PACE run of the
    /// solve (0 = unlimited).  The finest-grained budget: it trips
    /// inside a single evaluation's sweep.
    std::uint64_t max_dp_cells = 0;

    /// Deterministic fault injection for tests: trips the token (or
    /// simulates an allocation failure) at a fixed logical work unit,
    /// independent of threads and wall clock.  Not for production.
    util::Fault_injector fault;

    /// Engine-level escape hatch: a caller-owned token used directly
    /// (the knobs above then layer on top of it as its child).
    /// Prefer Session::solve(name, options, token) for external
    /// cancellation.
    const util::Cancel_token* cancel = nullptr;

    // --- Distributed-search hooks (src/dist/, docs/distributed.md) ---

    /// Restrict the walk to the logical-unit range [window.begin,
    /// window.end) — leaf indices for `exhaustive_bb`, a0 rows for
    /// `multi_asic_bb` (the same units Fault_injector cuts at).  The
    /// default sentinel covers the whole space.  This is the range
    /// *lease* of the distributed search: folding per-window bests of
    /// a partition of the space in window order reproduces the
    /// full-space best tuple bit-identically; one window's best on
    /// its own may be screened against global probe points.
    /// `hill_climb` has no unit range to lease and throws when a
    /// window is set.
    util::Chunk_range window;

    /// Optional cross-process incumbent bound sampled by the engines
    /// (chunk entry, strided leaf polls, row boundaries) and folded
    /// into the prune threshold.  Every value stored in it must be
    /// the hybrid time of a fully evaluated real point of the space —
    /// then any broadcast/sampling timing yields the bit-identical
    /// best tuple (see util::Shared_bound).
    const util::Shared_bound* incumbent_bound = nullptr;

    std::variant<std::monostate, Hill_climb_extras, Multi_asic_extras>
        extras;
};

/// The `multi_asic_bb` section of a Solve_result (active only when
/// that strategy ran).  The unified counters (n_evaluated / n_pruned
/// / space_size) in the enclosing Solve_result count allocation
/// *pairs* for this strategy.
struct Multi_solve_result {
    bool active = false;
    std::array<core::Rmap, 2> datapaths;          ///< best pair found
    std::array<double, 2> datapath_area{0.0, 0.0};
    std::array<double, 2> asic_areas{0.0, 0.0};   ///< budgets searched
    pace::Multi_pace_result partition;            ///< its two-ASIC partition
    std::array<long long, 2> axis_points{0, 0};   ///< per-ASIC fitting points

    // Pair-tree branch-and-bound observability:
    long long rows_visited = 0;  ///< a0 rows walked (within the prefix)
    long long rows_pruned = 0;   ///< rows killed whole by the row bound
    /// Pairs beyond Multi_asic_extras::pair_limit, deterministically
    /// skipped instead of thrown on (0 = the whole space was walked).
    long long pairs_skipped = 0;
    /// Sparse-DP work across every screening/partition sweep of this
    /// solve: Pareto states actually swept vs. the dense grids the
    /// same sweeps would have scanned (the ratio is the aggregate
    /// sparse occupancy).
    long long dp_states_swept = 0;
    long long dp_cells_dense = 0;
};

/// Per-worker stats of a distributed solve (Dist_solve_result), in
/// coordinator connection order.
struct Dist_worker_stats {
    long long ranges_served = 0;       ///< lease results accepted
    long long incumbents_applied = 0;  ///< broadcast bounds that tightened
                                       ///< this worker's Shared_bound
    long long remote_bound_kills = 0;  ///< prunes only the remote bound made
};

/// The distributed section of a Solve_result (active only when the
/// solve ran through dist::solve_distributed; see docs/distributed.md).
struct Dist_solve_result {
    bool active = false;
    int n_workers = 0;          ///< workers that ever connected
    long long n_units = 0;      ///< leased logical units (leaves / rows)
    long long leases_granted = 0;     ///< grants incl. re-grants
    long long leases_reassigned = 0;  ///< ranges re-queued after a death
    long long workers_lost = 0;       ///< EOF, send failure, or timeout
    long long incumbent_broadcasts = 0;  ///< bound messages fanned out
    long long leases_solved_locally = 0; ///< coordinator fallback ranges
    std::vector<Dist_worker_stats> workers;
};

/// Unified outcome of Session::solve, whatever strategy ran.
struct Solve_result {
    std::string strategy;      ///< registry name of the strategy that ran
    search::Evaluation best;   ///< best single-ASIC allocation
                               ///< (default-constructed for multi_asic_bb
                               ///< — see `multi`)
    /// True once any point was fully evaluated.  Always true for a
    /// full-space solve (the empty allocation / pair is a real point);
    /// a windowed solve may legitimately end without one when every
    /// leaf of the window was screened or infeasible.
    bool have_best = false;
    long long n_evaluated = 0; ///< points scored (value-DP or full)
    long long n_pruned = 0;    ///< points skipped by bounds/screening
    /// Prunes attributable to Solve_options::incumbent_bound alone
    /// (the remote bound was strictly tighter than every local
    /// threshold at the kill site).
    long long n_pruned_remote = 0;
    long long space_size = 0;  ///< full space (pairs for multi_asic_bb)
    double seconds = 0.0;
    int n_threads = 1;
    search::Eval_cache_stats cache_stats;  ///< aggregated over workers
    long long dp_rows_reused = 0;  ///< incremental-DP observability
    long long dp_rows_swept = 0;
    /// The share of dp_rows_reused resumed from checkpoints an
    /// *earlier* solve left in the session's persistent workspace pool
    /// (Session::workspaces) — the cross-request warm-start counter of
    /// the serve layer's request batching.  0 on a fresh session.
    long long dp_rows_reused_cross_request = 0;

    /// Requests served in the same serve::Server batch as this one,
    /// including it (1 = served alone on a worker).  Set by the serve
    /// layer only; 0 for direct Session::solve calls.
    int batch_size = 0;

    /// Why the solve ended.  `complete` = the search ran to its
    /// natural end; anything else is an anytime result: `best` is the
    /// best of the explored prefix, honest but possibly suboptimal.
    util::Solve_status status = util::Solve_status::complete;

    /// Truncation observability: worker chunks that stopped early (or
    /// never started) and finer work units — restarts, a0 rows,
    /// subtree leaves — refused or abandoned.  Like n_evaluated these
    /// depend on the chunking; only the best tuple is pinned.
    long long chunks_abandoned = 0;
    long long rows_abandoned = 0;

    Multi_solve_result multi;
    Dist_solve_result dist;
};

/// Shim helper: the old Search_result view of a Solve_result.
search::Search_result to_search_result(const Solve_result& result);

class Session;

/// A registered way to search a Problem.  Strategies are stateless
/// singletons; all per-solve state lives in the Session and in the
/// engine calls.
class Strategy {
public:
    virtual ~Strategy() = default;
    virtual std::string_view name() const = 0;
    virtual std::string_view description() const = 0;
    virtual Solve_result solve(Session& session,
                               const Solve_options& options) const = 0;
};

/// All registered strategies, in registry order (exhaustive_bb,
/// hill_climb, multi_asic_bb).
std::span<const Strategy* const> strategies();

/// Lookup by registry name; nullptr when unknown.
const Strategy* find_strategy(std::string_view name);

/// The machinery for solving one Problem: owns the thread pool, the
/// shared Eval_cache (worker 0 + re-scores), and the immutable
/// Eval_invariants every worker cache reads instead of recomputing.
/// Sessions are single-threaded on the outside (one solve at a time)
/// and neither copyable nor movable (the derived Eval_context points
/// into the session-held Problem).
class Session {
public:
    /// Validates the problem via Problem::validate and throws one
    /// std::invalid_argument listing *every* defect when it is not
    /// well-formed.
    explicit Session(Problem problem);
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    const Problem& problem() const { return problem_; }

    /// The Eval_context the strategies evaluate under (references the
    /// session-held problem; valid for the session's lifetime).
    const search::Eval_context& context() const { return ctx_; }

    /// Size of the single-ASIC allocation space under the problem's
    /// restrictions.
    long long space_size() const;

    /// The shared immutable frames/invariants, computed on first use
    /// and reused by every subsequent solve of this session.
    const std::shared_ptr<const search::Eval_invariants>& invariants();

    /// The session-owned shared cache (created on first use with
    /// `capacity`; later calls reuse it regardless of capacity).  It
    /// serves worker 0 of every solve and all re-scores, so the fine
    /// re-score of a search winner runs entirely on warm entries.
    search::Eval_cache& cache(std::size_t capacity = 0);

    /// The session-owned thread pool, created lazily and re-created
    /// only when a solve wants more threads than it has.
    util::Thread_pool& pool(std::size_t n_threads);

    /// The session-owned persistent DP workspace pool (created on
    /// first use): every solve lends it to the engines as
    /// Exhaustive_options::dp_pool, so worker c's incremental-PACE
    /// checkpoint survives between solves and a repeat solve of the
    /// same (quantum, width) fingerprint resumes at the first
    /// divergent cost row instead of re-sweeping — the serve layer's
    /// cross-request warm start (Solve_result::
    /// dp_rows_reused_cross_request).  Results are bit-identical with
    /// or without the warm checkpoints (see Pace_workspace).
    search::Dp_workspace_pool& workspaces();

    /// Run the named strategy.  Throws std::invalid_argument for
    /// unknown names or mismatched Solve_options::extras.  When the
    /// options arm a deadline, budget or fault injector, the solve
    /// runs under a Cancel_token and may return an anytime result
    /// (Solve_result::status != complete).
    Solve_result solve(std::string_view strategy,
                       const Solve_options& options = {});

    /// Same, under an external caller-owned cancellation token (e.g.
    /// tripped from a UI thread via Cancel_token::request_cancel).
    /// Any deadline/budget knobs in `options` layer on top as a child
    /// token; the solve stops on whichever condition fires first.
    /// `cancel` must outlive the call — the session keeps no
    /// reference past it.
    Solve_result solve(std::string_view strategy,
                       const Solve_options& options,
                       const util::Cancel_token& cancel);

    /// Auto strategy pick, mirroring the paper's treatment: exhaustive
    /// when the space is within `exhaustive_limit` evaluations, else
    /// iterated hill climbing.
    Solve_result solve(const Solve_options& options = {});

    /// Re-evaluate `datapath` at the exact (quantum-free) evaluation
    /// settings through the session cache — schedules are quantum-
    /// independent, so a re-score after a coarse search runs entirely
    /// on warm entries.
    search::Evaluation rescore(const core::Rmap& datapath);

    /// Space-size threshold of the auto strategy pick.
    long long exhaustive_limit = 30000;

private:
    Problem problem_;
    search::Eval_context ctx_;
    std::shared_ptr<const search::Eval_invariants> invariants_;
    std::unique_ptr<search::Eval_cache> cache_;
    std::unique_ptr<util::Thread_pool> pool_;
    std::unique_ptr<search::Dp_workspace_pool> dp_pool_;
};

}  // namespace lycos::solver
