#include <algorithm>
#include <stdexcept>

#include "search/exhaustive.hpp"
#include "search/hill_climb.hpp"
#include "solver/internal.hpp"
#include "util/thread_pool.hpp"

namespace lycos::solver {

namespace detail {

namespace {

/// The session pool, but only when the engine will actually run
/// parallel chunks: the engines clamp their thread count to the work
/// available (`work` = space size / restarts), and a tiny problem
/// should not spawn hardware-concurrency threads it never uses.
/// Null = the engine runs its single chunk inline.
util::Thread_pool* pool_for(Session& session, int requested,
                            long long work)
{
    std::size_t n = requested > 0
                        ? static_cast<std::size_t>(requested)
                        : util::Thread_pool::default_concurrency();
    n = std::min(n, static_cast<std::size_t>(std::max(1LL, work)));
    return n > 1 ? &session.pool(n) : nullptr;
}

Solve_result from_search_result(std::string_view strategy,
                                const search::Search_result& r)
{
    Solve_result out;
    out.strategy = strategy;
    out.best = r.best;
    out.have_best = r.have_best;
    out.n_pruned_remote = r.n_pruned_remote;
    out.n_evaluated = r.n_evaluated;
    out.n_pruned = r.n_pruned;
    out.space_size = r.space_size;
    out.seconds = r.seconds;
    out.n_threads = r.n_threads;
    out.cache_stats = r.cache_stats;
    out.dp_rows_reused = r.dp_rows_reused;
    out.dp_rows_swept = r.dp_rows_swept;
    out.dp_rows_reused_cross_request = r.dp_rows_reused_cross_request;
    out.status = r.status;
    out.chunks_abandoned = r.chunks_abandoned;
    out.rows_abandoned = r.rows_abandoned;
    return out;
}

}  // namespace

std::array<double, 2> multi_asic_budgets(const Problem& problem)
{
    if (problem.asic_areas[0] != 0.0 || problem.asic_areas[1] != 0.0)
        return problem.asic_areas;
    const double half = problem.target.asic.total_area / 2.0;
    return {half, half};
}

Solve_result solve_exhaustive_bb(Session& session,
                                 const Solve_options& options)
{
    extras_or_default<std::monostate>(options, "exhaustive_bb");
    search::Exhaustive_options eo;
    eo.n_threads = options.n_threads;
    eo.use_cache = options.use_cache;
    eo.use_pruning = options.use_pruning;
    eo.cache_capacity = options.cache_capacity;
    if (options.use_cache)
        eo.shared_cache = options.shared_cache != nullptr
                              ? options.shared_cache
                              : &session.cache(options.cache_capacity);
    eo.invariants = session.invariants();
    eo.pool = pool_for(session, options.n_threads,
                       options.window.whole() ? session.space_size()
                                              : options.window.size());
    eo.dp_pool = &session.workspaces();
    eo.cancel = options.cancel;
    eo.window = options.window;
    eo.incumbent_bound = options.incumbent_bound;
    return from_search_result(
        "exhaustive_bb",
        search::exhaustive_engine(session.context(),
                                  session.problem().restrictions, eo));
}

Solve_result solve_hill_climb(Session& session, const Solve_options& options)
{
    const auto extras =
        extras_or_default<Hill_climb_extras>(options, "hill_climb");
    if (!options.window.whole())
        throw std::invalid_argument(
            "hill_climb: Solve_options::window is not supported — the "
            "climb has no contiguous unit range to lease");
    search::Hill_climb_options ho;
    ho.n_restarts = extras.n_restarts;
    ho.max_steps = extras.max_steps;
    ho.n_threads = options.n_threads;
    ho.use_proxy_screen = options.use_pruning;
    ho.cache_capacity = options.cache_capacity;
    if (options.use_cache)
        ho.shared_cache = options.shared_cache != nullptr
                              ? options.shared_cache
                              : &session.cache(options.cache_capacity);
    ho.invariants = session.invariants();
    ho.pool = pool_for(session, options.n_threads, extras.n_restarts);
    ho.dp_pool = &session.workspaces();
    ho.cancel = options.cancel;
    util::Rng seeded(extras.seed);
    util::Rng& rng = extras.rng != nullptr ? *extras.rng : seeded;
    return from_search_result(
        "hill_climb",
        search::hill_climb_engine(session.context(),
                                  session.problem().restrictions, ho, rng));
}

}  // namespace detail

namespace {

template <Solve_result (*Fn)(Session&, const Solve_options&)>
class Registered final : public Strategy {
public:
    Registered(std::string_view name, std::string_view description)
        : name_(name), description_(description)
    {
    }
    std::string_view name() const override { return name_; }
    std::string_view description() const override { return description_; }
    Solve_result solve(Session& session,
                       const Solve_options& options) const override
    {
        return Fn(session, options);
    }

private:
    std::string_view name_;
    std::string_view description_;
};

const Registered<detail::solve_exhaustive_bb> k_exhaustive_bb{
    "exhaustive_bb",
    "deterministic branch-and-bound over the full allocation space"};
const Registered<detail::solve_hill_climb> k_hill_climb{
    "hill_climb",
    "iterated steepest-ascent restarts with value-DP screening"};
const Registered<detail::solve_multi_asic_bb> k_multi_asic_bb{
    "multi_asic_bb",
    "bounded search over two-ASIC allocation pairs (frontier DP)"};

const Strategy* const k_registry[] = {&k_exhaustive_bb, &k_hill_climb,
                                      &k_multi_asic_bb};

}  // namespace

std::span<const Strategy* const> strategies()
{
    return k_registry;
}

const Strategy* find_strategy(std::string_view name)
{
    for (const Strategy* s : k_registry)
        if (s->name() == name)
            return s;
    return nullptr;
}

}  // namespace lycos::solver
