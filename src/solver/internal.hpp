// Internal seams between the solver translation units: the strategy
// singletons in strategies.cpp dispatch to these per-strategy solve
// functions (multi_asic_bb lives in its own file — the pair walk is a
// full engine, not a thin adapter).  Not part of the public API.
#pragma once

#include <stdexcept>
#include <string>

#include "solver/solver.hpp"

namespace lycos::solver::detail {

/// Extras accessor shared by the strategies: defaults on monostate, a
/// loud error on a mismatched alternative (a Multi_asic_extras handed
/// to hill_climb is a caller bug, not something to silently ignore).
template <typename Extras>
Extras extras_or_default(const Solve_options& options,
                         std::string_view strategy)
{
    if (std::holds_alternative<std::monostate>(options.extras))
        return Extras{};
    if (const auto* e = std::get_if<Extras>(&options.extras))
        return *e;
    throw std::invalid_argument(std::string(strategy) +
                                ": Solve_options::extras holds the wrong "
                                "alternative for this strategy");
}

Solve_result solve_exhaustive_bb(Session& session,
                                 const Solve_options& options);
Solve_result solve_hill_climb(Session& session,
                              const Solve_options& options);
Solve_result solve_multi_asic_bb(Session& session,
                                 const Solve_options& options);

/// The per-ASIC area budgets multi_asic_bb searches: the problem's
/// asic_areas, or an even split of the single target when unset.
std::array<double, 2> multi_asic_budgets(const Problem& problem);

}  // namespace lycos::solver::detail
