#include "solver/solver.hpp"

#include <cmath>
#include <stdexcept>

#include "search/alloc_space.hpp"
#include "search/exhaustive.hpp"
#include "search/workspace_pool.hpp"
#include "solver/internal.hpp"
#include "util/thread_pool.hpp"

namespace lycos::solver {

namespace {

/// Runs the full validation and throws one report naming every
/// defect; returns the (now known non-null) library so the Session
/// constructor can run it from its member-init list, before ctx_
/// dereferences the pointer.
const hw::Hw_library& validated_lib(const Problem& problem)
{
    const auto defects = problem.validate();
    if (!defects.empty()) {
        std::string report = "solver::Session: invalid Problem:";
        for (const auto& d : defects)
            report += "\n  - " + d.field + ": " + d.message;
        throw std::invalid_argument(report);
    }
    return *problem.lib;
}

}  // namespace

std::vector<Problem_defect> Problem::validate() const
{
    std::vector<Problem_defect> defects;
    // A NaN poisons the DP silently — every comparison involving it is
    // false, so bounds stop pruning and better_tuple stops ordering —
    // and an Inf turns areas/times into garbage that still "compares".
    // Both are rejected up front, like the structural defects, instead
    // of producing a confidently wrong partition.
    const auto finite = [](double x) { return std::isfinite(x); };
    if (lib == nullptr)
        defects.push_back({"lib", "library pointer is null"});
    if (bsbs.empty())
        defects.push_back({"bsbs", "no basic scheduling blocks to "
                                   "partition"});
    for (std::size_t i = 0; i < bsbs.size(); ++i)
        if (!finite(bsbs[i].profile) || bsbs[i].profile < 0.0)
            defects.push_back(
                {"bsbs", "BSB " + std::to_string(i) + " (\"" +
                             bsbs[i].name + "\") has a non-finite or "
                             "negative profile count (" +
                             std::to_string(bsbs[i].profile) + ")"});
    if (target.asic.total_area < 0.0)
        defects.push_back({"target",
                           "negative ASIC area (" +
                               std::to_string(target.asic.total_area) +
                               ")"});
    if (!finite(target.asic.total_area))
        defects.push_back({"target", "non-finite ASIC area (" +
                                         std::to_string(
                                             target.asic.total_area) +
                                         ")"});
    if (!finite(target.cpu.clock_mhz) || target.cpu.clock_mhz <= 0.0)
        defects.push_back({"target",
                           "processor clock must be finite and positive (" +
                               std::to_string(target.cpu.clock_mhz) + ")"});
    if (!finite(target.asic.clock_mhz) || target.asic.clock_mhz <= 0.0)
        defects.push_back({"target",
                           "ASIC clock must be finite and positive (" +
                               std::to_string(target.asic.clock_mhz) + ")"});
    if (!finite(target.bus.ns_per_word) || target.bus.ns_per_word < 0.0)
        defects.push_back({"target",
                           "non-finite or negative bus cost (" +
                               std::to_string(target.bus.ns_per_word) +
                               ")"});
    for (const double gate : {target.gates.reg, target.gates.and2,
                              target.gates.or2, target.gates.inv})
        if (!finite(gate) || gate < 0.0) {
            defects.push_back({"target",
                               "non-finite or negative controller gate "
                               "area (" +
                                   std::to_string(gate) + ")"});
            break;
        }
    if (asic_areas[0] < 0.0 || asic_areas[1] < 0.0)
        defects.push_back({"asic_areas",
                           "negative multi-ASIC area budget (" +
                               std::to_string(asic_areas[0]) + ", " +
                               std::to_string(asic_areas[1]) + ")"});
    if (!finite(asic_areas[0]) || !finite(asic_areas[1]))
        defects.push_back({"asic_areas",
                           "non-finite multi-ASIC area budget (" +
                               std::to_string(asic_areas[0]) + ", " +
                               std::to_string(asic_areas[1]) + ")"});
    if (area_quantum < 0.0)
        defects.push_back({"area_quantum",
                           "negative PACE area quantum (" +
                               std::to_string(area_quantum) + ")"});
    if (!finite(area_quantum))
        defects.push_back({"area_quantum",
                           "non-finite PACE area quantum (" +
                               std::to_string(area_quantum) + ")"});
    if (dp_table_budget < 0.0)
        defects.push_back({"dp_table_budget",
                           "negative DP table budget (" +
                               std::to_string(dp_table_budget) + ")"});
    if (!finite(dp_table_budget))
        defects.push_back({"dp_table_budget",
                           "non-finite DP table budget (" +
                               std::to_string(dp_table_budget) + ")"});
    if (lib != nullptr) {
        // Hw_library::add already rejects non-finite and non-positive
        // areas; this re-check is defence in depth for a library that
        // reached us through a different constructor or a future
        // deserializer, so a poisoned area surfaces as a named defect
        // here instead of as NaN sums deep in the DP.
        for (std::size_t r = 0; r < lib->size(); ++r) {
            const auto& res = (*lib)[static_cast<hw::Resource_id>(r)];
            if (!finite(res.area) || res.area <= 0.0)
                defects.push_back(
                    {"lib", "resource \"" + res.name +
                                "\" has a non-finite or non-positive "
                                "area (" +
                                std::to_string(res.area) + ")"});
        }
    }
    if (lib != nullptr) {
        for (const auto& [id, count] : restrictions.entries())
            if (id < 0 || static_cast<std::size_t>(id) >= lib->size())
                defects.push_back(
                    {"restrictions",
                     "resource id " + std::to_string(id) +
                         " is outside the library (size " +
                         std::to_string(lib->size()) + ")"});
    }
    return defects;
}

Problem make_problem(const search::Eval_context& ctx,
                     const core::Rmap& restrictions)
{
    Problem p;
    p.bsbs = ctx.bsbs;
    p.lib = &ctx.lib;
    p.target = ctx.target;
    p.restrictions = restrictions;
    p.ctrl_mode = ctx.ctrl_mode;
    p.area_quantum = ctx.area_quantum;
    p.dp_table_budget = ctx.dp_table_budget;
    p.storage = ctx.storage;
    p.scheduler = ctx.scheduler;
    return p;
}

search::Search_result to_search_result(const Solve_result& result)
{
    search::Search_result out;
    out.best = result.best;
    out.have_best = result.have_best;
    out.n_evaluated = result.n_evaluated;
    out.n_pruned = result.n_pruned;
    out.n_pruned_remote = result.n_pruned_remote;
    out.space_size = result.space_size;
    out.seconds = result.seconds;
    out.n_threads = result.n_threads;
    out.cache_stats = result.cache_stats;
    out.dp_rows_reused = result.dp_rows_reused;
    out.dp_rows_swept = result.dp_rows_swept;
    out.dp_rows_reused_cross_request = result.dp_rows_reused_cross_request;
    out.status = result.status;
    out.chunks_abandoned = result.chunks_abandoned;
    out.rows_abandoned = result.rows_abandoned;
    return out;
}

Session::Session(Problem problem)
    : problem_(std::move(problem)),
      ctx_{problem_.bsbs,          validated_lib(problem_),
           problem_.target,        problem_.ctrl_mode,
           problem_.area_quantum,  problem_.storage,
           problem_.scheduler,     problem_.dp_table_budget}
{
}

Session::~Session() = default;

long long Session::space_size() const
{
    return search::Alloc_space(ctx_.lib, problem_.restrictions).size();
}

const std::shared_ptr<const search::Eval_invariants>& Session::invariants()
{
    if (invariants_ == nullptr)
        invariants_ = std::make_shared<const search::Eval_invariants>(ctx_);
    return invariants_;
}

search::Eval_cache& Session::cache(std::size_t capacity)
{
    if (cache_ == nullptr)
        cache_ = std::make_unique<search::Eval_cache>(ctx_, capacity,
                                                      invariants());
    return *cache_;
}

util::Thread_pool& Session::pool(std::size_t n_threads)
{
    if (n_threads == 0)
        n_threads = util::Thread_pool::default_concurrency();
    if (pool_ == nullptr || pool_->size() < n_threads)
        pool_ = std::make_unique<util::Thread_pool>(n_threads);
    return *pool_;
}

search::Dp_workspace_pool& Session::workspaces()
{
    if (dp_pool_ == nullptr)
        dp_pool_ = std::make_unique<search::Dp_workspace_pool>();
    return *dp_pool_;
}

namespace {

Solve_result solve_with_token(Session& session, std::string_view strategy,
                              const Solve_options& options,
                              const util::Cancel_token* external)
{
    const Strategy* s = find_strategy(strategy);
    if (s == nullptr)
        throw std::invalid_argument("solver::Session: unknown strategy \"" +
                                    std::string(strategy) + "\"");
    // The effective token lives on this stack frame for exactly the
    // duration of the strategy run; engines hold only the raw
    // pointer.  An external token (from the overload or
    // Solve_options::cancel) becomes the parent, so tripping it
    // cancels this solve too.
    const bool armed = options.deadline_ms > 0.0 || options.max_evals > 0 ||
                       options.max_dp_cells > 0 || options.fault.armed();
    if (armed) {
        const util::Cancel_token* parent =
            external != nullptr ? external : options.cancel;
        util::Cancel_token token(options.deadline_ms, options.max_evals,
                                 options.max_dp_cells, options.fault,
                                 parent);
        Solve_options opts = options;
        opts.cancel = &token;
        return s->solve(session, opts);
    }
    if (external != nullptr) {
        Solve_options opts = options;
        opts.cancel = external;
        return s->solve(session, opts);
    }
    return s->solve(session, options);
}

}  // namespace

Solve_result Session::solve(std::string_view strategy,
                            const Solve_options& options)
{
    return solve_with_token(*this, strategy, options, nullptr);
}

Solve_result Session::solve(std::string_view strategy,
                            const Solve_options& options,
                            const util::Cancel_token& cancel)
{
    return solve_with_token(*this, strategy, options, &cancel);
}

Solve_result Session::solve(const Solve_options& options)
{
    return solve(space_size() <= exhaustive_limit ? "exhaustive_bb"
                                                  : "hill_climb",
                 options);
}

search::Evaluation Session::rescore(const core::Rmap& datapath)
{
    search::Eval_context fine = ctx_;
    fine.area_quantum = 0.0;
    fine.dp_table_budget = 0.0;
    return search::evaluate_allocation(fine, datapath, &cache());
}

}  // namespace lycos::solver
