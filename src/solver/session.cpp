#include "solver/solver.hpp"

#include <stdexcept>

#include "search/alloc_space.hpp"
#include "search/exhaustive.hpp"
#include "solver/internal.hpp"
#include "util/thread_pool.hpp"

namespace lycos::solver {

namespace {

const hw::Hw_library& require_lib(const hw::Hw_library* lib)
{
    if (lib == nullptr)
        throw std::invalid_argument("solver::Session: Problem.lib is null");
    return *lib;
}

}  // namespace

Problem make_problem(const search::Eval_context& ctx,
                     const core::Rmap& restrictions)
{
    Problem p;
    p.bsbs = ctx.bsbs;
    p.lib = &ctx.lib;
    p.target = ctx.target;
    p.restrictions = restrictions;
    p.ctrl_mode = ctx.ctrl_mode;
    p.area_quantum = ctx.area_quantum;
    p.dp_table_budget = ctx.dp_table_budget;
    p.storage = ctx.storage;
    p.scheduler = ctx.scheduler;
    return p;
}

search::Search_result to_search_result(const Solve_result& result)
{
    search::Search_result out;
    out.best = result.best;
    out.n_evaluated = result.n_evaluated;
    out.n_pruned = result.n_pruned;
    out.space_size = result.space_size;
    out.seconds = result.seconds;
    out.n_threads = result.n_threads;
    out.cache_stats = result.cache_stats;
    out.dp_rows_reused = result.dp_rows_reused;
    out.dp_rows_swept = result.dp_rows_swept;
    return out;
}

Session::Session(Problem problem)
    : problem_(std::move(problem)),
      ctx_{problem_.bsbs,          require_lib(problem_.lib),
           problem_.target,        problem_.ctrl_mode,
           problem_.area_quantum,  problem_.storage,
           problem_.scheduler,     problem_.dp_table_budget}
{
    if (problem_.target.asic.total_area < 0.0)
        throw std::invalid_argument(
            "solver::Session: negative ASIC area");
    const auto budgets = detail::multi_asic_budgets(problem_);
    if (budgets[0] < 0.0 || budgets[1] < 0.0)
        throw std::invalid_argument(
            "solver::Session: negative multi-ASIC area");
}

Session::~Session() = default;

long long Session::space_size() const
{
    return search::Alloc_space(ctx_.lib, problem_.restrictions).size();
}

const std::shared_ptr<const search::Eval_invariants>& Session::invariants()
{
    if (invariants_ == nullptr)
        invariants_ = std::make_shared<const search::Eval_invariants>(ctx_);
    return invariants_;
}

search::Eval_cache& Session::cache(std::size_t capacity)
{
    if (cache_ == nullptr)
        cache_ = std::make_unique<search::Eval_cache>(ctx_, capacity,
                                                      invariants());
    return *cache_;
}

util::Thread_pool& Session::pool(std::size_t n_threads)
{
    if (n_threads == 0)
        n_threads = util::Thread_pool::default_concurrency();
    if (pool_ == nullptr || pool_->size() < n_threads)
        pool_ = std::make_unique<util::Thread_pool>(n_threads);
    return *pool_;
}

Solve_result Session::solve(std::string_view strategy,
                            const Solve_options& options)
{
    const Strategy* s = find_strategy(strategy);
    if (s == nullptr)
        throw std::invalid_argument("solver::Session: unknown strategy \"" +
                                    std::string(strategy) + "\"");
    return s->solve(*this, options);
}

Solve_result Session::solve(const Solve_options& options)
{
    return solve(space_size() <= exhaustive_limit ? "exhaustive_bb"
                                                  : "hill_climb",
                 options);
}

search::Evaluation Session::rescore(const core::Rmap& datapath)
{
    search::Eval_context fine = ctx_;
    fine.area_quantum = 0.0;
    fine.dp_table_budget = 0.0;
    return search::evaluate_allocation(fine, datapath, &cache());
}

}  // namespace lycos::solver
