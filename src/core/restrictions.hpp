// Allocation restrictions (§4.3).
//
// The allocation algorithm is greedy, so it could keep allocating
// units of one type.  The ASAP schedule bounds how many operations of
// a type can ever execute in parallel; allocating more units than that
// peak can never help.  Because BSBs execute one at a time on the
// ASIC, the bound for a resource type is the *maximum over BSBs* of
// the peak concurrent demand its operation set faces in that BSB's
// ASAP schedule.
#pragma once

#include <span>

#include "core/analysis.hpp"
#include "core/rmap.hpp"
#include "hw/resource.hpp"

namespace lycos::core {

/// Upper bound per resource type ("a maximum of 3 multipliers, for
/// instance").  Types whose operation set never occurs get bound 0.
Rmap compute_restrictions(std::span<const Bsb_info> infos,
                          const hw::Hw_library& lib);

}  // namespace lycos::core
