#include "core/multi_allocator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lycos::core {

namespace {

/// Max urgency of a BSB given its placement: software BSBs use raw
/// FURO; hardware BSBs divide by Alloc(o)+1 of *their* ASIC.
double placement_urgency(const Bsb_info& info, int placement,
                         const std::array<Rmap, 2>& allocations,
                         const hw::Hw_library& lib)
{
    if (placement < 0)
        return max_urgency(info, false, Rmap{}, lib);
    return max_urgency(info, true,
                       allocations[static_cast<std::size_t>(placement)], lib);
}

std::vector<int> prioritize_placed(std::span<const Bsb_info> infos,
                                   const std::vector<int>& placement,
                                   const std::array<Rmap, 2>& allocations,
                                   const hw::Hw_library& lib)
{
    std::vector<double> key(infos.size());
    for (std::size_t i = 0; i < infos.size(); ++i)
        key[i] = placement_urgency(infos[i], placement[i], allocations, lib);
    std::vector<int> order(infos.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return key[static_cast<std::size_t>(a)] >
               key[static_cast<std::size_t>(b)];
    });
    return order;
}

}  // namespace

Two_asic_result allocate_two_asics(std::span<const Bsb_info> infos,
                                   const hw::Hw_library& lib,
                                   const Two_asic_options& options)
{
    for (double b : options.budgets)
        if (b < 0.0)
            throw std::invalid_argument("allocate_two_asics: negative budget");

    const std::size_t n = infos.size();
    Two_asic_result result;
    result.restrictions = options.restrictions
                              ? *options.restrictions
                              : compute_restrictions(infos, lib);
    result.pseudo_placement.assign(n, -1);
    result.remaining = {options.budgets[0], options.budgets[1]};

    const Rmap& bounds = result.restrictions;

    auto required_on = [&](const Bsb_info& info, int asic)
        -> std::optional<Rmap> {
        Rmap req;
        for (auto k : hw::all_op_kinds()) {
            if (!info.ops.contains(k))
                continue;
            if (req.covers(hw::Op_set{k}, lib))
                continue;
            if (result.allocations[static_cast<std::size_t>(asic)]
                    .covers(hw::Op_set{k}, lib))
                continue;
            const auto r = select_executor(lib, k, options.selection);
            if (!r)
                return std::nullopt;
            req.add(*r);
        }
        return req;
    };

    auto order = prioritize_placed(infos, result.pseudo_placement,
                                   result.allocations, lib);

    std::size_t i = 0;
    while (i < n &&
           (result.remaining[0] > 0.0 || result.remaining[1] > 0.0)) {
        bool changed = false;
        const int b = order[i];
        const Bsb_info& info = infos[static_cast<std::size_t>(b)];
        const int placed = result.pseudo_placement[static_cast<std::size_t>(b)];

        if (placed >= 0) {
            // One more unit for the most urgent kind, on the same ASIC.
            auto& alloc = result.allocations[static_cast<std::size_t>(placed)];
            const auto kind = most_urgent_kind(info, true, alloc, lib);
            if (kind) {
                const auto r = select_executor(lib, *kind, options.selection);
                if (r &&
                    lib[*r].area <=
                        result.remaining[static_cast<std::size_t>(placed)] &&
                    alloc(*r) + 1 <= bounds(*r)) {
                    alloc.add(*r);
                    result.remaining[static_cast<std::size_t>(placed)] -=
                        lib[*r].area;
                    changed = true;
                }
            }
        }
        else {
            // Prefer the ASIC with the most remaining area; fall back
            // to the other if the first cannot afford the move.
            std::array<int, 2> try_order =
                result.remaining[0] >= result.remaining[1]
                    ? std::array<int, 2>{0, 1}
                    : std::array<int, 2>{1, 0};
            for (int asic : try_order) {
                const auto req = required_on(info, asic);
                if (!req)
                    break;  // library cannot execute this BSB at all
                bool within_bounds = true;
                const auto& alloc =
                    result.allocations[static_cast<std::size_t>(asic)];
                for (const auto& [res, cnt] : req->entries())
                    if (alloc(res) + cnt > bounds(res))
                        within_bounds = false;
                if (!within_bounds)
                    continue;
                const double cost = info.eca + req->area(lib);
                if (cost > result.remaining[static_cast<std::size_t>(asic)])
                    continue;
                result.allocations[static_cast<std::size_t>(asic)] |= *req;
                result.remaining[static_cast<std::size_t>(asic)] -= cost;
                result.pseudo_placement[static_cast<std::size_t>(b)] = asic;
                changed = !req->empty();
                break;
            }
        }

        if (changed) {
            order = prioritize_placed(infos, result.pseudo_placement,
                                      result.allocations, lib);
            i = 0;
        }
        else {
            ++i;
        }
    }

    result.datapath_area = {result.allocations[0].area(lib),
                            result.allocations[1].area(lib)};
    return result;
}

}  // namespace lycos::core
