#include "core/restrictions.hpp"

#include <algorithm>

#include "sched/parallelism.hpp"

namespace lycos::core {

Rmap compute_restrictions(std::span<const Bsb_info> infos,
                          const hw::Hw_library& lib)
{
    const auto lat = sched::latency_table_from(lib);
    Rmap bounds;
    for (std::size_t r = 0; r < lib.size(); ++r) {
        const auto id = static_cast<hw::Resource_id>(r);
        int peak = 0;
        for (const auto& info : infos) {
            if (!info.ops.intersects(lib[id].ops))
                continue;
            peak = std::max(peak,
                            sched::asap_parallelism_for(info.graph(), info.frames,
                                                        lat, lib[id].ops));
        }
        if (peak > 0)
            bounds.set(id, peak);
    }
    return bounds;
}

}  // namespace lycos::core
