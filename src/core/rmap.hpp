// RMap — Resource Map (Definition 1).
//
//     RMap : Resource -> Integer
//
// An RMap maps resource types to non-negative counts; it represents an
// allocation ("two adders, one subtractor and one multiplier").  Two
// operators are defined on RMaps (Example 1 fixes their semantics):
//
//   * union `∪` is the *pointwise sum*:
//       {Adder->2, Mult->1} ∪ {Sub->1, Mult->2}
//         = {Adder->2, Mult->3, Sub->1}
//   * difference `\` is the *saturating pointwise difference*:
//       {Adder->2, Mult->1} \ {Sub->1, Mult->2} = {Adder->2}
//
// Spelled `operator|` and `operator-` here, with named aliases.
#pragma once

#include <initializer_list>
#include <map>
#include <string>
#include <utility>

#include "hw/op.hpp"
#include "hw/resource.hpp"

namespace lycos::core {

/// A multiset of hardware resource types (an allocation).
class Rmap {
public:
    Rmap() = default;
    Rmap(std::initializer_list<std::pair<hw::Resource_id, int>> items);

    /// Count for resource `r`; 0 if absent.
    int operator()(hw::Resource_id r) const;

    /// Set the count for `r` (erases the entry when `count` is 0).
    /// Throws std::invalid_argument on negative counts.
    void set(hw::Resource_id r, int count);

    /// Add `delta` (default +1) to the count of `r`; the result must
    /// stay non-negative.
    void add(hw::Resource_id r, int delta = 1);

    bool empty() const { return counts_.empty(); }

    /// Total number of allocated units.
    int total_units() const;

    /// Entries in resource-id order (only non-zero counts).
    const std::map<hw::Resource_id, int>& entries() const { return counts_; }

    /// Pointwise sum — the paper's `∪` (Example 1: Mult 1 ∪ Mult 2 = 3).
    friend Rmap operator|(const Rmap& a, const Rmap& b);
    Rmap& operator|=(const Rmap& other);

    /// Saturating pointwise difference — the paper's `\`.
    friend Rmap operator-(const Rmap& a, const Rmap& b);

    friend bool operator==(const Rmap&, const Rmap&) = default;

    /// Named aliases matching the paper's notation.
    static Rmap unite(const Rmap& a, const Rmap& b) { return a | b; }
    static Rmap subtract(const Rmap& a, const Rmap& b) { return a - b; }

    /// Total area of the allocation under `lib`.
    double area(const hw::Hw_library& lib) const;

    /// Alloc(o) of Definition 3: number of allocated units that can
    /// execute operation kind `o`.
    int executors_of(hw::Op_kind o, const hw::Hw_library& lib) const;

    /// True if every kind in `s` has at least one allocated executor.
    bool covers(hw::Op_set s, const hw::Hw_library& lib) const;

    /// Dense per-type count vector (size lib.size()), the form the
    /// list scheduler consumes.
    std::vector<int> dense_counts(const hw::Hw_library& lib) const;

    /// Human-readable form, e.g. "2*adder + 1*multiplier".
    std::string to_string(const hw::Hw_library& lib) const;

private:
    std::map<hw::Resource_id, int> counts_;
};

}  // namespace lycos::core
