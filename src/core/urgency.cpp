#include "core/urgency.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lycos::core {

double urgency(const Bsb_info& info, hw::Op_kind o, bool in_hw,
               const Rmap& alloc, const hw::Hw_library& lib)
{
    const double furo = info.furo[o];
    if (!in_hw)
        return furo;
    return furo / (alloc.executors_of(o, lib) + 1.0);
}

double max_urgency(const Bsb_info& info, bool in_hw, const Rmap& alloc,
                   const hw::Hw_library& lib)
{
    double best = 0.0;
    for (auto k : hw::all_op_kinds())
        best = std::max(best, urgency(info, k, in_hw, alloc, lib));
    return best;
}

std::optional<hw::Op_kind> most_urgent_kind(const Bsb_info& info, bool in_hw,
                                            const Rmap& alloc,
                                            const hw::Hw_library& lib)
{
    std::optional<hw::Op_kind> best;
    double best_u = 0.0;
    for (auto k : hw::all_op_kinds()) {
        const double u = urgency(info, k, in_hw, alloc, lib);
        if (u > best_u) {
            best_u = u;
            best = k;
        }
    }
    return best;
}

std::vector<int> prioritize(std::span<const Bsb_info> infos,
                            const std::vector<bool>& in_hw, const Rmap& alloc,
                            const hw::Hw_library& lib)
{
    if (infos.size() != in_hw.size())
        throw std::invalid_argument("prioritize: size mismatch");
    std::vector<double> key(infos.size());
    for (std::size_t i = 0; i < infos.size(); ++i)
        key[i] = max_urgency(infos[i], in_hw[i], alloc, lib);

    std::vector<int> order(infos.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return key[static_cast<std::size_t>(a)] >
               key[static_cast<std::size_t>(b)];
    });
    return order;
}

}  // namespace lycos::core
