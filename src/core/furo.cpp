#include "core/furo.hpp"

#include <stdexcept>

namespace lycos::core {

Furo_table compute_furo(const dfg::Dfg& g, const sched::Schedule_info& frames,
                        const dfg::Bit_matrix& succ, double profile)
{
    if (frames.frames.size() != g.size() || succ.size() != g.size())
        throw std::invalid_argument("compute_furo: analysis size mismatch");

    Furo_table furo;
    const auto n = g.size();
    // Sum over unordered pairs, count each twice (the definition sums
    // over ordered pairs i != j and Ovl is symmetric).
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const auto ki = g.op(static_cast<dfg::Op_id>(i)).kind;
            const auto kj = g.op(static_cast<dfg::Op_id>(j)).kind;
            if (ki != kj)
                continue;
            if (succ.get(i, j) || succ.get(j, i))
                continue;  // dependent ops never compete
            const auto& fi = frames.frames[i];
            const auto& fj = frames.frames[j];
            const int ovl = sched::overlap(fi, fj);
            if (ovl == 0)
                continue;
            furo[ki] += 2.0 * static_cast<double>(ovl) /
                        (static_cast<double>(fi.mobility()) *
                         static_cast<double>(fj.mobility()));
        }
    }
    for (auto k : hw::all_op_kinds())
        furo[k] *= profile;
    return furo;
}

}  // namespace lycos::core
