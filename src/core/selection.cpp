#include "core/selection.hpp"

#include <limits>

namespace lycos::core {

std::optional<hw::Resource_id> select_executor(const hw::Hw_library& lib,
                                               hw::Op_kind k,
                                               Selection_policy policy)
{
    std::optional<hw::Resource_id> best;
    double best_key = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < lib.size(); ++i) {
        const auto id = static_cast<hw::Resource_id>(i);
        const auto& t = lib[id];
        if (!t.ops.contains(k))
            continue;
        double key = 0.0;
        switch (policy) {
        case Selection_policy::min_area:
            key = t.area;
            break;
        case Selection_policy::min_latency:
            key = t.latency_cycles;
            break;
        case Selection_policy::balanced:
            key = t.area * t.latency_cycles;
            break;
        }
        if (key < best_key || (key == best_key && t.area < best_area)) {
            best_key = key;
            best_area = t.area;
            best = id;
        }
    }
    return best;
}

hw::Hw_library make_variant_library()
{
    using enum hw::Op_kind;
    hw::Hw_library lib;
    // Two implementations per expensive unit: serial (small, slow) and
    // parallel (large, fast).
    lib.add({"adder_serial", {add, neg}, 100.0, 2});
    lib.add({"adder_fast", {add, neg}, 180.0, 1});
    lib.add({"subtractor", {sub, neg}, 190.0, 1});
    lib.add({"mult_serial", {mul}, 1100.0, 5});
    lib.add({"mult_fast", {mul}, 2200.0, 2});
    lib.add({"div_serial", {div, mod}, 1900.0, 9});
    lib.add({"div_fast", {div, mod}, 3600.0, 4});
    lib.add({"comparator", {cmp_lt, cmp_le, cmp_eq, cmp_ne}, 90.0, 1});
    lib.add({"logic_unit", {log_and, log_or, log_not, bit_and, bit_or, bit_xor},
             70.0, 1});
    lib.add({"shifter", {shl, shr}, 140.0, 1});
    lib.add({"const_gen", {const_load}, 150.0, 1});
    lib.add({"mover", {copy}, 30.0, 1});
    return lib;
}

}  // namespace lycos::core
