// FURO — Functional Unit Request Overlap (Definition 2).
//
// An estimate of the probability that two operations of the same type
// compete for a data-path resource, used to guide the allocator toward
// resources for operations that can execute in parallel:
//
//   FURO(o, B_k) = p_k * sum over ordered pairs (i, j), i != j,
//                  T(i) = T(j) = o, j not in Succ(i), i not in Succ(j)
//                  of  Ovl(i, j) / (M(i) * M(j))
//
// where Ovl is the overlap of the ASAP-ALAP start intervals, M the
// mobility (ALAP - ASAP + 1) and Succ the *transitive* successor set —
// operations ordered by a dependency chain can never be scheduled in
// the same control step and therefore never compete.
#pragma once

#include "dfg/bit_matrix.hpp"
#include "dfg/dfg.hpp"
#include "hw/op.hpp"
#include "sched/time_frames.hpp"

namespace lycos::core {

/// FURO value per operation kind for one BSB.
using Furo_table = hw::Per_op<double>;

/// Compute FURO(o, B) for every kind `o`, where `profile` is the
/// BSB's profile count p_k, `frames` its ASAP/ALAP time frames and
/// `succ` its transitive successor matrix.
Furo_table compute_furo(const dfg::Dfg& g, const sched::Schedule_info& frames,
                        const dfg::Bit_matrix& succ, double profile);

}  // namespace lycos::core
