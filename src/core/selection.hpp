// Module selection (the paper's first future-work direction, §6:
// "extending the algorithm to be able to deal with selection between
// several resources that can execute the same type of operation").
//
// With a library that offers several implementations per operation
// kind (a small/slow and a large/fast multiplier, ...), the allocator
// must pick which implementation to buy.  Three policies:
//
//   min_area   the smallest implementation (the base algorithm's
//              behaviour when the library has one entry per kind),
//   min_latency the fastest implementation,
//   balanced   the smallest area-latency product — a simple
//              energy-delay-style compromise.
#pragma once

#include <optional>

#include "hw/op.hpp"
#include "hw/resource.hpp"

namespace lycos::core {

/// Which implementation to buy when several can execute a kind.
enum class Selection_policy {
    min_area,
    min_latency,
    balanced,
};

/// The resource type `policy` selects for kind `k`; nullopt when the
/// library cannot execute `k` at all.  Ties break toward smaller area,
/// then smaller id (deterministic).
std::optional<hw::Resource_id> select_executor(const hw::Hw_library& lib,
                                               hw::Op_kind k,
                                               Selection_policy policy);

/// An extended library with small/slow and large/fast variants of the
/// expensive units (adder, multiplier, divider) plus the usual
/// single-variant support units.  Exercises module selection.
hw::Hw_library make_variant_library();

}  // namespace lycos::core
