#include "core/analysis.hpp"

#include <algorithm>

namespace lycos::core {

std::vector<Bsb_info> analyze(std::span<const bsb::Bsb> bsbs,
                              const hw::Hw_library& lib,
                              const hw::Gate_areas& gates)
{
    const auto lat = sched::latency_table_from(lib);
    std::vector<Bsb_info> out;
    out.reserve(bsbs.size());
    for (const auto& b : bsbs) {
        Bsb_info info;
        info.block = &b;
        info.frames = sched::compute_time_frames(b.graph, lat);
        const auto succ = b.graph.transitive_successors();
        info.furo = compute_furo(b.graph, info.frames, succ, b.profile);
        info.asap_length = std::max(1, info.frames.length);
        info.eca = estimate::eca(info.asap_length, gates);
        info.ops = b.graph.used_ops();
        info.histogram = b.graph.kind_histogram();
        out.push_back(std::move(info));
    }
    return out;
}

}  // namespace lycos::core
