// Per-BSB pre-allocation analysis.
//
// Everything the allocation algorithm needs to know about a BSB is
// computed once up front (§4.4: "It is the computation of the FUROs
// that is the time consuming task, but this computation is only done
// once"): ASAP/ALAP time frames, the transitive successor matrix, the
// FURO table, the estimated state count N and the resulting ECA.
// The allocator can then be re-run with different area constraints,
// libraries or restrictions without re-analysis.
#pragma once

#include <span>
#include <vector>

#include "bsb/bsb.hpp"
#include "core/furo.hpp"
#include "estimate/controller.hpp"
#include "hw/resource.hpp"
#include "hw/target.hpp"
#include "sched/time_frames.hpp"

namespace lycos::core {

/// Immutable analysis of one BSB.  Holds a pointer into the caller's
/// BSB array, which must outlive the analysis.
struct Bsb_info {
    const bsb::Bsb* block = nullptr;
    sched::Schedule_info frames;   ///< ASAP/ALAP start intervals
    Furo_table furo;               ///< FURO(o, B) per kind
    int asap_length = 0;           ///< estimated state count N (>= 1)
    double eca = 0.0;              ///< Estimated Controller Area
    hw::Op_set ops;                ///< kinds occurring in the BSB
    hw::Per_op<int> histogram;     ///< per-kind op counts

    double profile() const { return block->profile; }
    const dfg::Dfg& graph() const { return block->graph; }
};

/// Analyze every BSB of the array (the L * k^2 FURO precomputation).
std::vector<Bsb_info> analyze(std::span<const bsb::Bsb> bsbs,
                              const hw::Hw_library& lib,
                              const hw::Gate_areas& gates);

}  // namespace lycos::core
