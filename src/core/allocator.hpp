// The hardware resource allocation algorithm (Algorithm 1).
//
// Generates a data-path allocation by building a *pseudo partition*:
// starting with every BSB in software, repeatedly visit BSBs in
// urgency order and
//
//   * if the BSB is already (pseudo-)in hardware, try to allocate one
//     more unit for its most urgent operation kind, subject to the
//     remaining area and the §4.3 restrictions;
//   * otherwise try to move it to hardware, paying its Estimated
//     Controller Area plus the area of whatever required resources the
//     allocation does not yet contain (GetReqResources(B) \ Allocation).
//
// Whenever the allocation changes, all urgencies are recomputed and
// the scan restarts from the most urgent BSB; the algorithm stops when
// a full scan changes nothing or the area is exhausted, and returns
// the allocation grown along the way.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/restrictions.hpp"
#include "core/rmap.hpp"
#include "core/selection.hpp"
#include "core/urgency.hpp"
#include "hw/target.hpp"

namespace lycos::core {

/// Options for Allocator::run.
struct Alloc_options {
    /// Total ASIC area the data-path and the controllers share
    /// (Algorithm 1's `Area` input).
    double area_budget = 0.0;

    /// Per-resource-type upper bounds; when unset they are computed
    /// from the ASAP parallelism (§4.3).  Overriding supports the §5
    /// design iterations ("reduce the allocated constant generators to
    /// one").
    std::optional<Rmap> restrictions;

    /// Which implementation to buy when the library offers several
    /// per operation kind (§6 future work; min_area reproduces the
    /// base algorithm).
    Selection_policy selection = Selection_policy::min_area;

    /// Record the step-by-step trace (tests and the examples use it).
    bool record_trace = false;
};

/// One step of the trace.
struct Alloc_step {
    enum class Kind { add_resource, move_to_hw };
    Kind kind;
    int bsb = -1;                      ///< index into the BSB array
    Rmap added;                        ///< resources added by this step
    double area_spent = 0.0;           ///< resource area + (for moves) ECA
    double remaining_after = 0.0;
};

/// The allocation produced by Algorithm 1, plus the pseudo partition
/// it was derived from and bookkeeping useful for reporting.
struct Alloc_result {
    Rmap allocation;                   ///< the data-path allocation
    Rmap restrictions;                 ///< bounds that were in force
    std::vector<bool> pseudo_in_hw;    ///< pseudo partition per BSB
    double datapath_area = 0.0;        ///< area of `allocation`
    double pseudo_controller_area = 0.0;  ///< sum of ECAs of pseudo-HW BSBs
    double remaining_area = 0.0;
    int scans = 0;                     ///< number of re-prioritizations
    std::vector<Alloc_step> trace;
};

/// The allocation algorithm.  Construct once per library/target pair,
/// run as often as needed (§4.4: the same analysis supports many runs
/// with different areas, libraries or restrictions).
class Allocator {
public:
    Allocator(const hw::Hw_library& lib, const hw::Target& target)
        : lib_(lib), target_(target)
    {
    }

    /// Convenience: analyze + run.
    Alloc_result run(std::span<const bsb::Bsb> bsbs,
                     const Alloc_options& options) const;

    /// Run Algorithm 1 on pre-analyzed BSBs.
    Alloc_result run_analyzed(std::span<const Bsb_info> infos,
                              const Alloc_options& options) const;

    /// GetReqResources(B) of Algorithm 1: the minimal RMap (at most
    /// one unit per type) such that every operation kind of `ops` has
    /// an executor, choosing the executor `policy` selects per kind.
    /// nullopt if the library cannot execute some kind at all.
    std::optional<Rmap> required_resources(
        hw::Op_set ops,
        Selection_policy policy = Selection_policy::min_area) const;

private:
    const hw::Hw_library& lib_;
    const hw::Target& target_;
};

}  // namespace lycos::core
