// Greedy pre-allocation for a two-ASIC target (§6 future work).
//
// A direct generalization of Algorithm 1: the pseudo partition now
// places BSBs on one of two ASICs, each with its own area budget and
// its own growing allocation.  A software BSB is moved to the ASIC
// with the most remaining area that can afford its controller plus
// missing units; a hardware BSB bids for additional units on the ASIC
// it lives on.  Restrictions (§4.3) apply per ASIC — the ASICs execute
// concurrently-disjoint BSBs, so each needs at most the single-ASIC
// bound.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "core/allocator.hpp"

namespace lycos::core {

/// Options for the two-ASIC allocator.
struct Two_asic_options {
    std::array<double, 2> budgets{0.0, 0.0};
    std::optional<Rmap> restrictions;  ///< per-ASIC bounds (same for both)
    Selection_policy selection = Selection_policy::min_area;
};

/// Result: one allocation per ASIC plus the pseudo placement.
struct Two_asic_result {
    std::array<Rmap, 2> allocations;
    std::array<double, 2> datapath_area{0.0, 0.0};
    std::array<double, 2> remaining{0.0, 0.0};
    Rmap restrictions;
    std::vector<int> pseudo_placement;  ///< -1 = SW, 0/1 = ASIC index
};

/// Run the generalized Algorithm 1 on pre-analyzed BSBs.
Two_asic_result allocate_two_asics(std::span<const Bsb_info> infos,
                                   const hw::Hw_library& lib,
                                   const Two_asic_options& options);

}  // namespace lycos::core
