#include "core/allocator.hpp"

#include <stdexcept>

namespace lycos::core {

std::optional<Rmap> Allocator::required_resources(hw::Op_set ops,
                                                  Selection_policy policy) const
{
    Rmap req;
    for (auto k : hw::all_op_kinds()) {
        if (!ops.contains(k))
            continue;
        // Covered by a unit this call already selected (multi-function
        // units may cover several kinds)?
        if (req.covers(hw::Op_set{k}, lib_))
            continue;
        const auto r = select_executor(lib_, k, policy);
        if (!r)
            return std::nullopt;  // the library cannot execute this kind
        req.add(*r);
    }
    return req;
}

Alloc_result Allocator::run(std::span<const bsb::Bsb> bsbs,
                            const Alloc_options& options) const
{
    const auto infos = analyze(bsbs, lib_, target_.gates);
    return run_analyzed(infos, options);
}

Alloc_result Allocator::run_analyzed(std::span<const Bsb_info> infos,
                                     const Alloc_options& options) const
{
    if (options.area_budget < 0.0)
        throw std::invalid_argument("Allocator: negative area budget");

    const std::size_t n = infos.size();

    Alloc_result result;
    result.restrictions = options.restrictions
                              ? *options.restrictions
                              : compute_restrictions(infos, lib_);
    result.pseudo_in_hw.assign(n, false);  // "Move BSBArray[i] to Software"
    result.remaining_area = options.area_budget;

    Rmap& alloc = result.allocation;
    const Rmap& bounds = result.restrictions;

    auto record = [&](Alloc_step::Kind kind, int bsb, Rmap added,
                      double spent) {
        if (!options.record_trace)
            return;
        result.trace.push_back(Alloc_step{kind, bsb, std::move(added), spent,
                                          result.remaining_area});
    };

    auto order = prioritize(infos, result.pseudo_in_hw, alloc, lib_);
    ++result.scans;

    std::size_t i = 0;
    while (i < n && result.remaining_area > 0.0) {
        bool allocation_changed = false;
        const int b = order[i];
        const Bsb_info& info = infos[static_cast<std::size_t>(b)];

        if (result.pseudo_in_hw[static_cast<std::size_t>(b)]) {
            // One more unit for the most urgent operation in B.
            const auto kind = most_urgent_kind(info, true, alloc, lib_);
            if (kind) {
                const auto r = select_executor(lib_, *kind, options.selection);
                if (r && lib_[*r].area <= result.remaining_area &&
                    alloc(*r) + 1 <= bounds(*r)) {
                    alloc.add(*r);
                    result.remaining_area -= lib_[*r].area;
                    allocation_changed = true;
                    Rmap added;
                    added.add(*r);
                    record(Alloc_step::Kind::add_resource, b, added,
                           lib_[*r].area);
                }
            }
        }
        else {
            // Try to move B to hardware.
            const auto full_req =
                required_resources(info.ops, options.selection);
            if (full_req) {
                const Rmap req = *full_req - alloc;  // additional units only
                const double cost = info.eca + req.area(lib_);
                if (cost <= result.remaining_area) {
                    alloc |= req;
                    result.remaining_area -= cost;
                    result.pseudo_in_hw[static_cast<std::size_t>(b)] = true;
                    result.pseudo_controller_area += info.eca;
                    allocation_changed = !req.empty();
                    record(Alloc_step::Kind::move_to_hw, b, req, cost);
                }
            }
        }

        if (allocation_changed) {
            order = prioritize(infos, result.pseudo_in_hw, alloc, lib_);
            ++result.scans;
            i = 0;
        }
        else {
            ++i;
        }
    }

    result.datapath_area = alloc.area(lib_);
    return result;
}

}  // namespace lycos::core
