// Urgency U(o, B) and BSB prioritization (Definitions 3 and 4).
//
//   U(o, B) = FURO(o, B)                    if B is in software
//   U(o, B) = FURO(o, B) / (Alloc(o) + 1)   if B is in hardware
//
// where Alloc(o) is the number of allocated units that can execute o.
// BSBs are ordered by their maximal urgency over all operation kinds:
// as resources are allocated for a hardware BSB its urgencies drop, so
// BSBs still in software dynamically gain priority (Example 2).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/analysis.hpp"
#include "core/rmap.hpp"

namespace lycos::core {

/// U(o, B) per Definition 3.  `in_hw` is the BSB's current pseudo-
/// partition side, `alloc` the allocation built so far.
double urgency(const Bsb_info& info, hw::Op_kind o, bool in_hw,
               const Rmap& alloc, const hw::Hw_library& lib);

/// max over all kinds of U(o, B) — the priority key of Definition 4.
double max_urgency(const Bsb_info& info, bool in_hw, const Rmap& alloc,
                   const hw::Hw_library& lib);

/// The kind with the largest *positive* urgency (the operation for
/// which "it is urgent to allocate one more resource").  nullopt when
/// every urgency is zero — then nothing in this BSB competes for
/// resources and allocating more units cannot help.
std::optional<hw::Op_kind> most_urgent_kind(const Bsb_info& info, bool in_hw,
                                            const Rmap& alloc,
                                            const hw::Hw_library& lib);

/// Prioritize(BSBArray): indices of `infos` sorted by decreasing
/// maximal urgency (Definition 4); ties keep array order so the
/// result is deterministic.
std::vector<int> prioritize(std::span<const Bsb_info> infos,
                            const std::vector<bool>& in_hw, const Rmap& alloc,
                            const hw::Hw_library& lib);

}  // namespace lycos::core
