#include "core/rmap.hpp"

#include <stdexcept>

namespace lycos::core {

Rmap::Rmap(std::initializer_list<std::pair<hw::Resource_id, int>> items)
{
    for (const auto& [r, c] : items)
        set(r, c);
}

int Rmap::operator()(hw::Resource_id r) const
{
    const auto it = counts_.find(r);
    return it == counts_.end() ? 0 : it->second;
}

void Rmap::set(hw::Resource_id r, int count)
{
    if (count < 0)
        throw std::invalid_argument("Rmap::set: negative count");
    if (count == 0)
        counts_.erase(r);
    else
        counts_[r] = count;
}

void Rmap::add(hw::Resource_id r, int delta)
{
    set(r, (*this)(r) + delta);
}

int Rmap::total_units() const
{
    int n = 0;
    for (const auto& [r, c] : counts_)
        n += c;
    return n;
}

Rmap operator|(const Rmap& a, const Rmap& b)
{
    Rmap out = a;
    for (const auto& [r, c] : b.counts_)
        out.add(r, c);
    return out;
}

Rmap& Rmap::operator|=(const Rmap& other)
{
    *this = *this | other;
    return *this;
}

Rmap operator-(const Rmap& a, const Rmap& b)
{
    Rmap out;
    for (const auto& [r, c] : a.counts_) {
        const int remaining = c - b(r);
        if (remaining > 0)
            out.set(r, remaining);
    }
    return out;
}

double Rmap::area(const hw::Hw_library& lib) const
{
    double total = 0.0;
    for (const auto& [r, c] : counts_)
        total += lib[r].area * c;
    return total;
}

int Rmap::executors_of(hw::Op_kind o, const hw::Hw_library& lib) const
{
    int n = 0;
    for (const auto& [r, c] : counts_)
        if (lib[r].ops.contains(o))
            n += c;
    return n;
}

bool Rmap::covers(hw::Op_set s, const hw::Hw_library& lib) const
{
    for (auto k : hw::all_op_kinds())
        if (s.contains(k) && executors_of(k, lib) == 0)
            return false;
    return true;
}

std::vector<int> Rmap::dense_counts(const hw::Hw_library& lib) const
{
    std::vector<int> out(lib.size(), 0);
    for (const auto& [r, c] : counts_)
        out.at(static_cast<std::size_t>(r)) = c;
    return out;
}

std::string Rmap::to_string(const hw::Hw_library& lib) const
{
    if (counts_.empty())
        return "{}";
    std::string out;
    for (const auto& [r, c] : counts_) {
        if (!out.empty())
            out += " + ";
        out += std::to_string(c) + "*" + lib[r].name;
    }
    return out;
}

}  // namespace lycos::core
