// Graphviz (DOT) export for CDFGs.
//
// Renders the control tree (Figure 4, left half): boxes for control
// constructs, one node per leaf labelled with its name and operation
// count.  Useful when developing MiniC inputs.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "cdfg/cdfg.hpp"

namespace lycos::cdfg {

/// Write the control tree of `g` in DOT syntax.
void write_dot(std::ostream& os, const Cdfg& g,
               std::string_view name = "cdfg");

/// Convenience: DOT text as a string.
std::string to_dot(const Cdfg& g, std::string_view name = "cdfg");

}  // namespace lycos::cdfg
