// Static profile propagation.
//
// Definition 2 weights every BSB's FURO with its profile count p_k —
// how often the BSB executes during one execution of the application.
// We derive p_k statically from the CDFG's annotations: loop trip
// counts multiply the counts of test and body, branch probabilities
// split the count between then and else.  (LYCOS obtained the same
// numbers by profiling the input description; the annotations play
// the role of that profiling information.)
#pragma once

#include <vector>

#include "cdfg/cdfg.hpp"

namespace lycos::cdfg {

/// Execution count of one leaf.
struct Leaf_profile {
    Node_id leaf = -1;
    double count = 0.0;
};

/// Profile counts for all leaves in execution order, assuming the root
/// sequence executes `entry_count` times.
///
/// Rules: a loop's test executes trip_count + 1 times per entry (the
/// final failing test), its body trip_count times; a conditional's
/// test executes once per entry, the then branch p_true of the time,
/// the else branch 1 - p_true.
std::vector<Leaf_profile> propagate_profiles(const Cdfg& g,
                                             double entry_count = 1.0);

}  // namespace lycos::cdfg
