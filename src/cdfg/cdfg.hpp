// Control-Data-Flow Graph (Figure 4, left half).
//
// The CDFG is a tree of control constructs whose leaves are DFGs: loop
// nodes (with a test DFG and a body), conditionals (test DFG plus
// then/else branches), wait statements, function bodies and plain
// statement sequences.  For partitioning the CDFG is translated into a
// BSB hierarchy (same information, see src/bsb) whose leaf BSBs are
// exactly the DFG leaves of this tree.
//
// Loop nodes carry an average trip count and conditionals a
// probability of taking the then-branch; these drive the static
// profile propagation that produces the p_k profile counts of
// Definition 2.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dfg/dfg.hpp"

namespace lycos::cdfg {

/// Index of a node inside its Cdfg.
using Node_id = int;

/// Control-construct kinds (Figure 4 uses Loop, Cond/Branch, Wait, FU
/// and DFG leaves; sequences glue them together).
enum class Node_kind {
    sequence,  ///< ordered list of children
    loop,      ///< test leaf + body sequence, executed trip_count times
    cond,      ///< test leaf + then/else sequences
    wait,      ///< wait statement (synchronisation; no computation)
    func,      ///< functional-hierarchy node: named body sequence
    leaf,      ///< a DFG: the actual computation (becomes a leaf BSB)
};

std::string_view to_string(Node_kind k);

/// The CDFG tree.  Construction is top-down: create child nodes under
/// an existing sequence (the root sequence is created by the
/// constructor).  Structural invariants (loops own exactly a test leaf
/// and a body sequence, conds a test leaf and two branch sequences)
/// are maintained by the add_* functions themselves.
class Cdfg {
public:
    /// Creates the root sequence (named "main").
    Cdfg();

    Node_id root() const { return 0; }

    std::size_t node_count() const { return nodes_.size(); }

    Node_kind kind(Node_id id) const { return at(id).kind; }
    const std::string& name(Node_id id) const { return at(id).name; }

    /// --- building -------------------------------------------------

    /// Append a DFG leaf under sequence `parent`.
    Node_id add_leaf(Node_id parent, dfg::Dfg graph, std::string_view name);

    /// Append a loop under `parent`.  The loop's test leaf (empty DFG,
    /// fill via leaf_graph()) and body sequence are created
    /// automatically.  `trip_count` is the average iteration count per
    /// entry (profiling information).
    Node_id add_loop(Node_id parent, double trip_count, std::string_view name);

    /// Append a conditional under `parent` with probability `p_true`
    /// of taking the then-branch.  Test leaf and both branch sequences
    /// are created automatically.
    Node_id add_cond(Node_id parent, double p_true, std::string_view name);

    /// Append a wait statement under `parent`.
    Node_id add_wait(Node_id parent, int cycles, std::string_view name);

    /// Append a functional-hierarchy node (named body sequence).
    Node_id add_func(Node_id parent, std::string_view name);

    /// --- structure ------------------------------------------------

    std::span<const Node_id> children(Node_id seq) const;

    Node_id loop_test(Node_id loop) const;
    Node_id loop_body(Node_id loop) const;
    Node_id cond_test(Node_id cond) const;
    Node_id cond_then(Node_id cond) const;
    Node_id cond_else(Node_id cond) const;
    Node_id func_body(Node_id func) const;

    double trip_count(Node_id loop) const;
    double p_true(Node_id cond) const;
    int wait_cycles(Node_id wait) const;

    /// Mutable access to a leaf's DFG (e.g. to fill in a loop test).
    dfg::Dfg& leaf_graph(Node_id leaf);
    const dfg::Dfg& leaf_graph(Node_id leaf) const;

    /// All leaf ids in execution (in-)order; this order defines the
    /// BSB array [B1; ...; BL] of §3.
    std::vector<Node_id> leaves_in_order() const;

    /// Total number of operations over all leaf DFGs.
    std::size_t total_ops() const;

private:
    struct Node {
        Node_kind kind;
        std::string name;
        std::vector<Node_id> children;  // semantic layout depends on kind
        double trip_count = 1.0;        // loop
        double p_true = 0.5;            // cond
        int wait_cycles = 0;            // wait
        dfg::Dfg graph;                 // leaf
    };

    Node& at(Node_id id);
    const Node& at(Node_id id) const;
    Node_id new_node(Node_kind kind, std::string_view name);
    void require(Node_id id, Node_kind k, const char* what) const;
    void append_child(Node_id parent, Node_id child);
    void collect_leaves(Node_id id, std::vector<Node_id>& out) const;

    std::vector<Node> nodes_;
};

}  // namespace lycos::cdfg
