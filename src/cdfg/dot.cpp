#include "cdfg/dot.hpp"

#include <ostream>
#include <sstream>

namespace lycos::cdfg {

namespace {

std::string escape(std::string_view text)
{
    std::string out;
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void emit_node(std::ostream& os, const Cdfg& g, Node_id id)
{
    os << "  n" << id << " [label=\"";
    switch (g.kind(id)) {
    case Node_kind::leaf:
        os << escape(g.name(id)) << "\\n" << g.leaf_graph(id).size()
           << " ops\", shape=box";
        break;
    case Node_kind::loop:
        os << "loop " << escape(g.name(id)) << "\\ntrips "
           << g.trip_count(id) << "\", shape=hexagon";
        break;
    case Node_kind::cond:
        os << "cond " << escape(g.name(id)) << "\\np " << g.p_true(id)
           << "\", shape=diamond";
        break;
    case Node_kind::wait:
        os << "wait " << g.wait_cycles(id) << "\", shape=octagon";
        break;
    case Node_kind::func:
        os << "func " << escape(g.name(id)) << "\", shape=folder";
        break;
    case Node_kind::sequence:
        os << escape(g.name(id)) << "\", shape=plaintext";
        break;
    }
    os << "];\n";
}

void emit_edges(std::ostream& os, const Cdfg& g, Node_id id)
{
    auto child = [&](Node_id c, const char* label) {
        os << "  n" << id << " -> n" << c << " [label=\"" << label
           << "\"];\n";
        emit_node(os, g, c);
        emit_edges(os, g, c);
    };
    switch (g.kind(id)) {
    case Node_kind::sequence:
        for (Node_id c : g.children(id))
            child(c, "");
        break;
    case Node_kind::loop:
        child(g.loop_test(id), "test");
        child(g.loop_body(id), "body");
        break;
    case Node_kind::cond:
        child(g.cond_test(id), "test");
        child(g.cond_then(id), "then");
        child(g.cond_else(id), "else");
        break;
    case Node_kind::func:
        child(g.func_body(id), "body");
        break;
    case Node_kind::leaf:
    case Node_kind::wait:
        break;
    }
}

}  // namespace

void write_dot(std::ostream& os, const Cdfg& g, std::string_view name)
{
    os << "digraph \"" << escape(name) << "\" {\n";
    os << "  node [fontsize=10];\n";
    emit_node(os, g, g.root());
    emit_edges(os, g, g.root());
    os << "}\n";
}

std::string to_dot(const Cdfg& g, std::string_view name)
{
    std::ostringstream os;
    write_dot(os, g, name);
    return os.str();
}

}  // namespace lycos::cdfg
