#include "cdfg/profile.hpp"

#include <stdexcept>

namespace lycos::cdfg {

namespace {

void walk(const Cdfg& g, Node_id id, double count,
          std::vector<Leaf_profile>& out)
{
    switch (g.kind(id)) {
    case Node_kind::leaf:
        out.push_back({id, count});
        break;
    case Node_kind::wait:
        break;
    case Node_kind::sequence:
        for (Node_id c : g.children(id))
            walk(g, c, count, out);
        break;
    case Node_kind::func:
        walk(g, g.func_body(id), count, out);
        break;
    case Node_kind::loop: {
        const double trips = g.trip_count(id);
        walk(g, g.loop_test(id), count * (trips + 1.0), out);
        walk(g, g.loop_body(id), count * trips, out);
        break;
    }
    case Node_kind::cond: {
        const double p = g.p_true(id);
        walk(g, g.cond_test(id), count, out);
        walk(g, g.cond_then(id), count * p, out);
        walk(g, g.cond_else(id), count * (1.0 - p), out);
        break;
    }
    }
}

}  // namespace

std::vector<Leaf_profile> propagate_profiles(const Cdfg& g, double entry_count)
{
    if (entry_count < 0.0)
        throw std::invalid_argument("propagate_profiles: negative entry count");
    std::vector<Leaf_profile> out;
    walk(g, g.root(), entry_count, out);
    return out;
}

}  // namespace lycos::cdfg
