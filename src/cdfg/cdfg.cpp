#include "cdfg/cdfg.hpp"

#include <stdexcept>

namespace lycos::cdfg {

std::string_view to_string(Node_kind k)
{
    switch (k) {
    case Node_kind::sequence: return "sequence";
    case Node_kind::loop: return "loop";
    case Node_kind::cond: return "cond";
    case Node_kind::wait: return "wait";
    case Node_kind::func: return "func";
    case Node_kind::leaf: return "leaf";
    }
    return "?";
}

Cdfg::Cdfg()
{
    new_node(Node_kind::sequence, "main");
}

Cdfg::Node& Cdfg::at(Node_id id)
{
    return nodes_.at(static_cast<std::size_t>(id));
}

const Cdfg::Node& Cdfg::at(Node_id id) const
{
    return nodes_.at(static_cast<std::size_t>(id));
}

Node_id Cdfg::new_node(Node_kind kind, std::string_view name)
{
    nodes_.push_back(Node{kind, std::string(name), {}, 1.0, 0.5, 0, {}});
    return static_cast<Node_id>(nodes_.size() - 1);
}

void Cdfg::require(Node_id id, Node_kind k, const char* what) const
{
    if (at(id).kind != k)
        throw std::invalid_argument(std::string("Cdfg: ") + what +
                                    " expects a " + std::string(to_string(k)) +
                                    " node");
}

void Cdfg::append_child(Node_id parent, Node_id child)
{
    nodes_[static_cast<std::size_t>(parent)].children.push_back(child);
}

Node_id Cdfg::add_leaf(Node_id parent, dfg::Dfg graph, std::string_view name)
{
    require(parent, Node_kind::sequence, "add_leaf parent");
    const Node_id id = new_node(Node_kind::leaf, name);
    at(id).graph = std::move(graph);
    append_child(parent, id);
    return id;
}

Node_id Cdfg::add_loop(Node_id parent, double trip_count, std::string_view name)
{
    require(parent, Node_kind::sequence, "add_loop parent");
    if (trip_count < 0.0)
        throw std::invalid_argument("Cdfg::add_loop: negative trip count");
    const Node_id id = new_node(Node_kind::loop, name);
    at(id).trip_count = trip_count;
    const Node_id test =
        new_node(Node_kind::leaf, std::string(name) + ".test");
    const Node_id body =
        new_node(Node_kind::sequence, std::string(name) + ".body");
    append_child(id, test);
    append_child(id, body);
    append_child(parent, id);
    return id;
}

Node_id Cdfg::add_cond(Node_id parent, double p_true, std::string_view name)
{
    require(parent, Node_kind::sequence, "add_cond parent");
    if (p_true < 0.0 || p_true > 1.0)
        throw std::invalid_argument("Cdfg::add_cond: p_true outside [0,1]");
    const Node_id id = new_node(Node_kind::cond, name);
    at(id).p_true = p_true;
    const Node_id test =
        new_node(Node_kind::leaf, std::string(name) + ".test");
    const Node_id then_b =
        new_node(Node_kind::sequence, std::string(name) + ".then");
    const Node_id else_b =
        new_node(Node_kind::sequence, std::string(name) + ".else");
    append_child(id, test);
    append_child(id, then_b);
    append_child(id, else_b);
    append_child(parent, id);
    return id;
}

Node_id Cdfg::add_wait(Node_id parent, int cycles, std::string_view name)
{
    require(parent, Node_kind::sequence, "add_wait parent");
    if (cycles < 0)
        throw std::invalid_argument("Cdfg::add_wait: negative cycle count");
    const Node_id id = new_node(Node_kind::wait, name);
    at(id).wait_cycles = cycles;
    append_child(parent, id);
    return id;
}

Node_id Cdfg::add_func(Node_id parent, std::string_view name)
{
    require(parent, Node_kind::sequence, "add_func parent");
    const Node_id id = new_node(Node_kind::func, name);
    const Node_id body =
        new_node(Node_kind::sequence, std::string(name) + ".body");
    append_child(id, body);
    append_child(parent, id);
    return id;
}

std::span<const Node_id> Cdfg::children(Node_id seq) const
{
    require(seq, Node_kind::sequence, "children");
    return at(seq).children;
}

Node_id Cdfg::loop_test(Node_id loop) const
{
    require(loop, Node_kind::loop, "loop_test");
    return at(loop).children[0];
}

Node_id Cdfg::loop_body(Node_id loop) const
{
    require(loop, Node_kind::loop, "loop_body");
    return at(loop).children[1];
}

Node_id Cdfg::cond_test(Node_id cond) const
{
    require(cond, Node_kind::cond, "cond_test");
    return at(cond).children[0];
}

Node_id Cdfg::cond_then(Node_id cond) const
{
    require(cond, Node_kind::cond, "cond_then");
    return at(cond).children[1];
}

Node_id Cdfg::cond_else(Node_id cond) const
{
    require(cond, Node_kind::cond, "cond_else");
    return at(cond).children[2];
}

Node_id Cdfg::func_body(Node_id func) const
{
    require(func, Node_kind::func, "func_body");
    return at(func).children[0];
}

double Cdfg::trip_count(Node_id loop) const
{
    require(loop, Node_kind::loop, "trip_count");
    return at(loop).trip_count;
}

double Cdfg::p_true(Node_id cond) const
{
    require(cond, Node_kind::cond, "p_true");
    return at(cond).p_true;
}

int Cdfg::wait_cycles(Node_id wait) const
{
    require(wait, Node_kind::wait, "wait_cycles");
    return at(wait).wait_cycles;
}

dfg::Dfg& Cdfg::leaf_graph(Node_id leaf)
{
    require(leaf, Node_kind::leaf, "leaf_graph");
    return at(leaf).graph;
}

const dfg::Dfg& Cdfg::leaf_graph(Node_id leaf) const
{
    require(leaf, Node_kind::leaf, "leaf_graph");
    return at(leaf).graph;
}

void Cdfg::collect_leaves(Node_id id, std::vector<Node_id>& out) const
{
    const Node& n = at(id);
    switch (n.kind) {
    case Node_kind::leaf:
        out.push_back(id);
        break;
    case Node_kind::wait:
        break;
    case Node_kind::sequence:
    case Node_kind::loop:
    case Node_kind::cond:
    case Node_kind::func:
        for (Node_id c : n.children)
            collect_leaves(c, out);
        break;
    }
}

std::vector<Node_id> Cdfg::leaves_in_order() const
{
    std::vector<Node_id> out;
    collect_leaves(root(), out);
    return out;
}

std::size_t Cdfg::total_ops() const
{
    std::size_t n = 0;
    for (Node_id leaf : leaves_in_order())
        n += leaf_graph(leaf).size();
    return n;
}

}  // namespace lycos::cdfg
