// Request-trace replay: feed a Server from a text file of requests
// (`lycos_cli --serve-trace`), print the per-request outcome and the
// per-class latency table the CI chaos job archives.
//
// Trace format — one request per line, `key=value` pairs separated by
// whitespace, `#` starts a comment:
//
//     app=hal strategy=exhaustive_bb priority=interactive deadline_ms=50
//     app=man strategy=multi_asic_bb repeat=3 chaos_seed=7
//
// Keys: app (straight|hal|man|eigen), area (gates; 0 = app preset),
// strategy (auto or a registry name), priority (interactive|bulk),
// deadline_ms, max_evals, max_dp_cells, threads, repeat (submit N
// copies), chaos_seed (arm a seeded Chaos_plan; 0 = none).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/serve.hpp"

namespace lycos::serve {

/// One parsed trace line (before `repeat` expansion).
struct Trace_spec {
    std::string app = "hal";
    double area = 0.0;  ///< 0 = the app's preset ASIC area
    std::string strategy = "auto";
    Priority priority = Priority::bulk;
    double deadline_ms = 0.0;
    std::uint64_t max_evals = 0;
    std::uint64_t max_dp_cells = 0;
    int threads = 1;
    int repeat = 1;
    std::uint64_t chaos_seed = 0;  ///< 0 = no chaos plan
    int line = 0;                  ///< 1-based source line, for errors
};

/// Parse a trace stream.  Throws std::invalid_argument naming the
/// offending line on unknown keys or malformed values.
std::vector<Trace_spec> parse_trace(std::istream& in);

/// Nearest-rank percentile of `values` (q in [0, 1]); 0 when empty.
/// Sorts a copy — callers keep their order.
double percentile(std::vector<double> values, double q);

struct Trace_options {
    int n_workers = 2;
    std::size_t queue_capacity = 64;
    bool warm_start = true;
    /// Same-problem request batching (`--serve-batch on|off`).  The
    /// replay prints each request's batch size and a batched-vs-
    /// unbatched p50/p99 comparison row; answers are bit-identical
    /// either way.
    bool batching = true;
};

/// Replay a trace through a Server: submit every expanded request,
/// print one row per response plus the status counts and the
/// per-priority-class p50/p99 latency table.  Returns 0 when no
/// request failed, 5 (the CLI's internal-error exit code) otherwise.
/// Parse errors propagate as std::invalid_argument.
int run_trace(std::istream& in, std::ostream& out,
              const Trace_options& options);

}  // namespace lycos::serve
