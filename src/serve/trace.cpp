#include "serve/trace.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "apps/apps.hpp"
#include "core/analysis.hpp"
#include "core/restrictions.hpp"
#include "hw/target.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace lycos::serve {

namespace {

Priority parse_priority(const std::string& value, int line)
{
    if (value == "interactive")
        return Priority::interactive;
    if (value == "bulk")
        return Priority::bulk;
    throw std::invalid_argument("serve trace line " + std::to_string(line) +
                                ": unknown priority \"" + value + "\"");
}

/// Everything a request's Problem points into, built once per
/// (app, area) and kept alive for the whole replay.
struct App_context {
    apps::App app;
    hw::Hw_library lib;
    hw::Target target;
    core::Rmap restrictions;
};

App_context make_app_context(const std::string& name, double area)
{
    App_context ctx;
    if (name == "straight")
        ctx.app = apps::make_straight();
    else if (name == "hal")
        ctx.app = apps::make_hal();
    else if (name == "man")
        ctx.app = apps::make_man();
    else if (name == "eigen")
        ctx.app = apps::make_eigen();
    else
        throw std::invalid_argument("serve trace: unknown app \"" + name +
                                    "\"");
    ctx.lib = hw::make_default_library();
    ctx.target = hw::make_default_target(area > 0.0 ? area
                                                    : ctx.app.asic_area);
    const auto infos = core::analyze(ctx.app.bsbs, ctx.lib, ctx.target.gates);
    ctx.restrictions = core::compute_restrictions(infos, ctx.lib);
    return ctx;
}

}  // namespace

std::vector<Trace_spec> parse_trace(std::istream& in)
{
    std::vector<Trace_spec> specs;
    std::string raw;
    int line = 0;
    while (std::getline(in, raw)) {
        ++line;
        const auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw.erase(hash);
        std::istringstream fields(raw);
        std::string field;
        Trace_spec spec;
        spec.line = line;
        bool any = false;
        while (fields >> field) {
            const auto eq = field.find('=');
            if (eq == std::string::npos)
                throw std::invalid_argument(
                    "serve trace line " + std::to_string(line) +
                    ": expected key=value, got \"" + field + "\"");
            const std::string key = field.substr(0, eq);
            const std::string value = field.substr(eq + 1);
            try {
                if (key == "app")
                    spec.app = value;
                else if (key == "area")
                    spec.area = std::stod(value);
                else if (key == "strategy")
                    spec.strategy = value;
                else if (key == "priority")
                    spec.priority = parse_priority(value, line);
                else if (key == "deadline_ms")
                    spec.deadline_ms = std::stod(value);
                else if (key == "max_evals")
                    spec.max_evals =
                        static_cast<std::uint64_t>(std::stoull(value));
                else if (key == "max_dp_cells")
                    spec.max_dp_cells =
                        static_cast<std::uint64_t>(std::stoull(value));
                else if (key == "threads")
                    spec.threads = std::stoi(value);
                else if (key == "repeat")
                    spec.repeat = std::max(1, std::stoi(value));
                else if (key == "chaos_seed")
                    spec.chaos_seed =
                        static_cast<std::uint64_t>(std::stoull(value));
                else
                    throw std::invalid_argument(
                        "serve trace line " + std::to_string(line) +
                        ": unknown key \"" + key + "\"");
            }
            catch (const std::invalid_argument&) {
                throw;
            }
            catch (const std::exception&) {
                throw std::invalid_argument(
                    "serve trace line " + std::to_string(line) +
                    ": malformed value \"" + value + "\" for " + key);
            }
            any = true;
        }
        if (any)
            specs.push_back(std::move(spec));
    }
    return specs;
}

double percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = q * static_cast<double>(values.size());
    const auto idx = static_cast<std::size_t>(std::max(
        0.0, std::ceil(rank) - 1.0));
    return values[std::min(idx, values.size() - 1)];
}

int run_trace(std::istream& in, std::ostream& out,
              const Trace_options& options)
{
    const auto specs = parse_trace(in);

    // Problems point into these; build each (app, area) once.
    std::map<std::pair<std::string, double>, App_context> app_contexts;
    for (const auto& spec : specs) {
        const auto key = std::make_pair(spec.app, spec.area);
        if (!app_contexts.contains(key))
            app_contexts.emplace(key, make_app_context(spec.app, spec.area));
    }

    Server server({.n_workers = options.n_workers,
                   .queue_capacity = options.queue_capacity,
                   .warm_start = options.warm_start,
                   .batching = options.batching});

    struct Row {
        const Trace_spec* spec;
        std::future<Response> future;
    };
    std::vector<Row> rows;
    for (const auto& spec : specs) {
        const auto& ctx = app_contexts.at({spec.app, spec.area});
        for (int copy = 0; copy < spec.repeat; ++copy) {
            Request request;
            request.problem.bsbs = ctx.app.bsbs;
            request.problem.lib = &ctx.lib;
            request.problem.target = ctx.target;
            request.problem.restrictions = ctx.restrictions;
            // The bench flow's coarse search quantum (the winner can
            // be re-scored fine by the caller; the replay reports
            // latency and status, not Table 1 numbers).
            request.problem.area_quantum =
                ctx.target.asic.total_area / 512.0;
            request.strategy = spec.strategy;
            request.priority = spec.priority;
            request.deadline_ms = spec.deadline_ms;
            request.options.n_threads = spec.threads;
            request.options.max_evals = spec.max_evals;
            request.options.max_dp_cells = spec.max_dp_cells;
            if (spec.chaos_seed != 0)
                request.chaos = Chaos_plan::from_seed(spec.chaos_seed, 4, 16);
            rows.push_back({&spec, server.submit(std::move(request))});
        }
    }

    util::Table_printer table({"id", "app", "strategy", "priority", "status",
                               "rung", "batch", "queue ms", "solve ms"});
    std::map<Request_status, int> by_status;
    std::vector<double> latency_interactive;
    std::vector<double> latency_bulk;
    // Batched (served as a member of a multi-request batch) vs
    // unbatched end-to-end latencies, for the comparison row below.
    std::vector<double> latency_batched;
    std::vector<double> latency_unbatched;
    int n_failed = 0;
    for (auto& row : rows) {
        const Response r = row.future.get();
        ++by_status[r.status];
        if (r.status == Request_status::failed)
            ++n_failed;
        if (r.status == Request_status::complete ||
            r.status == Request_status::degraded) {
            const double latency = r.queue_ms + r.solve_ms;
            (row.spec->priority == Priority::interactive
                 ? latency_interactive
                 : latency_bulk)
                .push_back(latency);
            (r.result.batch_size > 1 ? latency_batched : latency_unbatched)
                .push_back(latency);
        }
        table.add_row({std::to_string(r.id), row.spec->app,
                       row.spec->strategy, to_string(row.spec->priority),
                       to_string(r.status),
                       r.rung >= 0 ? r.rung_strategy : "-",
                       r.result.batch_size > 0
                           ? std::to_string(r.result.batch_size)
                           : "-",
                       util::fixed(r.queue_ms, 2),
                       util::fixed(r.solve_ms, 2)});
    }
    table.print(out);

    out << "\nstatus:";
    for (const auto& [status, count] : by_status)
        out << " " << to_string(status) << "=" << count;
    out << "\n";

    util::Table_printer latency({"class", "n", "p50 ms", "p99 ms"});
    latency.add_row({"interactive",
                     std::to_string(latency_interactive.size()),
                     util::fixed(percentile(latency_interactive, 0.50), 2),
                     util::fixed(percentile(latency_interactive, 0.99), 2)});
    latency.add_row({"bulk", std::to_string(latency_bulk.size()),
                     util::fixed(percentile(latency_bulk, 0.50), 2),
                     util::fixed(percentile(latency_bulk, 0.99), 2)});
    latency.add_row({"batched", std::to_string(latency_batched.size()),
                     util::fixed(percentile(latency_batched, 0.50), 2),
                     util::fixed(percentile(latency_batched, 0.99), 2)});
    latency.add_row({"unbatched", std::to_string(latency_unbatched.size()),
                     util::fixed(percentile(latency_unbatched, 0.50), 2),
                     util::fixed(percentile(latency_unbatched, 0.99), 2)});
    latency.print(out);

    const auto stats = server.stats();
    out << "workers=" << options.n_workers << " shed=" << stats.shed
        << " degraded=" << stats.degraded << " retries=" << stats.retries
        << " warm_hits=" << stats.warm_hits
        << " sessions_reused=" << stats.sessions_reused
        << " batching=" << (options.batching ? "on" : "off")
        << " batches=" << stats.batches
        << " batched_requests=" << stats.batched_requests
        << " max_batch_size=" << stats.max_batch_size
        << " dp_rows_cross=" << stats.dp_rows_reused_cross_request << "\n";

    return n_failed > 0 ? 5 : 0;
}

}  // namespace lycos::serve
