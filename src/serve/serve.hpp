// lycos::serve — the solver-as-a-service layer.
//
// A Server turns the per-problem solver::Session machinery into a
// long-lived service: requests stream in through a bounded queue with
// explicit admission control (interactive ahead of bulk, loud
// shedding when full), every admitted request runs under its own
// Cancel_token, and a failed or late solve does not surface an error
// — the server walks a deterministic *degradation ladder* until some
// rung produces a complete answer:
//
//   rung 0  the requested strategy, under the request deadline
//   rung 1  the same strategy retried once, after an exponential
//           backoff, with a tightened DP-cell budget
//   rung 2  hill_climb (only when the request asked for something
//           costlier — multi_asic_bb or exhaustive_bb)
//   rung 3  the greedy incumbent: the per-axis greedy fill of the
//           allocation space scored once, optionally improved by the
//           warm-start incumbent cached from an earlier solve of the
//           same application.  Pure arithmetic; it cannot fail.
//
// A rung is *accepted* only when its solve ran to natural completion
// (Solve_status::complete).  Deadline/budget trips and injected or
// real allocation failures descend the ladder instead of returning a
// timing-dependent partial incumbent — which is what makes every
// served answer reproducible: re-running the recorded rung fault-free
// (replay_rung) gives a bit-identical result, for any worker count.
// The chaos campaign in tests/test_serve.cpp drives seeded fault
// plans through concurrent clients and asserts exactly that.
//
// Request *batching* (Server_options::batching): when a worker
// dequeues a request it drains every queued request with the same
// canonical problem encoding into one batch and serves the members
// back-to-back on a single checked-out session — one Eval_invariants,
// one shared Eval_cache, one persistent DP workspace pool
// (solver::Session::workspaces()), so a later member's PACE sweeps
// resume from the checkpoints an earlier member just wrote
// (Solve_result::dp_rows_reused_cross_request).  Each member keeps
// its own Cancel_token, deadline, chaos plan and full degradation
// ladder; the slot stays pinned (out of the LRU idle pool) for the
// whole batch.  Bit-identity contract: a batched member's answer —
// the accepted rung and its result tuple — is identical to solving
// that request alone on a fresh session, for any batch composition
// and worker count.  On shutdown mid-batch the in-flight member
// finishes its ladder and every not-yet-started member is shed
// individually; a batch never produces partial answers.
//
// Lifetime contract: the Problem's BSB array is *copied* at submit,
// so the caller's span may die as soon as submit()/solve() returns.
// The library and storage model are held by pointer and must outlive
// the Server (same rule as solver::Session).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "solver/solver.hpp"
#include "util/cancel.hpp"

namespace lycos::serve {

/// Scheduling class of a request.  Interactive requests dequeue ahead
/// of every bulk request and, when the queue is full, displace the
/// most recently queued bulk request instead of being shed.
enum class Priority : std::uint8_t { interactive, bulk };

std::string to_string(Priority p);

/// What the server ultimately did with a request.
///
///   complete   rung 0 (the requested strategy) ran to completion
///   degraded   a lower ladder rung supplied the answer
///   shed       refused at admission (queue full); no answer
///   failed     no rung produced an answer (a permanent defect, e.g.
///              an invalid Problem, or an error out of every rung)
enum class Request_status : std::uint8_t { complete, degraded, shed, failed };

std::string to_string(Request_status s);

/// A deterministic per-attempt fault plan for the chaos campaign:
/// attempt `i` of the ladder runs under `attempts[i]` (unarmed past
/// the end).  Faults are the solver's thread-invariant
/// Fault_injector cuts, so a chaos run's rung outcomes — and
/// therefore the final answer — are bit-identical for any worker
/// count.
struct Chaos_plan {
    struct Attempt {
        util::Fault_injector fault;  ///< injected cut / alloc failure
        /// Per-attempt deadline override in ms (0 = the request's).
        /// Use a sub-microsecond value to force a deterministic
        /// deadline trip at the attempt's first poll.
        double deadline_ms = 0.0;
    };

    std::vector<Attempt> attempts;

    bool armed() const;
    Attempt for_attempt(std::size_t i) const;

    /// A reproducible mixed plan: each of `n_attempts` rungs draws —
    /// from the seed alone — one of {no fault, a mid-walk trip, an
    /// injected allocation failure, an instantly-expired deadline}
    /// with the cut point spread over [0, n_units).
    static Chaos_plan from_seed(std::uint64_t seed, std::size_t n_attempts,
                                std::uint64_t n_units);
};

/// One unit of service: what to solve, how, and by when.
struct Request {
    solver::Problem problem;
    std::string strategy = "auto";  ///< registry name or "auto"
    double deadline_ms = 0.0;       ///< whole-request wall budget (0 = none)
    Priority priority = Priority::bulk;

    /// Base solve knobs (threads, caches, budgets, extras).  The
    /// request-level deadline above governs the ladder; any
    /// options.deadline_ms is ignored.
    solver::Solve_options options;

    /// Auto-pick threshold, as Session::exhaustive_limit.
    long long exhaustive_limit = 30000;

    /// Re-score the winning datapath at the exact quantum on the warm
    /// session cache and fold the lookups into the returned stats —
    /// the coarse-search/fine-rescore flow of the retired find_best
    /// shim.  Single-ASIC rungs only.
    bool rescore_fine = false;

    /// Chaos-campaign fault plan (tests only; default unarmed).
    Chaos_plan chaos;
};

/// What one ladder rung did, in ladder order.
struct Attempt_record {
    std::string strategy;  ///< registry name or "greedy_incumbent"
    util::Solve_status status = util::Solve_status::complete;
    bool alloc_failure = false;  ///< rung ended in std::bad_alloc
    bool skipped = false;        ///< request deadline already spent
    double seconds = 0.0;
};

/// Name recorded for the ladder's final, infallible rung.
inline constexpr std::string_view k_incumbent_rung = "greedy_incumbent";

/// The served outcome.  For complete/degraded, `result` is the
/// accepted rung's Solve_result and `rung`/`rung_strategy` record
/// which rung produced it; replay_rung() reproduces it bit-identically.
struct Response {
    std::uint64_t id = 0;
    Request_status status = Request_status::failed;
    int rung = -1;             ///< index into `attempts` of the winner
    std::string rung_strategy;
    solver::Solve_result result;
    std::vector<Attempt_record> attempts;

    /// The warm-start incumbent handed to the greedy rung (empty when
    /// none was cached).  Recorded so the chaos campaign can replay
    /// the rung as the pure function it is.
    bool warm_start = false;
    core::Rmap warm_datapath;

    double queue_ms = 0.0;  ///< admission to dequeue
    double solve_ms = 0.0;  ///< dequeue to answer
    std::uint64_t sequence = 0;  ///< global dequeue order (1-based; 0 = shed)
    std::string error;           ///< non-empty for failed
};

/// Service configuration.
struct Server_options {
    /// Worker threads draining the queue.  0 = no threads: submit()
    /// executes the request inline and returns a ready future (the
    /// one-shot mode the retired find_best shim runs in).
    int n_workers = 1;
    std::size_t queue_capacity = 64;

    /// Idle Sessions kept warm, LRU-evicted.  A request whose problem
    /// matches a pooled session structurally reuses its Eval_cache
    /// and invariants (results are bit-identical either way).
    std::size_t session_pool_capacity = 8;

    /// Best incumbents remembered per application family for the
    /// warm-start rung.
    std::size_t incumbent_cache_capacity = 32;

    /// Backoff before ladder attempt `i` is 2^(i-1) times this (0 =
    /// no backoff; tests use 0).
    double retry_backoff_ms = 1.0;

    /// DP-cell budget of the retry rung when the request armed none;
    /// a request budget is halved instead.
    std::uint64_t retry_dp_cell_budget = 1ull << 22;

    /// Feed the greedy rung from the incumbent cache.
    bool warm_start = true;

    /// Drain same-problem queued requests into one batch per dequeue
    /// (see the header note).  Off: every request checks out its own
    /// session, exactly the pre-batching behaviour.  Answers are
    /// bit-identical either way; batching only removes duplicate
    /// session/cache/DP warm-up work.
    bool batching = true;

    /// Construct with workers parked: requests queue but nothing runs
    /// until resume().  Deterministic admission tests use this.
    bool start_paused = false;
};

/// Monotonic service counters.
struct Server_stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;     ///< ladder attempts past rung 0
    std::uint64_t warm_hits = 0;   ///< greedy rungs fed a cached incumbent
    std::uint64_t sessions_reused = 0;

    /// Batching counters: multi-member batches formed, requests served
    /// as members of one, and the largest batch seen.  Singleton
    /// dequeues count in none of them.
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;
    std::uint64_t max_batch_size = 0;

    /// Total cross-request DP warm-start rows over every answered
    /// request (sum of Solve_result::dp_rows_reused_cross_request).
    long long dp_rows_reused_cross_request = 0;

    /// Eval_cache activity aggregated per application family
    /// (warm_family_key) over every answered request — batch members
    /// fold into the same entry, so the combined per-family hit rate
    /// is hits/lookups of one row.  One entry per family seen.
    struct Family_cache_stats {
        std::uint64_t family = 0;    ///< warm_family_key of the problem
        std::uint64_t requests = 0;  ///< answered requests aggregated
        search::Eval_cache_stats cache;
    };
    std::vector<Family_cache_stats> family_cache;
};

/// The long-lived solver service.  Thread-safe: submit() may be
/// called from any number of client threads.
class Server {
public:
    explicit Server(Server_options options = {});
    ~Server();  ///< sheds the queue, cancels in-flight solves, joins

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Admit (or shed) a request.  The future is always fulfilled —
    /// shed requests resolve immediately with Request_status::shed;
    /// admitted ones resolve when the ladder finishes.  Never throws
    /// on bad problems: validation defects resolve as failed.
    std::future<Response> submit(Request request);

    /// Synchronous one-shot path: runs the ladder on the calling
    /// thread, bypassing the queue (no admission, never shed).
    Response solve(Request request);

    /// Release workers parked by Server_options::start_paused.
    void resume();

    Server_stats stats() const;
    const Server_options& options() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// The ladder's final rung as the pure function it is: the greedy
/// per-axis fill of the allocation space under the single-ASIC area
/// budget, scored once, improved by `warm` when that datapath lies
/// inside the restriction space and scores strictly better.
solver::Solve_result greedy_incumbent(solver::Session& session,
                                      const core::Rmap* warm = nullptr);

/// Reproduce the answer of the rung recorded in `response`, fault-free
/// on a fresh session — the chaos-campaign reference.  Strips every
/// transient knob (deadline, budgets, faults, cancellation) and keeps
/// the answer-shaping ones; bit-identical to `response.result`'s best
/// for any original worker count.
solver::Solve_result replay_rung(const Request& request,
                                 const Response& response);

}  // namespace lycos::serve
