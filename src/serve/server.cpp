#include "serve/serve.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "search/alloc_space.hpp"
#include "util/timer.hpp"

namespace lycos::serve {

namespace {

using clock = std::chrono::steady_clock;

double ms_between(clock::time_point from, clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

std::uint64_t splitmix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/// Canonical byte encoding of everything a Session's behaviour can
/// depend on.  Session-pool reuse compares these strings exactly —
/// no hashing, so structurally different problems can never collide
/// into the wrong warm session.
std::string encode_problem(const solver::Problem& p)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << "lib:" << reinterpret_cast<std::uintptr_t>(p.lib)
       << " storage:" << reinterpret_cast<std::uintptr_t>(p.storage)
       << " obj:" << static_cast<int>(p.objective)
       << " ctrl:" << static_cast<int>(p.ctrl_mode)
       << " sched:" << static_cast<int>(p.scheduler)
       << " q:" << p.area_quantum << " dp:" << p.dp_table_budget
       << " a01:" << p.asic_areas[0] << "," << p.asic_areas[1];
    os << " cpu:" << p.target.cpu.name << "," << p.target.cpu.clock_mhz;
    for (const auto k : hw::all_op_kinds())
        os << "," << p.target.cpu.cycles_per_op[k];
    os << " asic:" << p.target.asic.clock_mhz << ","
       << p.target.asic.total_area << " bus:" << p.target.bus.ns_per_word
       << " gates:" << p.target.gates.reg << "," << p.target.gates.and2
       << "," << p.target.gates.or2 << "," << p.target.gates.inv;
    os << " restr:";
    for (const auto& [id, count] : p.restrictions.entries())
        os << id << "=" << count << ";";
    os << " bsbs:";
    for (const auto& b : p.bsbs) {
        os << "{" << b.name << "|" << b.profile << "|";
        for (std::size_t i = 0; i < b.graph.size(); ++i) {
            const auto id = static_cast<dfg::Op_id>(i);
            os << static_cast<int>(b.graph.op(id).kind) << "<";
            for (const auto pred : b.graph.preds(id))
                os << pred << ",";
            os << ">";
        }
        os << "|";
        for (const auto& v : b.graph.live_ins())
            os << v << ",";
        os << "|";
        for (const auto& v : b.graph.live_outs())
            os << v << ",";
        os << "}";
    }
    return os.str();
}

/// Loose family key for the warm-start incumbent cache: a perturbed
/// re-solve (edited BSB, different budget) should still find the
/// incumbent of its application.  Loose is safe — the incumbent is
/// re-validated against the new problem's space and re-scored under
/// the new problem before it can influence anything.
std::uint64_t warm_family_key(const solver::Problem& p)
{
    std::uint64_t h = splitmix64(reinterpret_cast<std::uintptr_t>(p.lib));
    h = splitmix64(h ^ p.bsbs.size());
    h = splitmix64(h ^ static_cast<std::uint64_t>(p.ctrl_mode));
    for (const auto& b : p.bsbs)
        for (const char c : b.name)
            h = splitmix64(h ^ static_cast<unsigned char>(c));
    return h;
}

/// True when `datapath` is a point of the restriction space with a
/// data-path area inside the single-ASIC budget — the same filter the
/// exhaustive enumeration applies, so scoring it can only reproduce a
/// score some search already could have produced.
bool inside_space(const core::Rmap& datapath, const search::Alloc_space& space,
                  const hw::Hw_library& lib, double budget)
{
    for (const auto& [id, count] : datapath.entries()) {
        const auto dim =
            std::find_if(space.dims().begin(), space.dims().end(),
                         [&](const auto& d) { return d.first == id; });
        if (dim == space.dims().end() || count > dim->second)
            return false;
    }
    return datapath.area(lib) <= budget;
}

}  // namespace

std::string to_string(Priority p)
{
    return p == Priority::interactive ? "interactive" : "bulk";
}

std::string to_string(Request_status s)
{
    switch (s) {
    case Request_status::complete: return "complete";
    case Request_status::degraded: return "degraded";
    case Request_status::shed: return "shed";
    case Request_status::failed: return "failed";
    }
    return "?";
}

bool Chaos_plan::armed() const
{
    for (const auto& a : attempts)
        if (a.fault.armed() || a.deadline_ms > 0.0)
            return true;
    return false;
}

Chaos_plan::Attempt Chaos_plan::for_attempt(std::size_t i) const
{
    return i < attempts.size() ? attempts[i] : Attempt{};
}

Chaos_plan Chaos_plan::from_seed(std::uint64_t seed, std::size_t n_attempts,
                                 std::uint64_t n_units)
{
    Chaos_plan plan;
    plan.attempts.resize(n_attempts);
    for (std::size_t i = 0; i < n_attempts; ++i) {
        const std::uint64_t r = splitmix64(seed ^ splitmix64(i + 1));
        auto& a = plan.attempts[i];
        switch (r % 4) {
        case 0:  // fault-free attempt
            break;
        case 1:  // mid-walk cancel at a seed-chosen cut point
            a.fault.trip_at = n_units > 0 ? splitmix64(r) % n_units : 0;
            break;
        case 2:  // allocation failure at a seed-chosen unit
            a.fault.alloc_failure_at =
                n_units > 0 ? splitmix64(r) % n_units : 0;
            break;
        case 3:  // deadline already expired at the first poll
            a.deadline_ms = 1e-6;
            break;
        }
    }
    return plan;
}

solver::Solve_result greedy_incumbent(solver::Session& session,
                                      const core::Rmap* warm)
{
    const util::Wall_timer timer;
    const auto& problem = session.problem();
    const auto& ctx = session.context();
    const search::Alloc_space space(ctx.lib, problem.restrictions);
    const double budget = problem.target.asic.total_area;

    solver::Solve_result out;
    out.strategy = std::string(k_incumbent_rung);
    out.space_size = space.size();
    out.n_threads = 1;
    const auto before = session.cache().stats();
    out.best = search::evaluate_allocation(
        ctx, space.greedy_fill(ctx.lib, budget), &session.cache());
    out.n_evaluated = 1;
    if (warm != nullptr && inside_space(*warm, space, ctx.lib, budget)) {
        const auto ev =
            search::evaluate_allocation(ctx, *warm, &session.cache());
        ++out.n_evaluated;
        // Strictly better only — on a tie the greedy fill stays, so
        // the rung is a pure function of (problem, warm datapath).
        if (search::better_tuple(ev.partition.time_hybrid_ns,
                                 ev.datapath_area,
                                 out.best.partition.time_hybrid_ns,
                                 out.best.datapath_area))
            out.best = ev;
    }
    out.cache_stats = session.cache().stats().minus(before);
    out.seconds = timer.seconds();
    return out;
}

struct Server::Impl {
    struct Pending {
        Request req;
        std::vector<bsb::Bsb> bsbs;  ///< owned copy the problem spans
        std::promise<Response> promise;
        clock::time_point t_submit;
        std::uint64_t id = 0;
        /// encode_problem() of the request, computed at submit on the
        /// client's thread: batch formation compares keys under the
        /// queue lock, where re-encoding per queued entry would
        /// serialize the workers.
        std::string key;
    };

    struct Session_slot {
        std::string key;  ///< encode_problem() of the owned problem
        std::vector<bsb::Bsb> bsbs;
        solver::Problem problem;
        std::unique_ptr<solver::Session> session;
        std::uint64_t last_used = 0;
    };

    explicit Impl(Server_options o) : opts(std::move(o)), paused(opts.start_paused)
    {
        const int n = std::max(0, opts.n_workers);
        workers.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            workers.emplace_back([this] { worker_loop(); });
    }

    ~Impl()
    {
        {
            const std::lock_guard lk(mu);
            stopping = true;
        }
        master.request_cancel();
        cv.notify_all();
        for (auto& w : workers)
            w.join();
        // Anything still queued (paused server, zero workers) is shed
        // loudly rather than silently dropped.
        std::deque<std::unique_ptr<Pending>> leftovers;
        {
            const std::lock_guard lk(mu);
            for (auto& q : {&interactive, &bulk})
                while (!q->empty()) {
                    leftovers.push_back(std::move(q->front()));
                    q->pop_front();
                }
        }
        for (auto& p : leftovers)
            resolve_shed(*p, "server shut down");
    }

    void resolve_shed(Pending& p, std::string why)
    {
        Response r;
        r.id = p.id;
        r.status = Request_status::shed;
        r.error = std::move(why);
        {
            const std::lock_guard lk(mu);
            ++stats.shed;
        }
        p.promise.set_value(std::move(r));
    }

    // --- session pool --------------------------------------------------

    std::unique_ptr<Session_slot> checkout(const solver::Problem& problem,
                                           std::string key)
    {
        {
            const std::lock_guard lk(mu);
            const auto it = std::find_if(
                idle_sessions.begin(), idle_sessions.end(),
                [&](const auto& s) { return s->key == key; });
            if (it != idle_sessions.end()) {
                auto slot = std::move(*it);
                idle_sessions.erase(it);
                ++stats.sessions_reused;
                return slot;
            }
        }
        auto slot = std::make_unique<Session_slot>();
        slot->key = std::move(key);
        slot->bsbs.assign(problem.bsbs.begin(), problem.bsbs.end());
        slot->problem = problem;
        slot->problem.bsbs = slot->bsbs;
        // Throws std::invalid_argument on validation defects; the
        // ladder turns that into a failed response.
        slot->session = std::make_unique<solver::Session>(slot->problem);
        return slot;
    }

    void checkin(std::unique_ptr<Session_slot> slot)
    {
        const std::lock_guard lk(mu);
        slot->last_used = ++pool_tick;
        idle_sessions.push_back(std::move(slot));
        if (idle_sessions.size() > opts.session_pool_capacity) {
            const auto oldest = std::min_element(
                idle_sessions.begin(), idle_sessions.end(),
                [](const auto& a, const auto& b) {
                    return a->last_used < b->last_used;
                });
            idle_sessions.erase(oldest);
        }
    }

    // --- warm-start incumbent cache ------------------------------------

    bool warm_lookup(std::uint64_t key, core::Rmap& out)
    {
        const std::lock_guard lk(mu);
        const auto it = std::find_if(
            incumbents.begin(), incumbents.end(),
            [&](const auto& e) { return e.first == key; });
        if (it == incumbents.end())
            return false;
        out = it->second;
        return true;
    }

    void warm_store(std::uint64_t key, const core::Rmap& datapath)
    {
        const std::lock_guard lk(mu);
        const auto it = std::find_if(
            incumbents.begin(), incumbents.end(),
            [&](const auto& e) { return e.first == key; });
        if (it != incumbents.end()) {
            it->second = datapath;
            return;
        }
        incumbents.emplace_back(key, datapath);
        if (incumbents.size() > opts.incumbent_cache_capacity)
            incumbents.pop_front();
    }

    // --- the degradation ladder ----------------------------------------

    /// The single-request path: checkout, ladder, checkin.  Batches
    /// (process_batch) run the same ladder per member on one pinned
    /// checkout instead.
    Response process(Pending& p, bool attach_master)
    {
        const auto t_start = clock::now();
        std::unique_ptr<Session_slot> slot;
        try {
            slot = checkout(p.req.problem, p.key);
        }
        catch (const std::exception& e) {
            Response resp;
            resp.id = p.id;
            resp.queue_ms = ms_between(p.t_submit, t_start);
            resp.status = Request_status::failed;
            resp.error = e.what();
            finish_stats(resp);
            resp.solve_ms = ms_between(t_start, clock::now());
            return resp;
        }
        Response resp = run_ladder(p, *slot->session, attach_master, t_start,
                                   /*batch_size=*/1);
        checkin(std::move(slot));
        return resp;
    }

    /// The degradation ladder of one request on an already-checked-out
    /// session.  `batch_size` is recorded on the accepted result (1 =
    /// served alone); the session may carry warm state from earlier
    /// requests — every rung is bit-identical warm or cold.
    Response run_ladder(Pending& p, solver::Session& session,
                        bool attach_master, clock::time_point t_start,
                        int batch_size)
    {
        Response resp;
        resp.id = p.id;
        resp.queue_ms = ms_between(p.t_submit, t_start);

        std::string strategy = p.req.strategy;
        if (strategy == "auto")
            strategy = session.space_size() <= p.req.exhaustive_limit
                           ? "exhaustive_bb"
                           : "hill_climb";
        if (solver::find_strategy(strategy) == nullptr) {
            resp.status = Request_status::failed;
            resp.error = "unknown strategy \"" + strategy + "\"";
            finish_stats(resp);
            resp.solve_ms = ms_between(t_start, clock::now());
            return resp;
        }

        // Rung list: requested, retry, hill_climb fallback (when the
        // request asked for something costlier), greedy incumbent.
        std::vector<std::string> rungs{strategy, strategy};
        if (strategy != "hill_climb")
            rungs.emplace_back("hill_climb");
        rungs.emplace_back(k_incumbent_rung);

        const std::uint64_t family = warm_family_key(session.problem());
        core::Rmap warm;
        bool have_warm = opts.warm_start && warm_lookup(family, warm);

        const auto remaining_ms = [&] {
            return p.req.deadline_ms - ms_between(t_start, clock::now());
        };

        bool accepted = false;
        for (std::size_t i = 0; i < rungs.size() && !accepted; ++i) {
            Attempt_record rec;
            rec.strategy = rungs[i];
            if (rungs[i] == k_incumbent_rung) {
                try {
                    resp.result = greedy_incumbent(
                        session, have_warm ? &warm : nullptr);
                    resp.warm_start = have_warm;
                    if (have_warm)
                        resp.warm_datapath = warm;
                    rec.status = resp.result.status;
                    rec.seconds = resp.result.seconds;
                    accepted = true;
                }
                catch (const std::exception& e) {
                    resp.error = e.what();
                }
                resp.attempts.push_back(std::move(rec));
                if (accepted) {
                    resp.rung = static_cast<int>(i);
                    resp.rung_strategy = rungs[i];
                }
                continue;
            }

            // A spent request deadline skips straight down the ladder
            // to the infallible rung instead of starting a solve that
            // would only trip again.
            if (p.req.deadline_ms > 0.0 && remaining_ms() <= 0.0) {
                rec.skipped = true;
                resp.attempts.push_back(std::move(rec));
                continue;
            }
            // Shutdown: don't start new solver rungs, fall through to
            // the incumbent so the promise still gets a best effort.
            if (attach_master && master.tripped()) {
                rec.skipped = true;
                resp.attempts.push_back(std::move(rec));
                continue;
            }

            if (i > 0) {
                {
                    const std::lock_guard lk(mu);
                    ++stats.retries;
                }
                double backoff =
                    opts.retry_backoff_ms * static_cast<double>(1u << (i - 1));
                if (p.req.deadline_ms > 0.0)
                    backoff = std::min(backoff, std::max(0.0, remaining_ms()));
                if (backoff > 0.0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double, std::milli>(backoff));
            }

            solver::Solve_options o = p.req.options;
            o.cancel = attach_master ? &master : p.req.options.cancel;
            o.deadline_ms =
                p.req.deadline_ms > 0.0 ? std::max(remaining_ms(), 1e-6) : 0.0;
            const auto chaos = p.req.chaos.for_attempt(i);
            o.fault = chaos.fault.armed()
                          ? chaos.fault
                          : (i == 0 ? p.req.options.fault
                                    : util::Fault_injector{});
            if (chaos.deadline_ms > 0.0)
                o.deadline_ms = chaos.deadline_ms;
            if (i == 1)
                o.max_dp_cells = p.req.options.max_dp_cells > 0
                                     ? std::max<std::uint64_t>(
                                           1, p.req.options.max_dp_cells / 2)
                                     : opts.retry_dp_cell_budget;
            // Strategy-specific extras only make sense on the strategy
            // the request configured them for.
            if (rungs[i] != strategy)
                o.extras = {};

            try {
                auto r = session.solve(rungs[i], o);
                rec.status = r.status;
                rec.seconds = r.seconds;
                if (r.status == util::Solve_status::complete) {
                    resp.result = std::move(r);
                    accepted = true;
                }
            }
            catch (const std::bad_alloc&) {
                // Transient by contract: descend the ladder.
                rec.alloc_failure = true;
                rec.status = util::Solve_status::cancelled;
            }
            catch (const std::exception& e) {
                // Permanent (bad extras, engine invariant): no lower
                // rung can fix a malformed request.
                resp.error = e.what();
                resp.attempts.push_back(std::move(rec));
                break;
            }
            resp.attempts.push_back(std::move(rec));
            if (accepted) {
                resp.rung = static_cast<int>(i);
                resp.rung_strategy = rungs[i];
            }
        }

        if (accepted) {
            resp.status = resp.rung == 0 ? Request_status::complete
                                         : Request_status::degraded;
            if (!resp.result.multi.active &&
                !resp.result.best.datapath.empty())
                warm_store(family, resp.result.best.datapath);
            if (resp.warm_start) {
                const std::lock_guard lk(mu);
                ++stats.warm_hits;
            }
            if (p.req.rescore_fine && !resp.result.multi.active) {
                const auto before = session.cache().stats();
                resp.result.best =
                    session.rescore(resp.result.best.datapath);
                resp.result.cache_stats +=
                    session.cache().stats().minus(before);
            }
            resp.result.batch_size = batch_size;
            // Per-family service observability: the answered request's
            // cache activity and cross-request warm-start rows, folded
            // into its family's row (batch members land in the same
            // row, so the combined hit rate is one division away).
            {
                const std::lock_guard lk(mu);
                stats.dp_rows_reused_cross_request +=
                    resp.result.dp_rows_reused_cross_request;
                auto it = std::find_if(
                    stats.family_cache.begin(), stats.family_cache.end(),
                    [&](const auto& e) { return e.family == family; });
                if (it == stats.family_cache.end()) {
                    stats.family_cache.push_back({family, 0, {}});
                    it = std::prev(stats.family_cache.end());
                }
                ++it->requests;
                it->cache += resp.result.cache_stats;
            }
        }
        else {
            resp.status = Request_status::failed;
            if (resp.error.empty())
                resp.error = "every ladder rung failed";
        }
        finish_stats(resp);
        resp.solve_ms = ms_between(t_start, clock::now());
        return resp;
    }

    void finish_stats(const Response& resp)
    {
        const std::lock_guard lk(mu);
        switch (resp.status) {
        case Request_status::complete: ++stats.completed; break;
        case Request_status::degraded: ++stats.degraded; break;
        case Request_status::failed: ++stats.failed; break;
        case Request_status::shed: break;  // counted at admission
        }
    }

    // --- queue and workers ---------------------------------------------

    void worker_loop()
    {
        for (;;) {
            std::vector<std::unique_ptr<Pending>> batch;
            {
                std::unique_lock lk(mu);
                cv.wait(lk, [&] {
                    return stopping ||
                           (!paused &&
                            (!interactive.empty() || !bulk.empty()));
                });
                if (stopping)
                    return;
                auto& q = !interactive.empty() ? interactive : bulk;
                batch.push_back(std::move(q.front()));
                q.pop_front();
                if (opts.batching) {
                    // Drain every queued request with the same
                    // canonical problem key into this dequeue,
                    // interactive before bulk and in queue order within
                    // each class — exactly the order the workers would
                    // have served them anyway.
                    const std::string& key = batch.front()->key;
                    for (auto* queue : {&interactive, &bulk})
                        for (auto it = queue->begin();
                             it != queue->end();) {
                            if ((*it)->key == key) {
                                batch.push_back(std::move(*it));
                                it = queue->erase(it);
                            }
                            else {
                                ++it;
                            }
                        }
                }
                if (batch.size() > 1) {
                    ++stats.batches;
                    stats.batched_requests += batch.size();
                    stats.max_batch_size =
                        std::max<std::uint64_t>(stats.max_batch_size,
                                                batch.size());
                }
            }
            process_batch(batch);
        }
    }

    /// Serve a drained batch back-to-back on one pinned session
    /// checkout.  Members keep their own ladders; sequence numbers are
    /// taken at each member's ladder start, so the global dequeue
    /// order stays gap-free even when shutdown sheds the tail of a
    /// batch.  A checkout failure (invalid problem — shared by every
    /// member, the key encodes the whole problem) falls back to the
    /// single-request path per member, which fails each identically.
    void process_batch(std::vector<std::unique_ptr<Pending>>& batch)
    {
        const int batch_size = static_cast<int>(batch.size());
        std::unique_ptr<Session_slot> slot;
        if (batch_size > 1) {
            try {
                slot = checkout(batch.front()->req.problem,
                                batch.front()->key);
            }
            catch (const std::exception&) {
                slot = nullptr;
            }
        }
        for (auto& p : batch) {
            // Shutdown boundary: members whose ladder has not started
            // are shed individually — a batch never leaves a member's
            // promise dangling, and never returns a partial answer.
            if (master.tripped()) {
                resolve_shed(*p, "server shut down");
                continue;
            }
            std::uint64_t seq = 0;
            {
                const std::lock_guard lk(mu);
                seq = ++next_seq;
            }
            Response r =
                slot != nullptr
                    ? run_ladder(*p, *slot->session, /*attach_master=*/true,
                                 clock::now(), batch_size)
                    : process(*p, /*attach_master=*/true);
            r.sequence = seq;
            p->promise.set_value(std::move(r));
        }
        if (slot != nullptr)
            checkin(std::move(slot));
    }

    Server_options opts;
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<std::unique_ptr<Pending>> interactive;
    std::deque<std::unique_ptr<Pending>> bulk;
    bool stopping = false;
    bool paused = false;
    std::vector<std::thread> workers;
    util::Cancel_token master;  ///< parent of every queued rung's token
    std::uint64_t next_id = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t pool_tick = 0;
    Server_stats stats;
    std::vector<std::unique_ptr<Session_slot>> idle_sessions;
    std::deque<std::pair<std::uint64_t, core::Rmap>> incumbents;
};

Server::Server(Server_options options)
    : impl_(std::make_unique<Impl>(std::move(options)))
{
}

Server::~Server() = default;

std::future<Response> Server::submit(Request request)
{
    auto p = std::make_unique<Impl::Pending>();
    p->req = std::move(request);
    p->bsbs.assign(p->req.problem.bsbs.begin(), p->req.problem.bsbs.end());
    p->req.problem.bsbs = p->bsbs;
    p->key = encode_problem(p->req.problem);
    p->t_submit = clock::now();
    auto future = p->promise.get_future();

    {
        const std::lock_guard lk(impl_->mu);
        ++impl_->stats.submitted;
        p->id = ++impl_->next_id;
    }

    // Inline mode: no workers, run on the caller's thread.
    if (impl_->opts.n_workers <= 0) {
        bool stopped;
        {
            const std::lock_guard lk(impl_->mu);
            stopped = impl_->stopping;
        }
        if (stopped) {
            impl_->resolve_shed(*p, "server shut down");
            return future;
        }
        Response r = impl_->process(*p, /*attach_master=*/false);
        p->promise.set_value(std::move(r));
        return future;
    }

    std::unique_ptr<Impl::Pending> displaced;
    {
        const std::lock_guard lk(impl_->mu);
        if (impl_->stopping) {
            displaced = std::move(p);
        }
        else {
            const std::size_t size =
                impl_->interactive.size() + impl_->bulk.size();
            if (size >= impl_->opts.queue_capacity) {
                if (p->req.priority == Priority::interactive &&
                    !impl_->bulk.empty()) {
                    // Overload shedding: the newest bulk request makes
                    // room for the interactive one.
                    displaced = std::move(impl_->bulk.back());
                    impl_->bulk.pop_back();
                    impl_->interactive.push_back(std::move(p));
                }
                else {
                    displaced = std::move(p);
                }
            }
            else if (p->req.priority == Priority::interactive) {
                impl_->interactive.push_back(std::move(p));
            }
            else {
                impl_->bulk.push_back(std::move(p));
            }
        }
    }
    if (displaced)
        impl_->resolve_shed(*displaced, "queue full");
    else
        impl_->cv.notify_one();
    return future;
}

Response Server::solve(Request request)
{
    auto p = std::make_unique<Impl::Pending>();
    p->req = std::move(request);
    p->bsbs.assign(p->req.problem.bsbs.begin(), p->req.problem.bsbs.end());
    p->req.problem.bsbs = p->bsbs;
    p->key = encode_problem(p->req.problem);
    p->t_submit = clock::now();
    {
        const std::lock_guard lk(impl_->mu);
        ++impl_->stats.submitted;
        p->id = ++impl_->next_id;
    }
    return impl_->process(*p, /*attach_master=*/false);
}

void Server::resume()
{
    {
        const std::lock_guard lk(impl_->mu);
        impl_->paused = false;
    }
    impl_->cv.notify_all();
}

Server_stats Server::stats() const
{
    const std::lock_guard lk(impl_->mu);
    return impl_->stats;
}

const Server_options& Server::options() const { return impl_->opts; }

solver::Solve_result replay_rung(const Request& request,
                                 const Response& response)
{
    if (response.status != Request_status::complete &&
        response.status != Request_status::degraded)
        throw std::logic_error(
            "serve::replay_rung: response carries no accepted rung");
    solver::Session session(request.problem);
    session.exhaustive_limit = request.exhaustive_limit;
    if (response.rung_strategy == k_incumbent_rung)
        return greedy_incumbent(
            session, response.warm_start ? &response.warm_datapath : nullptr);

    solver::Solve_options o = request.options;
    o.deadline_ms = 0.0;
    o.max_evals = 0;
    o.max_dp_cells = 0;
    o.fault = {};
    o.cancel = nullptr;
    // attempts[0] always records the resolved (post-auto) strategy;
    // extras only apply when the accepted rung is that strategy.
    const std::string resolved = response.attempts.empty()
                                     ? response.rung_strategy
                                     : response.attempts.front().strategy;
    if (response.rung_strategy != resolved)
        o.extras = {};
    return session.solve(response.rung_strategy, o);
}

}  // namespace lycos::serve
