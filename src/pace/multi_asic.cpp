#include "pace/multi_asic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "util/cancel.hpp"
#include "util/simd.hpp"

namespace lycos::pace {

namespace {

constexpr double k_inf = std::numeric_limits<double>::infinity();

double hw_gain(double t_sw, const Bsb_cost& c)
{
    return t_sw - c.t_hw - c.comm;
}

/// Shared quantization of the two-ASIC DP (the frontier DP, the
/// screening pass and the dense reference must agree exactly).
struct Multi_setup {
    double quantum = 0.0;
    std::array<long long, 2> cap{0, 0};  ///< last level within each budget
    std::size_t w0 = 0, w1 = 0;          ///< cap + 1 per axis
};

Multi_setup prepare_multi(std::span<const Multi_bsb_cost> costs,
                          const Multi_pace_options& options,
                          std::vector<std::array<int, 2>>& qarea,
                          std::vector<std::array<std::uint8_t, 2>>& possible)
{
    for (double b : options.ctrl_area_budgets) {
        if (b < 0.0)
            throw std::invalid_argument(
                "multi_pace_partition: negative budget");
        if (!std::isfinite(b))
            throw std::invalid_argument(
                "multi_pace_partition: non-finite budget");
    }
    if (options.max_dp_cells < 4)
        throw std::invalid_argument("multi_pace_partition: max_dp_cells < 4");
    if (!std::isfinite(options.area_quantum) || options.area_quantum < 0.0)
        throw std::invalid_argument("multi_pace_partition: bad quantum");

    const double b0 = options.ctrl_area_budgets[0];
    const double b1 = options.ctrl_area_budgets[1];
    const double max_budget = std::max(b0, b1);

    Multi_setup s;
    // Auto quantum unified with the single-ASIC default (budget/4096,
    // at least one gate), then re-quantized while the (a0, a1) grid
    // would exceed max_dp_cells — a pathological budget/quantum ratio
    // must not silently allocate an enormous table.
    s.quantum = options.area_quantum > 0.0
                    ? options.area_quantum
                    : std::max(1.0, max_budget / 4096.0);
    const double cells_cap = static_cast<double>(options.max_dp_cells);
    for (;;) {
        const double w0d = std::floor(b0 / s.quantum) + 1.0;
        const double w1d = std::floor(b1 / s.quantum) + 1.0;
        const double cells = w0d * w1d;
        if (cells <= cells_cap)
            break;
        // sqrt(overshoot) scales both axes toward the cap; the floor
        // can stall a tiny overshoot, so always grow by a minimum
        // factor (deterministic, converges in a handful of rounds).
        s.quantum *= std::max(std::sqrt(cells / cells_cap), 1.0 + 1e-3);
    }
    s.cap = {static_cast<long long>(std::floor(b0 / s.quantum)),
             static_cast<long long>(std::floor(b1 / s.quantum))};
    s.w0 = static_cast<std::size_t>(s.cap[0]) + 1;
    s.w1 = static_cast<std::size_t>(s.cap[1]) + 1;

    // Quantized controller areas per BSB per ASIC.  Rounded up by
    // default, so the DP never packs more real area than a budget;
    // optimistic_rounding rounds down instead, which makes the DP
    // value an upper bound on the exact continuum optimum (and hence
    // on every ceil-rounded DP at any quantum over budgets no larger
    // than these) — the mode the multi-ASIC search's admissible
    // per-a0-row bound runs in.
    const std::size_t n = costs.size();
    qarea.assign(n, {0, 0});
    possible.assign(n, {0, 0});
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t a = 0; a < 2; ++a) {
            const auto& c = costs[i].hw[a];
            if (std::isinf(c.ctrl_area) || std::isinf(c.t_hw))
                continue;
            qarea[i][a] = static_cast<int>(
                options.optimistic_rounding
                    ? std::floor(c.ctrl_area / s.quantum)
                    : std::ceil(c.ctrl_area / s.quantum));
            possible[i][a] = qarea[i][a] <= s.cap[a] ? 1 : 0;
        }
    }
    return s;
}

/// Best final DP state, for the traceback walk.
struct Best_state {
    std::size_t a0 = 0, a1 = 0, p = 0;
};

struct Dp_stats {
    long long cells_swept = 0;
    bool aborted = false;  ///< sparse sweep stopped on a tripped token
};

}  // namespace

/// Friend of Multi_pace_workspace: the frontier sweep both public
/// entry points share, templated on traceback maintenance exactly
/// like the single-ASIC Pace_dp.
///
/// value[(a0*w1+a1)*3+p]: best saving vs. all-software over the BSBs
/// processed so far using quantized area (a0, a1) on the two ASICs,
/// with the previous BSB placed p (0 = SW, 1 = asic0, 2 = asic1).
/// Only the reachable rectangle [0,hi0]x[0,hi1] is initialized and
/// swept — row i can reach at most the previous frontier plus BSB i's
/// quantized areas — which is what replaces the dense w0*w1 scan.
/// With traceback, each row's cells live in a nibble-packed arena
/// sized to that row's frontier (4-bit decision*3+parent codes, two
/// cells per byte): stale nibbles from earlier calls are never read
/// because every finite-value state's cell was written by the
/// improving write that made it finite.
struct Multi_dp {
    template <bool With_trace>
    static double sweep(std::span<const Multi_bsb_cost> costs,
                        const Multi_setup& s, Multi_pace_workspace& ws,
                        Dp_stats& stats, Best_state* best_state);
};

template <bool With_trace>
double Multi_dp::sweep(std::span<const Multi_bsb_cost> costs,
                       const Multi_setup& s, Multi_pace_workspace& ws,
                       Dp_stats& stats, Best_state* best_state)
{
    const std::size_t n = costs.size();
    const std::size_t w0 = s.w0, w1 = s.w1;
    const auto& qarea = ws.qarea_;
    const auto& possible = ws.possible_;
    auto idx = [&](std::size_t a0, std::size_t a1, std::size_t p) {
        return (a0 * w1 + a1) * 3 + p;
    };

    auto& value = ws.value_;
    auto& next = ws.next_;
    if (value.size() < w0 * w1 * 3)
        value.resize(w0 * w1 * 3);
    if (next.size() < w0 * w1 * 3)
        next.resize(w0 * w1 * 3);

    // Frontier extents after each row (rectangular hull of the
    // reachable set) — they depend only on the quantized areas, so
    // the traceback arena layout is computable up front.
    if constexpr (With_trace) {
        ws.row_hi0_.assign(n, 0);
        ws.row_hi1_.assign(n, 0);
        ws.row_off_.assign(n + 1, 0);
        std::size_t off = 0;
        long long h0 = 0, h1 = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (possible[i][0] != 0)
                h0 = std::min(h0 + qarea[i][0], s.cap[0]);
            if (possible[i][1] != 0)
                h1 = std::min(h1 + qarea[i][1], s.cap[1]);
            ws.row_hi0_[i] = static_cast<int>(h0);
            ws.row_hi1_[i] = static_cast<int>(h1);
            ws.row_off_[i] = off;
            const std::size_t cells = (static_cast<std::size_t>(h0) + 1) *
                                      (static_cast<std::size_t>(h1) + 1) * 3;
            off += (cells + 1) / 2;
        }
        ws.row_off_[n] = off;
        if (ws.trace_.size() < off)
            ws.trace_.resize(off);
    }

    // 4-bit cell = decision * 3 + parent; two cells per byte.
    auto put_cell = [&](std::size_t row, std::size_t stride1,
                        std::size_t a0, std::size_t a1, std::size_t p,
                        std::uint8_t code) {
        const std::size_t cell = (a0 * stride1 + a1) * 3 + p;
        std::uint8_t& b = ws.trace_[ws.row_off_[row] + (cell >> 1)];
        b = (cell & 1) != 0
                ? static_cast<std::uint8_t>((b & 0x0F) | (code << 4))
                : static_cast<std::uint8_t>((b & 0xF0) | code);
    };

    value[idx(0, 0, 0)] = 0.0;
    value[idx(0, 0, 1)] = -k_inf;
    value[idx(0, 0, 2)] = -k_inf;
    std::size_t hi0 = 0, hi1 = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const std::array<std::size_t, 2> qa = {
            static_cast<std::size_t>(qarea[i][0]),
            static_cast<std::size_t>(qarea[i][1])};
        const std::size_t nhi0 =
            possible[i][0] != 0
                ? std::min(hi0 + qa[0], static_cast<std::size_t>(s.cap[0]))
                : hi0;
        const std::size_t nhi1 =
            possible[i][1] != 0
                ? std::min(hi1 + qa[1], static_cast<std::size_t>(s.cap[1]))
                : hi1;
        const std::size_t stride1 = nhi1 + 1;  // traceback row stride

        stats.cells_swept +=
            static_cast<long long>((hi0 + 1) * (hi1 + 1) * 3);

        // Fused row pass: every next-cell has exactly one source cell
        // — (a0,a1,SW) from (a0,a1,*), (a0,a1,asic0) from
        // (a0-qa0,a1,*), (a0,a1,asic1) from (a0,a1-qa1,*) — so the
        // whole new frontier is written in a single sweep of pure
        // stores (no -inf pre-fill, no read-modify-write of value
        // cells).  The per-lane max takes the first maximum over
        // p = 0,1,2, which reproduces the dense reference's
        // improving-write order bit for bit, including the traceback
        // parent; trace nibbles are only written for reachable
        // (finite) states, exactly the cells the reference writes.
        const std::array<double, 2> gain = {
            possible[i][0] != 0 ? hw_gain(costs[i].t_sw, costs[i].hw[0])
                                : 0.0,
            possible[i][1] != 0 ? hw_gain(costs[i].t_sw, costs[i].hw[1])
                                : 0.0};
        const std::array<double, 2> gain_save = {
            i > 0 ? gain[0] + costs[i].hw[0].save_prev : gain[0],
            i > 0 ? gain[1] + costs[i].hw[1].save_prev : gain[1]};
        // Source candidates per lane, indexed by the previous side p:
        // the adjacency saving applies only when p matches the lane's
        // ASIC.
        const double g1[3] = {gain[0], gain_save[0], gain[0]};
        const double g2[3] = {gain[1], gain[1], gain_save[1]};

        auto max3 = [](const double* v, const double* add,
                       double& out) -> std::size_t {
            const double c0 = v[0] + add[0];
            const double c1 = v[1] + add[1];
            const double c2 = v[2] + add[2];
            std::size_t p = 0;
            double m = c0;
            if (c1 > m) {
                m = c1;
                p = 1;
            }
            if (c2 > m) {
                m = c2;
                p = 2;
            }
            out = m;
            return p;
        };
        auto max3v = [](const double* v, double& out) -> std::size_t {
            std::size_t p = 0;
            double m = v[0];
            if (v[1] > m) {
                m = v[1];
                p = 1;
            }
            if (v[2] > m) {
                m = v[2];
                p = 2;
            }
            out = m;
            return p;
        };

        for (std::size_t a0 = 0; a0 <= nhi0; ++a0) {
            const bool row_in = a0 <= hi0;
            const double* src0 =
                row_in ? &value[idx(a0, 0, 0)] : nullptr;
            const double* src1 =
                possible[i][0] != 0 && a0 >= qa[0]
                    ? &value[idx(a0 - qa[0], 0, 0)]
                    : nullptr;
            double* dst = &next[idx(a0, 0, 0)];
            for (std::size_t a1 = 0; a1 <= nhi1; ++a1) {
                const bool col_in = a1 <= hi1;
                double m;
                // Lane 0: BSB i in software.
                if (row_in && col_in) {
                    const std::size_t p = max3v(src0 + a1 * 3, m);
                    dst[a1 * 3] = m;
                    if constexpr (With_trace) {
                        if (m != -k_inf)
                            put_cell(i, stride1, a0, a1, 0,
                                     static_cast<std::uint8_t>(p));
                    }
                }
                else {
                    dst[a1 * 3] = -k_inf;
                }
                // Lane 1: BSB i on ASIC 0.
                if (src1 != nullptr && col_in) {
                    const std::size_t p = max3(src1 + a1 * 3, g1, m);
                    dst[a1 * 3 + 1] = m;
                    if constexpr (With_trace) {
                        if (m != -k_inf)
                            put_cell(i, stride1, a0, a1, 1,
                                     static_cast<std::uint8_t>(3 + p));
                    }
                }
                else {
                    dst[a1 * 3 + 1] = -k_inf;
                }
                // Lane 2: BSB i on ASIC 1.
                if (row_in && possible[i][1] != 0 && a1 >= qa[1] &&
                    a1 - qa[1] <= hi1) {
                    const std::size_t p =
                        max3(src0 + (a1 - qa[1]) * 3, g2, m);
                    dst[a1 * 3 + 2] = m;
                    if constexpr (With_trace) {
                        if (m != -k_inf)
                            put_cell(i, stride1, a0, a1, 2,
                                     static_cast<std::uint8_t>(6 + p));
                    }
                }
                else {
                    dst[a1 * 3 + 2] = -k_inf;
                }
            }
        }
        value.swap(next);
        hi0 = nhi0;
        hi1 = nhi1;
    }

    double best = -k_inf;
    for (std::size_t a0 = 0; a0 <= hi0; ++a0)
        for (std::size_t a1 = 0; a1 <= hi1; ++a1)
            for (std::size_t p = 0; p < 3; ++p)
                if (value[idx(a0, a1, p)] > best) {
                    best = value[idx(a0, a1, p)];
                    if (best_state != nullptr)
                        *best_state = {a0, a1, p};
                }
    return best;
}

// ---------------------------------------------------------------------
// Pareto-sparse sweep
// ---------------------------------------------------------------------

void Blocked_prefix_max::begin(std::size_t nb)
{
    const std::size_t n_blocks = (nb + k_block - 1) / k_block;
    if (blk_.size() < n_blocks) {
        blk_.resize(n_blocks);
        blk_epoch_.resize(n_blocks, 0);
        fine_.resize(n_blocks * k_block);
    }
    // Block maxima are reset eagerly (one streamed cache line per 64
    // positions — cheaper than a single query); fine blocks reset
    // lazily on first update, epoch-stamped so untouched blocks cost
    // nothing.
    std::fill_n(blk_.begin(), n_blocks, -k_inf);
    if (++epoch_ == 0) {  // epoch wrapped: hard reset once per 2^32
        std::fill(blk_epoch_.begin(), blk_epoch_.end(), 0u);
        epoch_ = 1;
    }
    kern_ = &util::simd::kernels();
}

double Blocked_prefix_max::query(std::size_t pos) const
{
    const std::size_t b = pos / k_block;
    // Whole blocks before pos's block: a contiguous streaming max
    // (max is order-independent, so the kernel's lane order does not
    // matter; stale blocks hold -inf from begin()).
    double m = kern_->max_reduce(blk_.data(), b);
    if (blk_epoch_[b] == epoch_) {
        const double* f = fine_.data() + b * k_block;
        for (std::size_t i = b * k_block; i <= pos; ++i, ++f)
            if (*f > m)
                m = *f;
    }
    return m;
}

void Blocked_prefix_max::update(std::size_t pos, double v)
{
    const std::size_t b = pos / k_block;
    if (blk_epoch_[b] != epoch_) {
        blk_epoch_[b] = epoch_;
        std::fill_n(fine_.begin() + static_cast<std::ptrdiff_t>(b * k_block),
                    k_block, -k_inf);
    }
    if (v > fine_[pos])
        fine_[pos] = v;
    if (v > blk_[b])
        blk_[b] = v;
}

void Multi_pace_state_set::prune(Multi_state_soa& states, int a1_cap)
{
    // Prefix-max over a1 in [0, a1_cap].  Processing states in
    // (a0, a1) order makes "some processed state with a1' <= a1 has
    // value >= v" exactly the dominance test: processed-before plus
    // a1' <= a1 implies a0' <= a0 with unequal coordinates.  Only
    // kept states are inserted — a dropped state's dominator chain
    // always ends in a kept state that dominates it transitively — so
    // the survivors are precisely the Pareto-maximal antichain.
    pmax_.begin(static_cast<std::size_t>(a1_cap) + 1);
    const std::size_t n = states.size();
    std::size_t kept = 0;
    for (std::size_t r = 0; r < n; ++r) {
        const std::size_t pos = static_cast<std::size_t>(states.a1[r]);
        const double v = states.value[r];
        if (pmax_.query(pos) >= v)
            continue;  // dominated (ties keep the smaller-area state)
        pmax_.update(pos, v);
        if (kept != r) {  // in-place SoA compaction, order preserved
            states.a0[kept] = states.a0[r];
            states.a1[kept] = states.a1[r];
            states.value[kept] = v;
            states.parent[kept] = states.parent[r];
        }
        ++kept;
    }
    states.resize(kept);
}

namespace {

std::uint64_t state_key(std::size_t a0, std::size_t a1)
{
    return (static_cast<std::uint64_t>(a0) << 32) |
           static_cast<std::uint64_t>(a1);
}

}  // namespace

/// Friend of Multi_pace_workspace: the Pareto-sparse sweep both
/// sparse entry points share, templated on traceback maintenance like
/// the frontier Multi_dp.
///
/// Row i maps the current antichains (one per previous-placement
/// lane) to the next row's: each destination lane 3-way-merges the
/// shifted source lanes in (a0, a1) order with the source lane p as
/// the tie-break — reproducing the dense reference's improving-write
/// order (first maximum over p) on every surviving cell — then prunes
/// the merged list back to the Pareto-maximal antichain.
///
/// Why this is bit-identical to the dense reference, traceback
/// included, and not merely value-equivalent: with *complete*
/// dominance pruning every surviving state provably carries the dense
/// value of its cell (a surviving state with a smaller value would be
/// dominated by the state the induction guarantees at no more area
/// and at least the dense value), and no state on the dense winner
/// path is ever dominated (a dominator with more value would beat the
/// optimum along the same decision suffix; one with equal value and
/// less area would produce a final state the dense first-maximum
/// final scan prefers over the actual winner — both contradictions).
/// So the winner path survives with exact values, its cells' parents
/// are re-derived from the same candidates in the same first-max
/// order, and the final scan — per-lane first maximum, lanes combined
/// by (value desc, a0, a1, p) — lands on the dense best state.
struct Multi_dp_sparse {
    template <bool With_trace>
    static double sweep(std::span<const Multi_bsb_cost> costs,
                        const Multi_setup& s, Multi_pace_workspace& ws,
                        Dp_stats& stats, Best_state* best_state,
                        const util::Cancel_token* cancel);
};

template <bool With_trace>
double Multi_dp_sparse::sweep(std::span<const Multi_bsb_cost> costs,
                              const Multi_setup& s,
                              Multi_pace_workspace& ws, Dp_stats& stats,
                              Best_state* best_state,
                              const util::Cancel_token* cancel)
{
    const std::size_t n = costs.size();
    const auto& qarea = ws.qarea_;
    const auto& possible = ws.possible_;
    const util::simd::Kernels& kern = util::simd::kernels();
    auto& cur = ws.cur_;
    auto& nxt = ws.nxt_;
    for (std::size_t p = 0; p < 3; ++p) {
        cur.lanes_[p].clear();
        nxt.lanes_[p].clear();
    }
    cur.lanes_[0].push_back(0, 0, 0.0, 0);

    if constexpr (With_trace) {
        ws.srow_off_.assign(n * 3 + 1, 0);
        ws.tb_key_.clear();
        ws.tb_cell_.clear();
    }

    const auto cap0 = static_cast<std::int32_t>(s.cap[0]);
    const auto cap1 = static_cast<std::int32_t>(s.cap[1]);

    for (std::size_t i = 0; i < n; ++i) {
        // Row-stripe poll: these are the heaviest DP rows in the
        // stack, so the full stop() (deadline clock included) runs
        // here.  An abort abandons the sweep wholesale — the sparse
        // arenas carry no cross-call checkpoint to invalidate.
        if (cancel != nullptr) {
            cancel->charge_dp_cells(
                static_cast<std::uint64_t>(cur.size()));
            if (cancel->stop()) {
                stats.aborted = true;
                return -k_inf;
            }
        }
        stats.cells_swept += static_cast<long long>(cur.size());

        const std::array<int, 2> qa = {qarea[i][0], qarea[i][1]};
        const std::array<double, 2> gain = {
            possible[i][0] != 0 ? hw_gain(costs[i].t_sw, costs[i].hw[0])
                                : 0.0,
            possible[i][1] != 0 ? hw_gain(costs[i].t_sw, costs[i].hw[1])
                                : 0.0};
        const std::array<double, 2> gain_save = {
            i > 0 ? gain[0] + costs[i].hw[0].save_prev : gain[0],
            i > 0 ? gain[1] + costs[i].hw[1].save_prev : gain[1]};
        const double g1[3] = {gain[0], gain_save[0], gain[0]};
        const double g2[3] = {gain[1], gain[1], gain_save[1]};

        for (std::size_t l = 0; l < 3; ++l) {
            auto& out = nxt.lanes_[l];
            out.clear();
            if ((l == 1 && possible[i][0] == 0) ||
                (l == 2 && possible[i][1] == 0)) {
                if constexpr (With_trace)
                    ws.srow_off_[i * 3 + l + 1] = ws.tb_key_.size();
                continue;
            }

            // Phase 1 — streaming shift scans: each source lane's SoA
            // arrays are shifted by this row's quantized areas and
            // pre-added with its gain by the dispatched kernel,
            // truncated at the first dead a0 (ascending order makes
            // the rest dead too) with a1 overflows marked by the
            // sentinel key.
            std::array<std::size_t, 3> sn;
            for (std::size_t p = 0; p < 3; ++p) {
                const Multi_state_soa& ln = cur.lanes_[p];
                const std::int32_t da0 =
                    l == 1 ? static_cast<std::int32_t>(qa[0]) : 0;
                const std::int32_t da1 =
                    l == 2 ? static_cast<std::int32_t>(qa[1]) : 0;
                const double add = l == 1 ? g1[p] : l == 2 ? g2[p] : 0.0;
                auto& kv = ws.mkey_[p];
                auto& vv = ws.mval_[p];
                if (kv.size() < ln.size()) {
                    kv.resize(ln.size());
                    vv.resize(ln.size());
                }
                sn[p] = kern.multi_shift_lane(
                    ln.a0.data(), ln.a1.data(), ln.value.data(), ln.size(),
                    da0, da1, add, cap0, cap1, kv.data(), vv.data());
            }

            // Phase 2 — scalar 3-way merge over the precomputed keys;
            // on a key tie the lowest source lane arrives first and
            // later lanes replace it only on a strictly greater value
            // — the dense reference's first-maximum-over-p
            // improving-write order.
            std::array<std::size_t, 3> si{0, 0, 0};
            const auto skip_invalid = [&](std::size_t p) {
                while (si[p] < sn[p] &&
                       ws.mkey_[p][si[p]] == util::simd::k_invalid_key)
                    ++si[p];
            };
            for (std::size_t p = 0; p < 3; ++p)
                skip_invalid(p);
            std::uint64_t last_key = util::simd::k_invalid_key;
            for (;;) {
                int k = -1;
                std::uint64_t k_key = 0;
                for (int p = 0; p < 3; ++p) {
                    const auto up = static_cast<std::size_t>(p);
                    if (si[up] == sn[up])
                        continue;
                    const std::uint64_t key = ws.mkey_[up][si[up]];
                    if (k < 0 || key < k_key) {
                        k = p;
                        k_key = key;
                    }
                }
                if (k < 0)
                    break;
                const auto uk = static_cast<std::size_t>(k);
                const double v = ws.mval_[uk][si[uk]];
                if (k_key == last_key) {
                    if (v > out.value.back()) {
                        out.value.back() = v;
                        out.parent.back() = static_cast<std::uint8_t>(k);
                    }
                }
                else {
                    out.push_back(static_cast<std::int32_t>(k_key >> 32),
                                  static_cast<std::int32_t>(
                                      k_key & 0xFFFFFFFFu),
                                  v, static_cast<std::uint8_t>(k));
                    last_key = k_key;
                }
                ++si[uk];
                skip_invalid(uk);
            }

            nxt.prune(out, cap1);

            if constexpr (With_trace) {
                for (std::size_t t = 0; t < out.size(); ++t) {
                    const std::size_t g = ws.tb_key_.size();
                    ws.tb_key_.push_back(
                        state_key(static_cast<std::size_t>(out.a0[t]),
                                  static_cast<std::size_t>(out.a1[t])));
                    const auto code =
                        static_cast<std::uint8_t>(l * 3 + out.parent[t]);
                    if ((g & 1) == 0)
                        ws.tb_cell_.push_back(code);
                    else
                        ws.tb_cell_[g >> 1] = static_cast<std::uint8_t>(
                            ws.tb_cell_[g >> 1] | (code << 4));
                }
                ws.srow_off_[i * 3 + l + 1] = ws.tb_key_.size();
            }
        }
        for (std::size_t p = 0; p < 3; ++p)
            cur.lanes_[p].swap(nxt.lanes_[p]);
    }

    // Final pick: per lane the first maximum of the (a0, a1)-sorted
    // antichain, lanes combined on (value desc, a0, a1, p asc) — the
    // state the dense (a0-major, a1, p) first-maximum scan lands on.
    // Stays an explicit scalar loop: the first-strict-maximum tie
    // order is part of the determinism contract.
    double best = -k_inf;
    bool have = false;
    Best_state bs;
    for (std::size_t p = 0; p < 3; ++p) {
        const Multi_state_soa& ln = cur.lanes_[p];
        std::size_t bi = ln.size();
        for (std::size_t t = 0; t < ln.size(); ++t)
            if (bi == ln.size() || ln.value[t] > ln.value[bi])
                bi = t;
        if (bi == ln.size())
            continue;
        const Multi_state lane_best = ln[bi];
        const bool wins =
            !have || lane_best.value > best ||
            (lane_best.value == best &&
             (lane_best.a0 < static_cast<int>(bs.a0) ||
              (lane_best.a0 == static_cast<int>(bs.a0) &&
               lane_best.a1 < static_cast<int>(bs.a1))));
        if (wins) {
            best = lane_best.value;
            bs = {static_cast<std::size_t>(lane_best.a0),
                  static_cast<std::size_t>(lane_best.a1), p};
            have = true;
        }
    }
    if (best_state != nullptr && have)
        *best_state = bs;
    return best;
}

std::vector<Multi_bsb_cost> build_multi_cost_model(
    std::span<const bsb::Bsb> bsbs, const hw::Hw_library& lib,
    const hw::Target& target, const core::Rmap& alloc0,
    const core::Rmap& alloc1, Controller_mode mode)
{
    const auto c0 = build_cost_model(bsbs, lib, target, alloc0, mode);
    const auto c1 = build_cost_model(bsbs, lib, target, alloc1, mode);
    std::vector<Multi_bsb_cost> out(bsbs.size());
    for (std::size_t i = 0; i < bsbs.size(); ++i) {
        out[i].t_sw = c0[i].t_sw;
        out[i].hw[0] = c0[i];
        out[i].hw[1] = c1[i];
    }
    return out;
}

Multi_pace_result evaluate_multi_partition(
    std::span<const Multi_bsb_cost> costs,
    const std::vector<Placement>& placement)
{
    if (placement.size() != costs.size())
        throw std::invalid_argument("evaluate_multi_partition: size mismatch");

    Multi_pace_result r;
    r.placement = placement;
    for (const auto& c : costs)
        r.time_all_sw_ns += c.t_sw;

    double t = 0.0;
    for (std::size_t i = 0; i < costs.size(); ++i) {
        if (placement[i] == Placement::software) {
            t += costs[i].t_sw;
            continue;
        }
        const int a = static_cast<int>(placement[i]);
        const auto& c = costs[i].hw[static_cast<std::size_t>(a)];
        t += c.t_hw + c.comm;
        if (i > 0 && placement[i - 1] == placement[i])
            t -= c.save_prev;
        r.ctrl_area_used[static_cast<std::size_t>(a)] += c.ctrl_area;
        ++r.n_in_hw;
    }
    r.time_hybrid_ns = t;
    r.speedup_pct =
        t > 0.0 ? (r.time_all_sw_ns / t - 1.0) * 100.0
                : (r.time_all_sw_ns > 0.0 ? k_inf : 0.0);
    return r;
}

namespace {

/// One BSB's contribution to multi_max_gain: the better of its two
/// per-ASIC gains, adjacency credited unconditionally, budgets
/// ignored — shared by both overloads so the admissibility formula
/// lives in exactly one place.
double best_bsb_gain(std::size_t i, double t_sw, const Bsb_cost& h0,
                     const Bsb_cost& h1)
{
    double best = 0.0;
    for (const Bsb_cost* h : {&h0, &h1}) {
        if (std::isinf(h->t_hw))
            continue;
        double gain = t_sw - h->t_hw - h->comm;
        if (i > 0)
            gain += std::max(0.0, h->save_prev);
        best = std::max(best, gain);
    }
    return best;
}

}  // namespace

double multi_max_gain(std::span<const Multi_bsb_cost> costs)
{
    double total = 0.0;
    for (std::size_t i = 0; i < costs.size(); ++i)
        total += best_bsb_gain(i, costs[i].t_sw, costs[i].hw[0],
                               costs[i].hw[1]);
    return total;
}

double multi_max_gain(std::span<const Bsb_cost> c0,
                      std::span<const Bsb_cost> c1)
{
    double total = 0.0;
    for (std::size_t i = 0; i < c0.size(); ++i)
        total += best_bsb_gain(i, c0[i].t_sw, c0[i], c1[i]);
    return total;
}

double multi_pace_best_saving(std::span<const Multi_bsb_cost> costs,
                              const Multi_pace_options& options,
                              Multi_pace_workspace* workspace)
{
    Multi_pace_workspace local;
    Multi_pace_workspace& ws = workspace != nullptr ? *workspace : local;
    const Multi_setup s =
        prepare_multi(costs, options, ws.qarea_, ws.possible_);
    if (costs.empty())
        return 0.0;
    Dp_stats stats;
    const double best = Multi_dp_sparse::sweep<false>(costs, s, ws, stats,
                                                      nullptr, options.cancel);
    ws.last_cells_swept_ = stats.cells_swept;
    ws.last_cells_dense_ = static_cast<long long>(costs.size()) *
                           static_cast<long long>(s.w0) *
                           static_cast<long long>(s.w1) * 3;
    return best;
}

double multi_pace_best_saving_frontier(std::span<const Multi_bsb_cost> costs,
                                       const Multi_pace_options& options,
                                       Multi_pace_workspace* workspace)
{
    Multi_pace_workspace local;
    Multi_pace_workspace& ws = workspace != nullptr ? *workspace : local;
    const Multi_setup s =
        prepare_multi(costs, options, ws.qarea_, ws.possible_);
    if (costs.empty())
        return 0.0;
    Dp_stats stats;
    const double best = Multi_dp::sweep<false>(costs, s, ws, stats, nullptr);
    ws.last_cells_swept_ = stats.cells_swept;
    ws.last_cells_dense_ = static_cast<long long>(costs.size()) *
                           static_cast<long long>(s.w0) *
                           static_cast<long long>(s.w1) * 3;
    return best;
}

Multi_pace_result multi_pace_partition(std::span<const Multi_bsb_cost> costs,
                                       const Multi_pace_options& options,
                                       Multi_pace_workspace* workspace)
{
    Multi_pace_workspace local;
    Multi_pace_workspace& ws = workspace != nullptr ? *workspace : local;
    const Multi_setup s =
        prepare_multi(costs, options, ws.qarea_, ws.possible_);
    const std::size_t n = costs.size();
    if (n == 0)
        return Multi_pace_result{};

    Dp_stats stats;
    Best_state bs;
    Multi_dp_sparse::sweep<true>(costs, s, ws, stats, &bs, options.cancel);
    if (stats.aborted) {
        // Aborted mid-sweep: the sparse traceback arena is partial,
        // but the all-software placement is always a valid honest
        // answer for the caller's incumbent bookkeeping.
        Multi_pace_result r = evaluate_multi_partition(
            costs, std::vector<Placement>(n, Placement::software));
        r.area_quantum_used = s.quantum;
        r.dp_cells_swept = stats.cells_swept;
        r.dp_cells_dense = static_cast<long long>(n) *
                           static_cast<long long>(s.w0) *
                           static_cast<long long>(s.w1) * 3;
        ws.last_cells_swept_ = stats.cells_swept;
        ws.last_cells_dense_ = r.dp_cells_dense;
        return r;
    }

    // Walk the per-state nibbles backwards from the best final state:
    // a state reachable after row ri is stored (sorted by packed
    // coordinate key) in that row's lane segment of the sparse arena,
    // so a binary search recovers its cell index.
    std::vector<Placement> placement(n, Placement::software);
    std::size_t a0 = bs.a0, a1 = bs.a1, p = bs.p;
    for (std::size_t ri = n; ri-- > 0;) {
        const std::size_t lo = ws.srow_off_[ri * 3 + p];
        const std::size_t hi = ws.srow_off_[ri * 3 + p + 1];
        const std::uint64_t key = state_key(a0, a1);
        const auto* seg = ws.tb_key_.data();
        const auto* pos = std::lower_bound(seg + lo, seg + hi, key);
        const auto g = static_cast<std::size_t>(pos - seg);
        const std::uint8_t byte = ws.tb_cell_[g >> 1];
        const std::uint8_t code =
            (g & 1) != 0 ? static_cast<std::uint8_t>(byte >> 4)
                         : static_cast<std::uint8_t>(byte & 0x0F);
        const std::size_t d = code / 3;
        const std::size_t parent = code % 3;
        if (d == 0) {
            placement[ri] = Placement::software;
        }
        else {
            const std::size_t a = d - 1;
            placement[ri] = a == 0 ? Placement::asic0 : Placement::asic1;
            const std::size_t q = static_cast<std::size_t>(ws.qarea_[ri][a]);
            if (a == 0)
                a0 -= q;
            else
                a1 -= q;
        }
        p = parent;
    }

    Multi_pace_result r = evaluate_multi_partition(costs, placement);
    r.area_quantum_used = s.quantum;
    r.dp_cells_swept = stats.cells_swept;
    r.dp_cells_dense = static_cast<long long>(n) *
                       static_cast<long long>(s.w0) *
                       static_cast<long long>(s.w1) * 3;
    r.dp_states_stored = static_cast<long long>(ws.tb_key_.size());
    // Keys (8 B each, the binary-searchable sparse row index) plus the
    // nibble cells — honest total for the sparse encoding.
    r.traceback_bytes = ws.tb_key_.size() * sizeof(std::uint64_t) +
                        ws.tb_cell_.size();
    r.traceback_bytes_dense =
        static_cast<std::size_t>(n) * s.w0 * s.w1 * 3 * 2;
    ws.last_cells_swept_ = stats.cells_swept;
    ws.last_cells_dense_ = r.dp_cells_dense;
    return r;
}

Multi_pace_result multi_pace_partition_frontier(
    std::span<const Multi_bsb_cost> costs, const Multi_pace_options& options,
    Multi_pace_workspace* workspace)
{
    Multi_pace_workspace local;
    Multi_pace_workspace& ws = workspace != nullptr ? *workspace : local;
    const Multi_setup s =
        prepare_multi(costs, options, ws.qarea_, ws.possible_);
    const std::size_t n = costs.size();
    if (n == 0)
        return Multi_pace_result{};

    Dp_stats stats;
    Best_state bs;
    Multi_dp::sweep<true>(costs, s, ws, stats, &bs);

    // Walk the nibble cells backwards from the best final state; a
    // state reachable after row i always lies within that row's
    // recorded frontier, which fixes the row's cell stride.
    std::vector<Placement> placement(n, Placement::software);
    std::size_t a0 = bs.a0, a1 = bs.a1, p = bs.p;
    for (std::size_t ri = n; ri-- > 0;) {
        const std::size_t stride1 =
            static_cast<std::size_t>(ws.row_hi1_[ri]) + 1;
        const std::size_t cell = (a0 * stride1 + a1) * 3 + p;
        const std::uint8_t byte = ws.trace_[ws.row_off_[ri] + (cell >> 1)];
        const std::uint8_t code =
            (cell & 1) != 0 ? static_cast<std::uint8_t>(byte >> 4)
                            : static_cast<std::uint8_t>(byte & 0x0F);
        const std::size_t d = code / 3;
        const std::size_t parent = code % 3;
        if (d == 0) {
            placement[ri] = Placement::software;
        }
        else {
            const std::size_t a = d - 1;
            placement[ri] = a == 0 ? Placement::asic0 : Placement::asic1;
            const std::size_t q = static_cast<std::size_t>(ws.qarea_[ri][a]);
            if (a == 0)
                a0 -= q;
            else
                a1 -= q;
        }
        p = parent;
    }

    Multi_pace_result r = evaluate_multi_partition(costs, placement);
    r.area_quantum_used = s.quantum;
    r.dp_cells_swept = stats.cells_swept;
    r.dp_cells_dense = static_cast<long long>(n) *
                       static_cast<long long>(s.w0) *
                       static_cast<long long>(s.w1) * 3;
    r.traceback_bytes = ws.row_off_[n];
    r.traceback_bytes_dense =
        static_cast<std::size_t>(n) * s.w0 * s.w1 * 3 * 2;
    ws.last_cells_swept_ = stats.cells_swept;
    ws.last_cells_dense_ = r.dp_cells_dense;
    return r;
}

Multi_pace_result multi_pace_partition_reference(
    std::span<const Multi_bsb_cost> costs, const Multi_pace_options& options)
{
    std::vector<std::array<int, 2>> qarea;
    std::vector<std::array<std::uint8_t, 2>> possible;
    const Multi_setup s = prepare_multi(costs, options, qarea, possible);
    const std::size_t n = costs.size();
    if (n == 0)
        return Multi_pace_result{};
    const std::size_t w0 = s.w0, w1 = s.w1;

    // State: (area0, area1, prev) where prev in {0 = SW, 1 = asic0,
    // 2 = asic1}.  value = best saving vs all-software.  Dense scan
    // over the full grid every row, one byte each for decision and
    // parent per (i, state) — the pre-overhaul layout.
    const std::size_t n_prev = 3;
    const std::size_t n_states = w0 * w1 * n_prev;
    auto idx = [&](std::size_t a0, std::size_t a1, std::size_t p) {
        return (a0 * w1 + a1) * n_prev + p;
    };

    std::vector<double> value(n_states, -k_inf);
    std::vector<double> next(n_states, -k_inf);
    std::vector<std::uint8_t> decision(n * n_states, 0);
    std::vector<std::uint8_t> parent(n * n_states, 0);
    auto cell = [&](std::size_t i, std::size_t st) {
        return i * n_states + st;
    };

    value[idx(0, 0, 0)] = 0.0;

    for (std::size_t i = 0; i < n; ++i) {
        std::fill(next.begin(), next.end(), -k_inf);
        for (std::size_t a0 = 0; a0 < w0; ++a0) {
            for (std::size_t a1 = 0; a1 < w1; ++a1) {
                for (std::size_t p = 0; p < n_prev; ++p) {
                    const double v = value[idx(a0, a1, p)];
                    if (v == -k_inf)
                        continue;

                    // Software.
                    const std::size_t s_sw = idx(a0, a1, 0);
                    if (v > next[s_sw]) {
                        next[s_sw] = v;
                        decision[cell(i, s_sw)] = 0;
                        parent[cell(i, s_sw)] = static_cast<std::uint8_t>(p);
                    }

                    // Either ASIC.
                    for (std::size_t a = 0; a < 2; ++a) {
                        if (possible[i][a] == 0)
                            continue;
                        const auto& c = costs[i].hw[a];
                        const std::size_t q =
                            static_cast<std::size_t>(qarea[i][a]);
                        const std::size_t na0 = a == 0 ? a0 + q : a0;
                        const std::size_t na1 = a == 1 ? a1 + q : a1;
                        if (na0 >= w0 || na1 >= w1)
                            continue;
                        double gain = hw_gain(costs[i].t_sw, c);
                        if (i > 0 && p == a + 1)
                            gain += c.save_prev;
                        const std::size_t s_hw = idx(na0, na1, a + 1);
                        if (v + gain > next[s_hw]) {
                            next[s_hw] = v + gain;
                            decision[cell(i, s_hw)] =
                                static_cast<std::uint8_t>(a + 1);
                            parent[cell(i, s_hw)] =
                                static_cast<std::uint8_t>(p);
                        }
                    }
                }
            }
        }
        value.swap(next);
    }

    // Best final state and reconstruction.
    double best = -k_inf;
    std::size_t best_a0 = 0, best_a1 = 0, best_p = 0;
    for (std::size_t a0 = 0; a0 < w0; ++a0)
        for (std::size_t a1 = 0; a1 < w1; ++a1)
            for (std::size_t p = 0; p < n_prev; ++p)
                if (value[idx(a0, a1, p)] > best) {
                    best = value[idx(a0, a1, p)];
                    best_a0 = a0;
                    best_a1 = a1;
                    best_p = p;
                }

    std::vector<Placement> placement(n, Placement::software);
    std::size_t a0 = best_a0, a1 = best_a1, p = best_p;
    for (std::size_t ri = n; ri-- > 0;) {
        const std::size_t st = idx(a0, a1, p);
        const int d = decision[cell(ri, st)];
        const int prev = parent[cell(ri, st)];
        if (d == 0) {
            placement[ri] = Placement::software;
        }
        else {
            const std::size_t a = static_cast<std::size_t>(d - 1);
            placement[ri] = a == 0 ? Placement::asic0 : Placement::asic1;
            const std::size_t q = static_cast<std::size_t>(qarea[ri][a]);
            if (a == 0)
                a0 -= q;
            else
                a1 -= q;
        }
        p = static_cast<std::size_t>(prev);
    }

    Multi_pace_result r = evaluate_multi_partition(costs, placement);
    r.area_quantum_used = s.quantum;
    r.dp_cells_swept = static_cast<long long>(n) *
                       static_cast<long long>(n_states);
    r.dp_cells_dense = r.dp_cells_swept;
    r.traceback_bytes = n * n_states * 2;
    r.traceback_bytes_dense = r.traceback_bytes;
    return r;
}

}  // namespace lycos::pace
