#include "pace/multi_asic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace lycos::pace {

namespace {

constexpr double k_inf = std::numeric_limits<double>::infinity();

double hw_gain(double t_sw, const Bsb_cost& c)
{
    return t_sw - c.t_hw - c.comm;
}

}  // namespace

std::vector<Multi_bsb_cost> build_multi_cost_model(
    std::span<const bsb::Bsb> bsbs, const hw::Hw_library& lib,
    const hw::Target& target, const core::Rmap& alloc0,
    const core::Rmap& alloc1, Controller_mode mode)
{
    const auto c0 = build_cost_model(bsbs, lib, target, alloc0, mode);
    const auto c1 = build_cost_model(bsbs, lib, target, alloc1, mode);
    std::vector<Multi_bsb_cost> out(bsbs.size());
    for (std::size_t i = 0; i < bsbs.size(); ++i) {
        out[i].t_sw = c0[i].t_sw;
        out[i].hw[0] = c0[i];
        out[i].hw[1] = c1[i];
    }
    return out;
}

Multi_pace_result evaluate_multi_partition(
    std::span<const Multi_bsb_cost> costs,
    const std::vector<Placement>& placement)
{
    if (placement.size() != costs.size())
        throw std::invalid_argument("evaluate_multi_partition: size mismatch");

    Multi_pace_result r;
    r.placement = placement;
    for (const auto& c : costs)
        r.time_all_sw_ns += c.t_sw;

    double t = 0.0;
    for (std::size_t i = 0; i < costs.size(); ++i) {
        if (placement[i] == Placement::software) {
            t += costs[i].t_sw;
            continue;
        }
        const int a = static_cast<int>(placement[i]);
        const auto& c = costs[i].hw[static_cast<std::size_t>(a)];
        t += c.t_hw + c.comm;
        if (i > 0 && placement[i - 1] == placement[i])
            t -= c.save_prev;
        r.ctrl_area_used[static_cast<std::size_t>(a)] += c.ctrl_area;
        ++r.n_in_hw;
    }
    r.time_hybrid_ns = t;
    r.speedup_pct =
        t > 0.0 ? (r.time_all_sw_ns / t - 1.0) * 100.0
                : (r.time_all_sw_ns > 0.0 ? k_inf : 0.0);
    return r;
}

Multi_pace_result multi_pace_partition(std::span<const Multi_bsb_cost> costs,
                                       const Multi_pace_options& options)
{
    for (double b : options.ctrl_area_budgets)
        if (b < 0.0)
            throw std::invalid_argument("multi_pace_partition: negative budget");
    const std::size_t n = costs.size();
    if (n == 0)
        return Multi_pace_result{};

    const double max_budget = std::max(options.ctrl_area_budgets[0],
                                       options.ctrl_area_budgets[1]);
    const double quantum = options.area_quantum > 0.0
                               ? options.area_quantum
                               : std::max(1.0, max_budget / 256.0);
    const std::array<int, 2> cap = {
        static_cast<int>(std::floor(options.ctrl_area_budgets[0] / quantum)),
        static_cast<int>(std::floor(options.ctrl_area_budgets[1] / quantum)),
    };
    const std::size_t w0 = static_cast<std::size_t>(cap[0]) + 1;
    const std::size_t w1 = static_cast<std::size_t>(cap[1]) + 1;

    // Quantized controller areas per BSB per ASIC.
    std::vector<std::array<int, 2>> qarea(n, {0, 0});
    std::vector<std::array<bool, 2>> possible(n, {false, false});
    for (std::size_t i = 0; i < n; ++i) {
        for (int a = 0; a < 2; ++a) {
            const auto& c = costs[i].hw[static_cast<std::size_t>(a)];
            if (std::isinf(c.ctrl_area) || std::isinf(c.t_hw))
                continue;
            qarea[i][static_cast<std::size_t>(a)] =
                static_cast<int>(std::ceil(c.ctrl_area / quantum));
            possible[i][static_cast<std::size_t>(a)] =
                qarea[i][static_cast<std::size_t>(a)] <=
                cap[static_cast<std::size_t>(a)];
        }
    }

    // State: (area0, area1, prev) where prev in {0 = SW, 1 = asic0,
    // 2 = asic1}.  value = best saving vs all-software.
    const std::size_t n_prev = 3;
    const std::size_t n_states = w0 * w1 * n_prev;
    auto idx = [&](std::size_t a0, std::size_t a1, std::size_t p) {
        return (a0 * w1 + a1) * n_prev + p;
    };

    std::vector<double> value(n_states, -k_inf);
    std::vector<double> next(n_states, -k_inf);
    // For reconstruction: decision (0 = SW, 1 = asic0, 2 = asic1) and
    // predecessor side, per (i, state-after).
    std::vector<std::uint8_t> decision(n * n_states, 0);
    std::vector<std::uint8_t> parent(n * n_states, 0);
    auto cell = [&](std::size_t i, std::size_t s) { return i * n_states + s; };

    value[idx(0, 0, 0)] = 0.0;

    for (std::size_t i = 0; i < n; ++i) {
        std::fill(next.begin(), next.end(), -k_inf);
        for (std::size_t a0 = 0; a0 < w0; ++a0) {
            for (std::size_t a1 = 0; a1 < w1; ++a1) {
                for (std::size_t p = 0; p < n_prev; ++p) {
                    const double v = value[idx(a0, a1, p)];
                    if (v == -k_inf)
                        continue;

                    // Software.
                    const std::size_t s_sw = idx(a0, a1, 0);
                    if (v > next[s_sw]) {
                        next[s_sw] = v;
                        decision[cell(i, s_sw)] = 0;
                        parent[cell(i, s_sw)] = static_cast<std::uint8_t>(p);
                    }

                    // Either ASIC.
                    for (int a = 0; a < 2; ++a) {
                        if (!possible[i][static_cast<std::size_t>(a)])
                            continue;
                        const auto& c = costs[i].hw[static_cast<std::size_t>(a)];
                        const int q = qarea[i][static_cast<std::size_t>(a)];
                        const std::size_t na0 =
                            a == 0 ? a0 + static_cast<std::size_t>(q) : a0;
                        const std::size_t na1 =
                            a == 1 ? a1 + static_cast<std::size_t>(q) : a1;
                        if (na0 >= w0 || na1 >= w1)
                            continue;
                        double gain = hw_gain(costs[i].t_sw, c);
                        if (i > 0 && p == static_cast<std::size_t>(a) + 1)
                            gain += c.save_prev;
                        const std::size_t s_hw =
                            idx(na0, na1, static_cast<std::size_t>(a) + 1);
                        if (v + gain > next[s_hw]) {
                            next[s_hw] = v + gain;
                            decision[cell(i, s_hw)] =
                                static_cast<std::uint8_t>(a + 1);
                            parent[cell(i, s_hw)] =
                                static_cast<std::uint8_t>(p);
                        }
                    }
                }
            }
        }
        value.swap(next);
    }

    // Best final state and reconstruction.
    double best = -k_inf;
    std::size_t best_a0 = 0, best_a1 = 0, best_p = 0;
    for (std::size_t a0 = 0; a0 < w0; ++a0)
        for (std::size_t a1 = 0; a1 < w1; ++a1)
            for (std::size_t p = 0; p < n_prev; ++p)
                if (value[idx(a0, a1, p)] > best) {
                    best = value[idx(a0, a1, p)];
                    best_a0 = a0;
                    best_a1 = a1;
                    best_p = p;
                }

    std::vector<Placement> placement(n, Placement::software);
    std::size_t a0 = best_a0, a1 = best_a1, p = best_p;
    for (std::size_t ri = n; ri-- > 0;) {
        const std::size_t s = idx(a0, a1, p);
        const int d = decision[cell(ri, s)];
        const int prev = parent[cell(ri, s)];
        if (d == 0) {
            placement[ri] = Placement::software;
        }
        else {
            const int a = d - 1;
            placement[ri] = a == 0 ? Placement::asic0 : Placement::asic1;
            const int q = qarea[ri][static_cast<std::size_t>(a)];
            if (a == 0)
                a0 -= static_cast<std::size_t>(q);
            else
                a1 -= static_cast<std::size_t>(q);
        }
        p = static_cast<std::size_t>(prev);
    }

    return evaluate_multi_partition(costs, placement);
}

}  // namespace lycos::pace
