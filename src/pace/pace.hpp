// PACE — dynamic-programming HW/SW partitioning [Knudsen & Madsen,
// Codes/CASHE'96], as used by LYCOS and by this paper's evaluation.
//
// Given per-BSB costs and the controller-area budget left next to the
// pre-allocated data-path, PACE selects the subset of BSBs to move to
// hardware that minimizes total execution time.  The knapsack-style
// dynamic program runs over (BSB index, discretized area used,
// previous BSB's side); carrying the previous side lets adjacent
// hardware BSBs keep shared values in the data-path and save their
// bus transfers — the communication awareness PACE is known for.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pace/cost_model.hpp"

namespace lycos::pace {

/// Options for pace_partition.
struct Pace_options {
    /// Area available for controllers (total ASIC area minus the
    /// data-path allocation's area).
    double ctrl_area_budget = 0.0;

    /// Area discretization step for the DP.  0 selects automatically:
    /// budget/4096 but at least 1 gate.  Smaller is more exact and
    /// slower.
    double area_quantum = 0.0;

    /// Hard cap on the DP table width (number of discrete area
    /// levels).  A caller-supplied quantum that would need more levels
    /// than this is re-quantized to budget/(max_dp_width-1) instead of
    /// silently allocating gigabytes of table; the quantum actually
    /// used is reported in Pace_result::area_quantum_used.  The
    /// default bounds the per-call table at ~a million levels (the
    /// auto quantum needs only 4097).
    int max_dp_width = 1 << 20;
};

/// A partition and its evaluation.
struct Pace_result {
    std::vector<bool> in_hw;       ///< chosen side per BSB
    double time_all_sw_ns = 0.0;   ///< all-software reference time
    double time_hybrid_ns = 0.0;   ///< time of the chosen partition
    double speedup_pct = 0.0;      ///< (all_sw / hybrid - 1) * 100
    double ctrl_area_used = 0.0;   ///< controller area of HW-side BSBs
    double area_quantum_used = 0.0;  ///< effective DP quantum (0 from
                                     ///< evaluate_partition, which has none)
    int n_in_hw = 0;

    /// Fraction of BSBs placed in hardware (the paper's HW/SW column
    /// reports the HW share of the application).
    double hw_fraction() const
    {
        return in_hw.empty()
                   ? 0.0
                   : static_cast<double>(n_in_hw) /
                         static_cast<double>(in_hw.size());
    }
};

class Pace_workspace;

/// Optimal partition by dynamic programming (up to area
/// discretization).  With a non-null `workspace` the DP reuses the
/// caller-owned buffers across calls instead of heap-allocating the
/// value/next rows and the ~n*width*2-byte traceback tables per
/// invocation — the allocation-search hot loop runs one workspace per
/// worker thread.  Results are identical with or without a workspace.
Pace_result pace_partition(std::span<const Bsb_cost> costs,
                           const Pace_options& options,
                           Pace_workspace* workspace = nullptr);

/// Caller-owned reusable DP buffers for pace_partition.  Buffers only
/// ever grow, so one workspace serves calls of any (bounded) size; a
/// workspace is not thread-safe and must not be shared across
/// concurrent pace_partition calls.
class Pace_workspace {
public:
    Pace_workspace() = default;

private:
    friend Pace_result pace_partition(std::span<const Bsb_cost> costs,
                                      const Pace_options& options,
                                      Pace_workspace* workspace);
    friend double pace_best_saving(std::span<const Bsb_cost> costs,
                                   const Pace_options& options,
                                   Pace_workspace* workspace);
    std::vector<double> value_;
    std::vector<double> next_;
    std::vector<std::uint8_t> took_hw_;
    std::vector<std::uint8_t> parent_side_;
    std::vector<int> qarea_;
    std::vector<std::uint8_t> hw_possible_;
};

/// Admissible bound on the total saving any partition of `costs` can
/// achieve: the sum of the positive per-BSB hardware gains, crediting
/// every BSB its adjacency saving and ignoring the area budget
/// entirely.  For every partition, time_all_sw - time_hybrid <=
/// max_gain(costs); the branch-and-bound allocation search prunes the
/// DP for candidates whose bound cannot beat the incumbent.
double max_gain(std::span<const Bsb_cost> costs);

/// The DP's optimal objective value — the best achievable saving vs.
/// all-software — without reconstructing which BSBs achieve it.  This
/// is the search's screening pass: no traceback bookkeeping, so it
/// costs a fraction of pace_partition; the full DP only runs for
/// candidates whose screened time can still beat the incumbent.
/// Equals all_sw - pace_partition(...).time_hybrid_ns up to float
/// summation order.
double pace_best_saving(std::span<const Bsb_cost> costs,
                        const Pace_options& options,
                        Pace_workspace* workspace = nullptr);

/// Evaluate a *given* partition with the same timing model the DP
/// optimizes (used for cross-checking and for the HW-fraction
/// reporting of Table 1).
Pace_result evaluate_partition(std::span<const Bsb_cost> costs,
                               const std::vector<bool>& in_hw);

}  // namespace lycos::pace
