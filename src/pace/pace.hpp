// PACE — dynamic-programming HW/SW partitioning [Knudsen & Madsen,
// Codes/CASHE'96], as used by LYCOS and by this paper's evaluation.
//
// Given per-BSB costs and the controller-area budget left next to the
// pre-allocated data-path, PACE selects the subset of BSBs to move to
// hardware that minimizes total execution time.  The knapsack-style
// dynamic program runs over (BSB index, discretized area used,
// previous BSB's side); carrying the previous side lets adjacent
// hardware BSBs keep shared values in the data-path and save their
// bus transfers — the communication awareness PACE is known for.
#pragma once

#include <span>
#include <vector>

#include "pace/cost_model.hpp"

namespace lycos::pace {

/// Options for pace_partition.
struct Pace_options {
    /// Area available for controllers (total ASIC area minus the
    /// data-path allocation's area).
    double ctrl_area_budget = 0.0;

    /// Area discretization step for the DP.  0 selects automatically:
    /// budget/4096 but at least 1 gate.  Smaller is more exact and
    /// slower.
    double area_quantum = 0.0;
};

/// A partition and its evaluation.
struct Pace_result {
    std::vector<bool> in_hw;       ///< chosen side per BSB
    double time_all_sw_ns = 0.0;   ///< all-software reference time
    double time_hybrid_ns = 0.0;   ///< time of the chosen partition
    double speedup_pct = 0.0;      ///< (all_sw / hybrid - 1) * 100
    double ctrl_area_used = 0.0;   ///< controller area of HW-side BSBs
    int n_in_hw = 0;

    /// Fraction of BSBs placed in hardware (the paper's HW/SW column
    /// reports the HW share of the application).
    double hw_fraction() const
    {
        return in_hw.empty()
                   ? 0.0
                   : static_cast<double>(n_in_hw) /
                         static_cast<double>(in_hw.size());
    }
};

/// Optimal partition by dynamic programming (up to area
/// discretization).
Pace_result pace_partition(std::span<const Bsb_cost> costs,
                           const Pace_options& options);

/// Evaluate a *given* partition with the same timing model the DP
/// optimizes (used for cross-checking and for the HW-fraction
/// reporting of Table 1).
Pace_result evaluate_partition(std::span<const Bsb_cost> costs,
                               const std::vector<bool>& in_hw);

}  // namespace lycos::pace
