// PACE — dynamic-programming HW/SW partitioning [Knudsen & Madsen,
// Codes/CASHE'96], as used by LYCOS and by this paper's evaluation.
//
// Given per-BSB costs and the controller-area budget left next to the
// pre-allocated data-path, PACE selects the subset of BSBs to move to
// hardware that minimizes total execution time.  The knapsack-style
// dynamic program runs over (BSB index, discretized area used,
// previous BSB's side); carrying the previous side lets adjacent
// hardware BSBs keep shared values in the data-path and save their
// bus transfers — the communication awareness PACE is known for.
//
// The DP is separable by BSB index: row i depends only on
// costs[0..i], the area quantum and the table width.  A reused
// Pace_workspace exploits that by checkpointing the value row after
// every BSB; the next call compares its cost vector against the
// cached one and resumes the sweep at the first divergent BSB instead
// of row 0 (see Pace_workspace).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pace/cost_model.hpp"
#include "util/arena.hpp"

namespace lycos::util {
class Cancel_token;
}

namespace lycos::pace {

/// Options for pace_partition.
struct Pace_options {
    /// Area available for controllers (total ASIC area minus the
    /// data-path allocation's area).
    double ctrl_area_budget = 0.0;

    /// Area discretization step for the DP.  0 selects automatically:
    /// budget/4096 but at least 1 gate.  Smaller is more exact and
    /// slower.
    double area_quantum = 0.0;

    /// Hard cap on the DP table width (number of discrete area
    /// levels).  A caller-supplied quantum that would need more levels
    /// than this is re-quantized to budget/(max_dp_width-1) instead of
    /// silently allocating gigabytes of table; the quantum actually
    /// used is reported in Pace_result::area_quantum_used.  The
    /// default bounds the per-call table at ~a million levels (the
    /// auto quantum needs only 4097).
    int max_dp_width = 1 << 20;

    /// When positive (and larger than ctrl_area_budget), the DP table
    /// width is derived from THIS budget instead of ctrl_area_budget;
    /// the final answer still maxes only over states within the real
    /// budget.  value[i][a][p] is the best saving using quantized area
    /// exactly `a`, which does not depend on the table width for
    /// a < width — so calls that share a quantum and a table budget
    /// produce identical DP rows regardless of their leftover
    /// controller budgets, and the allocation search (whose per-leaf
    /// budget is total_area - leaf_area) can reuse checkpointed rows
    /// across leaves.  Results are bit-identical to table_area_budget
    /// = 0 as long as the wider table does not trigger re-quantization
    /// (the search's coarse quantum is far from the max_dp_width cap).
    double table_area_budget = 0.0;

    /// Optional cancellation handle.  The sweep charges its DP-cell
    /// budget and checks the tripped flag once per row — never the
    /// clock (the engines own the coarse deadline polls).  An aborted
    /// value sweep returns -inf (valid sweeps are always >= 0, so the
    /// marker is unambiguous and screens as "infinitely bad"); an
    /// aborted pace_partition returns the honest all-software
    /// partition.  Either way the workspace checkpoint is dropped —
    /// a partially overwritten row arena must not be resumed from.
    const util::Cancel_token* cancel = nullptr;
};

/// A partition and its evaluation.
struct Pace_result {
    std::vector<bool> in_hw;       ///< chosen side per BSB
    double time_all_sw_ns = 0.0;   ///< all-software reference time
    double time_hybrid_ns = 0.0;   ///< time of the chosen partition
    double speedup_pct = 0.0;      ///< (all_sw / hybrid - 1) * 100
    double ctrl_area_used = 0.0;   ///< controller area of HW-side BSBs
    double area_quantum_used = 0.0;  ///< effective DP quantum (0 from
                                     ///< evaluate_partition, which has none)
    int n_in_hw = 0;

    /// Fraction of BSBs placed in hardware (the paper's HW/SW column
    /// reports the HW share of the application).
    double hw_fraction() const
    {
        return in_hw.empty()
                   ? 0.0
                   : static_cast<double>(n_in_hw) /
                         static_cast<double>(in_hw.size());
    }
};

class Pace_workspace;

/// Optimal partition by dynamic programming (up to area
/// discretization).  With a non-null `workspace` the DP reuses the
/// caller-owned buffers across calls instead of heap-allocating the
/// value/next rows and the ~n*width*2-byte traceback tables per
/// invocation, and additionally resumes incrementally from the
/// workspace's checkpoint when the cost vector shares a prefix with
/// the previous call's (see Pace_workspace).  Results are identical
/// with or without a workspace.
Pace_result pace_partition(std::span<const Bsb_cost> costs,
                           const Pace_options& options,
                           Pace_workspace* workspace = nullptr);

/// Caller-owned reusable DP buffers for pace_partition /
/// pace_best_saving.  Buffers only ever grow, so one workspace serves
/// calls of any (bounded) size; a workspace is not thread-safe and
/// must not be shared across concurrent calls.
///
/// Incremental checkpointing: after each call the workspace retains
/// the per-row value states together with the cost vector and the
/// (quantum, width) fingerprint that produced them.  The next call
/// through the same workspace compares its costs row by row against
/// the cached vector and, when the setup fingerprint matches, resumes
/// the sweep at the first divergent BSB — neighbouring points of the
/// allocation search share long cost prefixes, so most rows are
/// served from the checkpoint.  A full-partition call additionally
/// requires the retained traceback rows to match (they are refreshed
/// by full-partition calls only; value-only screening calls leave
/// them untouched), and falls back to the longest prefix both agree
/// on.  Any fingerprint mismatch (different quantum, different table
/// width, cleared checkpoint) restarts from row 0 — correctness never
/// depends on the caller's call pattern.  Results are bit-identical
/// to a cold run in all cases; rows_reused()/rows_swept() make the
/// reuse observable (Search_result reports them per search).
class Pace_workspace {
public:
    Pace_workspace() = default;

    /// Back the DP row buffers (value rows, checkpoint row arena,
    /// traceback planes) with a caller-owned per-worker Arena: the
    /// rows are then first-touched — and stay — on the worker that
    /// sweeps them.  The arena must outlive the workspace.
    explicit Pace_workspace(util::Arena* arena)
        : value_(util::Arena_allocator<double>(arena)),
          next_(util::Arena_allocator<double>(arena)),
          parent_(util::Arena_allocator<std::uint8_t>(arena)),
          ckpt_rows_(util::Arena_allocator<double>(arena)),
          anchor_rows_(util::Arena_allocator<double>(arena))
    {
    }

    /// Cumulative DP rows resumed from the checkpoint / actually swept
    /// across all calls through this workspace.
    long long rows_reused() const { return rows_reused_; }
    long long rows_swept() const { return rows_swept_; }

    /// Rows resumed from a checkpoint that *predates* the current pass
    /// (see begin_pass) — the cross-solve share of rows_reused().
    long long rows_reused_foreign() const { return rows_reused_foreign_; }

    /// Mark the start of a new logical pass (one solve / one serve
    /// request).  Two effects:
    ///
    ///   * the *pass anchor* — a retained copy of the previous pass's
    ///     first checkpointed sweep — becomes the active checkpoint,
    ///     and this pass's first checkpointed sweep is captured as the
    ///     next anchor.  Repeated passes over the same problem issue
    ///     the same first sweep, so a warm pooled workspace resumes it
    ///     at the first divergent cost row instead of comparing
    ///     against the previous pass's unrelated *last* sweep.
    ///   * a checkpoint valid at this point predates the pass, so rows
    ///     the next resume serves from it count in
    ///     rows_reused_foreign() — until a sweep of this pass rewrites
    ///     the checkpoint.
    ///
    /// Results are unchanged either way: resumed and cold sweeps are
    /// bit-identical whoever wrote the checkpoint (the anchor is just
    /// a checkpoint an earlier sweep produced).
    void begin_pass();

    /// Drop the checkpoint: the next call restarts from row 0 (the
    /// buffers themselves stay allocated).
    void invalidate_checkpoint()
    {
        ckpt_valid_ = false;
        ckpt_foreign_ = false;
        trace_rows_ = 0;
    }

private:
    friend struct Pace_dp;  ///< the internal sweep (pace.cpp)
    friend Pace_result pace_partition(std::span<const Bsb_cost> costs,
                                      const Pace_options& options,
                                      Pace_workspace* workspace);
    friend double pace_best_saving(std::span<const Bsb_cost> costs,
                                   const Pace_options& options,
                                   Pace_workspace* workspace);
    util::Arena_vector<double> value_;
    util::Arena_vector<double> next_;
    // Traceback parents, lane-planar: plane (i, p) is `width`
    // contiguous bytes at (i * 2 + p) * width, entry a = the side of
    // BSB i-1 on the best path into state (i, a, p).  (The old
    // per-cell took_hw byte is gone: a state's own side IS its lane —
    // the SW lane only ever stores software decisions and the HW lane
    // hardware ones — so reconstruction reads hw = (p == 1).)
    util::Arena_vector<std::uint8_t> parent_;
    std::vector<int> qarea_;
    std::vector<std::uint8_t> hw_possible_;
    // Checkpoint: ckpt_rows_ block i holds the value row after BSBs
    // [0, i) of ckpt_costs_ (block 0 is the initial state), valid for
    // the recorded (quantum, width) only; ckpt_hi_[i] is the row's
    // reachable-area frontier.  trace_rows_ counts the leading
    // traceback rows (parent_ planes) that are consistent with
    // trace_costs_ at trace_width_.
    std::vector<Bsb_cost> ckpt_costs_;
    util::Arena_vector<double> ckpt_rows_;
    std::vector<std::size_t> ckpt_hi_;
    double ckpt_quantum_ = 0.0;
    std::size_t ckpt_width_ = 0;
    bool ckpt_valid_ = false;
    /// The checkpoint was written before the last begin_pass() — rows
    /// resumed from it count as cross-pass reuse until a sweep of this
    /// pass rewrites it.
    bool ckpt_foreign_ = false;
    std::vector<Bsb_cost> trace_costs_;
    std::size_t trace_width_ = 0;
    std::size_t trace_rows_ = 0;
    long long rows_reused_ = 0;
    long long rows_swept_ = 0;
    long long rows_reused_foreign_ = 0;
    // Pass anchor (see begin_pass): a copy of the first checkpointed
    // sweep of the current pass, restored as the active checkpoint by
    // the next begin_pass().  Never populated without begin_pass(), so
    // one-shot workspaces pay nothing.
    std::vector<Bsb_cost> anchor_costs_;
    util::Arena_vector<double> anchor_rows_;
    std::vector<std::size_t> anchor_hi_;
    double anchor_quantum_ = 0.0;
    std::size_t anchor_width_ = 0;
    bool anchor_valid_ = false;
    bool anchor_armed_ = false;  ///< capture the pass's next ckpt write
};

/// Admissible bound on the total saving any partition of `costs` can
/// achieve: the sum of the positive per-BSB hardware gains, crediting
/// every BSB its adjacency saving and ignoring the area budget
/// entirely.  For every partition, time_all_sw - time_hybrid <=
/// max_gain(costs); the branch-and-bound allocation search prunes the
/// DP for candidates whose bound cannot beat the incumbent.
double max_gain(std::span<const Bsb_cost> costs);

/// The DP's optimal objective value — the best achievable saving vs.
/// all-software — without reconstructing which BSBs achieve it.  This
/// is the search's screening pass: no traceback bookkeeping, so it
/// costs a fraction of pace_partition; the full DP only runs for
/// candidates whose screened time can still beat the incumbent.
/// Equals all_sw - pace_partition(...).time_hybrid_ns up to float
/// summation order.  Participates in the workspace checkpoint like
/// pace_partition (value rows only; it never touches traceback rows).
double pace_best_saving(std::span<const Bsb_cost> costs,
                        const Pace_options& options,
                        Pace_workspace* workspace = nullptr);

/// Evaluate a *given* partition with the same timing model the DP
/// optimizes (used for cross-checking and for the HW-fraction
/// reporting of Table 1).
Pace_result evaluate_partition(std::span<const Bsb_cost> costs,
                               const std::vector<bool>& in_hw);

}  // namespace lycos::pace
