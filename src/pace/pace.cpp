#include "pace/pace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace lycos::pace {

namespace {

constexpr double k_inf = std::numeric_limits<double>::infinity();

/// Gain of putting BSB i in hardware (ignoring adjacency): software
/// time avoided minus hardware time and communication incurred.
double hw_gain(const Bsb_cost& c)
{
    return c.t_sw - c.t_hw - c.comm;
}

}  // namespace

Pace_result evaluate_partition(std::span<const Bsb_cost> costs,
                               const std::vector<bool>& in_hw)
{
    if (in_hw.size() != costs.size())
        throw std::invalid_argument("evaluate_partition: size mismatch");

    Pace_result r;
    r.in_hw = in_hw;
    r.time_all_sw_ns = all_sw_time_ns(costs);

    double t = 0.0;
    for (std::size_t i = 0; i < costs.size(); ++i) {
        if (in_hw[i]) {
            t += costs[i].t_hw + costs[i].comm;
            if (i > 0 && in_hw[i - 1])
                t -= costs[i].save_prev;
            r.ctrl_area_used += costs[i].ctrl_area;
            ++r.n_in_hw;
        }
        else {
            t += costs[i].t_sw;
        }
    }
    r.time_hybrid_ns = t;
    r.speedup_pct =
        t > 0.0 ? (r.time_all_sw_ns / t - 1.0) * 100.0
                : (r.time_all_sw_ns > 0.0 ? k_inf : 0.0);
    return r;
}

Pace_result pace_partition(std::span<const Bsb_cost> costs,
                           const Pace_options& options)
{
    if (options.ctrl_area_budget < 0.0)
        throw std::invalid_argument("pace_partition: negative budget");
    const std::size_t n = costs.size();
    if (n == 0)
        return Pace_result{};

    const double quantum =
        options.area_quantum > 0.0
            ? options.area_quantum
            : std::max(1.0, options.ctrl_area_budget / 4096.0);
    const int capacity =
        static_cast<int>(std::floor(options.ctrl_area_budget / quantum));
    const std::size_t width = static_cast<std::size_t>(capacity) + 1;

    // Quantized controller areas (rounded up, so the DP never packs
    // more real area than the budget).
    std::vector<int> qarea(n, 0);
    std::vector<bool> hw_possible(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        if (std::isinf(costs[i].ctrl_area) || std::isinf(costs[i].t_hw))
            continue;
        qarea[i] = static_cast<int>(std::ceil(costs[i].ctrl_area / quantum));
        hw_possible[i] = static_cast<std::size_t>(qarea[i]) < width;
    }

    // value[a*2+p]: best total saving (vs. all-software) over the BSBs
    // processed so far, using quantized area a, with the most recent
    // BSB on side p (0 = SW, 1 = HW).  For every (i, a, p) we keep the
    // decision of BSB i (took_hw) and the side of BSB i-1
    // (parent_side) so the optimal partition can be reconstructed.
    auto idx = [&](std::size_t a, int p) {
        return a * 2 + static_cast<std::size_t>(p);
    };
    auto cell = [&](std::size_t i, std::size_t a, int p) {
        return (i * width + a) * 2 + static_cast<std::size_t>(p);
    };

    std::vector<double> value(width * 2, -k_inf);
    std::vector<double> next(width * 2, -k_inf);
    std::vector<std::uint8_t> took_hw(n * width * 2, 0);
    std::vector<std::uint8_t> parent_side(n * width * 2, 0);

    value[idx(0, 0)] = 0.0;

    for (std::size_t i = 0; i < n; ++i) {
        std::fill(next.begin(), next.end(), -k_inf);
        for (std::size_t a = 0; a < width; ++a) {
            for (int p = 0; p < 2; ++p) {
                const double v = value[idx(a, p)];
                if (v == -k_inf)
                    continue;

                // BSB i stays in software.
                if (v > next[idx(a, 0)]) {
                    next[idx(a, 0)] = v;
                    took_hw[cell(i, a, 0)] = 0;
                    parent_side[cell(i, a, 0)] = static_cast<std::uint8_t>(p);
                }

                // BSB i moves to hardware.
                if (hw_possible[i] &&
                    a + static_cast<std::size_t>(qarea[i]) < width) {
                    double gain = hw_gain(costs[i]);
                    if (i > 0 && p == 1)
                        gain += costs[i].save_prev;
                    const std::size_t a2 =
                        a + static_cast<std::size_t>(qarea[i]);
                    if (v + gain > next[idx(a2, 1)]) {
                        next[idx(a2, 1)] = v + gain;
                        took_hw[cell(i, a2, 1)] = 1;
                        parent_side[cell(i, a2, 1)] =
                            static_cast<std::uint8_t>(p);
                    }
                }
            }
        }
        value.swap(next);
    }

    // Best final state, then walk the parent pointers backwards.
    double best = -k_inf;
    std::size_t best_a = 0;
    int best_p = 0;
    for (std::size_t a = 0; a < width; ++a)
        for (int p = 0; p < 2; ++p)
            if (value[idx(a, p)] > best) {
                best = value[idx(a, p)];
                best_a = a;
                best_p = p;
            }

    std::vector<bool> in_hw(n, false);
    std::size_t a = best_a;
    int p = best_p;
    for (std::size_t ri = n; ri-- > 0;) {
        const bool hw = took_hw[cell(ri, a, p)] != 0;
        const int prev = parent_side[cell(ri, a, p)];
        in_hw[ri] = hw;
        if (hw)
            a -= static_cast<std::size_t>(qarea[ri]);
        p = prev;
    }

    return evaluate_partition(costs, in_hw);
}

}  // namespace lycos::pace
