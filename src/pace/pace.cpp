#include "pace/pace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace lycos::pace {

namespace {

constexpr double k_inf = std::numeric_limits<double>::infinity();

/// Gain of putting BSB i in hardware (ignoring adjacency): software
/// time avoided minus hardware time and communication incurred.
double hw_gain(const Bsb_cost& c)
{
    return c.t_sw - c.t_hw - c.comm;
}

}  // namespace

Pace_result evaluate_partition(std::span<const Bsb_cost> costs,
                               const std::vector<bool>& in_hw)
{
    if (in_hw.size() != costs.size())
        throw std::invalid_argument("evaluate_partition: size mismatch");

    Pace_result r;
    r.in_hw = in_hw;
    r.time_all_sw_ns = all_sw_time_ns(costs);

    double t = 0.0;
    for (std::size_t i = 0; i < costs.size(); ++i) {
        if (in_hw[i]) {
            t += costs[i].t_hw + costs[i].comm;
            if (i > 0 && in_hw[i - 1])
                t -= costs[i].save_prev;
            r.ctrl_area_used += costs[i].ctrl_area;
            ++r.n_in_hw;
        }
        else {
            t += costs[i].t_sw;
        }
    }
    r.time_hybrid_ns = t;
    r.speedup_pct =
        t > 0.0 ? (r.time_all_sw_ns / t - 1.0) * 100.0
                : (r.time_all_sw_ns > 0.0 ? k_inf : 0.0);
    return r;
}

double max_gain(std::span<const Bsb_cost> costs)
{
    double total = 0.0;
    for (std::size_t i = 0; i < costs.size(); ++i) {
        const auto& c = costs[i];
        if (std::isinf(c.t_hw))
            continue;
        double gain = hw_gain(c);
        if (i > 0)
            gain += std::max(0.0, c.save_prev);
        if (gain > 0.0)
            total += gain;
    }
    return total;
}

namespace {

/// Shared quantization of the DP table (pace_partition and
/// pace_best_saving must agree exactly).
struct Dp_setup {
    double quantum = 0.0;
    std::size_t width = 0;
};

Dp_setup prepare_dp(std::span<const Bsb_cost> costs,
                    const Pace_options& options, std::vector<int>& qarea,
                    std::vector<std::uint8_t>& hw_possible)
{
    if (options.ctrl_area_budget < 0.0)
        throw std::invalid_argument("pace_partition: negative budget");
    if (!std::isfinite(options.ctrl_area_budget))
        throw std::invalid_argument("pace_partition: non-finite budget");
    if (options.max_dp_width < 2)
        throw std::invalid_argument("pace_partition: max_dp_width < 2");

    Dp_setup s;
    // Effective quantum: the caller's (or the automatic budget/4096),
    // re-quantized when it would need more than max_dp_width discrete
    // area levels — a pathological budget/quantum ratio must not
    // silently allocate gigabytes of DP table.
    s.quantum = options.area_quantum > 0.0
                    ? options.area_quantum
                    : std::max(1.0, options.ctrl_area_budget / 4096.0);
    const double cap = static_cast<double>(options.max_dp_width - 1);
    if (options.ctrl_area_budget / s.quantum > cap)
        s.quantum = options.ctrl_area_budget / cap;
    const int capacity = std::min(
        options.max_dp_width - 1,
        static_cast<int>(std::floor(options.ctrl_area_budget / s.quantum)));
    s.width = static_cast<std::size_t>(capacity) + 1;

    // Quantized controller areas (rounded up, so the DP never packs
    // more real area than the budget).
    const std::size_t n = costs.size();
    qarea.assign(n, 0);
    hw_possible.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (std::isinf(costs[i].ctrl_area) || std::isinf(costs[i].t_hw))
            continue;
        qarea[i] =
            static_cast<int>(std::ceil(costs[i].ctrl_area / s.quantum));
        hw_possible[i] = static_cast<std::size_t>(qarea[i]) < s.width ? 1 : 0;
    }
    return s;
}

/// The DP sweep both public entry points share — templated on whether
/// the traceback tables are maintained, so the value-only screening
/// pass and the full partitioning pass can never drift apart.
///
/// value[a*2+p]: best total saving (vs. all-software) over the BSBs
/// processed so far, using quantized area a, with the most recent BSB
/// on side p (0 = SW, 1 = HW).  With traceback, every (i, a, p) keeps
/// the decision of BSB i (took_hw) and the side of BSB i-1
/// (parent_side) so the optimal partition can be reconstructed.
///
/// Only the reachable-area frontier [0, hi] is ever initialized or
/// swept: row i can reach at most the previous frontier plus BSB i's
/// quantized area, which for tight budgets is far below the full
/// width.  Traceback cells outside the frontier are stale from
/// earlier calls, but every state with a finite value had its cell
/// written this call (a finite `next` entry always comes from an
/// improving write over -inf), and the backwards walk only visits
/// finite-value states.
struct Dp_buffers {
    const std::vector<int>& qarea;
    const std::vector<std::uint8_t>& hw_possible;
    std::vector<double>& value;
    std::vector<double>& next;
    std::vector<std::uint8_t>& took_hw;
    std::vector<std::uint8_t>& parent_side;
};

template <bool With_trace>
double dp_sweep(std::span<const Bsb_cost> costs, std::size_t width,
                Dp_buffers ws, std::size_t* best_a, int* best_p)
{
    const std::size_t n = costs.size();
    const auto& qarea = ws.qarea;
    const auto& hw_possible = ws.hw_possible;
    auto idx = [&](std::size_t a, int p) {
        return a * 2 + static_cast<std::size_t>(p);
    };
    auto cell = [&](std::size_t i, std::size_t a, int p) {
        return (i * width + a) * 2 + static_cast<std::size_t>(p);
    };

    auto& value = ws.value;
    auto& next = ws.next;
    if (value.size() < width * 2)
        value.resize(width * 2);
    if (next.size() < width * 2)
        next.resize(width * 2);
    if constexpr (With_trace) {
        if (ws.took_hw.size() < n * width * 2) {
            ws.took_hw.resize(n * width * 2);
            ws.parent_side.resize(n * width * 2);
        }
    }

    value[idx(0, 0)] = 0.0;
    value[idx(0, 1)] = -k_inf;
    std::size_t hi = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t qa = static_cast<std::size_t>(qarea[i]);
        const bool can_hw = hw_possible[i] != 0;
        const std::size_t hi2 = can_hw ? std::min(hi + qa, width - 1) : hi;
        std::fill(next.begin(),
                  next.begin() + static_cast<std::ptrdiff_t>((hi2 + 1) * 2),
                  -k_inf);
        const double gain = can_hw ? hw_gain(costs[i]) : 0.0;
        for (std::size_t a = 0; a <= hi; ++a) {
            for (int p = 0; p < 2; ++p) {
                const double v = value[idx(a, p)];
                if (v == -k_inf)
                    continue;

                // BSB i stays in software.
                if (v > next[idx(a, 0)]) {
                    next[idx(a, 0)] = v;
                    if constexpr (With_trace) {
                        ws.took_hw[cell(i, a, 0)] = 0;
                        ws.parent_side[cell(i, a, 0)] =
                            static_cast<std::uint8_t>(p);
                    }
                }

                // BSB i moves to hardware.
                if (can_hw && a + qa < width) {
                    double g = gain;
                    if (i > 0 && p == 1)
                        g += costs[i].save_prev;
                    const std::size_t a2 = a + qa;
                    if (v + g > next[idx(a2, 1)]) {
                        next[idx(a2, 1)] = v + g;
                        if constexpr (With_trace) {
                            ws.took_hw[cell(i, a2, 1)] = 1;
                            ws.parent_side[cell(i, a2, 1)] =
                                static_cast<std::uint8_t>(p);
                        }
                    }
                }
            }
        }
        value.swap(next);
        hi = hi2;
    }

    double best = -k_inf;
    for (std::size_t a = 0; a <= hi; ++a)
        for (int p = 0; p < 2; ++p)
            if (value[idx(a, p)] > best) {
                best = value[idx(a, p)];
                if (best_a != nullptr) {
                    *best_a = a;
                    *best_p = p;
                }
            }
    return best;
}

}  // namespace

double pace_best_saving(std::span<const Bsb_cost> costs,
                        const Pace_options& options,
                        Pace_workspace* workspace)
{
    Pace_workspace local;
    Pace_workspace& ws = workspace != nullptr ? *workspace : local;
    const Dp_setup s = prepare_dp(costs, options, ws.qarea_, ws.hw_possible_);
    if (costs.empty())
        return 0.0;
    return dp_sweep<false>(costs, s.width,
                           {ws.qarea_, ws.hw_possible_, ws.value_, ws.next_,
                            ws.took_hw_, ws.parent_side_},
                           nullptr, nullptr);
}

Pace_result pace_partition(std::span<const Bsb_cost> costs,
                           const Pace_options& options,
                           Pace_workspace* workspace)
{
    const std::size_t n = costs.size();
    // DP buffers: caller-owned when a workspace is given (the search
    // hot loop), otherwise local.  Buffers only grow; cells are
    // (re)initialized lazily in the sweep, so stale contents from
    // previous calls are never read.
    Pace_workspace local;
    Pace_workspace& ws = workspace != nullptr ? *workspace : local;

    const Dp_setup s = prepare_dp(costs, options, ws.qarea_, ws.hw_possible_);
    if (n == 0)
        return Pace_result{};
    const std::size_t width = s.width;

    std::size_t best_a = 0;
    int best_p = 0;
    dp_sweep<true>(costs, width,
                   {ws.qarea_, ws.hw_possible_, ws.value_, ws.next_,
                    ws.took_hw_, ws.parent_side_},
                   &best_a, &best_p);

    // Walk the parent pointers backwards from the best final state.
    auto cell = [&](std::size_t i, std::size_t a, int p) {
        return (i * width + a) * 2 + static_cast<std::size_t>(p);
    };
    std::vector<bool> in_hw(n, false);
    std::size_t a = best_a;
    int p = best_p;
    for (std::size_t ri = n; ri-- > 0;) {
        const bool hw = ws.took_hw_[cell(ri, a, p)] != 0;
        const int prev = ws.parent_side_[cell(ri, a, p)];
        in_hw[ri] = hw;
        if (hw)
            a -= static_cast<std::size_t>(ws.qarea_[ri]);
        p = prev;
    }

    Pace_result r = evaluate_partition(costs, in_hw);
    r.area_quantum_used = s.quantum;
    return r;
}

}  // namespace lycos::pace
