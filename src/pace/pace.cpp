#include "pace/pace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "util/cancel.hpp"
#include "util/simd.hpp"

namespace lycos::pace {

namespace {

constexpr double k_inf = std::numeric_limits<double>::infinity();

/// Gain of putting BSB i in hardware (ignoring adjacency): software
/// time avoided minus hardware time and communication incurred.
double hw_gain(const Bsb_cost& c)
{
    return c.t_sw - c.t_hw - c.comm;
}

}  // namespace

Pace_result evaluate_partition(std::span<const Bsb_cost> costs,
                               const std::vector<bool>& in_hw)
{
    if (in_hw.size() != costs.size())
        throw std::invalid_argument("evaluate_partition: size mismatch");

    Pace_result r;
    r.in_hw = in_hw;
    r.time_all_sw_ns = all_sw_time_ns(costs);

    double t = 0.0;
    for (std::size_t i = 0; i < costs.size(); ++i) {
        if (in_hw[i]) {
            t += costs[i].t_hw + costs[i].comm;
            if (i > 0 && in_hw[i - 1])
                t -= costs[i].save_prev;
            r.ctrl_area_used += costs[i].ctrl_area;
            ++r.n_in_hw;
        }
        else {
            t += costs[i].t_sw;
        }
    }
    r.time_hybrid_ns = t;
    r.speedup_pct =
        t > 0.0 ? (r.time_all_sw_ns / t - 1.0) * 100.0
                : (r.time_all_sw_ns > 0.0 ? k_inf : 0.0);
    return r;
}

double max_gain(std::span<const Bsb_cost> costs)
{
    double total = 0.0;
    for (std::size_t i = 0; i < costs.size(); ++i) {
        const auto& c = costs[i];
        if (std::isinf(c.t_hw))
            continue;
        double gain = hw_gain(c);
        if (i > 0)
            gain += std::max(0.0, c.save_prev);
        if (gain > 0.0)
            total += gain;
    }
    return total;
}

namespace {

/// Shared quantization of the DP table (pace_partition and
/// pace_best_saving must agree exactly).
struct Dp_setup {
    double quantum = 0.0;
    std::size_t width = 0;  ///< table width (from the table budget)
    std::size_t cap = 0;    ///< last state level within the real budget
};

Dp_setup prepare_dp(std::span<const Bsb_cost> costs,
                    const Pace_options& options, std::vector<int>& qarea,
                    std::vector<std::uint8_t>& hw_possible)
{
    if (options.ctrl_area_budget < 0.0)
        throw std::invalid_argument("pace_partition: negative budget");
    if (!std::isfinite(options.ctrl_area_budget))
        throw std::invalid_argument("pace_partition: non-finite budget");
    if (options.max_dp_width < 2)
        throw std::invalid_argument("pace_partition: max_dp_width < 2");
    if (!std::isfinite(options.table_area_budget) ||
        options.table_area_budget < 0.0)
        throw std::invalid_argument("pace_partition: bad table budget");

    // The table budget governs quantization and table width; the real
    // budget only clamps the answer.  They coincide unless the caller
    // pins a wider table for cross-call row reuse.
    const double table_budget =
        std::max(options.ctrl_area_budget, options.table_area_budget);

    Dp_setup s;
    // Effective quantum: the caller's (or the automatic budget/4096),
    // re-quantized when it would need more than max_dp_width discrete
    // area levels — a pathological budget/quantum ratio must not
    // silently allocate gigabytes of DP table.
    s.quantum = options.area_quantum > 0.0
                    ? options.area_quantum
                    : std::max(1.0, table_budget / 4096.0);
    const double cap = static_cast<double>(options.max_dp_width - 1);
    if (table_budget / s.quantum > cap)
        s.quantum = table_budget / cap;
    const int capacity = std::min(
        options.max_dp_width - 1,
        static_cast<int>(std::floor(table_budget / s.quantum)));
    s.width = static_cast<std::size_t>(capacity) + 1;
    s.cap = std::min(
        s.width - 1,
        static_cast<std::size_t>(
            std::floor(options.ctrl_area_budget / s.quantum)));

    // Quantized controller areas (rounded up, so the DP never packs
    // more real area than the budget).
    const std::size_t n = costs.size();
    qarea.assign(n, 0);
    hw_possible.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (std::isinf(costs[i].ctrl_area) || std::isinf(costs[i].t_hw))
            continue;
        qarea[i] =
            static_cast<int>(std::ceil(costs[i].ctrl_area / s.quantum));
        hw_possible[i] = static_cast<std::size_t>(qarea[i]) < s.width ? 1 : 0;
    }
    return s;
}

/// Longest prefix on which `costs` agrees with the cached cost rows
/// (value equality per field — the DP depends on nothing else).
std::size_t common_prefix(std::span<const Bsb_cost> costs,
                          const std::vector<Bsb_cost>& cached)
{
    const std::size_t m = std::min(costs.size(), cached.size());
    std::size_t i = 0;
    for (; i < m; ++i) {
        const Bsb_cost& a = costs[i];
        const Bsb_cost& b = cached[i];
        if (!(a.t_sw == b.t_sw && a.t_hw == b.t_hw && a.comm == b.comm &&
              a.save_prev == b.save_prev && a.ctrl_area == b.ctrl_area))
            break;
    }
    return i;
}

/// The DP sweep both public entry points share — templated on whether
/// the traceback tables are maintained, so the value-only screening
/// pass and the full partitioning pass can never drift apart.
///
/// value[a*2+p]: best total saving (vs. all-software) over the BSBs
/// processed so far, using quantized area exactly a, with the most
/// recent BSB on side p (0 = SW, 1 = HW).  With traceback, every
/// (i, a, p) keeps the side of BSB i-1 (parent_ plane) so the optimal
/// partition can be reconstructed; the decision of BSB i needs no
/// storage — it is the state's own lane (hw = (p == 1)).
///
/// Both row lanes are pure stores — every destination cell has
/// exactly one source area — so the row bodies are the runtime-
/// dispatched SIMD kernels of util/simd.hpp (util::simd::kernels()),
/// fetched once per sweep.  The kernel tables are bit-identical to
/// each other by construction, so the sweep's results do not depend
/// on the dispatch level.  Only the final best-state scan stays an
/// explicit scalar loop: its first-strict-maximum tie order over
/// (a, p) is part of the determinism contract.
///
/// Only the reachable-area frontier [0, hi] is ever initialized or
/// swept: row i can reach at most the previous frontier plus BSB i's
/// quantized area, which for tight budgets is far below the full
/// width.  Traceback cells outside the frontier are stale from
/// earlier calls, but every state with a finite value had its cell
/// written this call (a finite `next` entry always comes from an
/// improving write over -inf), and the backwards walk only visits
/// finite-value states.
///
/// Incremental resume: with `checkpointing` (caller-owned workspace)
/// the row states are checkpointed per BSB, and a subsequent call
/// whose costs share a prefix with the checkpointed vector under the
/// same (quantum, width) restarts the sweep at the first divergent
/// row.  The traced sweep additionally caps the resume at the prefix
/// its retained traceback rows agree on — value rows from a screening
/// call cannot vouch for traceback cells it never wrote.  Rows below
/// the resume point are untouched, which keeps them exactly what a
/// cold sweep would have produced (the prefixes are value-identical),
/// so resumed and cold runs are bit-identical.
}  // namespace

/// Friend of Pace_workspace: the shared DP sweep (see the long
/// comment on `sweep`).
struct Pace_dp {
    template <bool With_trace>
    static double sweep(std::span<const Bsb_cost> costs, const Dp_setup& s,
                        Pace_workspace& ws, bool checkpointing,
                        std::size_t* best_a, int* best_p,
                        const util::Cancel_token* cancel);
};

template <bool With_trace>
double Pace_dp::sweep(std::span<const Bsb_cost> costs, const Dp_setup& s,
                      Pace_workspace& ws, bool checkpointing,
                      std::size_t* best_a, int* best_p,
                      const util::Cancel_token* cancel)
{
    const std::size_t n = costs.size();
    const std::size_t width = s.width;
    const auto& qarea = ws.qarea_;
    const auto& hw_possible = ws.hw_possible_;
    const util::simd::Kernels& kern = util::simd::kernels();
    auto idx = [&](std::size_t a, int p) {
        return a * 2 + static_cast<std::size_t>(p);
    };

    if constexpr (With_trace) {
        if (ws.parent_.size() < n * 2 * width)
            ws.parent_.resize(n * 2 * width);
    }

    // Resume row: the longest checkpointed prefix that is valid for
    // this call.  A fingerprint mismatch (quantum or width) means the
    // cached rows describe a different table — full restart.
    std::size_t resume = 0;
    if (checkpointing) {
        if (ws.ckpt_valid_ && ws.ckpt_quantum_ == s.quantum &&
            ws.ckpt_width_ == width) {
            resume = common_prefix(costs, ws.ckpt_costs_);
            if constexpr (With_trace) {
                std::size_t trace_ok = 0;
                if (ws.trace_width_ == width)
                    trace_ok = std::min(
                        ws.trace_rows_,
                        common_prefix(costs, ws.trace_costs_));
                resume = std::min(resume, trace_ok);
            }
        }
        if (ws.ckpt_rows_.size() < (n + 1) * width * 2)
            ws.ckpt_rows_.resize((n + 1) * width * 2);
        if (ws.ckpt_hi_.size() < n + 1)
            ws.ckpt_hi_.resize(n + 1);
    }
    ws.rows_reused_ += static_cast<long long>(resume);
    ws.rows_swept_ += static_cast<long long>(n - resume);
    if (ws.ckpt_foreign_)
        ws.rows_reused_foreign_ += static_cast<long long>(resume);

    // Row storage.  Checkpointing sweeps write every row straight
    // into the workspace's row arena (block i = state after rows
    // [0, i)), so keeping the checkpoint costs no copying at all —
    // the next call just resumes from the block the prefix compare
    // picks.  One-shot sweeps roll two scratch rows instead of
    // touching an (n+1)-row arena.
    double* cur;
    double* nxt;
    if (checkpointing) {
        cur = ws.ckpt_rows_.data() + resume * width * 2;
        nxt = cur + width * 2;
    }
    else {
        if (ws.value_.size() < width * 2)
            ws.value_.resize(width * 2);
        if (ws.next_.size() < width * 2)
            ws.next_.resize(width * 2);
        cur = ws.value_.data();
        nxt = ws.next_.data();
    }

    std::size_t hi;
    if (resume == 0) {
        cur[idx(0, 0)] = 0.0;
        cur[idx(0, 1)] = -k_inf;
        hi = 0;
        if (checkpointing)
            ws.ckpt_hi_[0] = 0;
    }
    else {
        hi = ws.ckpt_hi_[resume];
    }

    for (std::size_t i = resume; i < n; ++i) {
        // Row-stripe poll: charge the cells this row will touch and
        // bail on a tripped token.  Flag-only — no clock here.  A
        // partially overwritten row arena cannot be resumed from, so
        // the checkpoint is dropped with the sweep.
        if (cancel != nullptr) {
            cancel->charge_dp_cells((hi + 1) * 2);
            if (cancel->tripped()) {
                ws.invalidate_checkpoint();
                return -k_inf;
            }
        }
        const std::size_t qa = static_cast<std::size_t>(qarea[i]);
        const bool can_hw = hw_possible[i] != 0;
        const std::size_t hi2 = can_hw ? std::min(hi + qa, width - 1) : hi;
        const double gain = can_hw ? hw_gain(costs[i]) : 0.0;
        // Two lanes of pure stores — every next-cell has exactly one
        // source area: (a, SW) from (a, *), (a+qa, HW) from (a, *) —
        // handed to the dispatched kernels.  -inf propagates through
        // the adds, so unreachable sources yield unreachable
        // destinations without per-cell branching.
        const double gain_save = i > 0 ? gain + costs[i].save_prev : gain;
        const std::size_t a_max =
            can_hw ? std::min(hi, width - 1 - qa)  // qa < width (possible)
                   : 0;
        kern.pace_row_sw(cur, nxt, hi + 1);
        std::fill(nxt + (hi + 1) * 2, nxt + (hi2 + 1) * 2, -k_inf);
        if (can_hw)
            kern.pace_row_hw(cur, nxt + qa * 2, a_max + 1, gain, gain_save);
        if constexpr (With_trace) {
            // Parents per destination lane: strictly-greater against
            // the p = 0 source, exactly the improving-write order the
            // per-cell loop used.  Cells outside the lanes' written
            // ranges keep stale bytes, but their values are -inf and
            // the backwards walk only visits finite states.
            std::uint8_t* plane0 = ws.parent_.data() + (i * 2) * width;
            std::uint8_t* plane1 = plane0 + width;
            kern.pace_row_parent(cur, plane0, hi + 1, 0.0, 0.0);
            if (can_hw)
                kern.pace_row_parent(cur, plane1 + qa, a_max + 1, gain,
                                     gain_save);
        }
        hi = hi2;
        if (checkpointing) {
            cur = nxt;
            nxt += width * 2;
            ws.ckpt_hi_[i + 1] = hi;
        }
        else {
            std::swap(cur, nxt);
        }
    }

    if (checkpointing) {
        ws.ckpt_costs_.assign(costs.begin(), costs.end());
        ws.ckpt_quantum_ = s.quantum;
        ws.ckpt_width_ = width;
        ws.ckpt_valid_ = true;
        if (ws.anchor_armed_) {
            // First checkpointed sweep of the pass: capture it as the
            // next pass's resume base — unless it IS the restored
            // anchor, resumed whole (contents already identical).
            ws.anchor_armed_ = false;
            if (!(ws.ckpt_foreign_ && ws.anchor_valid_ && resume == n)) {
                const std::size_t blocks = (n + 1) * width * 2;
                if (ws.anchor_rows_.size() < blocks)
                    ws.anchor_rows_.resize(blocks);
                std::copy(ws.ckpt_rows_.data(),
                          ws.ckpt_rows_.data() + blocks,
                          ws.anchor_rows_.data());
                ws.anchor_costs_.assign(costs.begin(), costs.end());
                ws.anchor_hi_.assign(ws.ckpt_hi_.begin(),
                                     ws.ckpt_hi_.begin() +
                                         static_cast<std::ptrdiff_t>(n + 1));
                ws.anchor_quantum_ = s.quantum;
                ws.anchor_width_ = width;
                ws.anchor_valid_ = true;
            }
        }
        ws.ckpt_foreign_ = false;  // rewritten by this pass
        if constexpr (With_trace) {
            ws.trace_costs_.assign(costs.begin(), costs.end());
            ws.trace_width_ = width;
            ws.trace_rows_ = n;
        }
    }

    // Final answer: only states within the *real* budget count (the
    // table may be wider when a table budget pins the width).
    const std::size_t last = std::min(hi, s.cap);
    double best = -k_inf;
    for (std::size_t a = 0; a <= last; ++a)
        for (int p = 0; p < 2; ++p)
            if (cur[idx(a, p)] > best) {
                best = cur[idx(a, p)];
                if (best_a != nullptr) {
                    *best_a = a;
                    *best_p = p;
                }
            }
    return best;
}

namespace {

/// Checkpointing stores n+1 value rows; above this arena size (doubles)
/// the workspace path falls back to the two-row scratch so the
/// max_dp_width guard's promise — no pathological quantum allocates
/// gigabytes — keeps holding.  2^22 doubles = 32 MB, far above every
/// search configuration (the search's tables are a few hundred levels
/// wide) and far below the widths only an explicit ultra-fine quantum
/// can produce.  Results are identical either way; only
/// rows_reused()/rows_swept() notice.
constexpr std::size_t k_max_ckpt_doubles = std::size_t{1} << 22;

bool want_checkpoint(const Pace_workspace* workspace,
                     std::size_t n, std::size_t width)
{
    return workspace != nullptr && (n + 1) * width * 2 <= k_max_ckpt_doubles;
}

}  // namespace

void Pace_workspace::begin_pass()
{
    // Arm the anchor capture: this pass's first checkpointed sweep
    // becomes the resume base the *next* pass starts from.
    anchor_armed_ = true;
    if (anchor_valid_) {
        // Restore the previous pass's first sweep as the active
        // checkpoint.  The copy re-establishes exactly a state an
        // earlier sweep left behind, so resume correctness is the
        // ordinary checkpoint contract; the retained traceback rows
        // (trace_costs_/trace_rows_) still describe the parent planes,
        // which this restore does not touch.
        const std::size_t blocks =
            (anchor_costs_.size() + 1) * anchor_width_ * 2;
        if (ckpt_rows_.size() < blocks)
            ckpt_rows_.resize(blocks);
        std::copy(anchor_rows_.data(), anchor_rows_.data() + blocks,
                  ckpt_rows_.data());
        if (ckpt_hi_.size() < anchor_costs_.size() + 1)
            ckpt_hi_.resize(anchor_costs_.size() + 1);
        std::copy(anchor_hi_.begin(),
                  anchor_hi_.begin() +
                      static_cast<std::ptrdiff_t>(anchor_costs_.size() + 1),
                  ckpt_hi_.begin());
        ckpt_costs_ = anchor_costs_;
        ckpt_quantum_ = anchor_quantum_;
        ckpt_width_ = anchor_width_;
        ckpt_valid_ = true;
    }
    ckpt_foreign_ = ckpt_valid_;
}

double pace_best_saving(std::span<const Bsb_cost> costs,
                        const Pace_options& options,
                        Pace_workspace* workspace)
{
    Pace_workspace local;
    Pace_workspace& ws = workspace != nullptr ? *workspace : local;
    const Dp_setup s = prepare_dp(costs, options, ws.qarea_, ws.hw_possible_);
    if (costs.empty())
        return 0.0;
    return Pace_dp::sweep<false>(
        costs, s, ws, want_checkpoint(workspace, costs.size(), s.width),
        nullptr, nullptr, options.cancel);
}

Pace_result pace_partition(std::span<const Bsb_cost> costs,
                           const Pace_options& options,
                           Pace_workspace* workspace)
{
    const std::size_t n = costs.size();
    // DP buffers: caller-owned when a workspace is given (the search
    // hot loop), otherwise local.  Buffers only grow; cells are
    // (re)initialized lazily in the sweep, so stale contents from
    // previous calls are never read.
    Pace_workspace local;
    Pace_workspace& ws = workspace != nullptr ? *workspace : local;

    const Dp_setup s = prepare_dp(costs, options, ws.qarea_, ws.hw_possible_);
    if (n == 0)
        return Pace_result{};
    const std::size_t width = s.width;

    std::size_t best_a = 0;
    int best_p = 0;
    const bool checkpointing = want_checkpoint(workspace, n, s.width);
    if (workspace != nullptr && !checkpointing) {
        // This traced sweep overwrites traceback rows without
        // recording what produced them — a later checkpointing call
        // must not trust them.
        ws.trace_rows_ = 0;
    }
    const double best =
        Pace_dp::sweep<true>(costs, s, ws, checkpointing, &best_a, &best_p,
                             options.cancel);
    if (best == -k_inf) {
        // Aborted mid-sweep: the traceback rows are unusable, but the
        // all-software partition is always a valid honest answer.
        Pace_result r =
            evaluate_partition(costs, std::vector<bool>(n, false));
        r.area_quantum_used = s.quantum;
        return r;
    }

    // Walk the parent planes backwards from the best final state.  A
    // state's lane is its own decision (hw = p == 1); the plane byte
    // is the side of the previous BSB on the best path.
    std::vector<bool> in_hw(n, false);
    std::size_t a = best_a;
    int p = best_p;
    for (std::size_t ri = n; ri-- > 0;) {
        const bool hw = p == 1;
        const int prev =
            ws.parent_[(ri * 2 + static_cast<std::size_t>(p)) * width + a];
        in_hw[ri] = hw;
        if (hw)
            a -= static_cast<std::size_t>(ws.qarea_[ri]);
        p = prev;
    }

    Pace_result r = evaluate_partition(costs, in_hw);
    r.area_quantum_used = s.quantum;
    return r;
}

}  // namespace lycos::pace
