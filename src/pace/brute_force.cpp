#include "pace/brute_force.hpp"

#include <cmath>
#include <stdexcept>

namespace lycos::pace {

Pace_result brute_force_partition(std::span<const Bsb_cost> costs,
                                  double ctrl_area_budget)
{
    const std::size_t n = costs.size();
    if (n > 24)
        throw std::invalid_argument("brute_force_partition: too many BSBs");
    if (ctrl_area_budget < 0.0)
        throw std::invalid_argument("brute_force_partition: negative budget");

    Pace_result best = evaluate_partition(costs, std::vector<bool>(n, false));

    std::vector<bool> in_hw(n, false);
    const std::uint64_t limit = std::uint64_t{1} << n;
    for (std::uint64_t mask = 1; mask < limit; ++mask) {
        double area = 0.0;
        bool feasible = true;
        for (std::size_t i = 0; i < n; ++i) {
            const bool hw = (mask >> i) & 1U;
            in_hw[i] = hw;
            if (hw) {
                if (std::isinf(costs[i].t_hw) ||
                    std::isinf(costs[i].ctrl_area)) {
                    feasible = false;
                    break;
                }
                area += costs[i].ctrl_area;
            }
        }
        if (!feasible || area > ctrl_area_budget)
            continue;
        const Pace_result r = evaluate_partition(costs, in_hw);
        if (r.time_hybrid_ns < best.time_hybrid_ns)
            best = r;
    }
    return best;
}

}  // namespace lycos::pace
