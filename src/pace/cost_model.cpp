#include "pace/cost_model.hpp"

#include <limits>

#include "estimate/comm.hpp"
#include "estimate/controller.hpp"
#include "estimate/hw_time.hpp"
#include "estimate/sw_time.hpp"
#include "sched/time_frames.hpp"

namespace lycos::pace {

Bsb_cost bsb_cost_invariants(std::span<const bsb::Bsb> bsbs,
                             std::size_t index, const hw::Target& target)
{
    const auto& b = bsbs[index];
    Bsb_cost c;
    c.t_sw = estimate::total_sw_time_ns(b, target.cpu);
    c.comm = estimate::comm_time_ns(b, target.bus) * b.profile;
    if (index > 0)
        c.save_prev =
            estimate::adjacency_saving_ns(bsbs[index - 1], b, target.bus);
    return c;
}

Bsb_cost bsb_cost_one(std::span<const bsb::Bsb> bsbs, std::size_t index,
                      const hw::Hw_library& lib, const hw::Target& target,
                      std::span<const int> counts,
                      const sched::Latency_table& lat, Controller_mode mode,
                      const estimate::Storage_model* storage,
                      sched::Scheduler_kind scheduler,
                      const sched::Schedule_info* frames,
                      const Bsb_cost* invariants,
                      sched::Schedule_workspace* sched_ws)
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    const auto& b = bsbs[index];
    Bsb_cost c = invariants != nullptr
                     ? *invariants
                     : bsb_cost_invariants(bsbs, index, target);

    const bool use_frames =
        frames != nullptr &&
        scheduler == sched::Scheduler_kind::event_driven && !b.graph.empty();
    // The workspace overload returns a reference into sched_ws; keep a
    // value only on the allocating paths.
    sched::List_schedule sched_local;
    const sched::List_schedule* sched_p;
    if (use_frames && sched_ws != nullptr) {
        sched_p = &sched::list_schedule(b.graph, lib, counts, *frames,
                                        *sched_ws);
    }
    else {
        sched_local =
            use_frames
                ? sched::list_schedule(b.graph, lib, counts, *frames)
                : sched::list_schedule(b.graph, lib, counts, scheduler);
        sched_p = &sched_local;
    }
    const sched::List_schedule& sched = *sched_p;
    if (sched.feasible && !b.graph.empty()) {
        c.t_hw = sched.length * target.asic.cycle_ns() * b.profile;
        const int n_states =
            mode == Controller_mode::optimistic_eca
                ? std::max(1, use_frames ? frames->length
                                         : sched::compute_time_frames(
                                               b.graph, lat)
                                               .length)
                : std::max(1, sched.length);
        c.ctrl_area = estimate::controller_area(n_states, target.gates);
        if (storage != nullptr)
            c.ctrl_area +=
                estimate::storage_area(b.graph, lib, sched, *storage) +
                estimate::interconnect_area(b.graph, lib, sched, *storage);
    }
    else {
        c.t_hw = inf;
        c.ctrl_area = inf;
        c.comm = 0.0;
        c.save_prev = 0.0;
    }
    return c;
}

std::vector<Bsb_cost> build_cost_model(
    std::span<const bsb::Bsb> bsbs, const hw::Hw_library& lib,
    const hw::Target& target, const core::Rmap& alloc, Controller_mode mode,
    const estimate::Storage_model* storage, sched::Scheduler_kind scheduler)
{
    const auto counts = alloc.dense_counts(lib);
    const auto lat = sched::latency_table_from(lib);

    std::vector<Bsb_cost> out;
    out.reserve(bsbs.size());
    for (std::size_t i = 0; i < bsbs.size(); ++i)
        out.push_back(bsb_cost_one(bsbs, i, lib, target, counts, lat, mode,
                                   storage, scheduler));
    return out;
}

double all_sw_time_ns(std::span<const Bsb_cost> costs)
{
    double t = 0.0;
    for (const auto& c : costs)
        t += c.t_sw;
    return t;
}

}  // namespace lycos::pace
