// Exact exponential partitioner.
//
// Enumerates all 2^L partitions and evaluates each with the exact
// (non-discretized) timing and area model.  Used to cross-validate the
// PACE dynamic program in tests and for the tiny instances of the
// ablation benches.  L is limited to 24.
#pragma once

#include <span>

#include "pace/pace.hpp"

namespace lycos::pace {

/// Optimal partition by exhaustive enumeration.  Throws
/// std::invalid_argument for more than 24 BSBs.
Pace_result brute_force_partition(std::span<const Bsb_cost> costs,
                                  double ctrl_area_budget);

}  // namespace lycos::pace
