// BSB cost model for partitioning.
//
// PACE decides, for each leaf BSB, whether it runs in software or in
// hardware on the pre-allocated data-path.  This module condenses a
// BSB array plus a candidate data-path allocation into the per-BSB
// numbers the dynamic program consumes:
//
//   t_sw       profile-weighted software time,
//   t_hw       profile-weighted hardware time under the allocation
//              (+inf when the allocation cannot execute the BSB),
//   comm       profile-weighted bus time for the BSB's read/write sets,
//   save_prev  bus time saved when the previous BSB is also in HW,
//   ctrl_area  controller area charged when the BSB moves to HW.
//
// Controller areas come in two flavours (§5.1): the optimistic ECA the
// allocator used, or the "real" area from the list schedule under the
// actual allocation.
#pragma once

#include <span>
#include <vector>

#include "bsb/bsb.hpp"
#include "core/analysis.hpp"
#include "core/rmap.hpp"
#include "estimate/storage.hpp"
#include "hw/target.hpp"
#include "sched/list_scheduler.hpp"

namespace lycos::pace {

/// Which controller-area estimate the partitioner charges.
enum class Controller_mode {
    optimistic_eca,  ///< ASAP-length-based ECA (what the paper's flow uses)
    list_schedule,   ///< real area from the resource-constrained schedule
};

/// Per-BSB partitioning costs (see file comment).
struct Bsb_cost {
    double t_sw = 0.0;
    double t_hw = 0.0;  ///< +inf when infeasible under the allocation
    double comm = 0.0;
    double save_prev = 0.0;
    double ctrl_area = 0.0;
};

/// Cost of the single BSB `bsbs[index]` under the dense per-type
/// `counts` (the list-scheduler form of an allocation).  `lat` is the
/// library's cheapest-executor latency table, hoisted out because it
/// is allocation-independent.  `frames`, when non-null, must be
/// compute_time_frames(graph, lat) for this BSB — the Eval_cache
/// hoists it too, so cache misses skip the ALAP recomputation (only
/// honoured on the event-driven path).  This is the unit of work the
/// search's Eval_cache memoizes: the result depends only on the
/// counts of resource types whose op set intersects the BSB's
/// operations.
Bsb_cost bsb_cost_one(std::span<const bsb::Bsb> bsbs, std::size_t index,
                      const hw::Hw_library& lib, const hw::Target& target,
                      std::span<const int> counts,
                      const sched::Latency_table& lat, Controller_mode mode,
                      const estimate::Storage_model* storage = nullptr,
                      sched::Scheduler_kind scheduler =
                          sched::Scheduler_kind::event_driven,
                      const sched::Schedule_info* frames = nullptr,
                      const Bsb_cost* invariants = nullptr,
                      sched::Schedule_workspace* sched_ws = nullptr);

/// The allocation-independent fields of bsb_cost_one: t_sw, comm and
/// save_prev (t_hw/ctrl_area stay 0 — they need the schedule).  The
/// Eval_cache hoists these per BSB and hands them back through
/// bsb_cost_one's `invariants` parameter, so a cache miss pays only
/// for the list schedule and the controller area instead of re-walking
/// the graph's software costs and the live-set string intersection of
/// the adjacency saving.  bsb_cost_one uses the same expressions, so
/// hoisted and non-hoisted costs are bit-identical.
Bsb_cost bsb_cost_invariants(std::span<const bsb::Bsb> bsbs,
                             std::size_t index, const hw::Target& target);

/// Build the cost vector for `bsbs` under data-path `alloc`.  When
/// `storage` is non-null, each hardware BSB is additionally charged
/// its estimated register and multiplexer area (§6 future work; the
/// paper's base flow ignores both).  `scheduler` selects the list-
/// scheduler implementation (the naive one exists for the old-vs-new
/// benches and equivalence tests).
std::vector<Bsb_cost> build_cost_model(
    std::span<const bsb::Bsb> bsbs, const hw::Hw_library& lib,
    const hw::Target& target, const core::Rmap& alloc, Controller_mode mode,
    const estimate::Storage_model* storage = nullptr,
    sched::Scheduler_kind scheduler = sched::Scheduler_kind::event_driven);

/// Total all-software execution time of the application.
double all_sw_time_ns(std::span<const Bsb_cost> costs);

}  // namespace lycos::pace
