// Two-ASIC partitioning (the paper's second future-work direction,
// §6: "the generalization to target architectures that contain more
// than one ASIC").
//
// Each BSB now chooses between software and *two* ASICs, each with its
// own pre-allocated data-path and its own controller-area budget.  The
// PACE dynamic program generalizes naturally: the state carries the
// quantized area used on both ASICs plus the previous BSB's placement,
// and the adjacency communication saving applies only when consecutive
// BSBs sit on the *same* ASIC (values cannot stay in the data-path
// across chips).
//
// The production DP (multi_pace_partition) is now *Pareto-sparse*: a
// row's DP states are not a dense (a0, a1) grid (nor the reachable
// rectangle the frontier sweep scans — 60-80% of the grid on big
// apps) but the set of dominance-maximal states only.  A state
// survives a row exactly when no other state of the same
// previous-placement lane uses no more area on both ASICs and
// achieves at least its saving; everything else is provably useless
// to every completion.  The pruning is *complete* (the kept set is
// exactly the Pareto-maximal antichain with bitwise-exact values), so
// the sparse DP reproduces the dense reference's optimal value AND
// its traceback placement bit for bit — see the proof sketch on
// Multi_dp_sparse in multi_asic.cpp.
//
// Three implementations coexist, fastest first:
//   multi_pace_partition            sparse states (production)
//   multi_pace_partition_frontier   reachable-rectangle fused sweep
//                                   (the pre-sparse production path,
//                                   kept as a second reference)
//   multi_pace_partition_reference  dense full-grid scan (original)
// All three share prepare_multi's quantization, so results are
// comparable bit for bit; tests and the bench pin the equivalence.
// multi_pace_best_saving is the sparse value-only screening entry;
// Multi_pace_options::optimistic_rounding flips the area rounding
// down so the DP value upper-bounds every ceil-rounded evaluation —
// the admissible per-a0-row bound the multi-ASIC search prunes with.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "pace/cost_model.hpp"
#include "util/arena.hpp"

namespace lycos::util {
class Cancel_token;
}

namespace lycos::util::simd {
struct Kernels;
}

namespace lycos::pace {

/// Placement of one BSB in the two-ASIC architecture.
enum class Placement : int {
    software = -1,
    asic0 = 0,
    asic1 = 1,
};

/// Per-BSB costs for the two-ASIC partition: software time plus one
/// hardware cost set per ASIC (the ASICs may have different
/// allocations, so times and controller areas differ).
struct Multi_bsb_cost {
    double t_sw = 0.0;
    std::array<Bsb_cost, 2> hw;  ///< t_hw/comm/ctrl_area/save_prev per ASIC
};

/// Options for the two-ASIC dynamic program.
struct Multi_pace_options {
    std::array<double, 2> ctrl_area_budgets{0.0, 0.0};

    /// Area discretization step.  0 selects automatically: the larger
    /// budget / 4096 but at least 1 gate — the same default as the
    /// single-ASIC Pace_options (the /256 the two-ASIC path once used
    /// quantized 16x coarser than every other DP in the system).
    double area_quantum = 0.0;

    /// Hard cap on the (a0, a1) grid size w0*w1.  A quantum that
    /// would need a larger grid is re-quantized (scaled up by
    /// sqrt(overshoot)) until the grid fits, instead of letting a
    /// caller-supplied small quantum allocate n*w0*w1*3*2 bytes of
    /// traceback unchecked; Multi_pace_result::area_quantum_used
    /// reports what was actually used.  The default bounds value/next
    /// at ~12 MB and keeps the auto quantum at ~512 levels per axis.
    long long max_dp_cells = 1 << 18;

    /// Round quantized controller areas *down* instead of up.  The DP
    /// value then upper-bounds the exact (continuum) optimum — and
    /// therefore every ceil-rounded DP at any quantum and any budgets
    /// no larger than these — instead of lower-bounding it.  For
    /// admissible bounds only (the multi-ASIC search's per-a0-row
    /// bound); a partition built this way may overpack the budgets.
    bool optimistic_rounding = false;

    /// Optional cancellation handle for the sparse sweeps: the DP-cell
    /// budget is charged and the token polled (full stop(), including
    /// the deadline clock — these rows are the heaviest stripes in the
    /// stack) once per BSB row.  An aborted value sweep returns -inf;
    /// an aborted multi_pace_partition returns the honest all-software
    /// placement.  The frontier and dense reference paths ignore it.
    const util::Cancel_token* cancel = nullptr;
};

/// Result of the two-ASIC partition.
struct Multi_pace_result {
    std::vector<Placement> placement;
    double time_all_sw_ns = 0.0;
    double time_hybrid_ns = 0.0;
    double speedup_pct = 0.0;
    std::array<double, 2> ctrl_area_used{0.0, 0.0};
    int n_in_hw = 0;

    /// Effective DP quantum after the auto default and the
    /// max_dp_cells guard (0 from evaluate_multi_partition, which has
    /// none) — mirrors Pace_result::area_quantum_used.
    double area_quantum_used = 0.0;

    // DP observability (all 0 from evaluate_multi_partition):
    long long dp_cells_swept = 0;  ///< source (a0,a1,p) cells/states visited
    long long dp_cells_dense = 0;  ///< n * w0 * w1 * 3 — the dense scan's sweep
    /// Sparse path only: states stored across all rows (the traceback
    /// arena's entry count); 0 from the frontier/dense sweeps.
    long long dp_states_stored = 0;
    std::size_t traceback_bytes = 0;  ///< compact traceback allocated
    std::size_t traceback_bytes_dense = 0;  ///< pre-overhaul dense encoding

    /// Fraction of the dense grid the sweep actually visited (sparse
    /// states or frontier cells over dense cells).
    double frontier_occupancy() const
    {
        return dp_cells_dense > 0
                   ? static_cast<double>(dp_cells_swept) /
                         static_cast<double>(dp_cells_dense)
                   : 0.0;
    }
};

/// Build the two-ASIC cost model: one ordinary cost model per ASIC
/// allocation.
std::vector<Multi_bsb_cost> build_multi_cost_model(
    std::span<const bsb::Bsb> bsbs, const hw::Hw_library& lib,
    const hw::Target& target, const core::Rmap& alloc0,
    const core::Rmap& alloc1, Controller_mode mode);

class Multi_pace_workspace;

/// One Pareto-sparse DP state: quantized controller area used on each
/// ASIC plus the best saving achieved with it.  The previous BSB's
/// placement is the *lane* the state is stored in, not a field;
/// `parent` is the lane of the state's DP predecessor (the traceback
/// nibble's payload), dead weight to the value sweep and ignored by
/// dominance.  This is the single-state *view* type; rows store their
/// states in Multi_state_soa, not as arrays of this struct.
struct Multi_state {
    int a0 = 0;
    int a1 = 0;
    double value = 0.0;
    std::uint8_t parent = 0;
};

/// One lane's states in structure-of-arrays layout: parallel
/// a0 / a1 / value / parent arrays, index-aligned, sorted by
/// (a0, a1).  SoA is what makes the dominance-merge scans streaming
/// loops — the shift kernel reads two contiguous int32 arrays and one
/// contiguous double array instead of striding through 24-byte
/// structs, and the prefix-max touches values only.
struct Multi_state_soa {
    std::vector<std::int32_t> a0;
    std::vector<std::int32_t> a1;
    std::vector<double> value;
    std::vector<std::uint8_t> parent;

    std::size_t size() const { return value.size(); }
    bool empty() const { return value.empty(); }

    void clear()
    {
        a0.clear();
        a1.clear();
        value.clear();
        parent.clear();
    }

    void push_back(std::int32_t s0, std::int32_t s1, double v,
                   std::uint8_t par)
    {
        a0.push_back(s0);
        a1.push_back(s1);
        value.push_back(v);
        parent.push_back(par);
    }

    void resize(std::size_t n)
    {
        a0.resize(n);
        a1.resize(n);
        value.resize(n);
        parent.resize(n);
    }

    void swap(Multi_state_soa& other)
    {
        a0.swap(other.a0);
        a1.swap(other.a1);
        value.swap(other.value);
        parent.swap(other.parent);
    }

    Multi_state operator[](std::size_t i) const
    {
        return {a0[i], a1[i], value[i], parent[i]};
    }
};

/// Cache-line-blocked, epoch-stamped prefix-max over positions
/// [0, nb) — the dominance test's "best value at a1' <= a1 so far".
/// Replaces the Fenwick tree: per-block maxima (one cache line of
/// fine values per block) make the query a contiguous streaming max
/// over blk_[0 .. pos/8) — fed to the dispatched max_reduce kernel —
/// plus at most one partial fine block, instead of log(w1) scattered
/// loads.  update stays O(1); fine blocks are reset lazily on first
/// touch per epoch.  The query is an exact max, so every dominance
/// decision — and therefore the kept antichain — is identical to the
/// Fenwick implementation it replaces.
class Blocked_prefix_max {
public:
    /// Start a new epoch over positions [0, nb).
    void begin(std::size_t nb);

    /// Max value updated at positions <= pos this epoch (-inf if none).
    double query(std::size_t pos) const;

    void update(std::size_t pos, double v);

private:
    static constexpr std::size_t k_block = 8;  ///< doubles per cache line

    std::vector<double> fine_;
    std::vector<double> blk_;  ///< per-block max, reset every epoch
    std::vector<std::uint32_t> blk_epoch_;  ///< fine-block lazy-reset stamp
    std::uint32_t epoch_ = 0;
    const util::simd::Kernels* kern_ = nullptr;  ///< cached at begin()
};

/// A row's Pareto-sparse state sets: per previous-placement lane
/// (0 = SW, 1 = asic0, 2 = asic1) the dominance-maximal states in SoA
/// layout, sorted by (a0, a1).  The sparse sweep double-buffers two
/// of these inside the Multi_pace_workspace; `prune` is the dominance
/// kernel, public so crafted tie/colinear cases can unit-test it
/// directly.
class Multi_pace_state_set {
public:
    const Multi_state_soa& lane(std::size_t p) const { return lanes_[p]; }

    std::size_t size() const
    {
        return lanes_[0].size() + lanes_[1].size() + lanes_[2].size();
    }

    /// Complete dominance pruning, in place.  `states` must be sorted
    /// by (a0, a1) ascending with unique coordinates and a1 <= a1_cap;
    /// on return it holds exactly the states no other state dominates
    /// (<= area on both axes, unequal coordinates, >= value) — the
    /// Pareto-maximal antichain, order preserved.  Completeness is
    /// what makes the sparse DP traceback-identical to the dense
    /// reference: every surviving state provably carries the dense
    /// value of its cell.
    void prune(Multi_state_soa& states, int a1_cap);

private:
    friend struct Multi_dp_sparse;
    std::array<Multi_state_soa, 3> lanes_;
    Blocked_prefix_max pmax_;
};

/// Optimal (up to area discretization) two-ASIC partition over the
/// Pareto-sparse state sets.  With a non-null `workspace` the DP
/// reuses the caller-owned state arenas across calls (grow-only
/// buffers, not thread-safe); results are identical with or without
/// one, and — placement included — bit-identical to both retained
/// references below.
Multi_pace_result multi_pace_partition(
    std::span<const Multi_bsb_cost> costs, const Multi_pace_options& options,
    Multi_pace_workspace* workspace = nullptr);

/// The DP's optimal saving vs. all-software without reconstructing
/// the placement — the sparse screening counterpart of
/// pace_best_saving: no traceback arena at all, so it costs a
/// fraction of the full partition.  Equals all-SW time minus
/// multi_pace_partition(...).time_hybrid_ns up to float summation
/// order.  With options.optimistic_rounding this is the admissible
/// upper bound the multi-ASIC search's per-a0-row prune uses.
double multi_pace_best_saving(std::span<const Multi_bsb_cost> costs,
                              const Multi_pace_options& options,
                              Multi_pace_workspace* workspace = nullptr);

/// Admissible bound on the total saving any two-ASIC placement of
/// `costs` can achieve — the generalization of pace::max_gain: each
/// BSB contributes the better of its two per-ASIC gains, crediting
/// the larger adjacency saving unconditionally and ignoring both area
/// budgets.  For every placement, time_all_sw - time_hybrid <=
/// multi_max_gain(costs); the multi-ASIC allocation search skips the
/// screening DP for pairs whose bound cannot beat the incumbent.
double multi_max_gain(std::span<const Multi_bsb_cost> costs);

/// Same bound over split per-ASIC cost spans (t_sw from `c0`) — the
/// a0-major pair walk keeps the row's asic0 costs and a per-row
/// relaxation of the asic1 costs in separate vectors and must not
/// materialize a combined Multi_bsb_cost vector just to bound a row.
double multi_max_gain(std::span<const Bsb_cost> c0,
                      std::span<const Bsb_cost> c1);

/// Caller-owned reusable buffers for the two-ASIC DP (sparse and
/// frontier paths).  Grow-only; one workspace per thread, never
/// shared across concurrent calls.
class Multi_pace_workspace {
public:
    Multi_pace_workspace() = default;

    /// Back the big DP buffers (frontier value/next rows, traceback
    /// arenas, merge scratch) with a caller-owned per-worker Arena:
    /// first-touched — and kept — on the worker that sweeps them.
    /// The arena must outlive the workspace.
    explicit Multi_pace_workspace(util::Arena* arena)
        : value_(util::Arena_allocator<double>(arena)),
          next_(util::Arena_allocator<double>(arena)),
          trace_(util::Arena_allocator<std::uint8_t>(arena)),
          tb_key_(util::Arena_allocator<std::uint64_t>(arena)),
          tb_cell_(util::Arena_allocator<std::uint8_t>(arena)),
          mkey_{util::Arena_vector<std::uint64_t>(
                    util::Arena_allocator<std::uint64_t>(arena)),
                util::Arena_vector<std::uint64_t>(
                    util::Arena_allocator<std::uint64_t>(arena)),
                util::Arena_vector<std::uint64_t>(
                    util::Arena_allocator<std::uint64_t>(arena))},
          mval_{util::Arena_vector<double>(
                    util::Arena_allocator<double>(arena)),
                util::Arena_vector<double>(
                    util::Arena_allocator<double>(arena)),
                util::Arena_vector<double>(
                    util::Arena_allocator<double>(arena))}
    {
    }

    /// Observability of the most recent sweep through this workspace
    /// (sparse source states / frontier source cells, and the dense
    /// grid a full scan would have swept) — the multi-ASIC search
    /// aggregates these across its screening calls, which return only
    /// a double.
    long long last_cells_swept() const { return last_cells_swept_; }
    long long last_cells_dense() const { return last_cells_dense_; }

private:
    friend struct Multi_dp;         ///< frontier sweep (multi_asic.cpp)
    friend struct Multi_dp_sparse;  ///< Pareto-sparse sweep
    friend Multi_pace_result multi_pace_partition(
        std::span<const Multi_bsb_cost> costs,
        const Multi_pace_options& options, Multi_pace_workspace* workspace);
    friend Multi_pace_result multi_pace_partition_frontier(
        std::span<const Multi_bsb_cost> costs,
        const Multi_pace_options& options, Multi_pace_workspace* workspace);
    friend double multi_pace_best_saving(
        std::span<const Multi_bsb_cost> costs,
        const Multi_pace_options& options, Multi_pace_workspace* workspace);
    friend double multi_pace_best_saving_frontier(
        std::span<const Multi_bsb_cost> costs,
        const Multi_pace_options& options, Multi_pace_workspace* workspace);
    // --- frontier sweep buffers -------------------------------------
    util::Arena_vector<double> value_;
    util::Arena_vector<double> next_;
    /// Nibble-packed traceback arena: row i occupies bytes
    /// [row_off_[i], row_off_[i+1]) holding (hi0_i+1)*(hi1_i+1)*3
    /// 4-bit cells (decision * 3 + parent), where (hi0_i, hi1_i) is
    /// the frontier *after* row i.
    util::Arena_vector<std::uint8_t> trace_;
    std::vector<std::size_t> row_off_;
    std::vector<int> row_hi0_;
    std::vector<int> row_hi1_;
    // --- shared quantization scratch --------------------------------
    std::vector<std::array<int, 2>> qarea_;
    std::vector<std::array<std::uint8_t, 2>> possible_;
    // --- sparse sweep arenas ----------------------------------------
    Multi_pace_state_set cur_;
    Multi_pace_state_set nxt_;
    /// Sparse traceback: states of row i, lane p live at arena
    /// indices [srow_off_[i*3+p], srow_off_[i*3+p+1]) — tb_key_ holds
    /// (a0 << 32 | a1) for the traceback's binary search, tb_cell_
    /// the nibble-packed decision*3+parent codes, one nibble per
    /// stored state ("sparse row indices").
    util::Arena_vector<std::uint64_t> tb_key_;
    util::Arena_vector<std::uint8_t> tb_cell_;
    std::vector<std::size_t> srow_off_;
    /// Dominance-merge scratch, one slot per source lane: the shifted
    /// packed keys ((a0 << 32 | a1) after this row's area shift, or
    /// util::simd::k_invalid_key for a1 overflow) and pre-added
    /// values the multi_shift_lane kernel emits and the scalar 3-way
    /// merge consumes.
    std::array<util::Arena_vector<std::uint64_t>, 3> mkey_;
    std::array<util::Arena_vector<double>, 3> mval_;
    long long last_cells_swept_ = 0;
    long long last_cells_dense_ = 0;
};

/// The pre-sparse production DP: reachable-(a0,a1)-rectangle fused
/// sweep with the per-row nibble traceback — kept (like the dense
/// reference below) as an equivalence baseline and for the
/// dense-vs-frontier-vs-sparse bench.  Bit-identical results to
/// multi_pace_partition.
Multi_pace_result multi_pace_partition_frontier(
    std::span<const Multi_bsb_cost> costs, const Multi_pace_options& options,
    Multi_pace_workspace* workspace = nullptr);

/// Value-only screening over the frontier sweep (the pre-sparse
/// production screen), kept for the bench comparison.
double multi_pace_best_saving_frontier(
    std::span<const Multi_bsb_cost> costs, const Multi_pace_options& options,
    Multi_pace_workspace* workspace = nullptr);

/// The pre-overhaul dense DP (full w0 x w1 x 3 scan per row, two
/// bytes of traceback per cell), retained — like list_schedule_naive —
/// as the reference the workspace/frontier implementation is pinned
/// against by tests and the old-vs-new bench.  Shares the
/// quantization (including the auto default and the max_dp_cells
/// guard) with multi_pace_partition, so results are comparable
/// bit for bit.
Multi_pace_result multi_pace_partition_reference(
    std::span<const Multi_bsb_cost> costs, const Multi_pace_options& options);

/// Evaluate a given placement with the exact model (cross-checking).
Multi_pace_result evaluate_multi_partition(
    std::span<const Multi_bsb_cost> costs,
    const std::vector<Placement>& placement);

}  // namespace lycos::pace
