// Two-ASIC partitioning (the paper's second future-work direction,
// §6: "the generalization to target architectures that contain more
// than one ASIC").
//
// Each BSB now chooses between software and *two* ASICs, each with its
// own pre-allocated data-path and its own controller-area budget.  The
// PACE dynamic program generalizes naturally: the state carries the
// quantized area used on both ASICs plus the previous BSB's placement,
// and the adjacency communication saving applies only when consecutive
// BSBs sit on the *same* ASIC (values cannot stay in the data-path
// across chips).
//
// The production DP (multi_pace_partition) has the same machinery the
// single-ASIC pace.cpp grew: caller-owned Multi_pace_workspace
// buffers, a reachable-(a0,a1)-frontier sweep instead of the dense
// w0*w1 scan, a compact nibble-packed per-row traceback sized to each
// row's frontier, a re-quantization guard on the grid size, and a
// value-only multi_pace_best_saving screening entry point.  The
// pre-overhaul dense DP is retained as
// multi_pace_partition_reference for equivalence tests and the
// old-vs-new bench.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "pace/cost_model.hpp"

namespace lycos::pace {

/// Placement of one BSB in the two-ASIC architecture.
enum class Placement : int {
    software = -1,
    asic0 = 0,
    asic1 = 1,
};

/// Per-BSB costs for the two-ASIC partition: software time plus one
/// hardware cost set per ASIC (the ASICs may have different
/// allocations, so times and controller areas differ).
struct Multi_bsb_cost {
    double t_sw = 0.0;
    std::array<Bsb_cost, 2> hw;  ///< t_hw/comm/ctrl_area/save_prev per ASIC
};

/// Options for the two-ASIC dynamic program.
struct Multi_pace_options {
    std::array<double, 2> ctrl_area_budgets{0.0, 0.0};

    /// Area discretization step.  0 selects automatically: the larger
    /// budget / 4096 but at least 1 gate — the same default as the
    /// single-ASIC Pace_options (the /256 the two-ASIC path once used
    /// quantized 16x coarser than every other DP in the system).
    double area_quantum = 0.0;

    /// Hard cap on the (a0, a1) grid size w0*w1.  A quantum that
    /// would need a larger grid is re-quantized (scaled up by
    /// sqrt(overshoot)) until the grid fits, instead of letting a
    /// caller-supplied small quantum allocate n*w0*w1*3*2 bytes of
    /// traceback unchecked; Multi_pace_result::area_quantum_used
    /// reports what was actually used.  The default bounds value/next
    /// at ~12 MB and keeps the auto quantum at ~512 levels per axis.
    long long max_dp_cells = 1 << 18;
};

/// Result of the two-ASIC partition.
struct Multi_pace_result {
    std::vector<Placement> placement;
    double time_all_sw_ns = 0.0;
    double time_hybrid_ns = 0.0;
    double speedup_pct = 0.0;
    std::array<double, 2> ctrl_area_used{0.0, 0.0};
    int n_in_hw = 0;

    /// Effective DP quantum after the auto default and the
    /// max_dp_cells guard (0 from evaluate_multi_partition, which has
    /// none) — mirrors Pace_result::area_quantum_used.
    double area_quantum_used = 0.0;

    // DP observability (all 0 from evaluate_multi_partition):
    long long dp_cells_swept = 0;  ///< frontier (a0,a1,p) source cells visited
    long long dp_cells_dense = 0;  ///< n * w0 * w1 * 3 — the dense scan's sweep
    std::size_t traceback_bytes = 0;  ///< compact frontier traceback allocated
    std::size_t traceback_bytes_dense = 0;  ///< pre-overhaul dense encoding

    /// Fraction of the dense grid the frontier sweep actually visited.
    double frontier_occupancy() const
    {
        return dp_cells_dense > 0
                   ? static_cast<double>(dp_cells_swept) /
                         static_cast<double>(dp_cells_dense)
                   : 0.0;
    }
};

/// Build the two-ASIC cost model: one ordinary cost model per ASIC
/// allocation.
std::vector<Multi_bsb_cost> build_multi_cost_model(
    std::span<const bsb::Bsb> bsbs, const hw::Hw_library& lib,
    const hw::Target& target, const core::Rmap& alloc0,
    const core::Rmap& alloc1, Controller_mode mode);

class Multi_pace_workspace;

/// Optimal (up to area discretization) two-ASIC partition.  With a
/// non-null `workspace` the DP reuses the caller-owned value/next
/// rows and the traceback arena across calls (grow-only buffers, not
/// thread-safe); results are identical with or without one.
Multi_pace_result multi_pace_partition(
    std::span<const Multi_bsb_cost> costs, const Multi_pace_options& options,
    Multi_pace_workspace* workspace = nullptr);

/// The DP's optimal saving vs. all-software without reconstructing
/// the placement — the screening counterpart of pace_best_saving: no
/// traceback arena at all, so it costs a fraction of the full
/// partition.  Equals all-SW time minus
/// multi_pace_partition(...).time_hybrid_ns up to float summation
/// order.
double multi_pace_best_saving(std::span<const Multi_bsb_cost> costs,
                              const Multi_pace_options& options,
                              Multi_pace_workspace* workspace = nullptr);

/// Admissible bound on the total saving any two-ASIC placement of
/// `costs` can achieve — the generalization of pace::max_gain: each
/// BSB contributes the better of its two per-ASIC gains, crediting
/// the larger adjacency saving unconditionally and ignoring both area
/// budgets.  For every placement, time_all_sw - time_hybrid <=
/// multi_max_gain(costs); the multi-ASIC allocation search skips the
/// screening DP for pairs whose bound cannot beat the incumbent.
double multi_max_gain(std::span<const Multi_bsb_cost> costs);

/// Caller-owned reusable buffers for the two-ASIC DP.  Grow-only;
/// one workspace per thread, never shared across concurrent calls.
class Multi_pace_workspace {
public:
    Multi_pace_workspace() = default;

private:
    friend struct Multi_dp;  ///< the internal sweep (multi_asic.cpp)
    friend Multi_pace_result multi_pace_partition(
        std::span<const Multi_bsb_cost> costs,
        const Multi_pace_options& options, Multi_pace_workspace* workspace);
    friend double multi_pace_best_saving(
        std::span<const Multi_bsb_cost> costs,
        const Multi_pace_options& options, Multi_pace_workspace* workspace);
    std::vector<double> value_;
    std::vector<double> next_;
    /// Nibble-packed traceback arena: row i occupies bytes
    /// [row_off_[i], row_off_[i+1]) holding (hi0_i+1)*(hi1_i+1)*3
    /// 4-bit cells (decision * 3 + parent), where (hi0_i, hi1_i) is
    /// the frontier *after* row i.
    std::vector<std::uint8_t> trace_;
    std::vector<std::size_t> row_off_;
    std::vector<int> row_hi0_;
    std::vector<int> row_hi1_;
    std::vector<std::array<int, 2>> qarea_;
    std::vector<std::array<std::uint8_t, 2>> possible_;
};

/// The pre-overhaul dense DP (full w0 x w1 x 3 scan per row, two
/// bytes of traceback per cell), retained — like list_schedule_naive —
/// as the reference the workspace/frontier implementation is pinned
/// against by tests and the old-vs-new bench.  Shares the
/// quantization (including the auto default and the max_dp_cells
/// guard) with multi_pace_partition, so results are comparable
/// bit for bit.
Multi_pace_result multi_pace_partition_reference(
    std::span<const Multi_bsb_cost> costs, const Multi_pace_options& options);

/// Evaluate a given placement with the exact model (cross-checking).
Multi_pace_result evaluate_multi_partition(
    std::span<const Multi_bsb_cost> costs,
    const std::vector<Placement>& placement);

}  // namespace lycos::pace
