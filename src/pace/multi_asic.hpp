// Two-ASIC partitioning (the paper's second future-work direction,
// §6: "the generalization to target architectures that contain more
// than one ASIC").
//
// Each BSB now chooses between software and *two* ASICs, each with its
// own pre-allocated data-path and its own controller-area budget.  The
// PACE dynamic program generalizes naturally: the state carries the
// quantized area used on both ASICs plus the previous BSB's placement,
// and the adjacency communication saving applies only when consecutive
// BSBs sit on the *same* ASIC (values cannot stay in the data-path
// across chips).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "pace/cost_model.hpp"

namespace lycos::pace {

/// Placement of one BSB in the two-ASIC architecture.
enum class Placement : int {
    software = -1,
    asic0 = 0,
    asic1 = 1,
};

/// Per-BSB costs for the two-ASIC partition: software time plus one
/// hardware cost set per ASIC (the ASICs may have different
/// allocations, so times and controller areas differ).
struct Multi_bsb_cost {
    double t_sw = 0.0;
    std::array<Bsb_cost, 2> hw;  ///< t_hw/comm/ctrl_area/save_prev per ASIC
};

/// Options for the two-ASIC dynamic program.
struct Multi_pace_options {
    std::array<double, 2> ctrl_area_budgets{0.0, 0.0};
    double area_quantum = 0.0;  ///< 0 = auto (max budget / 256)
};

/// Result of the two-ASIC partition.
struct Multi_pace_result {
    std::vector<Placement> placement;
    double time_all_sw_ns = 0.0;
    double time_hybrid_ns = 0.0;
    double speedup_pct = 0.0;
    std::array<double, 2> ctrl_area_used{0.0, 0.0};
    int n_in_hw = 0;
};

/// Build the two-ASIC cost model: one ordinary cost model per ASIC
/// allocation.
std::vector<Multi_bsb_cost> build_multi_cost_model(
    std::span<const bsb::Bsb> bsbs, const hw::Hw_library& lib,
    const hw::Target& target, const core::Rmap& alloc0,
    const core::Rmap& alloc1, Controller_mode mode);

/// Optimal (up to area discretization) two-ASIC partition.
Multi_pace_result multi_pace_partition(std::span<const Multi_bsb_cost> costs,
                                       const Multi_pace_options& options);

/// Evaluate a given placement with the exact model (cross-checking).
Multi_pace_result evaluate_multi_partition(
    std::span<const Multi_bsb_cost> costs,
    const std::vector<Placement>& placement);

}  // namespace lycos::pace
