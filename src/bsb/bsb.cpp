#include "bsb/bsb.hpp"

#include <stdexcept>

namespace lycos::bsb {

std::vector<Bsb> extract_leaf_bsbs(const cdfg::Cdfg& g, double entry_count)
{
    const auto leaves = g.leaves_in_order();
    const auto profiles = cdfg::propagate_profiles(g, entry_count);
    if (leaves.size() != profiles.size())
        throw std::logic_error("extract_leaf_bsbs: leaf/profile mismatch");

    std::vector<Bsb> out;
    out.reserve(leaves.size());
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        if (leaves[i] != profiles[i].leaf)
            throw std::logic_error("extract_leaf_bsbs: leaf order mismatch");
        const auto& graph = g.leaf_graph(leaves[i]);
        if (graph.empty())
            continue;
        out.push_back(Bsb{g.name(leaves[i]), graph, profiles[i].count,
                          leaves[i]});
    }
    return out;
}

std::size_t total_ops(const std::vector<Bsb>& bsbs)
{
    std::size_t n = 0;
    for (const auto& b : bsbs)
        n += b.graph.size();
    return n;
}

}  // namespace lycos::bsb
