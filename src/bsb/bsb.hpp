// Basic Scheduling Blocks.
//
// The CDFG is translated into a BSB hierarchy for partitioning
// (Figure 4); the bulk of the application is the *leaf* BSBs, each a
// single DFG plus profiling information.  The allocation algorithm
// (§3) and PACE both operate on the flat array of leaf BSBs in
// execution order: [B1; B2; ...; BL].
#pragma once

#include <string>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "cdfg/profile.hpp"
#include "dfg/dfg.hpp"

namespace lycos::bsb {

/// One leaf BSB: a DFG with a name and a profile count p_k.
struct Bsb {
    std::string name;
    dfg::Dfg graph;
    double profile = 1.0;          ///< p_k of Definition 2
    cdfg::Node_id source = -1;     ///< originating CDFG leaf (-1 if built directly)
};

/// Flatten a CDFG into its array of leaf BSBs in execution order,
/// attaching statically propagated profile counts.  Leaves with empty
/// DFGs (e.g. an unfilled loop test) are dropped — they contain no
/// operations so neither the allocator nor PACE can act on them.
std::vector<Bsb> extract_leaf_bsbs(const cdfg::Cdfg& g,
                                   double entry_count = 1.0);

/// Total operation count of a BSB array.
std::size_t total_ops(const std::vector<Bsb>& bsbs);

}  // namespace lycos::bsb
