// Seeded random BSB-array generator.
//
// Property tests and the scaling benches need applications of
// controllable size and shape; this generator builds random DAG DFGs
// with configurable operation mix, edge density and profile counts.
// Everything is driven by util::Rng, so instances are reproducible.
#pragma once

#include <vector>

#include "bsb/bsb.hpp"
#include "hw/op.hpp"
#include "util/rng.hpp"

namespace lycos::apps {

/// Shape parameters of a random application.
struct Random_app_params {
    int n_bsbs = 8;
    int min_ops = 4;
    int max_ops = 24;
    double edge_prob = 0.25;      ///< chance of an edge between op pairs
    double max_profile = 256.0;   ///< profiles drawn from [1, max_profile]
    std::vector<hw::Op_kind> kinds = {
        hw::Op_kind::add,  hw::Op_kind::sub, hw::Op_kind::mul,
        hw::Op_kind::div,  hw::Op_kind::cmp_lt,
        hw::Op_kind::const_load,
    };
    int max_live_values = 4;      ///< live-ins and live-outs per BSB
};

/// One random DAG DFG with `n_ops` operations.
dfg::Dfg random_dfg(util::Rng& rng, int n_ops, const Random_app_params& p);

/// A random BSB array.
std::vector<bsb::Bsb> random_bsbs(util::Rng& rng, const Random_app_params& p);

}  // namespace lycos::apps
