#include "apps/apps.hpp"

#include "minic/lexer.hpp"
#include "minic/lower.hpp"

namespace lycos::apps {

namespace {

App build(std::string name, std::string source, double asic_area)
{
    App app;
    app.name = std::move(name);
    app.source = std::move(source);
    app.lines = minic::count_code_lines(app.source);
    app.graph = minic::compile(app.source);
    app.bsbs = bsb::extract_leaf_bsbs(app.graph);
    app.asic_area = asic_area;
    return app;
}

// ---------------------------------------------------------------------
// straight: straight-line mixed arithmetic from the LYCOS system paper.
// A chain of filter/transform stages over a sample window; wait
// statements mark the sample boundaries and split the BSBs.
// ---------------------------------------------------------------------
constexpr const char* k_straight_source = R"(
// straight -- straight-line signal chain (LYCOS system paper example).
input s0, s1, s2, s3, s4, s5, s6, s7;
input g0, g1, g2, g3;
output acc, env, pk;

// stage 1a: weighted pairs over the lower window half
w0 = g0 * s0;
w1 = g1 * s1;
f0 = w0 + w1;
wait 1;

// stage 1b
w2 = g2 * s2;
w3 = g3 * s3;
f1 = w2 + w3;
fa = f0 + f1;
wait 1;

// stage 1c: weighted pairs over the upper window half
w4 = g0 * s4;
w5 = g1 * s5;
f2 = w4 + w5;
wait 1;

// stage 1d
w6 = g2 * s6;
w7 = g3 * s7;
f3 = w6 + w7;
fb = f2 + f3;
wait 1;

// stage 2: biquad section one
b0 = fa * 3;
b1 = fb * 5;
b2 = fa - fb;
b3 = b0 + b1;
b4 = b3 - b2;
b5 = b4 * 7;
y0 = b5 + fa;
wait 1;

// stage 3: biquad section two
c0 = y0 * 2;
c1 = y0 * 9;
c2 = c0 + fb;
c3 = c1 - fa;
c4 = c2 * c3;
y1 = c4 + y0;
wait 1;

// stage 4: envelope tracking
e0 = y1 - y0;
e1 = e0 * e0;
e2 = y1 + y0;
e3 = e2 * e2;
e4 = e1 + e3;
env = e4 >> 4;
wait 1;

// stage 5: peak detector and scaling
p0 = env * 5;
p1 = env * 3;
p2 = p0 - p1;
p3 = p2 + y1;
pk = p3 >> 1;
wait 1;

// stage 6: polynomial correction
q0 = pk * pk;
q1 = q0 * pk;
q2 = q1 * 3;
q3 = q0 * 7;
q4 = pk * 11;
q5 = q2 + q3;
q6 = q5 + q4;
q7 = q6 + 13;
wait 1;

// stage 7: mix-down one
m0 = q7 + env;
m1 = q7 - env;
m2 = m0 * m1;
m3 = m2 >> 2;
m4 = m3 + pk;
wait 1;

// stage 8: mix-down two
n0 = m4 * 5;
n1 = m4 * 7;
n2 = n0 + n1;
n3 = n2 - q7;
n4 = n3 * m4;
wait 1;

// stage 9: clamp window (branch-free)
r0 = n4 & 4095;
r1 = n4 >> 12;
r2 = r1 & 1;
r3 = r2 * 4095;
r4 = r0 | r3;
wait 1;

// stage 10: accumulate
a0 = r4 + m4;
a1 = a0 + q7;
a2 = a1 + y1;
a3 = a2 + fa;
acc = a3 >> 2;
wait 1;

// stage 11: final dither and pack
d0 = acc * 3;
d1 = acc * 5;
d2 = d0 ^ d1;
d3 = d2 & 255;
d4 = d3 << 2;
d5 = d4 | r2;
pk = d5 + pk;
)";

// ---------------------------------------------------------------------
// hal: the classic HAL differential-equation benchmark [Paulin &
// Knight 1989]; solves y'' + 3xy' + 3y = 0 by forward Euler.
// ---------------------------------------------------------------------
constexpr const char* k_hal_source = R"(
// hal -- HAL differential equation solver (Paulin & Knight).
// Integrates y'' + 3xy' + 3y = 0 with step dx until x reaches a.
input x, y, u, dx, a;
output xr, yr, ur;

// load the integration state
x0 = x;
y0 = y;
u0 = u;
steps = 0;

while (x0 < a) trip 1000 {
  // u1 = u - 3*x*u*dx - 3*y*dx  (the HAL data-flow graph)
  t1 = u0 * dx;
  t2 = 3 * x0;
  t3 = t2 * u0;
  t4 = t3 * dx;
  t5 = 3 * y0;
  t6 = t5 * dx;
  t7 = u0 - t4;
  u1 = t7 - t6;
  // y1 = y + u*dx
  y1 = y0 + t1;
  // x1 = x + dx
  x1 = x0 + dx;
  x0 = x1;
  y0 = y1;
  u0 = u1;
  steps = steps + 1;
}

xr = x0;
yr = y0;
ur = u0;
)";

// ---------------------------------------------------------------------
// man: Mandelbrot-set computation [Peitgen & Richter].  The per-pixel
// coordinate/palette scaling block loads a table of constants in
// parallel and multiplies them — the single BSB whose many parallel
// constant loads §5 identifies as the source of the over-allocation.
// ---------------------------------------------------------------------
constexpr const char* k_man_source = R"(
// man -- Mandelbrot set strip renderer (Peitgen & Richter).
input cr0, ci0, dcr, dci;
output img;

img = 0;
px = 0;

loop 64 {
  // coordinate/palette constant table: one BSB of (purely parallel)
  // constant loads, the values that later feed the coordinate
  // multiplications — the §5 anomaly block.
  k0 = 3;
  k1 = 5;
  k2 = 7;
  k3 = 11;
  k4 = 13;
  k5 = 17;
  k6 = 19;
  k7 = 23;
  k8 = 29;
  k9 = 31;
  k10 = 37;
  k11 = 41;
  k12 = 43;
  k13 = 47;
  k14 = 53;
  k15 = 59;
  wait 1;

  // combine the table entries (offset by the pixel index) into the
  // fixed-point pixel coordinate; the constants feed multiplications.
  t0 = k0 + px;
  t1 = k1 + px;
  t2 = k2 + px;
  t3 = k3 + px;
  u0 = t0 + k4;
  u1 = t1 + k5;
  u2 = t2 + k6;
  u3 = t3 + k7;
  kr = u0 + u2;
  ki = u1 + u3;
  krr = kr + k8 + k10 + k12 + k14;
  kii = ki + k9 + k11 + k13 + k15;
  cr = cr0 + krr * dcr;
  ci = ci0 + kii * dci;
  zr = 0;
  zi = 0;
  m = 0;

  loop 20 {
    // z = z*z + c in fixed point
    zr2 = zr * zr;
    zi2 = zi * zi;
    zri = zr * zi;
    tr = zr2 - zi2;
    nr = tr + cr;
    ni = zri + zri;
    ni2 = ni + ci;
    zr = nr >> 14;
    zi = ni2 >> 14;
    mag = zr2 + zi2;
    if (mag < 65536) prob 80 {
      m = m + 1;
    }
  }

  img = img + m;
  px = px + 1;
}
)";

// ---------------------------------------------------------------------
// eigen: Jacobi eigenvector kernel of the cloud-motion estimator
// [Larsen 1994].  Division-heavy rotation computations; the rotation
// routine is a function inlined at each pivot.
// ---------------------------------------------------------------------
constexpr const char* k_eigen_source = R"(
// eigen -- Jacobi eigenvector kernel (4x4 symmetric matrix) from the
// interpolated cloud-movement pipeline.  Fixed point, scale 2^14.
input a00, a01, a02, a03;
input a11, a12, a13;
input a22, a23;
input a33;
output v0, v1, v2, v3, off;

// rotation parameters for one pivot (p, q): computes the fixed-point
// cosine/sine pair; the two long divisions can evaluate in parallel.
func rot(app, aqq, apq) {
  d = app - aqq;
  num = apq * 2;
  th = num / d;
  th2 = th * th;
  den = 16384 + th2;
  cc = 268435456 / den;
  ss = cc * th;
  ss = ss >> 14;
}

// rotate the symmetric pair (xpp, xqq, xpq); results in upp/uqq/upq
func apply(xpp, xqq, xpq) {
  t0 = cc * xpq;
  t1 = ss * xpq;
  wpp = cc * xpp;
  wqq = cc * xqq;
  upp = wpp + t1;
  uqq = wqq - t1;
  upq = t0 - t1;
  upp = upp >> 14;
  uqq = uqq >> 14;
  upq = upq >> 14;
  acc = acc + upq;
}

// rotate an off-pivot pair (xp, xq); results in yp/yq
func mix(xp, xq) {
  m0 = cc * xp;
  m1 = ss * xq;
  m2 = ss * xp;
  m3 = cc * xq;
  yp = m0 + m1;
  yq = m3 - m2;
  yp = yp >> 14;
  yq = yq >> 14;
}

// rotate the eigenvector estimate columns (p, q)
func vrot(vp, vq) {
  e0 = cc * vp;
  e1 = ss * vq;
  e2 = ss * vp;
  e3 = cc * vq;
  zp = e0 + e1;
  zq = e3 - e2;
  zp = zp >> 14;
  zq = zq >> 14;
}

// initialize the eigenvector estimate to the identity scale
v0 = 16384;
v1 = 16384;
v2 = 16384;
v3 = 16384;
acc = 0;

loop 8 {
  // ---- pivot (0,1) ----
  rot(a00, a11, a01);
  apply(a00, a11, a01);
  a00 = upp;
  a11 = uqq;
  a01 = upq;
  mix(a02, a12);
  a02 = yp;
  a12 = yq;
  mix(a03, a13);
  a03 = yp;
  a13 = yq;
  vrot(v0, v1);
  v0 = zp;
  v1 = zq;

  // ---- pivot (0,2) ----
  rot(a00, a22, a02);
  apply(a00, a22, a02);
  a00 = upp;
  a22 = uqq;
  a02 = upq;
  mix(a01, a12);
  a01 = yp;
  a12 = yq;
  mix(a03, a23);
  a03 = yp;
  a23 = yq;
  vrot(v0, v2);
  v0 = zp;
  v2 = zq;

  // ---- pivot (0,3) ----
  rot(a00, a33, a03);
  apply(a00, a33, a03);
  a00 = upp;
  a33 = uqq;
  a03 = upq;
  mix(a01, a13);
  a01 = yp;
  a13 = yq;
  mix(a02, a23);
  a02 = yp;
  a23 = yq;
  vrot(v0, v3);
  v0 = zp;
  v3 = zq;

  // ---- pivot (1,2) ----
  rot(a11, a22, a12);
  apply(a11, a22, a12);
  a11 = upp;
  a22 = uqq;
  a12 = upq;
  mix(a01, a02);
  a01 = yp;
  a02 = yq;
  mix(a13, a23);
  a13 = yp;
  a23 = yq;
  vrot(v1, v2);
  v1 = zp;
  v2 = zq;

  // ---- pivot (1,3) ----
  rot(a11, a33, a13);
  apply(a11, a33, a13);
  a11 = upp;
  a33 = uqq;
  a13 = upq;
  mix(a01, a03);
  a01 = yp;
  a03 = yq;
  mix(a12, a23);
  a12 = yp;
  a23 = yq;
  vrot(v1, v3);
  v1 = zp;
  v3 = zq;

  // ---- pivot (2,3) ----
  rot(a22, a33, a23);
  apply(a22, a33, a23);
  a22 = upp;
  a33 = uqq;
  a23 = upq;
  mix(a02, a03);
  a02 = yp;
  a03 = yq;
  mix(a12, a13);
  a12 = yp;
  a13 = yq;
  vrot(v2, v3);
  v2 = zp;
  v3 = zq;

  // re-normalize the eigenvector estimate after every sweep to keep
  // the fixed-point scale: four long divisions, all independent.
  nv = v0 + v1;
  nv2 = v2 + v3;
  nv3 = nv + nv2;
  nv4 = nv3 >> 2;
  v0 = (v0 << 14) / nv4;
  v1 = (v1 << 14) / nv4;
  v2 = (v2 << 14) / nv4;
  v3 = (v3 << 14) / nv4;
}

// off-diagonal norm: convergence measure of the sweeps
o0 = a01 * a01;
o1 = a02 * a02;
o2 = a03 * a03;
o3 = a12 * a12;
o4 = a13 * a13;
o5 = a23 * a23;
p0 = o0 + o1;
p1 = o2 + o3;
p2 = o4 + o5;
p3 = p0 + p1;
off = p3 + p2;

// normalize the eigenvector estimate: four parallel long divisions
nrm = v0 + v1;
nrm2 = v2 + v3;
nrm3 = nrm + nrm2;
v0 = v0 / nrm3;
v1 = v1 / nrm3;
v2 = v2 / nrm3;
v3 = v3 / nrm3;
)";

}  // namespace

App make_straight()
{
    return build("straight", k_straight_source, 15500.0);
}

App make_hal()
{
    return build("hal", k_hal_source, 7000.0);
}

App make_man()
{
    return build("man", k_man_source, 10500.0);
}

App make_eigen()
{
    return build("eigen", k_eigen_source, 20000.0);
}

std::vector<App> make_all_apps()
{
    std::vector<App> apps;
    apps.push_back(make_straight());
    apps.push_back(make_hal());
    apps.push_back(make_man());
    apps.push_back(make_eigen());
    return apps;
}

}  // namespace lycos::apps
