// The four benchmark applications of Table 1, reimplemented in MiniC
// from their published descriptions.
//
//   straight  straight-line mixed arithmetic, from the LYCOS system
//             paper [9]
//   hal       the classic HAL differential-equation solver of Paulin &
//             Knight [11]
//   man       Mandelbrot-set computation [12]; contains the single BSB
//             with many parallel constant loads feeding multiplications
//             whose over-allocation of constant generators §5 analyses
//   eigen     eigenvector kernel (Jacobi rotations) of the
//             cloud-motion estimator [8]; division-heavy, the paper's
//             second design-iteration case
//
// Each App carries its source, the compiled CDFG, the flat BSB array
// and the ASIC area budget used for its Table 1 row.
#pragma once

#include <string>
#include <vector>

#include "bsb/bsb.hpp"
#include "cdfg/cdfg.hpp"

namespace lycos::apps {

/// A compiled benchmark application.
struct App {
    std::string name;
    std::string source;           ///< MiniC text
    int lines = 0;                ///< code lines (Table 1 "Lines")
    cdfg::Cdfg graph;             ///< compiled CDFG
    std::vector<bsb::Bsb> bsbs;   ///< flat leaf-BSB array
    double asic_area = 0.0;       ///< total ASIC area for this app's row
};

App make_straight();
App make_hal();
App make_man();
App make_eigen();

/// All four, in Table 1 order.
std::vector<App> make_all_apps();

}  // namespace lycos::apps
