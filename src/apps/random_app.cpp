#include "apps/random_app.hpp"

#include <span>
#include <string>

namespace lycos::apps {

dfg::Dfg random_dfg(util::Rng& rng, int n_ops, const Random_app_params& p)
{
    dfg::Dfg g;
    for (int i = 0; i < n_ops; ++i) {
        const auto kind =
            rng.pick(std::span<const hw::Op_kind>(p.kinds));
        g.add_op(kind);
    }
    // Edges only forward in id order: always a DAG.
    for (int a = 0; a < n_ops; ++a)
        for (int b = a + 1; b < n_ops; ++b)
            if (rng.chance(p.edge_prob))
                g.add_edge(a, b);

    const int n_in = rng.uniform_int(0, p.max_live_values);
    const int n_out = rng.uniform_int(0, p.max_live_values);
    for (int i = 0; i < n_in; ++i)
        g.add_live_in("in" + std::to_string(i));
    for (int i = 0; i < n_out; ++i)
        g.add_live_out("out" + std::to_string(i));
    return g;
}

std::vector<bsb::Bsb> random_bsbs(util::Rng& rng, const Random_app_params& p)
{
    std::vector<bsb::Bsb> out;
    out.reserve(static_cast<std::size_t>(p.n_bsbs));
    for (int i = 0; i < p.n_bsbs; ++i) {
        bsb::Bsb b;
        b.name = "R" + std::to_string(i);
        b.graph = random_dfg(rng, rng.uniform_int(p.min_ops, p.max_ops), p);
        b.profile = rng.uniform_real(1.0, p.max_profile);
        out.push_back(std::move(b));
    }
    // Give adjacent BSBs some shared values so the adjacency model has
    // something to save: BSB i's out0 feeds BSB i+1's in0.
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
        if (!out[i].graph.live_outs().empty() &&
            !out[i + 1].graph.live_ins().empty()) {
            const std::string shared = "v" + std::to_string(i);
            out[i].graph.add_live_out(shared);
            out[i + 1].graph.add_live_in(shared);
        }
    }
    return out;
}

}  // namespace lycos::apps
