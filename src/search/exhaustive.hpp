// Exhaustive allocation search (the §5 methodology for "the best
// allocation").
//
// The search is chunk-parallel: the mixed-radix index range
// [0, Alloc_space::size()) is split into one contiguous chunk per
// worker thread, each worker evaluates its chunk with a private
// Eval_cache, and the per-chunk bests are reduced in chunk order.
// Because the reduction applies the same strict better_than the
// sequential loop used (keep the incumbent on ties), the result is
// bit-identical to the single-threaded search for any thread count.
#pragma once

#include "search/alloc_space.hpp"
#include "search/eval_cache.hpp"
#include "search/evaluate.hpp"

namespace lycos::search {

/// Outcome of a search over the allocation space.
struct Search_result {
    Evaluation best;           ///< best-scoring allocation found
    long long n_evaluated = 0; ///< allocations actually scored
    long long space_size = 0;  ///< size of the full space
    double seconds = 0.0;      ///< wall-clock time spent
    int n_threads = 1;         ///< worker threads used
    Eval_cache_stats cache_stats;  ///< aggregated over all worker caches
};

/// Knobs for exhaustive_search; the defaults are the fast path.
struct Exhaustive_options {
    int n_threads = 0;      ///< 0 = hardware concurrency
    bool use_cache = true;  ///< memoize per-BSB scheduling (bit-identical)
};

/// Score every allocation within `restrictions` whose data-path fits
/// the ASIC and return the one PACE likes best.  Ties are broken
/// toward smaller data-path area (cheaper hardware), then toward the
/// enumeration order (deterministic, independent of thread count).
Search_result exhaustive_search(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Exhaustive_options& options = {});

}  // namespace lycos::search
