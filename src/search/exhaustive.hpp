// Exhaustive allocation search (the §5 methodology for "the best
// allocation"), run as a deterministic branch-and-bound.
//
// The search is chunk-parallel: the mixed-radix index range
// [0, Alloc_space::size()) is split into one contiguous chunk per
// worker thread, each worker walks its chunk as a mixed-radix *tree*
// (digits assigned most-significant first, so subtrees are contiguous
// index ranges) with a private Eval_cache and Pace_workspace, and the
// per-chunk bests are reduced in chunk order.  Three admissible prunes
// skip work without ever changing the best tuple:
//   * area-monotone subtrees: a digit prefix whose data-path area
//     already exceeds the ASIC kills the whole subtree (digits only
//     add area) — those points would have been enumerated but never
//     evaluated anyway,
//   * gain-bounded subtrees: an allocation-independent lower bound on
//     the hybrid time (ASAP-length hardware times, coverage of the
//     subtree's maximal completion) proves no completion can beat the
//     worker's incumbent,
//   * per-point DP savings: cached leaves run the value-only
//     screening DP (pace_best_saving) and only pay the traceback
//     reconstruction when the screened time can still beat the
//     incumbent (screened points count as n_evaluated — they were
//     scored); on the uncached path, pace::max_gain bounds the
//     achievable saving and candidates that cannot beat the incumbent
//     skip the PACE DP entirely (counted in n_pruned).
// The interior gain bound is additionally conditioned on the digit
// prefix already assigned: per op kind, the instance capacity any
// completion can still reach (assigned digits exactly, open dims at
// their bound) yields a work/capacity floor on every BSB's schedule
// length, tightening the coverage bound as digits shrink below their
// bounds.  DP leaf evaluations run *incrementally*: each worker's
// Pace_workspace checkpoints the DP rows of its last evaluation, the
// leaves arrive in tree order (long shared cost prefixes), and the
// table width is pinned to the total ASIC area
// (Eval_context::dp_table_budget) so rows stay valid across leaves
// with different leftover budgets — the sweep restarts at the first
// BSB whose cost actually changed (Search_result::dp_rows_reused).
// Because every prune removes only provably-worse points and the
// reduction applies the same strict better_than the sequential loop
// used (keep the incumbent on ties), the best tuple is bit-identical
// to the unpruned single-threaded search for any thread count.
#pragma once

#include <memory>

#include "search/alloc_space.hpp"
#include "search/eval_cache.hpp"
#include "search/evaluate.hpp"
#include "util/cancel.hpp"
#include "util/chunk_range.hpp"

namespace lycos::util {
class Thread_pool;
}

namespace lycos::search {

class Dp_workspace_pool;

/// Outcome of a search over the allocation space.
struct Search_result {
    Evaluation best;           ///< best-scoring allocation found
    /// True once any point was fully evaluated (best is meaningful).
    /// A full-space run always finds one (the empty allocation fits);
    /// a windowed run over a region whose every leaf was screened or
    /// infeasible legitimately ends without a best.
    bool have_best = false;
    long long n_evaluated = 0; ///< allocations fully scored (PACE ran)
    long long n_pruned = 0;    ///< points skipped by branch-and-bound
                               ///< (area-monotone subtrees, gain-bounded
                               ///< subtrees, and per-point DP skips);
                               ///< n_evaluated + n_pruned covers the
                               ///< whole space when pruning is on
    long long space_size = 0;  ///< size of the full space
    double seconds = 0.0;      ///< wall-clock time spent
    int n_threads = 1;         ///< worker threads used
    Eval_cache_stats cache_stats;  ///< aggregated over all worker caches

    /// Incremental-DP observability, aggregated over the per-worker
    /// Pace_workspaces: rows served from the checkpoint vs. rows
    /// actually swept (see Pace_workspace).  Like n_evaluated these
    /// depend on chunking; the best tuple never does.
    long long dp_rows_reused = 0;
    long long dp_rows_swept = 0;
    /// The share of dp_rows_reused resumed from checkpoints written by
    /// an *earlier* solve on the same Dp_workspace_pool slots (0
    /// without Exhaustive_options::dp_pool) — the cross-request
    /// warm-start counter serve::Server batching reports.
    long long dp_rows_reused_cross_request = 0;

    /// Prunes attributable to Exhaustive_options::incumbent_bound: the
    /// external bound was strictly tighter than the local threshold at
    /// the kill site and the kill would not have happened without it —
    /// the distributed search's "bounds-kills after remote updates"
    /// stat.  0 when no external bound is armed.
    long long n_pruned_remote = 0;

    /// Anytime-solve outcome: complete for a full-space run, else the
    /// condition that tripped the cancel token (the best tuple is then
    /// the best of the explored prefix).  Under the injected cut the
    /// explored prefix is exactly the units below the cut, so the
    /// truncated best tuple is bit-identical for any thread count; the
    /// abandonment counters — like n_evaluated — depend on chunking.
    util::Solve_status status = util::Solve_status::complete;
    long long chunks_abandoned = 0;  ///< chunk tasks stopped or skipped
    long long rows_abandoned = 0;    ///< finer units refused (subtrees,
                                     ///< restarts, rows — per engine)
};

/// Knobs for exhaustive_search; the defaults are the fast path.
struct Exhaustive_options {
    int n_threads = 0;      ///< 0 = hardware concurrency
    bool use_cache = true;  ///< memoize per-BSB scheduling (bit-identical)
    bool use_pruning = true;  ///< branch-and-bound (bit-identical best;
                              ///< n_evaluated depends on chunking)

    /// Entry cap for each worker's private Eval_cache (0 = unbounded).
    /// Bounded caches evict segment-wise (see Eval_cache) so large
    /// restriction spaces cannot pressure memory; results are
    /// bit-identical for any capacity.  A caller-owned shared_cache
    /// keeps whatever capacity it was built with.
    std::size_t cache_capacity = 0;

    /// Optional caller-owned cache, shared with other search phases
    /// (e.g. the fine re-score after a coarse search).  Worker 0 uses
    /// it instead of a private cache — the memo is single-threaded,
    /// see the eval_cache.hpp header note; its context must match
    /// `ctx` in everything but area_quantum and dp_table_budget
    /// (neither affects the memoized schedules).  The cache's
    /// contribution still shows up in Search_result::cache_stats.
    Eval_cache* shared_cache = nullptr;

    /// Precomputed immutable frames/invariants for every worker cache
    /// (including the ones built privately by workers 1..n-1), so the
    /// per-worker O(app) setup runs once per problem instead of once
    /// per worker.  Null: each private cache computes its own.  A
    /// solver::Session always fills this in.  Engine-level option:
    /// the deprecated shims ignore it (their one-shot Session manages
    /// its own) — results are unaffected either way.
    std::shared_ptr<const Eval_invariants> invariants;

    /// Run the chunks on this caller-owned pool instead of spawning a
    /// fresh one per call (the pool's thread count need not match
    /// n_threads — chunks are queued tasks).  A solver::Session owns
    /// one pool and reuses it across solves.  Engine-level option,
    /// ignored by the deprecated shims like `invariants`.
    util::Thread_pool* pool = nullptr;

    /// Session-persistent per-worker DP workspaces (workspace_pool.hpp):
    /// chunk c sweeps on slot c, so the incremental-PACE checkpoints
    /// survive between solves and a repeat solve of the same problem
    /// resumes instead of re-sweeping (results bit-identical either
    /// way; the cross-solve share lands in
    /// Search_result::dp_rows_reused_cross_request).  Null: per-chunk
    /// stack workspaces, exactly the pre-pool behaviour.  A
    /// solver::Session always fills this in.
    Dp_workspace_pool* dp_pool = nullptr;

    /// Optional cancellation handle: the walker polls it at subtree
    /// and leaf boundaries and stops with the incumbent found so far
    /// (Search_result::status reports why).  A non-null token disables
    /// incumbent priming — pruning against a probe time that is never
    /// itself enumerated could leave a truncated run without the best
    /// point of its explored prefix.  Untripped armed runs still
    /// return the bit-identical best tuple (priming is admissible).
    const util::Cancel_token* cancel = nullptr;

    /// Restrict the walk to the leaf-index range [window.begin,
    /// window.end) of [0, Alloc_space::size()) — the distributed
    /// search's range lease.  The default sentinel covers the whole
    /// space; a non-sentinel window must satisfy
    /// 0 <= begin <= end <= size (throws std::invalid_argument).
    ///
    /// Contract: folding the per-window bests of any partition of the
    /// space in window order with better_than reproduces the
    /// full-space best tuple bit-identically.  A single window's best
    /// on its own is only guaranteed to be the window's true best up
    /// to priming/bound screening against global probe points — fine
    /// in the union fold (the winner and its ties always survive, see
    /// Shared_bound), not a per-window optimality claim.
    util::Chunk_range window;

    /// Optional cross-process incumbent bound (see util::Shared_bound):
    /// sampled at chunk entry and at the strided leaf polls, folded
    /// into the prune threshold.  Every stored value must be the
    /// hybrid time of a real evaluated point, so any sampling timing
    /// yields the bit-identical best tuple.
    const util::Shared_bound* incumbent_bound = nullptr;
};

/// Score every allocation within `restrictions` whose data-path fits
/// the ASIC and return the one PACE likes best.  Ties are broken
/// toward smaller data-path area (cheaper hardware), then toward the
/// enumeration order (deterministic, independent of thread count).
///
/// This is the engine behind the solver's `exhaustive_bb` strategy;
/// prefer driving it through a solver::Session, which owns the thread
/// pool, the shared cache and the shared invariants for you.
Search_result exhaustive_engine(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Exhaustive_options& options = {});

/// Deprecated shim: builds a one-shot solver::Session over (ctx,
/// restrictions) and runs the `exhaustive_bb` strategy — bit-identical
/// best tuple to exhaustive_engine for any thread count (pinned by
/// tests/test_solver.cpp and the bench cross-check).
[[deprecated("use solver::Session::solve(\"exhaustive_bb\")")]]
Search_result exhaustive_search(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Exhaustive_options& options = {});

}  // namespace lycos::search
