// Exhaustive allocation search (the §5 methodology for "the best
// allocation").
#pragma once

#include "search/alloc_space.hpp"
#include "search/evaluate.hpp"

namespace lycos::search {

/// Outcome of a search over the allocation space.
struct Search_result {
    Evaluation best;           ///< best-scoring allocation found
    long long n_evaluated = 0; ///< allocations actually scored
    long long space_size = 0;  ///< size of the full space
    double seconds = 0.0;      ///< wall-clock time spent
};

/// Score every allocation within `restrictions` whose data-path fits
/// the ASIC and return the one PACE likes best.  Ties are broken
/// toward smaller data-path area (cheaper hardware), then toward the
/// enumeration order (deterministic).
Search_result exhaustive_search(const Eval_context& ctx,
                                const core::Rmap& restrictions);

}  // namespace lycos::search
