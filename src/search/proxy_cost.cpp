#include "search/proxy_cost.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "estimate/controller.hpp"
#include "sched/time_frames.hpp"

namespace lycos::search {

Proxy_cost_model::Proxy_cost_model(const Eval_context& ctx,
                                   const Eval_cache& cache)
{
    sound_ = ctx.storage == nullptr;
    cycle_ns_ = ctx.target.asic.cycle_ns();
    gates_ = ctx.target.gates;
    ctrl_mode_ = ctx.ctrl_mode;

    // True per-kind minimum latency over ALL executors in the
    // library: the schedule lower bound must hold whatever instance
    // an op ends up bound to (latency_table_from picks the smallest-
    // AREA executor, whose latency can exceed a faster variant's).
    sched::Latency_table min_lat(1);
    std::array<bool, hw::n_op_kinds> has_exec{};
    kind_execs_.assign(hw::n_op_kinds, {});
    for (const auto k : hw::all_op_kinds()) {
        int best = std::numeric_limits<int>::max();
        for (std::size_t ri = 0; ri < ctx.lib.size(); ++ri) {
            const auto& rt = ctx.lib[static_cast<hw::Resource_id>(ri)];
            if (rt.ops.contains(k)) {
                best = std::min(best, rt.latency_cycles);
                kind_execs_[hw::op_index(k)].push_back(
                    static_cast<int>(ri));
            }
        }
        if (best != std::numeric_limits<int>::max()) {
            min_lat[k] = best;
            has_exec[hw::op_index(k)] = true;
        }
    }
    // The cache's hoisted frames use latency_table_from; reusable as
    // the proxy's ASAP floor only when that already is the per-kind
    // minimum (almost always — libraries rarely trade latency up for
    // area down).
    const bool cache_frames_ok =
        min_lat == sched::latency_table_from(ctx.lib);

    const auto& inv = *cache.invariants();
    terms_.assign(ctx.bsbs.size(), {});
    for (std::size_t i = 0; i < ctx.bsbs.size(); ++i) {
        const auto& b = ctx.bsbs[i];
        auto& t = terms_[i];
        const auto& fields = inv.invariants(i);
        t.t_sw = fields.t_sw;
        if (b.graph.empty())
            continue;  // bsb_cost_one reports it infeasible everywhere
        const auto used = b.graph.used_ops();
        bool coverable = true;
        for (const auto k : hw::all_op_kinds())
            if (used.contains(k) && !has_exec[hw::op_index(k)])
                coverable = false;
        if (!coverable)
            continue;
        t.coverable = true;
        t.comm = fields.comm;
        t.adj = i > 0 ? std::max(0.0, fields.save_prev) : 0.0;
        t.profile = b.profile;
        t.asap_len = cache_frames_ok
                         ? inv.frames(i).length
                         : sched::compute_time_frames(b.graph, min_lat)
                               .length;
        t.eca_states = std::max(1, inv.frames(i).length);
        for (const auto k : hw::all_op_kinds())
            if (used.contains(k))
                t.work.emplace_back(
                    hw::op_index(k),
                    static_cast<long long>(b.graph.count(k)) *
                        static_cast<long long>(min_lat[k]));
    }
}

pace::Bsb_cost Proxy_cost_model::cost(std::size_t b,
                                      std::span<const int> counts) const
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    const auto& t = terms_[b];
    pace::Bsb_cost c;
    c.t_sw = t.t_sw;
    if (!t.coverable) {
        c.t_hw = inf;
        c.ctrl_area = inf;
        return c;
    }
    long long len = t.asap_len;
    for (const auto& [ki, work] : t.work) {
        long long cap = 0;
        for (const int r : kind_execs_[ki])
            cap += counts[static_cast<std::size_t>(r)];
        if (cap <= 0) {
            // Exactly the infeasible cost bsb_cost_one produces.
            c.t_hw = inf;
            c.ctrl_area = inf;
            return c;
        }
        const long long floor_len = (work + cap - 1) / cap;
        if (floor_len > len)
            len = floor_len;
    }
    c.t_hw = static_cast<double>(len) * cycle_ns_ * t.profile;
    c.comm = t.comm;
    c.save_prev = t.adj;
    const int n_states =
        ctrl_mode_ == pace::Controller_mode::optimistic_eca
            ? t.eca_states
            : std::max(1, static_cast<int>(len));
    c.ctrl_area = estimate::controller_area(n_states, gates_);
    return c;
}

}  // namespace lycos::search
