#include "search/eval_cache.hpp"

namespace lycos::search {

Eval_invariants::Eval_invariants(const Eval_context& ctx)
    : lat_(sched::latency_table_from(ctx.lib))
{
    const std::size_t n = ctx.bsbs.size();
    relevant_.resize(n);
    frames_.reserve(n);
    invariants_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto used = ctx.bsbs[i].graph.used_ops();
        for (std::size_t r = 0; r < ctx.lib.size(); ++r)
            if (ctx.lib[static_cast<hw::Resource_id>(r)].ops.intersects(
                    used))
                relevant_[i].push_back(static_cast<hw::Resource_id>(r));
        frames_.push_back(
            sched::compute_time_frames(ctx.bsbs[i].graph, lat_));
        invariants_.push_back(
            pace::bsb_cost_invariants(ctx.bsbs, i, ctx.target));
    }
}

Eval_cache::Eval_cache(const Eval_context& ctx, std::size_t max_entries,
                       std::shared_ptr<const Eval_invariants> shared)
    : ctx_(ctx),
      inv_(shared != nullptr ? std::move(shared)
                             : std::make_shared<const Eval_invariants>(ctx)),
      max_entries_(max_entries)
{
    memo_.resize(ctx_.bsbs.size());
    if (max_entries_ > 0)
        previous_.resize(ctx_.bsbs.size());
    last_key_.resize(ctx_.bsbs.size());
    last_cost_.resize(ctx_.bsbs.size());
    last_valid_.assign(ctx_.bsbs.size(), 0);
}

std::vector<pace::Bsb_cost> Eval_cache::costs_for(const core::Rmap& alloc)
{
    std::vector<pace::Bsb_cost> out;
    costs_for(alloc, out);
    return out;
}

void Eval_cache::costs_for(const core::Rmap& alloc,
                           std::vector<pace::Bsb_cost>& out)
{
    // Reuse the dense-counts buffer: this runs once per enumerated
    // allocation, and at high hit rates a fresh heap allocation here
    // would rival the lookup cost itself.
    counts_.assign(ctx_.lib.size(), 0);
    for (const auto& [r, c] : alloc.entries())
        counts_[static_cast<std::size_t>(r)] = c;
    costs_for_counts(counts_, out);
}

void Eval_cache::costs_for_counts(std::span<const int> counts,
                                  std::vector<pace::Bsb_cost>& out)
{
    out.resize(ctx_.bsbs.size());
    for (std::size_t i = 0; i < ctx_.bsbs.size(); ++i)
        out[i] = cost_one(i, counts);
}

const pace::Bsb_cost& Eval_cache::cost_one(std::size_t bsb,
                                           std::span<const int> counts)
{
    if (const auto* found = find_one(bsb, counts))
        return *found;
    // find_one left the projection key in key_ — reuse it.
    ++stats_.misses;
    const auto cost = pace::bsb_cost_one(
        ctx_.bsbs, bsb, ctx_.lib, ctx_.target, counts, inv_->latencies(),
        ctx_.ctrl_mode, ctx_.storage, ctx_.scheduler, &inv_->frames(bsb),
        &inv_->invariants(bsb), &sched_ws_);
    insert(bsb, key_, cost);
    last_key_[bsb] = key_;
    last_cost_[bsb] = cost;
    last_valid_[bsb] = 1;
    return last_cost_[bsb];
}

const pace::Bsb_cost* Eval_cache::find_one(std::size_t bsb,
                                           std::span<const int> counts)
{
    auto& key = key_;
    key.clear();
    for (hw::Resource_id r : inv_->relevant(bsb))
        key.push_back(counts[static_cast<std::size_t>(r)]);

    // Fast path: successive enumeration/climb points change one
    // type's count, which projects away for most BSBs — comparing
    // a handful of ints beats hashing into the memo.
    if (last_valid_[bsb] != 0 && key == last_key_[bsb]) {
        ++stats_.hits;
        return &last_cost_[bsb];
    }
    auto& memo = memo_[bsb];
    if (const auto it = memo.find(key); it != memo.end()) {
        ++stats_.hits;
        last_key_[bsb] = key;
        last_cost_[bsb] = it->second;
        last_valid_[bsb] = 1;
        return &last_cost_[bsb];
    }
    if (max_entries_ > 0) {
        // Second generation: promote hits back into the current one
        // so the working set survives rotations.
        auto& prev = previous_[bsb];
        if (const auto it = prev.find(key); it != prev.end()) {
            ++stats_.hits;
            const auto cost = it->second;
            prev.erase(it);
            --n_previous_;
            insert(bsb, key, cost);
            last_key_[bsb] = key;
            last_cost_[bsb] = cost;
            last_valid_[bsb] = 1;
            return &last_cost_[bsb];
        }
    }
    return nullptr;
}

void Eval_cache::insert(std::size_t bsb, const std::vector<int>& key,
                        const pace::Bsb_cost& cost)
{
    memo_[bsb].emplace(key, cost);
    ++n_current_;
    if (max_entries_ == 0 || n_current_ < max_entries_)
        return;
    // Rotate generations: the previous one dies, the current one
    // becomes previous, inserts start into empty maps.  clear() keeps
    // each map's bucket array, so the memory high-water mark is the
    // two bounded generations.
    stats_.evictions += static_cast<long long>(n_previous_);
    memo_.swap(previous_);
    for (auto& m : memo_)
        m.clear();
    n_previous_ = n_current_;
    n_current_ = 0;
}

}  // namespace lycos::search
