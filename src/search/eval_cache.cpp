#include "search/eval_cache.hpp"

namespace lycos::search {

Eval_cache::Eval_cache(const Eval_context& ctx)
    : ctx_(ctx), lat_(sched::latency_table_from(ctx.lib))
{
    relevant_.resize(ctx_.bsbs.size());
    frames_.reserve(ctx_.bsbs.size());
    memo_.resize(ctx_.bsbs.size());
    last_key_.resize(ctx_.bsbs.size());
    last_cost_.resize(ctx_.bsbs.size());
    last_valid_.assign(ctx_.bsbs.size(), 0);
    for (std::size_t i = 0; i < ctx_.bsbs.size(); ++i) {
        const auto used = ctx_.bsbs[i].graph.used_ops();
        for (std::size_t r = 0; r < ctx_.lib.size(); ++r)
            if (ctx_.lib[static_cast<hw::Resource_id>(r)].ops.intersects(
                    used))
                relevant_[i].push_back(static_cast<hw::Resource_id>(r));
        frames_.push_back(
            sched::compute_time_frames(ctx_.bsbs[i].graph, lat_));
    }
}

std::vector<pace::Bsb_cost> Eval_cache::costs_for(const core::Rmap& alloc)
{
    std::vector<pace::Bsb_cost> out;
    costs_for(alloc, out);
    return out;
}

void Eval_cache::costs_for(const core::Rmap& alloc,
                           std::vector<pace::Bsb_cost>& out)
{
    // Reuse the dense-counts buffer: this runs once per enumerated
    // allocation, and at high hit rates a fresh heap allocation here
    // would rival the lookup cost itself.
    counts_.assign(ctx_.lib.size(), 0);
    for (const auto& [r, c] : alloc.entries())
        counts_[static_cast<std::size_t>(r)] = c;
    costs_for_counts(counts_, out);
}

void Eval_cache::costs_for_counts(std::span<const int> counts,
                                  std::vector<pace::Bsb_cost>& out)
{
    out.resize(ctx_.bsbs.size());
    for (std::size_t i = 0; i < ctx_.bsbs.size(); ++i)
        out[i] = cost_one(i, counts);
}

const pace::Bsb_cost& Eval_cache::cost_one(std::size_t bsb,
                                           std::span<const int> counts)
{
    auto& key = key_;
    key.clear();
    for (hw::Resource_id r : relevant_[bsb])
        key.push_back(counts[static_cast<std::size_t>(r)]);

    // Fast path: successive enumeration/climb points change one
    // type's count, which projects away for most BSBs — comparing
    // a handful of ints beats hashing into the memo.
    if (last_valid_[bsb] != 0 && key == last_key_[bsb]) {
        ++stats_.hits;
        return last_cost_[bsb];
    }

    auto& memo = memo_[bsb];
    if (const auto it = memo.find(key); it != memo.end()) {
        ++stats_.hits;
        last_key_[bsb] = key;
        last_cost_[bsb] = it->second;
        last_valid_[bsb] = 1;
        return last_cost_[bsb];
    }
    ++stats_.misses;
    const auto cost =
        pace::bsb_cost_one(ctx_.bsbs, bsb, ctx_.lib, ctx_.target, counts,
                           lat_, ctx_.ctrl_mode, ctx_.storage,
                           ctx_.scheduler, &frames_[bsb]);
    memo.emplace(key, cost);
    last_key_[bsb] = key;
    last_cost_[bsb] = cost;
    last_valid_[bsb] = 1;
    return last_cost_[bsb];
}

}  // namespace lycos::search
