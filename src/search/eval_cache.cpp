#include "search/eval_cache.hpp"

namespace lycos::search {

Eval_cache::Eval_cache(const Eval_context& ctx)
    : ctx_(ctx), lat_(sched::latency_table_from(ctx.lib))
{
    relevant_.resize(ctx_.bsbs.size());
    frames_.reserve(ctx_.bsbs.size());
    memo_.resize(ctx_.bsbs.size());
    for (std::size_t i = 0; i < ctx_.bsbs.size(); ++i) {
        const auto used = ctx_.bsbs[i].graph.used_ops();
        for (std::size_t r = 0; r < ctx_.lib.size(); ++r)
            if (ctx_.lib[static_cast<hw::Resource_id>(r)].ops.intersects(
                    used))
                relevant_[i].push_back(static_cast<hw::Resource_id>(r));
        frames_.push_back(
            sched::compute_time_frames(ctx_.bsbs[i].graph, lat_));
    }
}

std::vector<pace::Bsb_cost> Eval_cache::costs_for(const core::Rmap& alloc)
{
    // Reuse the dense-counts buffer: this runs once per enumerated
    // allocation, and at high hit rates a fresh heap allocation here
    // would rival the lookup cost itself.
    counts_.assign(ctx_.lib.size(), 0);
    for (const auto& [r, c] : alloc.entries())
        counts_[static_cast<std::size_t>(r)] = c;
    const auto& counts = counts_;

    std::vector<pace::Bsb_cost> out;
    out.reserve(ctx_.bsbs.size());
    std::vector<int> key;
    for (std::size_t i = 0; i < ctx_.bsbs.size(); ++i) {
        key.clear();
        for (hw::Resource_id r : relevant_[i])
            key.push_back(counts[static_cast<std::size_t>(r)]);

        auto& memo = memo_[i];
        if (const auto it = memo.find(key); it != memo.end()) {
            ++stats_.hits;
            out.push_back(it->second);
            continue;
        }
        ++stats_.misses;
        const auto cost =
            pace::bsb_cost_one(ctx_.bsbs, i, ctx_.lib, ctx_.target, counts,
                               lat_, ctx_.ctrl_mode, ctx_.storage,
                               ctx_.scheduler, &frames_[i]);
        memo.emplace(key, cost);
        out.push_back(cost);
    }
    return out;
}

}  // namespace lycos::search
