// Memoized BSB evaluation for allocation search.
//
// Scoring an allocation means list-scheduling every BSB under it and
// running PACE over the resulting costs.  The scheduling dominates,
// and it is massively redundant across the search: a BSB's schedule
// depends only on the counts of resource types that can execute at
// least one of its operations.  Neighbouring hill-climb points and
// successive points of the mixed-radix exhaustive enumeration differ
// in one type's count, so most (BSB, relevant-counts) pairs repeat.
//
// Eval_cache memoizes the per-BSB cost under the *projection* of the
// allocation onto the BSB's relevant resource types.  Two allocations
// that differ only in types a BSB cannot use share its cache entry.
// Cached and uncached evaluation agree bit-for-bit (pinned by
// tests/test_sched_equivalence.cpp).
//
// A cache is not thread-safe; the parallel exhaustive search creates
// one per worker thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "pace/cost_model.hpp"
#include "search/evaluate.hpp"

namespace lycos::search {

/// Observability counters (wired into Search_result).
struct Eval_cache_stats {
    long long hits = 0;    ///< per-BSB lookups served from the cache
    long long misses = 0;  ///< per-BSB lookups that had to schedule
    long long evictions = 0;  ///< entries dropped by the capacity cap

    double hit_rate() const
    {
        const long long total = hits + misses;
        return total > 0 ? static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
    }

    Eval_cache_stats& operator+=(const Eval_cache_stats& other)
    {
        hits += other.hits;
        misses += other.misses;
        evictions += other.evictions;
        return *this;
    }

    /// Delta since a snapshot — how shared-cache users report only
    /// their own contribution (stats().minus(before)).
    Eval_cache_stats minus(const Eval_cache_stats& before) const
    {
        return {hits - before.hits, misses - before.misses,
                evictions - before.evictions};
    }
};

/// Per-search memo of BSB costs, keyed by (BSB id, projected counts).
class Eval_cache {
public:
    /// The referenced context (BSBs, library, target) must outlive the
    /// cache.  A non-zero `max_entries` bounds the memo: the cache
    /// runs two generations (current and previous) of at most
    /// max_entries each, so live entries never exceed 2*max_entries.
    /// When the current generation fills up, the previous one is
    /// dropped (counted in stats().evictions) and the generations
    /// rotate — segmented eviction keeps the hot working set without
    /// per-entry bookkeeping.  Results are bit-identical for any
    /// capacity; large restriction spaces just stop pressuring
    /// memory.  0 = unbounded (the default, same as before).
    explicit Eval_cache(const Eval_context& ctx,
                        std::size_t max_entries = 0);

    /// Per-BSB costs under `alloc` — the memoized equivalent of
    /// pace::build_cost_model(ctx...).
    std::vector<pace::Bsb_cost> costs_for(const core::Rmap& alloc);

    /// Allocation-free variant for the search hot loop: fills `out`
    /// (resized to the BSB count) instead of returning a new vector.
    /// Consecutive search points usually change one resource count, so
    /// each BSB first checks its remembered last projection before
    /// touching the hash map.
    void costs_for(const core::Rmap& alloc, std::vector<pace::Bsb_cost>& out);

    /// Same, from a dense per-type count vector (size lib.size()) —
    /// the branch-and-bound walker keeps its digit counters dense and
    /// skips building an Rmap for points it can prune.
    void costs_for_counts(std::span<const int> counts,
                          std::vector<pace::Bsb_cost>& out);

    /// Cost of one BSB under dense `counts`.  The walker queries each
    /// BSB exactly when the digits covering its relevant types have
    /// been assigned, instead of re-fetching all BSBs at every leaf.
    /// The reference stays valid until the next query for `bsb`.
    const pace::Bsb_cost& cost_one(std::size_t bsb,
                                   std::span<const int> counts);

    /// Lookup-only variant: the memoized cost of `bsb` under `counts`,
    /// or nullptr when that projection has never been scheduled.
    /// Never schedules anything — the branch-and-bound walker uses it
    /// to take the exact cost when it is already known and fall back
    /// to an admissible proxy otherwise, deferring the expensive
    /// schedule to leaves that survive the proxy bound.  A found entry
    /// counts as a hit; a miss here is not counted (nothing was paid).
    /// The reference stays valid until the next query for `bsb`.
    const pace::Bsb_cost* find_one(std::size_t bsb,
                                   std::span<const int> counts);

    const Eval_cache_stats& stats() const { return stats_; }

    /// Live memo entries (both generations when capacity-bounded).
    std::size_t entries() const { return n_current_ + n_previous_; }

    /// The constructor's max_entries (0 = unbounded).
    std::size_t capacity() const { return max_entries_; }

    /// Precomputed ASAP/ALAP frames of one BSB (allocation-independent;
    /// the prune model reuses them instead of recomputing).
    const sched::Schedule_info& frames(std::size_t bsb) const
    {
        return frames_[bsb];
    }

private:
    struct Key_hash {
        std::size_t operator()(const std::vector<int>& key) const
        {
            // FNV-1a over the count words.
            std::size_t h = 1469598103934665603ull;
            for (int v : key) {
                h ^= static_cast<std::size_t>(static_cast<unsigned>(v));
                h *= 1099511628211ull;
            }
            return h;
        }
    };
    using Memo = std::unordered_map<std::vector<int>, pace::Bsb_cost, Key_hash>;

    /// Insert into the current generation, rotating when full.
    void insert(std::size_t bsb, const std::vector<int>& key,
                const pace::Bsb_cost& cost);

    const Eval_context ctx_;
    sched::Latency_table lat_;
    std::size_t max_entries_ = 0;
    std::size_t n_current_ = 0;
    std::size_t n_previous_ = 0;
    /// Per BSB: resource ids whose op set intersects the BSB's ops, in
    /// id order — the projection axes of the cache key.
    std::vector<std::vector<hw::Resource_id>> relevant_;
    /// Per BSB: ALAP time frames, allocation-independent, hoisted so
    /// cache misses skip the O(V+E) recomputation.
    std::vector<sched::Schedule_info> frames_;
    /// Per BSB: allocation-independent cost fields (t_sw, comm,
    /// save_prev), hoisted so misses skip the software-time walk and
    /// the live-set intersection (see pace::bsb_cost_invariants).
    std::vector<pace::Bsb_cost> invariants_;
    /// Scheduler scratch reused by every miss (the cache is
    /// single-threaded, so one workspace serves all of them).
    sched::Schedule_workspace sched_ws_;
    std::vector<Memo> memo_;       ///< current generation
    std::vector<Memo> previous_;   ///< previous generation (bounded mode)
    std::vector<int> counts_;  ///< reusable dense-counts buffer
    std::vector<int> key_;     ///< reusable projection-key buffer
    /// Per BSB: the most recent projection key and its cost — the
    /// fast path for the enumeration's one-digit-at-a-time locality.
    std::vector<std::vector<int>> last_key_;
    std::vector<pace::Bsb_cost> last_cost_;
    std::vector<std::uint8_t> last_valid_;
    Eval_cache_stats stats_;
};

}  // namespace lycos::search
