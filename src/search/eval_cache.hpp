// Memoized BSB evaluation for allocation search.
//
// Scoring an allocation means list-scheduling every BSB under it and
// running PACE over the resulting costs.  The scheduling dominates,
// and it is massively redundant across the search: a BSB's schedule
// depends only on the counts of resource types that can execute at
// least one of its operations.  Neighbouring hill-climb points and
// successive points of the mixed-radix exhaustive enumeration differ
// in one type's count, so most (BSB, relevant-counts) pairs repeat.
//
// Eval_cache memoizes the per-BSB cost under the *projection* of the
// allocation onto the BSB's relevant resource types.  Two allocations
// that differ only in types a BSB cannot use share its cache entry.
// Cached and uncached evaluation agree bit-for-bit (pinned by
// tests/test_sched_equivalence.cpp).
//
// A cache is not thread-safe; the parallel exhaustive search creates
// one per worker thread.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "pace/cost_model.hpp"
#include "search/evaluate.hpp"

namespace lycos::search {

/// Observability counters (wired into Search_result).
struct Eval_cache_stats {
    long long hits = 0;    ///< per-BSB lookups served from the cache
    long long misses = 0;  ///< per-BSB lookups that had to schedule

    double hit_rate() const
    {
        const long long total = hits + misses;
        return total > 0 ? static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
    }

    Eval_cache_stats& operator+=(const Eval_cache_stats& other)
    {
        hits += other.hits;
        misses += other.misses;
        return *this;
    }
};

/// Per-search memo of BSB costs, keyed by (BSB id, projected counts).
class Eval_cache {
public:
    /// The referenced context (BSBs, library, target) must outlive the
    /// cache.
    explicit Eval_cache(const Eval_context& ctx);

    /// Per-BSB costs under `alloc` — the memoized equivalent of
    /// pace::build_cost_model(ctx...).
    std::vector<pace::Bsb_cost> costs_for(const core::Rmap& alloc);

    const Eval_cache_stats& stats() const { return stats_; }

private:
    struct Key_hash {
        std::size_t operator()(const std::vector<int>& key) const
        {
            // FNV-1a over the count words.
            std::size_t h = 1469598103934665603ull;
            for (int v : key) {
                h ^= static_cast<std::size_t>(static_cast<unsigned>(v));
                h *= 1099511628211ull;
            }
            return h;
        }
    };
    using Memo = std::unordered_map<std::vector<int>, pace::Bsb_cost, Key_hash>;

    const Eval_context ctx_;
    sched::Latency_table lat_;
    /// Per BSB: resource ids whose op set intersects the BSB's ops, in
    /// id order — the projection axes of the cache key.
    std::vector<std::vector<hw::Resource_id>> relevant_;
    /// Per BSB: ALAP time frames, allocation-independent, hoisted so
    /// cache misses skip the O(V+E) recomputation.
    std::vector<sched::Schedule_info> frames_;
    std::vector<Memo> memo_;
    std::vector<int> counts_;  ///< reusable dense-counts buffer
    Eval_cache_stats stats_;
};

}  // namespace lycos::search
