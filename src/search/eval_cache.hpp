// Memoized BSB evaluation for allocation search.
//
// Scoring an allocation means list-scheduling every BSB under it and
// running PACE over the resulting costs.  The scheduling dominates,
// and it is massively redundant across the search: a BSB's schedule
// depends only on the counts of resource types that can execute at
// least one of its operations.  Neighbouring hill-climb points and
// successive points of the mixed-radix exhaustive enumeration differ
// in one type's count, so most (BSB, relevant-counts) pairs repeat.
//
// Eval_cache memoizes the per-BSB cost under the *projection* of the
// allocation onto the BSB's relevant resource types.  Two allocations
// that differ only in types a BSB cannot use share its cache entry.
// Cached and uncached evaluation agree bit-for-bit (pinned by
// tests/test_sched_equivalence.cpp).
//
// A cache is not thread-safe; the parallel searches create one per
// worker thread.  Two kinds of state are involved:
//   * the *memo* (projection -> cost) is mutable and stays private to
//     its worker.  A caller-owned cache passed through the options'
//     `shared_cache` is therefore used by worker 0 only — handing it
//     to every worker would race; the other workers build private
//     caches and their contributions are aggregated into the reported
//     cache stats.  This is deliberate, not an oversight: sharing the
//     memo across threads would need locking on the hottest path of
//     the whole search.
//   * the allocation-independent per-BSB data every cache needs
//     (projection axes, hoisted ASAP/ALAP frames, cost invariants,
//     the latency table) is immutable after construction.  That part
//     *is* shareable: Eval_invariants computes it once, and every
//     worker cache built from the same instance reads it read-only
//     instead of recomputing it per worker (bit-identical results,
//     pinned by tests).  A solver::Session owns one instance per
//     problem and threads it through all of its strategies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "pace/cost_model.hpp"
#include "search/evaluate.hpp"

namespace lycos::search {

/// The immutable, allocation-independent part of an Eval_cache: per
/// BSB the projection axes (resource types whose op set intersects the
/// BSB's ops), the hoisted ASAP/ALAP time frames, the allocation-
/// independent cost fields, plus the library's cheapest-executor
/// latency table.  Computing these walks every BSB graph — which the
/// parallel searches used to pay once per worker cache; computed once
/// (e.g. by a solver::Session) and shared read-only across all worker
/// caches, every worker skips that setup and the results stay
/// bit-identical.  The context's BSBs, library and target must outlive
/// the instance; caches built from it may differ from the originating
/// context only in area_quantum / dp_table_budget / ctrl_mode /
/// storage (none of which these fields depend on... ctrl_mode and
/// storage affect only the schedule-dependent cost fields).
class Eval_invariants {
public:
    explicit Eval_invariants(const Eval_context& ctx);

    const sched::Latency_table& latencies() const { return lat_; }

    /// Projection axes of BSB `bsb` (resource ids in id order).
    const std::vector<hw::Resource_id>& relevant(std::size_t bsb) const
    {
        return relevant_[bsb];
    }

    /// ASAP/ALAP time frames of BSB `bsb` under latencies().
    const sched::Schedule_info& frames(std::size_t bsb) const
    {
        return frames_[bsb];
    }

    /// Allocation-independent cost fields of BSB `bsb` (t_sw, comm,
    /// save_prev; see pace::bsb_cost_invariants).
    const pace::Bsb_cost& invariants(std::size_t bsb) const
    {
        return invariants_[bsb];
    }

private:
    sched::Latency_table lat_;
    std::vector<std::vector<hw::Resource_id>> relevant_;
    std::vector<sched::Schedule_info> frames_;
    std::vector<pace::Bsb_cost> invariants_;
};

/// Observability counters (wired into Search_result).
struct Eval_cache_stats {
    long long hits = 0;    ///< per-BSB lookups served from the cache
    long long misses = 0;  ///< per-BSB lookups that had to schedule
    long long evictions = 0;  ///< entries dropped by the capacity cap

    double hit_rate() const
    {
        const long long total = hits + misses;
        return total > 0 ? static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
    }

    Eval_cache_stats& operator+=(const Eval_cache_stats& other)
    {
        hits += other.hits;
        misses += other.misses;
        evictions += other.evictions;
        return *this;
    }

    /// Delta since a snapshot — how shared-cache users report only
    /// their own contribution (stats().minus(before)).
    Eval_cache_stats minus(const Eval_cache_stats& before) const
    {
        return {hits - before.hits, misses - before.misses,
                evictions - before.evictions};
    }
};

/// Per-search memo of BSB costs, keyed by (BSB id, projected counts).
class Eval_cache {
public:
    /// The referenced context (BSBs, library, target) must outlive the
    /// cache.  A non-zero `max_entries` bounds the memo: the cache
    /// runs two generations (current and previous) of at most
    /// max_entries each, so live entries never exceed 2*max_entries.
    /// When the current generation fills up, the previous one is
    /// dropped (counted in stats().evictions) and the generations
    /// rotate — segmented eviction keeps the hot working set without
    /// per-entry bookkeeping.  Results are bit-identical for any
    /// capacity; large restriction spaces just stop pressuring
    /// memory.  0 = unbounded (the default, same as before).
    ///
    /// With a non-null `shared`, the cache reads the precomputed
    /// immutable frames/invariants instead of recomputing them (see
    /// Eval_invariants for the compatibility rule); results are
    /// bit-identical either way.
    explicit Eval_cache(const Eval_context& ctx, std::size_t max_entries = 0,
                        std::shared_ptr<const Eval_invariants> shared = {});

    /// Per-BSB costs under `alloc` — the memoized equivalent of
    /// pace::build_cost_model(ctx...).
    std::vector<pace::Bsb_cost> costs_for(const core::Rmap& alloc);

    /// Allocation-free variant for the search hot loop: fills `out`
    /// (resized to the BSB count) instead of returning a new vector.
    /// Consecutive search points usually change one resource count, so
    /// each BSB first checks its remembered last projection before
    /// touching the hash map.
    void costs_for(const core::Rmap& alloc, std::vector<pace::Bsb_cost>& out);

    /// Same, from a dense per-type count vector (size lib.size()) —
    /// the branch-and-bound walker keeps its digit counters dense and
    /// skips building an Rmap for points it can prune.
    void costs_for_counts(std::span<const int> counts,
                          std::vector<pace::Bsb_cost>& out);

    /// Cost of one BSB under dense `counts`.  The walker queries each
    /// BSB exactly when the digits covering its relevant types have
    /// been assigned, instead of re-fetching all BSBs at every leaf.
    /// The reference stays valid until the next query for `bsb`.
    const pace::Bsb_cost& cost_one(std::size_t bsb,
                                   std::span<const int> counts);

    /// Lookup-only variant: the memoized cost of `bsb` under `counts`,
    /// or nullptr when that projection has never been scheduled.
    /// Never schedules anything — the branch-and-bound walker uses it
    /// to take the exact cost when it is already known and fall back
    /// to an admissible proxy otherwise, deferring the expensive
    /// schedule to leaves that survive the proxy bound.  A found entry
    /// counts as a hit; a miss here is not counted (nothing was paid).
    /// The reference stays valid until the next query for `bsb`.
    const pace::Bsb_cost* find_one(std::size_t bsb,
                                   std::span<const int> counts);

    const Eval_cache_stats& stats() const { return stats_; }

    /// Live memo entries (both generations when capacity-bounded).
    std::size_t entries() const { return n_current_ + n_previous_; }

    /// The constructor's max_entries (0 = unbounded).
    std::size_t capacity() const { return max_entries_; }

    /// Precomputed ASAP/ALAP frames of one BSB (allocation-independent;
    /// the prune model reuses them instead of recomputing).
    const sched::Schedule_info& frames(std::size_t bsb) const
    {
        return inv_->frames(bsb);
    }

    /// The immutable invariants this cache reads (shared or privately
    /// computed) — reusable for further caches over the same problem.
    const std::shared_ptr<const Eval_invariants>& invariants() const
    {
        return inv_;
    }

private:
    struct Key_hash {
        std::size_t operator()(const std::vector<int>& key) const
        {
            // FNV-1a over the count words.
            std::size_t h = 1469598103934665603ull;
            for (int v : key) {
                h ^= static_cast<std::size_t>(static_cast<unsigned>(v));
                h *= 1099511628211ull;
            }
            return h;
        }
    };
    using Memo = std::unordered_map<std::vector<int>, pace::Bsb_cost, Key_hash>;

    /// Insert into the current generation, rotating when full.
    void insert(std::size_t bsb, const std::vector<int>& key,
                const pace::Bsb_cost& cost);

    const Eval_context ctx_;
    /// Immutable per-BSB data (projection axes, frames, invariants,
    /// latency table): shared read-only across worker caches when the
    /// constructor got one, privately computed otherwise.
    std::shared_ptr<const Eval_invariants> inv_;
    std::size_t max_entries_ = 0;
    std::size_t n_current_ = 0;
    std::size_t n_previous_ = 0;
    /// Scheduler scratch reused by every miss (the cache is
    /// single-threaded, so one workspace serves all of them).
    sched::Schedule_workspace sched_ws_;
    std::vector<Memo> memo_;       ///< current generation
    std::vector<Memo> previous_;   ///< previous generation (bounded mode)
    std::vector<int> counts_;  ///< reusable dense-counts buffer
    std::vector<int> key_;     ///< reusable projection-key buffer
    /// Per BSB: the most recent projection key and its cost — the
    /// fast path for the enumeration's one-digit-at-a-time locality.
    std::vector<std::vector<int>> last_key_;
    std::vector<pace::Bsb_cost> last_cost_;
    std::vector<std::uint8_t> last_valid_;
    Eval_cache_stats stats_;
};

}  // namespace lycos::search
