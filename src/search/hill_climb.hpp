// Iterated hill climbing over the allocation space.
//
// The eigen example's space (~10^6 allocations, each costing a PACE
// run) made exhaustive evaluation impossible for the paper (footnote
// 1: the best allocation was the best found "using numerous
// experiments").  This search plays that role reproducibly: steepest-
// ascent hill climbing on the +-1-unit neighbourhood, restarted from
// random points of the space.
//
// Restarts are independent, so they run in parallel on a
// util::Thread_pool.  Determinism contract: every start point is
// drawn from `rng` in restart order *before* any climbing, each
// restart climbs in isolation (per-worker Eval_cache and
// Pace_workspace), and per-restart bests are reduced in restart order
// with the same strict better_than — so the result is bit-identical
// to the sequential climb for any thread count.
#pragma once

#include "search/exhaustive.hpp"
#include "util/rng.hpp"

namespace lycos::search {

/// Options for hill_climb_search.
struct Hill_climb_options {
    int n_restarts = 16;       ///< climbs: restart 0 starts from the empty
                               ///< allocation, the rest from random points
    int max_steps = 256;       ///< safety bound per climb
    int n_threads = 0;         ///< 0 = hardware concurrency (capped by restarts)

    /// Optional caller-owned cache shared with other search phases
    /// (worker 0 uses it; see Exhaustive_options::shared_cache).
    Eval_cache* shared_cache = nullptr;
};

/// Best allocation found by iterated steepest-ascent hill climbing.
/// Deterministic for a given `rng` seed, independent of n_threads.
Search_result hill_climb_search(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Hill_climb_options& options,
                                util::Rng& rng);

}  // namespace lycos::search
