// Iterated hill climbing over the allocation space.
//
// The eigen example's space (~10^6 allocations, each costing a PACE
// run) made exhaustive evaluation impossible for the paper (footnote
// 1: the best allocation was the best found "using numerous
// experiments").  This search plays that role reproducibly: steepest-
// ascent hill climbing on the +-1-unit neighbourhood, restarted from
// random points of the space.
//
// The climb adopted the exhaustive walker's cheap-evaluation tricks:
// every candidate is scored with the *value-only* screening DP
// (pace_best_saving — no traceback bookkeeping), steps and the
// per-restart best are chosen on the screened (time, area) tuple, and
// only each restart's final winner pays for one full partition
// reconstruction.  Neighbours additionally pass through admissible
// *proxy-cost* screening (Hill_climb_options::use_proxy_screen):
// projections already memoized come straight from Eval_cache::find_one,
// the rest are stood in for by optimistic costs, and only neighbours
// the proxy cannot rule out pay for real schedules — same trick the
// branch-and-bound walker plays at its leaves, now on the climb's
// neighbourhood loop.  With an explicit search quantum the DP table width
// is additionally pinned to the total ASIC area
// (Eval_context::dp_table_budget), so the per-worker Pace_workspace
// checkpoint stays valid across the +-1 neighbourhood — neighbouring
// candidates share long cost prefixes, exactly the access pattern the
// incremental DP feeds on.  The screened time equals the full
// partition's up to float summation order, so the climb's trajectory
// is unchanged except on ties at that noise level.
//
// Restarts are independent, so they run in parallel on a
// util::Thread_pool.  Determinism contract: every start point is
// drawn from `rng` in restart order *before* any climbing, each
// restart climbs in isolation (per-worker Eval_cache and
// Pace_workspace), and per-restart bests are reduced in restart order
// with the same strict comparison — so the result is bit-identical
// to the sequential climb for any thread count.
#pragma once

#include "search/exhaustive.hpp"
#include "util/rng.hpp"

namespace lycos::search {

/// Options for the hill-climb engine.
struct Hill_climb_options {
    int n_restarts = 16;       ///< climbs: restart 0 starts from the empty
                               ///< allocation, the rest from random points
    int max_steps = 256;       ///< safety bound per climb
    int n_threads = 0;         ///< 0 = hardware concurrency (capped by restarts)

    /// Screen neighbours through admissible proxy costs first
    /// (search/proxy_cost.hpp): a neighbour whose projections are all
    /// memoized screens exactly straight from the cache; otherwise
    /// the value DP runs over optimistic stand-in costs, and only
    /// when that *proxy* tuple still beats the current point does the
    /// neighbour pay for real schedules and the exact screen.  Since
    /// the proxy time lower-bounds the exact screened time, skipped
    /// neighbours could never have been stepped to nor have improved
    /// the restart best — the climb trajectory and the final tuple
    /// are bit-identical with the screen on or off (skips land in
    /// Search_result::n_pruned).  Auto-disabled under a storage model
    /// (no sound proxy exists; see Proxy_cost_model::sound).
    bool use_proxy_screen = true;

    /// Entry cap for each worker's private Eval_cache (0 = unbounded;
    /// bounded caches evict segment-wise with bit-identical results —
    /// see Exhaustive_options::cache_capacity).
    std::size_t cache_capacity = 0;

    /// Optional caller-owned cache shared with other search phases
    /// (worker 0 uses it; see Exhaustive_options::shared_cache).
    Eval_cache* shared_cache = nullptr;

    /// Shared immutable frames/invariants for the per-worker caches
    /// (see Exhaustive_options::invariants; engine-level, ignored by
    /// the deprecated shim).
    std::shared_ptr<const Eval_invariants> invariants;

    /// Caller-owned thread pool (see Exhaustive_options::pool;
    /// engine-level, ignored by the deprecated shim).
    util::Thread_pool* pool = nullptr;

    /// Session-persistent per-worker DP workspaces (see
    /// Exhaustive_options::dp_pool): worker c screens on slot c, so
    /// the value-DP checkpoints survive between solves and a repeat
    /// climb of the same problem resumes at the first divergent cost
    /// row (bit-identical results; the cross-solve share lands in
    /// Search_result::dp_rows_reused_cross_request).
    Dp_workspace_pool* dp_pool = nullptr;

    /// Optional cancellation handle.  The logical work unit is the
    /// restart index: the injected cut climbs exactly the restarts
    /// below it, so truncated results are bit-identical for any thread
    /// count.  Live conditions additionally poll once per climb step
    /// and keep the partial restart's best.
    const util::Cancel_token* cancel = nullptr;
};

/// Best allocation found by iterated steepest-ascent hill climbing.
/// Deterministic for a given `rng` seed, independent of n_threads.
/// Search_result::n_evaluated counts screened candidates (each was
/// scored by the value-only DP; only restart winners additionally run
/// the full partition).
///
/// This is the engine behind the solver's `hill_climb` strategy;
/// prefer driving it through a solver::Session.
Search_result hill_climb_engine(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Hill_climb_options& options,
                                util::Rng& rng);

/// Deprecated shim: builds a one-shot solver::Session over (ctx,
/// restrictions) and runs the `hill_climb` strategy with `rng` as the
/// start-point source — bit-identical to hill_climb_engine for any
/// thread count (pinned by tests/test_solver.cpp).
[[deprecated("use solver::Session::solve(\"hill_climb\")")]]
Search_result hill_climb_search(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Hill_climb_options& options,
                                util::Rng& rng);

}  // namespace lycos::search
