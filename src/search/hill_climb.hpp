// Iterated hill climbing over the allocation space.
//
// The eigen example's space (~10^6 allocations, each costing a PACE
// run) made exhaustive evaluation impossible for the paper (footnote
// 1: the best allocation was the best found "using numerous
// experiments").  This search plays that role reproducibly: steepest-
// ascent hill climbing on the +-1-unit neighbourhood, restarted from
// random points of the space.
#pragma once

#include "search/exhaustive.hpp"
#include "util/rng.hpp"

namespace lycos::search {

/// Options for hill_climb_search.
struct Hill_climb_options {
    int n_restarts = 16;       ///< random restarts (first start is empty + allocator-style greedy point)
    int max_steps = 256;       ///< safety bound per climb
};

/// Best allocation found by iterated steepest-ascent hill climbing.
/// Deterministic for a given `rng` seed.
Search_result hill_climb_search(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Hill_climb_options& options,
                                util::Rng& rng);

}  // namespace lycos::search
