#include "search/hill_climb.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>
#include <utility>

#include "search/eval_cache.hpp"
#include "search/proxy_cost.hpp"
#include "search/workspace_pool.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace lycos::search {

namespace {

/// Screened score of one candidate: the value-only DP's hybrid time
/// and the data-path area — everything the climb needs to pick steps
/// and the best, at a fraction of a full partition reconstruction.
struct Screened {
    double time = std::numeric_limits<double>::infinity();
    double area = 0.0;
    core::Rmap point;
    bool valid = false;
};

/// What one restart's climb produces; reduced in restart order.
struct Restart_result {
    Screened best;
    long long n_evaluated = 0;
    long long n_pruned = 0;  ///< neighbours the proxy screen skipped
};

/// Per-worker scratch buffers: one screened evaluation costs one
/// memoized cost fetch into `costs` (no per-call vector churn) plus
/// one value-only DP on `ws` — the workspace checkpoint resumes at
/// the first divergent cost row, and the +-1 neighbourhood leaves
/// most rows untouched.  With a proxy model, neighbour screens first
/// assemble costs from memoized projections (find_one) plus
/// optimistic stand-ins and only fall through to real schedules when
/// the proxy tuple still beats the current point.
struct Climb_scratch {
    Eval_cache& cache;
    std::optional<Proxy_cost_model> proxy;
    /// Per-worker DP arena (the scratch is constructed inside the
    /// restart-chunk task body): the workspace's rows are
    /// first-touched on the worker that climbs with them.  Declared
    /// before the workspace it backs.
    util::Arena arena;
    pace::Pace_workspace own_ws{&arena};
    /// The workspace the screens sweep on: the private one above, or
    /// a session-persistent Dp_workspace_pool slot whose checkpoint
    /// survives into the next solve.
    pace::Pace_workspace* ws = &own_ws;
    std::vector<pace::Bsb_cost> costs;
    std::vector<int> counts;

    Climb_scratch(const Eval_context& ctx, Eval_cache& c, bool use_proxy,
                  pace::Pace_workspace* persistent_ws)
        : cache(c)
    {
        if (persistent_ws != nullptr)
            ws = persistent_ws;
        if (use_proxy) {
            proxy.emplace(ctx, c);
            if (!proxy->sound())
                proxy.reset();
        }
    }

    /// Value-only DP over whatever `costs` currently holds.
    std::pair<double, double> screen_costs(const Eval_context& ctx,
                                           double area)
    {
        const double all_sw = pace::all_sw_time_ns(costs);
        if (area > ctx.target.asic.total_area)
            return {all_sw, area};
        pace::Pace_options opts;
        opts.ctrl_area_budget = ctx.target.asic.total_area - area;
        opts.area_quantum = ctx.area_quantum;
        opts.table_area_budget = ctx.dp_table_budget;
        opts.cancel = ctx.cancel;
        return {all_sw - pace::pace_best_saving(costs, opts, ws), area};
    }

    /// (screened hybrid time, data-path area) of `a`.  A non-fitting
    /// point scores its all-software time, exactly as the full
    /// evaluation pipeline reports it.
    std::pair<double, double> screen(const Eval_context& ctx,
                                     const core::Rmap& a)
    {
        cache.costs_for(a, costs);
        return screen_costs(ctx, a.area(ctx.lib));
    }

    /// Neighbour screen with the admissible proxy layer: returns
    /// nullopt — and pays for no schedule — when the proxy proves the
    /// neighbour cannot beat the (ref_time, ref_area) tuple.  The
    /// proxy time lower-bounds the exact screened time, so a skipped
    /// neighbour's exact tuple could not have beaten the reference
    /// either: the climb's steps and bests are unchanged.
    std::optional<std::pair<double, double>> screen_neighbour(
        const Eval_context& ctx, const core::Rmap& a, double ref_time,
        double ref_area)
    {
        if (!proxy.has_value())
            return screen(ctx, a);

        counts.assign(ctx.lib.size(), 0);
        for (const auto& [r, c] : a.entries())
            counts[static_cast<std::size_t>(r)] = c;
        const double area = a.area(ctx.lib);
        costs.resize(ctx.bsbs.size());
        bool any_proxy = false;
        for (std::size_t b = 0; b < ctx.bsbs.size(); ++b) {
            if (const auto* exact = cache.find_one(b, counts)) {
                costs[b] = *exact;
            }
            else {
                costs[b] = proxy->cost(b, counts);
                any_proxy = true;
            }
        }
        if (!any_proxy)  // fully memoized: this IS the exact screen
            return screen_costs(ctx, area);

        const auto bound = screen_costs(ctx, area);
        if (!better_tuple(bound.first, bound.second, ref_time, ref_area))
            return std::nullopt;  // provably not an improvement
        cache.costs_for_counts(counts, costs);
        return screen_costs(ctx, area);
    }
};

/// Steepest-ascent climb from `start`, recording the best of *every*
/// screened evaluation (not just accepted steps) exactly as the
/// full-evaluation climb did.
void climb(const Eval_context& ctx, const Alloc_space& space,
           const Hill_climb_options& options, const core::Rmap& start,
           Climb_scratch& scratch, Restart_result& out)
{
    auto consider = [&](double time, double area, const core::Rmap& p) {
        if (!out.best.valid ||
            better_tuple(time, area, out.best.time, out.best.area)) {
            out.best.time = time;
            out.best.area = area;
            out.best.point = p;
            out.best.valid = true;
        }
    };

    core::Rmap current = start;
    auto [cur_time, cur_area] = scratch.screen(ctx, current);
    ++out.n_evaluated;
    if (ctx.cancel != nullptr)
        ctx.cancel->charge_evals(1);
    consider(cur_time, cur_area, current);

    for (int step = 0; step < options.max_steps; ++step) {
        // Live-condition poll once per climb step: a tripped token
        // keeps whatever this restart found so far.
        if (ctx.cancel != nullptr && ctx.cancel->stop())
            break;
        double best_time = 0.0;
        double best_area = 0.0;
        core::Rmap best_neighbour;
        bool found = false;

        for (const auto& [r, bound] : space.dims()) {
            for (int delta : {+1, -1}) {
                const int c = current(r) + delta;
                if (c < 0 || c > bound)
                    continue;
                core::Rmap candidate = current;
                candidate.set(r, c);
                if (candidate.area(ctx.lib) > ctx.target.asic.total_area)
                    continue;
                const auto screened = scratch.screen_neighbour(
                    ctx, candidate, cur_time, cur_area);
                if (!screened.has_value()) {
                    ++out.n_pruned;  // proxy: provably no improvement
                    continue;
                }
                const auto [time, area] = *screened;
                ++out.n_evaluated;
                if (ctx.cancel != nullptr)
                    ctx.cancel->charge_evals(1);
                consider(time, area, candidate);
                if (!found ||
                    better_tuple(time, area, best_time, best_area)) {
                    best_time = time;
                    best_area = area;
                    best_neighbour = candidate;
                    found = true;
                }
            }
        }

        if (!found ||
            !better_tuple(best_time, best_area, cur_time, cur_area))
            break;  // local optimum
        current = best_neighbour;
        cur_time = best_time;
        cur_area = best_area;
    }
}

}  // namespace

Search_result hill_climb_engine(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Hill_climb_options& options,
                                util::Rng& rng)
{
    util::Wall_timer timer;
    const Alloc_space space(ctx.lib, restrictions);

    Search_result result;
    result.space_size = space.size();
    const int n_restarts = options.n_restarts;
    if (n_restarts <= 0) {
        result.seconds = timer.seconds();
        return result;
    }

    // Pin the DP table width to the total ASIC area so each worker's
    // Pace_workspace checkpoint stays valid across the neighbourhood's
    // different leftover controller budgets — only with an explicit
    // search quantum, for the same reason exhaustive_engine does: the
    // automatic quantum derives from the budget, and widening the
    // table would change it.
    Eval_context run_ctx = ctx;
    if (ctx.area_quantum > 0.0)
        run_ctx.dp_table_budget = ctx.target.asic.total_area;
    run_ctx.cancel = options.cancel;

    // Draw every start point up front, in restart order: the random
    // sequence — and therefore the whole search — is independent of
    // how restarts are later spread over threads.  Restart 0 is the
    // empty allocation (a safe baseline), the rest random points.
    std::vector<core::Rmap> starts;
    starts.reserve(static_cast<std::size_t>(n_restarts));
    starts.emplace_back();
    for (int r = 1; r < n_restarts; ++r)
        starts.push_back(space.nth(rng.uniform_index(space.size())));

    std::size_t n_threads =
        options.n_threads > 0
            ? static_cast<std::size_t>(options.n_threads)
            : util::Thread_pool::default_concurrency();
    n_threads = std::max<std::size_t>(
        1,
        std::min(n_threads, static_cast<std::size_t>(n_restarts)));
    result.n_threads = static_cast<int>(n_threads);

    // Session-persistent workspaces: one slot per chunk, grown and
    // marked cross-request before any worker runs (see
    // exhaustive_engine for the same dance).
    if (options.dp_pool != nullptr)
        options.dp_pool->prepare(n_threads);

    std::vector<Restart_result> restarts(
        static_cast<std::size_t>(n_restarts));
    std::vector<Eval_cache_stats> chunk_stats(n_threads);
    std::vector<long long> chunk_refused(n_threads, 0);
    std::vector<std::uint8_t> chunk_stopped(n_threads, 0);
    std::vector<std::array<long long, 3>> chunk_dp(n_threads,
                                                   {0, 0, 0});
    const auto run_chunk = [&](std::size_t c, long long begin, long long end) {
        Eval_cache* cache = nullptr;
        std::optional<Eval_cache> own_cache;
        Eval_cache_stats shared_before;
        if (c == 0 && options.shared_cache != nullptr) {
            cache = options.shared_cache;
            shared_before = cache->stats();
        }
        else {
            own_cache.emplace(ctx, options.cache_capacity,
                              options.invariants);
            cache = &*own_cache;
        }
        Climb_scratch scratch(run_ctx, *cache, options.use_proxy_screen,
                              options.dp_pool != nullptr
                                  ? &options.dp_pool->slot(c).pace
                                  : nullptr);
        // Persistent workspaces carry counters from earlier solves —
        // report this chunk's deltas only (zero-based for private ones).
        const long long reused0 = scratch.ws->rows_reused();
        const long long swept0 = scratch.ws->rows_swept();
        const long long foreign0 = scratch.ws->rows_reused_foreign();
        for (long long r = begin; r < end; ++r) {
            // Admission gate per restart — the thread-invariant work
            // unit, so the injected cut climbs exactly [0, cut).
            if (options.cancel != nullptr &&
                !options.cancel->admit(static_cast<std::uint64_t>(r))) {
                if (options.cancel->tripped()) {
                    chunk_refused[c] += end - r;
                    chunk_stopped[c] = 1;
                    break;
                }
                ++chunk_refused[c];
                continue;
            }
            climb(run_ctx, space, options,
                  starts[static_cast<std::size_t>(r)], scratch,
                  restarts[static_cast<std::size_t>(r)]);
        }
        chunk_stats[c] = cache == options.shared_cache
                             ? cache->stats().minus(shared_before)
                             : cache->stats();
        chunk_dp[c] = {scratch.ws->rows_reused() - reused0,
                       scratch.ws->rows_swept() - swept0,
                       scratch.ws->rows_reused_foreign() - foreign0};
    };

    std::size_t chunks_skipped = 0;
    if (n_threads == 1) {
        run_chunk(0, 0, n_restarts);
    }
    else if (options.pool != nullptr) {
        chunks_skipped = util::parallel_chunks(
            *options.pool, n_restarts, n_threads, run_chunk, options.cancel);
    }
    else {
        util::Thread_pool pool(n_threads);
        chunks_skipped = util::parallel_chunks(pool, n_restarts, n_threads,
                                               run_chunk, options.cancel);
    }

    // Reduce in restart order with the strict screened comparison the
    // per-restart loops used, so ties keep the earliest restart.
    Screened winner;
    for (const auto& r : restarts) {
        result.n_evaluated += r.n_evaluated;
        result.n_pruned += r.n_pruned;
        if (r.best.valid &&
            (!winner.valid || better_tuple(r.best.time, r.best.area,
                                              winner.time, winner.area)))
            winner = r.best;
    }
    for (const auto& s : chunk_stats)
        result.cache_stats += s;
    for (std::size_t c = 0; c < n_threads; ++c) {
        result.rows_abandoned += chunk_refused[c];
        result.chunks_abandoned += chunk_stopped[c];
        result.dp_rows_reused += chunk_dp[c][0];
        result.dp_rows_swept += chunk_dp[c][1];
        result.dp_rows_reused_cross_request += chunk_dp[c][2];
    }
    result.chunks_abandoned += static_cast<long long>(chunks_skipped);
    if (options.cancel != nullptr) {
        result.status = options.cancel->status();
        if (result.status == util::Solve_status::complete &&
            (result.rows_abandoned > 0 || result.chunks_abandoned > 0))
            result.status = util::Solve_status::cancelled;
    }

    // Only the overall winner pays for the full partition
    // reconstruction; cached and uncached evaluation agree bit for
    // bit, so this needs no cache.  The reconstruction runs with the
    // token detached — a tripped token must not degrade the delivered
    // incumbent to an all-software partition.
    if (winner.valid) {
        Eval_context final_ctx = run_ctx;
        final_ctx.cancel = nullptr;
        result.best = evaluate_allocation(final_ctx, winner.point);
        result.have_best = true;
    }

    result.seconds = timer.seconds();
    return result;
}

// The deprecated hill_climb_search shim lives in solver/compat.cpp
// (see the note in exhaustive.cpp).

}  // namespace lycos::search
