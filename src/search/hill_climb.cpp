#include "search/hill_climb.hpp"

#include <algorithm>
#include <optional>

#include "search/eval_cache.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace lycos::search {

namespace {

/// What one restart's climb produces; reduced in restart order.
struct Restart_result {
    Evaluation best;
    bool have_best = false;
    long long n_evaluated = 0;
};

/// Per-worker scratch buffers: one evaluation costs one memoized cost
/// fetch into `costs` (no per-call vector churn) plus one DP on `ws`.
struct Climb_scratch {
    Eval_cache& cache;
    pace::Pace_workspace ws;
    std::vector<pace::Bsb_cost> costs;

    explicit Climb_scratch(Eval_cache& c) : cache(c) {}

    Evaluation evaluate(const Eval_context& ctx, const core::Rmap& a)
    {
        cache.costs_for(a, costs);
        return evaluate_with_costs(ctx, a, costs, &ws);
    }
};

/// Steepest-ascent climb from `start`, recording the best of *every*
/// evaluation (not just accepted steps) exactly as the sequential
/// search did.
void climb(const Eval_context& ctx, const Alloc_space& space,
           const Hill_climb_options& options, const core::Rmap& start,
           Climb_scratch& scratch, Restart_result& out)
{
    auto consider = [&](const Evaluation& ev) {
        if (!out.have_best || better_than(ev, out.best)) {
            out.best = ev;
            out.have_best = true;
        }
    };

    core::Rmap current = start;
    Evaluation current_ev = scratch.evaluate(ctx, current);
    ++out.n_evaluated;
    consider(current_ev);

    for (int step = 0; step < options.max_steps; ++step) {
        Evaluation best_neighbour;
        core::Rmap best_neighbour_map;
        bool found = false;

        for (const auto& [r, bound] : space.dims()) {
            for (int delta : {+1, -1}) {
                const int c = current(r) + delta;
                if (c < 0 || c > bound)
                    continue;
                core::Rmap candidate = current;
                candidate.set(r, c);
                if (candidate.area(ctx.lib) > ctx.target.asic.total_area)
                    continue;
                const Evaluation ev = scratch.evaluate(ctx, candidate);
                ++out.n_evaluated;
                consider(ev);
                if (!found || better_than(ev, best_neighbour)) {
                    best_neighbour = ev;
                    best_neighbour_map = candidate;
                    found = true;
                }
            }
        }

        if (!found || !better_than(best_neighbour, current_ev))
            break;  // local optimum
        current = best_neighbour_map;
        current_ev = best_neighbour;
    }
}

}  // namespace

Search_result hill_climb_search(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Hill_climb_options& options,
                                util::Rng& rng)
{
    util::Wall_timer timer;
    const Alloc_space space(ctx.lib, restrictions);

    Search_result result;
    result.space_size = space.size();
    const int n_restarts = options.n_restarts;
    if (n_restarts <= 0) {
        result.seconds = timer.seconds();
        return result;
    }

    // Draw every start point up front, in restart order: the random
    // sequence — and therefore the whole search — is independent of
    // how restarts are later spread over threads.  Restart 0 is the
    // empty allocation (a safe baseline), the rest random points.
    std::vector<core::Rmap> starts;
    starts.reserve(static_cast<std::size_t>(n_restarts));
    starts.emplace_back();
    for (int r = 1; r < n_restarts; ++r)
        starts.push_back(space.nth(rng.uniform_index(space.size())));

    std::size_t n_threads =
        options.n_threads > 0
            ? static_cast<std::size_t>(options.n_threads)
            : util::Thread_pool::default_concurrency();
    n_threads = std::max<std::size_t>(
        1,
        std::min(n_threads, static_cast<std::size_t>(n_restarts)));
    result.n_threads = static_cast<int>(n_threads);

    std::vector<Restart_result> restarts(
        static_cast<std::size_t>(n_restarts));
    std::vector<Eval_cache_stats> chunk_stats(n_threads);
    const auto run_chunk = [&](std::size_t c, long long begin, long long end) {
        Eval_cache* cache = nullptr;
        std::optional<Eval_cache> own_cache;
        Eval_cache_stats shared_before;
        if (c == 0 && options.shared_cache != nullptr) {
            cache = options.shared_cache;
            shared_before = cache->stats();
        }
        else {
            own_cache.emplace(ctx);
            cache = &*own_cache;
        }
        Climb_scratch scratch(*cache);
        for (long long r = begin; r < end; ++r)
            climb(ctx, space, options, starts[static_cast<std::size_t>(r)],
                  scratch, restarts[static_cast<std::size_t>(r)]);
        chunk_stats[c] = cache == options.shared_cache
                             ? cache->stats().minus(shared_before)
                             : cache->stats();
    };

    if (n_threads == 1) {
        run_chunk(0, 0, n_restarts);
    }
    else {
        util::Thread_pool pool(n_threads);
        util::parallel_chunks(pool, n_restarts, n_threads, run_chunk);
    }

    // Reduce in restart order with the strict better_than the
    // sequential loop applied, so ties keep the earliest restart.
    bool have_best = false;
    for (const auto& r : restarts) {
        result.n_evaluated += r.n_evaluated;
        if (r.have_best &&
            (!have_best || better_than(r.best, result.best))) {
            result.best = r.best;
            have_best = true;
        }
    }
    for (const auto& s : chunk_stats)
        result.cache_stats += s;

    result.seconds = timer.seconds();
    return result;
}

}  // namespace lycos::search
