#include "search/hill_climb.hpp"

#include "search/eval_cache.hpp"
#include "util/timer.hpp"

namespace lycos::search {

Search_result hill_climb_search(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Hill_climb_options& options,
                                util::Rng& rng)
{
    util::Wall_timer timer;
    Alloc_space space(ctx.lib, restrictions);

    Search_result result;
    result.space_size = space.size();
    bool have_best = false;

    // Neighbouring climb points share almost all their BSB schedules,
    // so the memo pays off even within a single climb.
    Eval_cache cache(ctx);

    auto consider = [&](const Evaluation& ev) {
        if (!have_best || better_than(ev, result.best)) {
            result.best = ev;
            have_best = true;
        }
    };

    for (int restart = 0; restart < options.n_restarts; ++restart) {
        // Start points: the empty allocation first (a safe baseline),
        // then random points of the space.
        core::Rmap current =
            restart == 0 ? core::Rmap{}
                         : space.nth(rng.uniform_index(space.size()));
        Evaluation current_ev = evaluate_allocation(ctx, current, &cache);
        ++result.n_evaluated;
        consider(current_ev);

        for (int step = 0; step < options.max_steps; ++step) {
            Evaluation best_neighbour;
            core::Rmap best_neighbour_map;
            bool found = false;

            for (const auto& [r, bound] : space.dims()) {
                for (int delta : {+1, -1}) {
                    const int c = current(r) + delta;
                    if (c < 0 || c > bound)
                        continue;
                    core::Rmap candidate = current;
                    candidate.set(r, c);
                    if (candidate.area(ctx.lib) > ctx.target.asic.total_area)
                        continue;
                    const Evaluation ev =
                        evaluate_allocation(ctx, candidate, &cache);
                    ++result.n_evaluated;
                    consider(ev);
                    if (!found || better_than(ev, best_neighbour)) {
                        best_neighbour = ev;
                        best_neighbour_map = candidate;
                        found = true;
                    }
                }
            }

            if (!found || !better_than(best_neighbour, current_ev))
                break;  // local optimum
            current = best_neighbour_map;
            current_ev = best_neighbour;
        }
    }

    result.cache_stats = cache.stats();
    result.seconds = timer.seconds();
    return result;
}

}  // namespace lycos::search
