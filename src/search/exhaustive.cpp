#include "search/exhaustive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

#include "estimate/comm.hpp"
#include "estimate/controller.hpp"
#include "estimate/sw_time.hpp"
#include "pace/cost_model.hpp"
#include "sched/time_frames.hpp"
#include "search/workspace_pool.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace lycos::search {

namespace {

/// What one worker accumulates over its chunk of the index range.
struct Chunk_result {
    Evaluation best;
    bool have_best = false;
    long long n_evaluated = 0;
    long long n_pruned = 0;
    long long n_pruned_remote = 0;  ///< kills only the external bound made
    long long dp_rows_reused = 0;
    long long dp_rows_swept = 0;
    long long dp_rows_foreign = 0;  ///< reused rows from an earlier solve
    long long rows_abandoned = 0;  ///< leaves refused by the cancel token
    bool abandoned = false;        ///< chunk stopped before its end
    Eval_cache_stats stats;
};

/// One dimension of the mixed-radix walk, most-significant last.
struct Dim_info {
    hw::Resource_id id{};
    int bound = 0;
    double unit_area = 0.0;
    long long span = 0;  ///< indices covered per digit step at this dim
};

/// Allocation-independent data behind the gain-bound prune, computed
/// once per search and shared read-only by all workers.
///
/// Per BSB, an admissible upper bound on the saving it can contribute
/// to any partition under any allocation of the space:
///
///   g_ub = max(0, t_sw - t_hw_lb - comm + save_prev)
///
/// where t_hw_lb uses the ASAP critical-path length under each op
/// kind's minimum latency across all library executors — a true lower
/// bound on every resource-constrained list schedule, immune to the scheduling
/// anomalies that make the schedule length itself non-monotone in the
/// allocation.  t_sw, comm and save_prev are allocation-independent
/// and use the same float expressions as bsb_cost_one.  BSBs no
/// combination of the dims can execute never move to hardware and
/// contribute nothing.
///
/// Coverage is the only allocation-dependent ingredient of the coarse
/// bound: a BSB only contributes where every op kind it uses has an
/// allocated executor, and coverage *is* monotone in the counts.  The
/// walker maintains the coverage of each subtree's maximal completion
/// incrementally (only a digit fixed at 0 removes a type), and
/// replaces the coarse per-BSB bound with the *exact* memoized cost as
/// soon as all of a BSB's relevant dims are assigned (its
/// "determination depth").
struct Prune_model {
    bool enabled = false;
    double all_sw = 0.0;  ///< sum of t_sw, the all-software time
    double slack = 0.0;   ///< float-safety margin on bound comparisons
    std::vector<double> g_ub;  ///< per BSB; 0 when never feasible
    std::vector<std::vector<int>> dim_kinds;  ///< per dim: relevant kinds
    std::vector<std::vector<int>> kind_bsbs;  ///< per kind: BSBs (g_ub>0)
    std::vector<int> n_exec_init;  ///< per kind: #dims executing it
    /// by_min_dim[d]: BSBs whose lowest relevant dim is d — their cost
    /// becomes exact once the walk assigns dim d's digit.  Slot
    /// dims.size() holds BSBs no dim affects (constant cost).
    std::vector<std::vector<int>> by_min_dim;

    /// Ingredients of the digit-prefix-conditioned gain bound.  For a
    /// subtree, the instance capacity of op kind k is the digit sum
    /// over dims executing k (assigned digits exactly, open dims at
    /// their bound) — the most instances any completion can field.
    /// Every resource-constrained schedule then satisfies
    ///   len >= ceil(ops_k * min_lat_k / capacity_k)
    /// (kind-k ops occupy kind-k-capable instances for at least
    /// min_lat_k cycles each), so the per-BSB gain bound can use
    /// max(asap_len, work floors) instead of asap_len alone — and it
    /// tightens as assigned digits drop below their bounds.  The
    /// float expression rebuilding the bound mirrors build_prune_model
    /// exactly, so an unconditioned recompute reproduces g_ub bitwise.
    /// The same machinery doubles as the *proxy cost* of a BSB whose
    /// exact cost has not been scheduled yet: t_hw from the
    /// conditioned length floor, controller area from the same floor
    /// (controller_area is monotone in the state count), comm and
    /// adjacency exact.  Field-for-field optimistic versus the exact
    /// bsb_cost_one result, so any bound or DP computed over proxy
    /// costs is admissible (see Walker::proxy_cost).
    struct Gain_term {
        bool coverable = false;  ///< some point of the space runs it in HW
        double t_sw = 0.0;
        double comm = 0.0;
        double adj = 0.0;  ///< max(0, adjacency saving); 0 for BSB 0
        double profile = 0.0;
        long long asap_len = 0;
        /// (kind index, ops-of-kind * min latency) per used kind.
        std::vector<std::pair<std::size_t, long long>> work;
    };
    std::vector<Gain_term> terms;  ///< per BSB (coverable => full fill)
    double cycle_ns = 0.0;
    std::vector<int> avail_init;  ///< per kind: digit-sum at all bounds
    /// Per dim: kinds whose capacity must track this dim's digit —
    /// kinds used by ANY coverable BSB (a superset of dim_kinds,
    /// which only carries kinds behind a positive gain bound; proxy
    /// costs need capacities for the rest too).
    std::vector<std::vector<int>> dim_avail_kinds;
    /// Per dim: the bounded BSBs whose conditioned gain can move when
    /// this dim's digit changes — the union of kind_bsbs over the
    /// dim's kinds, deduplicated so the walker refreshes each BSB
    /// once per digit instead of once per shared kind.
    std::vector<std::vector<int>> dim_refresh_bsbs;
};

Prune_model build_prune_model(const Eval_context& ctx,
                              const std::vector<Dim_info>& dims,
                              const Eval_cache* cache)
{
    Prune_model m;
    const std::size_t n = ctx.bsbs.size();

    // Coverage at the space's maximal point (every dim at its bound):
    // a BSB no combination of the dims can execute never moves to
    // hardware anywhere in the space.
    hw::Op_set max_cover;
    for (const auto& d : dims)
        max_cover = max_cover | ctx.lib[d.id].ops;

    // True per-kind minimum latency over ALL executors in the library.
    // The schedule lower bound must hold whatever instance an op ends
    // up bound to; latency_table_from picks the smallest-AREA
    // executor, whose latency can exceed a faster-but-larger variant's,
    // and using it here could prune the true optimum.
    sched::Latency_table min_lat(1);
    for (const auto k : hw::all_op_kinds()) {
        int best = std::numeric_limits<int>::max();
        for (std::size_t ri = 0; ri < ctx.lib.size(); ++ri) {
            const auto& rt = ctx.lib[static_cast<hw::Resource_id>(ri)];
            if (rt.ops.contains(k))
                best = std::min(best, rt.latency_cycles);
        }
        if (best != std::numeric_limits<int>::max())
            min_lat[k] = best;
    }
    // The cache's hoisted frames use latency_table_from; they are only
    // reusable when that table already is the per-kind minimum.
    const bool cache_frames_ok =
        cache != nullptr && min_lat == sched::latency_table_from(ctx.lib);

    m.g_ub.assign(n, 0.0);
    m.terms.assign(n, {});
    m.cycle_ns = ctx.target.asic.cycle_ns();
    m.all_sw = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto& b = ctx.bsbs[i];
        // Exactly the t_sw expression of bsb_cost_one, so the bound's
        // baseline matches the evaluated all-software times.
        const double t_sw = estimate::total_sw_time_ns(b, ctx.target.cpu);
        m.all_sw += t_sw;
        m.terms[i].t_sw = t_sw;  // proxy costs need it even when
                                 // nothing here can go to hardware
        if (b.graph.empty() || !max_cover.includes(b.graph.used_ops()))
            continue;
        // Same float expression shape as bsb_cost_one's t_hw, with the
        // schedule length replaced by its ASAP lower bound, so
        // t_hw >= t_hw_lb holds bitwise (float multiply is monotone).
        const int asap_len =
            cache_frames_ok
                ? cache->frames(i).length
                : sched::compute_time_frames(b.graph, min_lat).length;
        const double t_hw_lb =
            asap_len * ctx.target.asic.cycle_ns() * b.profile;
        const double comm =
            estimate::comm_time_ns(b, ctx.target.bus) * b.profile;
        const double adj =
            i > 0 ? std::max(0.0, estimate::adjacency_saving_ns(
                                      ctx.bsbs[i - 1], b, ctx.target.bus))
                  : 0.0;
        double gain = t_sw - t_hw_lb - comm;
        gain += adj;
        if (gain > 0.0)
            m.g_ub[i] = gain;
        // Conditioned-bound / proxy-cost ingredients: the walker
        // re-derives the same expressions with max(asap,
        // work/capacity floors).  Filled for every coverable BSB —
        // proxy costs need them even when the gain bound is not
        // positive.
        auto& t = m.terms[i];
        t.coverable = true;
        t.comm = comm;
        t.adj = adj;
        t.profile = b.profile;
        t.asap_len = asap_len;
        const auto used = b.graph.used_ops();
        for (const auto k : hw::all_op_kinds())
            if (used.contains(k))
                t.work.emplace_back(
                    hw::op_index(k),
                    static_cast<long long>(b.graph.count(k)) *
                        static_cast<long long>(min_lat[k]));
    }
    // The bound sums drift by float rounding as the walker adds and
    // removes terms; the margin dwarfs that drift while staying far
    // below any physically meaningful time difference.
    m.slack = 1e-7 * std::max(1.0, std::abs(m.all_sw));

    // Coverage machinery, restricted to kinds that matter (used by a
    // BSB with a positive bound).
    m.kind_bsbs.assign(hw::n_op_kinds, {});
    m.n_exec_init.assign(hw::n_op_kinds, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (m.g_ub[i] <= 0.0)
            continue;
        const auto used = ctx.bsbs[i].graph.used_ops();
        for (const auto k : hw::all_op_kinds())
            if (used.contains(k))
                m.kind_bsbs[hw::op_index(k)].push_back(static_cast<int>(i));
    }
    // Kinds any coverable BSB uses — their capacities feed the proxy
    // costs, beyond the positive-gain kinds the coverage bound needs.
    std::array<bool, hw::n_op_kinds> used_any{};
    for (const auto& t : m.terms)
        for (const auto& [ki, work] : t.work)
            used_any[ki] = true;

    m.dim_kinds.resize(dims.size());
    m.dim_avail_kinds.resize(dims.size());
    m.dim_refresh_bsbs.resize(dims.size());
    m.avail_init.assign(hw::n_op_kinds, 0);
    std::vector<std::uint8_t> seen(n, 0);
    for (std::size_t d = 0; d < dims.size(); ++d) {
        const auto ops = ctx.lib[dims[d].id].ops;
        for (const auto k : hw::all_op_kinds()) {
            const std::size_t ki = hw::op_index(k);
            if (!ops.contains(k))
                continue;
            if (!m.kind_bsbs[ki].empty()) {
                m.dim_kinds[d].push_back(static_cast<int>(ki));
                ++m.n_exec_init[ki];
                for (const int b : m.kind_bsbs[ki])
                    if (!seen[static_cast<std::size_t>(b)]) {
                        seen[static_cast<std::size_t>(b)] = 1;
                        m.dim_refresh_bsbs[d].push_back(b);
                    }
            }
            if (used_any[ki]) {
                m.dim_avail_kinds[d].push_back(static_cast<int>(ki));
                m.avail_init[ki] += dims[d].bound;
            }
        }
        for (const int b : m.dim_refresh_bsbs[d])
            seen[static_cast<std::size_t>(b)] = 0;
    }

    // Determination depths: the lowest dim whose type intersects the
    // BSB's ops (the projection key Eval_cache uses is constant in all
    // other dims).
    m.by_min_dim.assign(dims.size() + 1, {});
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t min_dim = dims.size();
        const auto used = ctx.bsbs[i].graph.used_ops();
        for (std::size_t d = 0; d < dims.size(); ++d)
            if (ctx.lib[dims[d].id].ops.intersects(used)) {
                min_dim = d;
                break;
            }
        m.by_min_dim[min_dim].push_back(static_cast<int>(i));
    }

    m.enabled = true;
    return m;
}

/// Shared empty determination list for walkers running without the
/// incremental exact-cost overlay.
const std::vector<int> k_no_dets;

/// Admissible reduction of a BSB's software time given its exact cost:
/// the most the hybrid can save on this BSB, crediting the adjacency
/// saving unconditionally.
double exact_reduction(const pace::Bsb_cost& c, bool first)
{
    if (std::isinf(c.t_hw))
        return 0.0;
    double red = c.t_sw - c.t_hw - c.comm;
    if (!first)
        red += std::max(0.0, c.save_prev);
    return std::max(0.0, red);
}

/// One worker's branch-and-bound walk over the chunk [begin, end) of
/// the mixed-radix index range.  Digits are assigned most-significant
/// (last dim) first, so each node's subtree is a contiguous index
/// range and leaves appear in exactly the enumeration order of the
/// linear loop this replaces.
class Walker {
public:
    Walker(const Eval_context& ctx, const std::vector<Dim_info>& dims,
           const Prune_model& model, bool use_pruning, double max_area,
           double prime_time, long long begin, long long end,
           Eval_cache* cache, const util::Shared_bound* ext,
           Chunk_result& out, pace::Pace_workspace* persistent_ws = nullptr)
        : ctx_(ctx), dims_(dims), model_(model), use_pruning_(use_pruning),
          max_area_(max_area), prime_time_(prime_time), begin_(begin),
          end_(end), cache_(cache), cancel_(ctx.cancel), ext_(ext),
          out_(out), digits_(dims.size(), 0),
          dense_counts_(ctx.lib.size(), 0)
    {
        if (persistent_ws != nullptr)
            ws_ = persistent_ws;
        bounding_ = use_pruning_ && model_.enabled;
        det_enabled_ = bounding_ && cache_ != nullptr;
        if (bounding_) {
            n_exec_ = model_.n_exec_init;
            missing_.assign(model_.g_ub.size(), 0);
            avail_ = model_.avail_init;
            cur_digit_.resize(dims_.size());
            for (std::size_t d = 0; d < dims_.size(); ++d)
                cur_digit_[d] = dims_[d].bound;  // unassigned = at bound
            cond_g_.assign(model_.g_ub.size(), 0.0);
            for (std::size_t b = 0; b < model_.g_ub.size(); ++b)
                if (model_.g_ub[b] > 0.0) {
                    cond_g_[b] = conditioned_gain(b);
                    cov_gain_ += cond_g_[b];
                }
        }
        if (det_enabled_) {
            // Proxy determinations defer scheduling: uncached exact
            // costs are stood in for by admissible optimistic costs,
            // and only leaves that survive the proxy screening DP pay
            // for real schedules.  Disabled under a storage model
            // (its area needs the schedule, so no sound proxy exists).
            use_proxy_ = ctx_.storage == nullptr;
            proxied_.assign(ctx_.bsbs.size(), 0);
            determined_.assign(ctx_.bsbs.size(), 0);
            cur_cost_.resize(ctx_.bsbs.size());
            cur_red_.assign(ctx_.bsbs.size(), 0.0);
            // BSBs no dim affects have one constant cost everywhere
            // (exactly: their single schedule is needed at every
            // leaf, so a proxy would only delay it).
            const bool proxy = use_proxy_;
            use_proxy_ = false;
            for (const int i : model_.by_min_dim[dims_.size()])
                determine(static_cast<std::size_t>(i));
            use_proxy_ = proxy;
        }
    }

    void run()
    {
        // A persistent workspace carries counters (and checkpoints)
        // from earlier solves — report this run's deltas only.  The
        // private member workspace starts at zero, so the deltas are
        // the full counters there, exactly as before.
        const long long reused0 = ws_->rows_reused();
        const long long swept0 = ws_->rows_swept();
        const long long foreign0 = ws_->rows_reused_foreign();
        // Full poll once per chunk entry: a deadline that expired
        // before this chunk started abandons it whole — otherwise a
        // space smaller than the leaf-poll stride would never read
        // the clock at all.
        if (ext_ != nullptr)
            ext_val_ = ext_->get();
        if (cancel_ != nullptr && cancel_->stop()) {
            out_.rows_abandoned += end_ - begin_;
            stopped_ = true;
        }
        else {
            walk(static_cast<int>(dims_.size()) - 1, 0, 0.0);
        }
        out_.dp_rows_reused += ws_->rows_reused() - reused0;
        out_.dp_rows_swept += ws_->rows_swept() - swept0;
        out_.dp_rows_foreign += ws_->rows_reused_foreign() - foreign0;
        out_.abandoned = stopped_;
    }

private:
    void walk(int d, long long base, double prefix_area)
    {
        if (d < 0) {
            leaf();
            return;
        }
        const auto& dim = dims_[static_cast<std::size_t>(d)];
        // End of this dim's whole digit range, for bulk prune counting.
        const long long dim_end =
            base + (static_cast<long long>(dim.bound) + 1) * dim.span;
        for (int c = 0; c <= dim.bound; ++c) {
            const long long sub_base = base + c * dim.span;
            if (sub_base >= end_)
                break;  // every later digit lies past the chunk
            if (sub_base + dim.span <= begin_)
                continue;  // before the chunk
            const long long lo = std::max(begin_, sub_base);
            const long long hi = std::min(end_, sub_base + dim.span);

            // Admission gate: the logical unit is the subtree's base
            // index — thread-invariant, so the injected cut refuses
            // exactly the leaves >= the cut on every chunking (a
            // subtree straddling the cut is admitted here and refused
            // leaf-by-leaf at dim 0, whose span is 1).  A live trip
            // abandons the rest of the chunk at this boundary.
            if (cancel_ != nullptr &&
                !cancel_->admit(static_cast<std::uint64_t>(sub_base))) {
                if (cancel_->tripped()) {
                    out_.rows_abandoned += std::min(end_, dim_end) - lo;
                    stopped_ = true;
                    return;
                }
                out_.rows_abandoned += hi - lo;  // cut refusal: keep
                continue;                        // counting siblings
            }

            const double area = prefix_area + c * dim.unit_area;
            if (use_pruning_ && area > area_prune_limit()) {
                // Area-monotone: deeper digits and larger c only add
                // area, so the rest of this dim's range is dead.
                out_.n_pruned += std::min(end_, dim_end) - lo;
                if (bounding_)
                    set_dim_digit(static_cast<std::size_t>(d), dim.bound);
                return;
            }

            digits_[static_cast<std::size_t>(d)] = c;
            dense_counts_[static_cast<std::size_t>(dim.id)] = c;
            if (bounding_)
                set_dim_digit(static_cast<std::size_t>(d), c);
            const bool toggled = bounding_ && c == 0;
            if (toggled)
                remove_dim(static_cast<std::size_t>(d));

            // Tighten the bound lazily: the coarse coverage bound is
            // free; each determination (a memoized cost query) only
            // runs while the subtree still survives, so branches dead
            // on the coarse bound never schedule anything.
            bool pruned = bounding_ && bound_exceeds(area);
            const auto& det_list =
                det_enabled_
                    ? model_.by_min_dim[static_cast<std::size_t>(d)]
                    : k_no_dets;
            std::size_t n_det = 0;
            while (!pruned && n_det < det_list.size()) {
                determine(static_cast<std::size_t>(det_list[n_det]));
                ++n_det;
                pruned = bound_exceeds(area);
            }

            if (pruned) {
                // No completion of this prefix can beat the incumbent
                // (or the primed probe time, itself achieved by a point
                // that is never pruned).
                out_.n_pruned += hi - lo;
                if (remote_kill_)
                    out_.n_pruned_remote += hi - lo;
            }
            else {
                walk(d - 1, sub_base, area);
                if (stopped_)
                    return;
            }

            while (n_det > 0)
                undetermine(static_cast<std::size_t>(det_list[--n_det]));
            if (toggled)
                restore_dim(static_cast<std::size_t>(d));
        }
        if (bounding_)
            set_dim_digit(static_cast<std::size_t>(d), dim.bound);
    }

    /// Subtree area pruning is conservative by a margin so that float
    /// summation-order differences against the canonical leaf sum can
    /// never prune a point the linear enumeration would have scored.
    double area_prune_limit() const
    {
        return max_area_ + 1e-6 * (1.0 + std::abs(max_area_));
    }

    /// The locally-derived time to beat: the worker's incumbent, or —
    /// before one exists / when it is still weak — the primed probe
    /// time computed once per search.
    double local_threshold() const
    {
        return out_.have_best
                   ? std::min(prime_time_,
                              out_.best.partition.time_hybrid_ns)
                   : prime_time_;
    }

    /// The effective time to beat: the local threshold, further
    /// tightened by the last-sampled external incumbent bound (a
    /// remote worker's fully evaluated point).  Every pruned point is
    /// strictly worse than an actually-evaluated point either way, so
    /// the best tuple is unaffected.
    double threshold() const
    {
        return std::min(local_threshold(), ext_val_);
    }

    /// True when no completion of the current prefix can beat the
    /// threshold.  Two admissible layers: the free coverage/exact-sum
    /// bound, then — only when exact costs are in play — a fractional-
    /// knapsack relaxation that also respects the controller-area
    /// budget the prefix leaves free.  Sets remote_kill_ when the kill
    /// holds only because of the external bound.
    bool bound_exceeds(double prefix_area)
    {
        remote_kill_ = false;
        const double local = local_threshold() + model_.slack;
        const double thr = threshold() + model_.slack;
        if (!std::isfinite(thr))
            return false;
        const double lhs0 = model_.all_sw - (cov_gain_ + exact_sum_);
        if (lhs0 > thr) {
            remote_kill_ = !(lhs0 > local);
            return true;
        }
        if (!det_enabled_)
            return false;
        const double lhs1 = model_.all_sw - lp_gain_bound(prefix_area);
        if (lhs1 > thr) {
            remote_kill_ = !(lhs1 > local);
            return true;
        }
        return false;
    }

    /// Upper bound on the total saving of any completion: determined
    /// BSBs enter a fractional knapsack with their exact reductions
    /// and controller areas against the area the data-path prefix
    /// leaves free; undetermined-but-coverable BSBs are credited
    /// area-free (their controller area is unknown, zero is the safe
    /// relaxation).
    double lp_gain_bound(double prefix_area)
    {
        double budget = max_area_ - prefix_area +
                        1e-6 * (1.0 + std::abs(max_area_));
        if (budget < 0.0)
            budget = 0.0;
        double g = cov_gain_;
        lp_items_.clear();
        for (std::size_t i = 0; i < cur_red_.size(); ++i) {
            if (determined_[i] == 0 || cur_red_[i] <= 0.0)
                continue;
            const double a = cur_cost_[i].ctrl_area;
            if (a <= 0.0)
                g += cur_red_[i];
            else
                lp_items_.emplace_back(cur_red_[i], a);
        }
        // Classic greedy-by-density: optimal for the fractional
        // relaxation, so an upper bound on every 0/1 packing.
        std::sort(lp_items_.begin(), lp_items_.end(),
                  [](const auto& x, const auto& y) {
                      return x.first * y.second > y.first * x.second;
                  });
        for (const auto& [red, a] : lp_items_) {
            if (a <= budget) {
                g += red;
                budget -= a;
            }
            else {
                g += red * (budget / a);
                break;
            }
        }
        return g;
    }

    /// All of this BSB's relevant dims are assigned: swap its coarse
    /// coverage bound for the memoized exact cost — or, when that
    /// projection has never been scheduled, for the admissible proxy
    /// cost (optimistic in every field), deferring the schedule to
    /// leaves that survive the proxy bounds.
    void determine(std::size_t i)
    {
        if (use_proxy_) {
            if (const auto* c = cache_->find_one(i, dense_counts_)) {
                cur_cost_[i] = *c;
            }
            else {
                cur_cost_[i] = proxy_cost(i);
                proxied_[i] = 1;
                ++n_proxied_;
            }
        }
        else {
            cur_cost_[i] = cache_->cost_one(i, dense_counts_);
        }
        cur_red_[i] = exact_reduction(cur_cost_[i], i == 0);
        exact_sum_ += cur_red_[i];
        determined_[i] = 1;
        if (missing_[i] == 0)
            cov_gain_ -= cond_g_[i];
    }

    void undetermine(std::size_t i)
    {
        exact_sum_ -= cur_red_[i];
        determined_[i] = 0;
        if (proxied_[i] != 0) {
            proxied_[i] = 0;
            --n_proxied_;
        }
        if (missing_[i] == 0)
            cov_gain_ += cond_g_[i];
    }

    /// Admissible stand-in for an unscheduled exact cost: hardware
    /// time from the conditioned length floor (at determination depth
    /// the capacities of every kind this BSB uses are exact), the
    /// controller area from the same floor (controller_area is
    /// monotone in the state count; in ECA mode the state count is
    /// the hoisted ASAP length — allocation-independent, so the area
    /// is exact), comm and adjacency exact.  Every field is <= the
    /// bsb_cost_one result bitwise, so bounds and DPs over proxy
    /// costs never cut a point the exact costs would keep.  A BSB
    /// infeasible under the assigned digits gets exactly the
    /// infeasible cost bsb_cost_one would produce.
    pace::Bsb_cost proxy_cost(std::size_t b) const
    {
        constexpr double inf = std::numeric_limits<double>::infinity();
        const auto& t = model_.terms[b];
        pace::Bsb_cost c;
        c.t_sw = t.t_sw;
        if (!t.coverable) {
            c.t_hw = inf;
            c.ctrl_area = inf;
            return c;
        }
        long long len = t.asap_len;
        for (const auto& [ki, work] : t.work) {
            const long long cap = avail_[ki];
            if (cap <= 0) {
                c.t_hw = inf;
                c.ctrl_area = inf;
                return c;
            }
            const long long floor_len = (work + cap - 1) / cap;
            if (floor_len > len)
                len = floor_len;
        }
        c.t_hw = static_cast<double>(len) * model_.cycle_ns * t.profile;
        c.comm = t.comm;
        c.save_prev = t.adj;
        const int n_states =
            ctx_.ctrl_mode == pace::Controller_mode::optimistic_eca
                ? std::max(1, cache_->frames(b).length)
                : std::max(1, static_cast<int>(len));
        c.ctrl_area = estimate::controller_area(n_states, ctx_.target.gates);
        return c;
    }

    /// A leaf survived the proxy screen: fetch the real schedules for
    /// every proxied BSB and patch the determination sums so the
    /// walk's unwind stays symmetric.
    void resolve_proxies()
    {
        for (std::size_t i = 0; i < proxied_.size(); ++i) {
            if (proxied_[i] == 0)
                continue;
            cur_cost_[i] = cache_->cost_one(i, dense_counts_);
            const double red = exact_reduction(cur_cost_[i], i == 0);
            exact_sum_ += red - cur_red_[i];
            cur_red_[i] = red;
            proxied_[i] = 0;
        }
        n_proxied_ = 0;
    }

    /// A dim's digit was fixed at 0: its type disappears from every
    /// completion of the subtree.
    void remove_dim(std::size_t d)
    {
        for (const int ki : model_.dim_kinds[d])
            if (--n_exec_[static_cast<std::size_t>(ki)] == 0)
                for (const int b : model_.kind_bsbs[static_cast<std::size_t>(ki)])
                    if (++missing_[static_cast<std::size_t>(b)] == 1 &&
                        (determined_.empty() ||
                         determined_[static_cast<std::size_t>(b)] == 0))
                        cov_gain_ -= cond_g_[static_cast<std::size_t>(b)];
    }

    void restore_dim(std::size_t d)
    {
        for (const int ki : model_.dim_kinds[d])
            if (n_exec_[static_cast<std::size_t>(ki)]++ == 0)
                for (const int b : model_.kind_bsbs[static_cast<std::size_t>(ki)])
                    if (--missing_[static_cast<std::size_t>(b)] == 0 &&
                        (determined_.empty() ||
                         determined_[static_cast<std::size_t>(b)] == 0))
                        cov_gain_ += cond_g_[static_cast<std::size_t>(b)];
    }

    /// The digit-prefix-conditioned per-BSB gain bound: the coarse
    /// coverage bound with the ASAP length floor raised to the
    /// work/capacity floors the assigned digits still allow (see
    /// Prune_model::Gain_term).  Identical float expression shape to
    /// build_prune_model, so with all dims at their bounds this
    /// reproduces model_.g_ub bitwise.
    double conditioned_gain(std::size_t b) const
    {
        const auto& t = model_.terms[b];
        long long len = t.asap_len;
        for (const auto& [ki, work] : t.work) {
            const long long cap = std::max(1, avail_[ki]);
            const long long floor_len = (work + cap - 1) / cap;
            if (floor_len > len)
                len = floor_len;
        }
        const double t_hw_lb =
            static_cast<double>(len) * model_.cycle_ns * t.profile;
        double gain = t.t_sw - t_hw_lb - t.comm;
        gain += t.adj;
        return gain > 0.0 ? gain : 0.0;
    }

    /// Re-derive a BSB's conditioned bound after a capacity change,
    /// keeping cov_gain_'s invariant (it sums cond_g_ over covered,
    /// undetermined BSBs).
    void refresh_gain(std::size_t b)
    {
        const double g = conditioned_gain(b);
        if (missing_[b] == 0 &&
            (determined_.empty() || determined_[b] == 0))
            cov_gain_ += g - cond_g_[b];
        cond_g_[b] = g;
    }

    /// Record dim d's digit (dim.bound = unassigned) in the per-kind
    /// instance capacities and refresh the bounds they feed.  The
    /// capacity update runs over every kind a coverable BSB uses
    /// (proxy costs read those); the gain refresh only has BSBs
    /// behind a positive bound to visit.
    void set_dim_digit(std::size_t d, int c)
    {
        const int delta = c - cur_digit_[d];
        if (delta == 0)
            return;
        cur_digit_[d] = c;
        for (const int ki : model_.dim_avail_kinds[d])
            avail_[static_cast<std::size_t>(ki)] += delta;
        for (const int b : model_.dim_refresh_bsbs[d])
            refresh_gain(static_cast<std::size_t>(b));
    }

    void leaf()
    {
        // Strided deadline / external-bound poll: admit() above never
        // reads the clock, so the wall-clock check (and the remote
        // incumbent resample) runs here once per 64 leaves.
        if ((cancel_ != nullptr || ext_ != nullptr) &&
            (++leaf_polls_ & 63) == 0) {
            if (ext_ != nullptr)
                ext_val_ = ext_->get();
            if (cancel_ != nullptr && cancel_->stop()) {
                ++out_.rows_abandoned;
                stopped_ = true;
                return;
            }
        }

        // Canonical area sum — dims ascending, zero digits skipped —
        // reproduces Alloc_space::for_each_range's filter bit-for-bit.
        double area = 0.0;
        for (std::size_t d = 0; d < dims_.size(); ++d)
            if (digits_[d] > 0)
                area += dims_[d].unit_area * digits_[d];
        if (area > max_area_) {
            // The linear loop enumerates but never scores these; they
            // count as pruned only when pruning is on (so that
            // n_evaluated + n_pruned covers the space).
            if (use_pruning_)
                ++out_.n_pruned;
            return;
        }

        if (!det_enabled_ && cache_ != nullptr)
            cache_->costs_for_counts(dense_counts_, costs_);

        if (use_pruning_ && cache_ != nullptr) {
            // Screening pass: the DP's optimal value without the
            // traceback bookkeeping.  Only points whose screened time
            // lands within the float-safety margin of the incumbent
            // get the full partition reconstruction; anything farther
            // is provably worse on time alone (ties resolve on the
            // full evaluation, so the best tuple is untouched).
            //
            // With proxy determinations the first screen may run over
            // optimistic stand-in costs: a kill is then a *bound*
            // prune (n_pruned — the point was never exactly scored,
            // and no schedule was ever run for it), and a survivor
            // pays for its real schedules before the exact screen.
            const auto& costs = det_enabled_ ? cur_cost_ : costs_;
            pace::Pace_options opts;
            opts.ctrl_area_budget = max_area_ - area;
            opts.area_quantum = ctx_.area_quantum;
            opts.table_area_budget = ctx_.dp_table_budget;
            opts.cancel = cancel_;
            double saving = pace::pace_best_saving(costs, opts, ws_);
            double t_est = pace::all_sw_time_ns(costs) - saving;
            if (t_est > threshold() + model_.slack) {
                if (!(t_est > local_threshold() + model_.slack))
                    ++out_.n_pruned_remote;
                if (n_proxied_ > 0) {
                    ++out_.n_pruned;
                }
                else {
                    ++out_.n_evaluated;  // scored, just not reconstructed
                    charge_eval();
                }
                return;
            }
            if (n_proxied_ > 0) {
                resolve_proxies();
                saving = pace::pace_best_saving(cur_cost_, opts, ws_);
                t_est = pace::all_sw_time_ns(cur_cost_) - saving;
                if (t_est > threshold() + model_.slack) {
                    ++out_.n_evaluated;
                    charge_eval();
                    return;
                }
            }
        }

        core::Rmap a;
        for (std::size_t d = 0; d < dims_.size(); ++d)
            if (digits_[d] > 0)
                a.set(dims_[d].id, digits_[d]);
        if (cache_ == nullptr) {
            costs_ = pace::build_cost_model(ctx_.bsbs, ctx_.lib, ctx_.target,
                                            a, ctx_.ctrl_mode, ctx_.storage,
                                            ctx_.scheduler);
            if (use_pruning_) {
                // Admissible per-point bound from the exact costs:
                // skip the PACE DP when even the area-unconstrained
                // gain cannot beat the incumbent.
                const double lb =
                    pace::all_sw_time_ns(costs_) - pace::max_gain(costs_);
                if (lb > threshold() + model_.slack) {
                    ++out_.n_pruned;
                    if (!(lb > local_threshold() + model_.slack))
                        ++out_.n_pruned_remote;
                    return;
                }
            }
        }

        // With det_enabled_ every BSB's exact cost was assembled on
        // the way down (and the exact bound already checked when the
        // last digit was assigned) — run the DP straight on it.
        const Evaluation ev = evaluate_with_costs(
            ctx_, a, det_enabled_ ? cur_cost_ : costs_, ws_);
        ++out_.n_evaluated;
        charge_eval();
        if (!out_.have_best || better_than(ev, out_.best)) {
            out_.best = ev;
            out_.have_best = true;
        }
    }

    /// One scored point against the eval budget (a budget trip is a
    /// live condition observed at the next admission gate).
    void charge_eval()
    {
        if (cancel_ != nullptr)
            cancel_->charge_evals(1);
    }

    const Eval_context& ctx_;
    const std::vector<Dim_info>& dims_;
    const Prune_model& model_;
    bool use_pruning_;
    bool bounding_ = false;     ///< coverage/gain bound active
    bool det_enabled_ = false;  ///< incremental exact costs active
    bool use_proxy_ = false;    ///< defer schedules behind proxy costs
    double max_area_;
    double prime_time_;
    long long begin_;
    long long end_;
    Eval_cache* cache_;
    const util::Cancel_token* cancel_;
    const util::Shared_bound* ext_;  ///< cross-process incumbent bound
    /// Last-sampled external bound (inf = none); stale reads are just
    /// looser admissible thresholds.
    double ext_val_ = std::numeric_limits<double>::infinity();
    bool remote_kill_ = false;  ///< last bound_exceeds kill was remote-only
    bool stopped_ = false;          ///< live trip ended this chunk
    std::uint64_t leaf_polls_ = 0;  ///< strided deadline-poll counter
    Chunk_result& out_;
    std::vector<int> digits_;
    std::vector<int> dense_counts_;  ///< digits scattered per type id
    std::vector<pace::Bsb_cost> costs_;
    // Gain-bound state (bounding_): coverage of the subtree's maximal
    // completion, and the exact-cost overlay (det_enabled_).
    std::vector<int> n_exec_;
    std::vector<int> missing_;
    std::vector<int> avail_;      ///< per kind: capacity under the prefix
    std::vector<int> cur_digit_;  ///< per dim: assigned digit (bound = open)
    std::vector<double> cond_g_;  ///< per BSB: conditioned gain bound
    double cov_gain_ = 0.0;
    std::vector<std::uint8_t> determined_;
    std::vector<std::uint8_t> proxied_;  ///< per BSB: cur_cost_ is a proxy
    int n_proxied_ = 0;                  ///< currently-proxied BSBs
    std::vector<pace::Bsb_cost> cur_cost_;
    std::vector<double> cur_red_;
    double exact_sum_ = 0.0;
    std::vector<std::pair<double, double>> lp_items_;  ///< (red, area)
    /// Per-worker DP arena: the Walker is constructed inside the
    /// worker task, so the workspace's rows are first-touched — and
    /// stay — on the core that sweeps this chunk.  Declared before the
    /// workspace it backs (destruction order).
    util::Arena pace_arena_;
    pace::Pace_workspace pace_ws_{&pace_arena_};
    /// The workspace this chunk actually sweeps with: the private
    /// member above, or a session-persistent Dp_workspace_pool slot
    /// whose checkpoint survives into the next solve.
    pace::Pace_workspace* ws_ = &pace_ws_;
};

/// Evaluate a few promising fitting points before the walk so every
/// worker starts with a realistic time-to-beat instead of pruning
/// nothing until its chunk stumbles on a good incumbent.  The returned
/// time is the hybrid time of a real fitting point: pruning against it
/// can only remove points strictly worse than something the
/// enumeration scores anyway, so the best tuple is unchanged.
double prime_incumbent(const Eval_context& ctx,
                       const std::vector<Dim_info>& dims, double max_area,
                       Eval_cache* cache)
{
    std::vector<core::Rmap> probes;

    core::Rmap max_point;
    for (const auto& d : dims)
        max_point.set(d.id, d.bound);

    core::Rmap half;
    for (const auto& d : dims)
        half.set(d.id, (d.bound + 1) / 2);

    // Greedy fill in dimension order, spending area on each type up
    // to its bound while the data path still fits.
    core::Rmap greedy;
    double area = 0.0;
    for (const auto& d : dims) {
        int c = d.bound;
        while (c > 0 && area + d.unit_area * c > max_area)
            --c;
        greedy.set(d.id, c);
        area += d.unit_area * c;
    }

    probes.push_back(std::move(max_point));
    if (!(half == probes.front()))
        probes.push_back(std::move(half));
    if (std::none_of(probes.begin(), probes.end(),
                     [&](const core::Rmap& p) { return p == greedy; }))
        probes.push_back(std::move(greedy));

    double best = std::numeric_limits<double>::infinity();
    pace::Pace_workspace ws;
    std::vector<pace::Bsb_cost> costs;
    for (const auto& p : probes) {
        const double p_area = p.area(ctx.lib);
        if (p_area > max_area)
            continue;
        // Value-only DP: the probe's exact achievable hybrid time (up
        // to float summation order, which the prune slack absorbs) at
        // a fraction of a full evaluation.
        if (cache != nullptr)
            cache->costs_for(p, costs);
        else
            costs = pace::build_cost_model(ctx.bsbs, ctx.lib, ctx.target, p,
                                           ctx.ctrl_mode, ctx.storage,
                                           ctx.scheduler);
        pace::Pace_options opts;
        opts.ctrl_area_budget = max_area - p_area;
        opts.area_quantum = ctx.area_quantum;
        opts.table_area_budget = ctx.dp_table_budget;
        const double saving = pace::pace_best_saving(costs, opts, &ws);
        best = std::min(best, pace::all_sw_time_ns(costs) - saving);
    }
    return best;
}

}  // namespace

Search_result exhaustive_engine(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Exhaustive_options& options)
{
    util::Wall_timer timer;
    const Alloc_space space(ctx.lib, restrictions);

    Search_result result;
    result.space_size = space.size();

    const long long n = space.size();

    // Resolve the leaf-index window (a distributed range lease, or the
    // whole space).  The walk, the thread clamp and the chunk split all
    // run over [w_begin, w_end); space_size still reports the full
    // space so callers can relate windows to it.
    const long long w_begin = options.window.whole() ? 0
                                                     : options.window.begin;
    const long long w_end = options.window.whole() ? n : options.window.end;
    if (w_begin < 0 || w_begin > w_end || w_end > n)
        throw std::invalid_argument(
            "exhaustive_engine: window [" + std::to_string(w_begin) + ", " +
            std::to_string(w_end) + ") outside the space [0, " +
            std::to_string(n) + ")");
    const long long n_work = w_end - w_begin;
    if (n_work == 0) {
        result.seconds = timer.seconds();
        result.n_threads = 1;
        return result;
    }

    const std::size_t n_threads = util::clamp_chunks(
        options.n_threads, util::Thread_pool::default_concurrency(), n_work);
    result.n_threads = static_cast<int>(n_threads);

    // Dimension table for the tree walk: id order (as enumerated),
    // least-significant first, with cumulative index spans.
    std::vector<Dim_info> dims;
    dims.reserve(space.dims().size());
    long long span = 1;
    bool span_overflow =
        n == std::numeric_limits<long long>::max();  // size saturated
    for (const auto& [id, bound] : space.dims()) {
        dims.push_back({id, bound, ctx.lib[id].area, span});
        if (span > n / (static_cast<long long>(bound) + 1))
            span_overflow = true;
        else
            span *= static_cast<long long>(bound) + 1;
    }

    const bool use_pruning = options.use_pruning && !span_overflow;
    const double max_area = ctx.target.asic.total_area;

    // Pin the DP table width to the total ASIC area so the per-worker
    // Pace_workspace checkpoints stay valid across leaves with
    // different leftover controller budgets (value rows are
    // budget-independent for a fixed quantum and width — see
    // Pace_options::table_area_budget).  Only with an explicit search
    // quantum: the automatic quantum derives from the budget, and
    // widening the table would change it, i.e. change results versus
    // a caller re-evaluating the winner with the same context.
    Eval_context run_ctx = ctx;
    if (ctx.area_quantum > 0.0)
        run_ctx.dp_table_budget = max_area;
    run_ctx.cancel = options.cancel;

    // Worker 0's cache is either the caller's shared cache or one
    // built up front — so the incumbent-priming probes below warm the
    // very cache the first chunk then searches with.
    std::optional<Eval_cache> primed_cache;
    Eval_cache* chunk0_cache = options.shared_cache;
    // For an external shared cache, snapshot before priming so the
    // probes' lookups are reported exactly like a private cache's.
    Eval_cache_stats shared_before;
    if (chunk0_cache != nullptr)
        shared_before = chunk0_cache->stats();
    if (options.use_cache && chunk0_cache == nullptr) {
        primed_cache.emplace(ctx, options.cache_capacity,
                             options.invariants);
        chunk0_cache = &*primed_cache;
    }

    Prune_model model;
    double prime_time = std::numeric_limits<double>::infinity();
    if (use_pruning) {
        model = build_prune_model(
            ctx, dims, options.use_cache ? chunk0_cache : nullptr);
        // Priming only without a cancel token: the probe time belongs
        // to a point the truncated prefix may never reach, so pruning
        // against it could leave an anytime run without the best point
        // of what it actually explored.  (Untripped armed runs lose
        // nothing but speed — the bound prunes are all incumbent-led.)
        if (options.cancel == nullptr)
            prime_time = prime_incumbent(run_ctx, dims, max_area,
                                         options.use_cache ? chunk0_cache
                                                           : nullptr);
    }

    // Session-persistent workspaces: grow the pool to one slot per
    // chunk and open a new pass (surviving checkpoints become
    // "foreign", i.e. cross-request) before any worker touches a slot
    // — slot creation is not thread-safe.
    if (options.dp_pool != nullptr)
        options.dp_pool->prepare(n_threads);

    std::vector<Chunk_result> chunks(n_threads);
    const auto run_chunk = [&](std::size_t c, long long begin, long long end) {
        Chunk_result& out = chunks[c];
        Eval_cache* cache = nullptr;
        std::optional<Eval_cache> own_cache;
        if (options.use_cache) {
            if (c == 0) {
                cache = chunk0_cache;
            }
            else {
                own_cache.emplace(ctx, options.cache_capacity,
                                  options.invariants);
                cache = &*own_cache;
            }
        }
        pace::Pace_workspace* slot_ws =
            options.dp_pool != nullptr ? &options.dp_pool->slot(c).pace
                                       : nullptr;
        if (span_overflow) {
            // Saturated spaces cannot be walked as a tree (index
            // arithmetic would overflow); fall back to the linear loop.
            // Live cancellation polls once per 64 scored points; the
            // injected cut has no per-leaf index here and is not
            // applied (the fallback is unreachable below saturated
            // space sizes, which the fault-injection tests never are).
            std::optional<util::Arena> arena;
            std::optional<pace::Pace_workspace> own_ws;
            pace::Pace_workspace* ws = slot_ws;
            if (ws == nullptr) {
                // per-worker: this lambda IS the task body
                arena.emplace();
                own_ws.emplace(&*arena);
                ws = &*own_ws;
            }
            const long long reused0 = ws->rows_reused();
            const long long swept0 = ws->rows_swept();
            const long long foreign0 = ws->rows_reused_foreign();
            const auto* cancel = options.cancel;
            std::uint64_t polls = 0;
            space.for_each_range(begin, end, max_area,
                                 [&](const core::Rmap& a) {
                                     const Evaluation ev =
                                         evaluate_allocation(run_ctx, a,
                                                             cache, ws);
                                     ++out.n_evaluated;
                                     if (cancel != nullptr)
                                         cancel->charge_evals(1);
                                     if (!out.have_best ||
                                         better_than(ev, out.best)) {
                                         out.best = ev;
                                         out.have_best = true;
                                     }
                                     if (cancel != nullptr &&
                                         (++polls & 63) == 0 &&
                                         cancel->stop()) {
                                         out.abandoned = true;
                                         return false;
                                     }
                                     return true;
                                 });
            out.dp_rows_reused += ws->rows_reused() - reused0;
            out.dp_rows_swept += ws->rows_swept() - swept0;
            out.dp_rows_foreign += ws->rows_reused_foreign() - foreign0;
        }
        else {
            Walker walker(run_ctx, dims, model, use_pruning, max_area,
                          prime_time, begin, end, cache,
                          options.incumbent_bound, out, slot_ws);
            walker.run();
        }
        if (cache != nullptr) {
            out.stats = cache == options.shared_cache
                            ? cache->stats().minus(shared_before)
                            : cache->stats();
        }
    };

    // The chunk split runs over the window's units; the walkers want
    // absolute leaf indices, so shift each chunk by the window base.
    const auto run_chunk_abs = [&](std::size_t c, long long begin,
                                   long long end) {
        run_chunk(c, w_begin + begin, w_begin + end);
    };
    std::size_t chunks_skipped = 0;
    if (n_threads == 1) {
        run_chunk(0, w_begin, w_end);
    }
    else if (options.pool != nullptr) {
        chunks_skipped = util::parallel_chunks(
            *options.pool, n_work, n_threads, run_chunk_abs, options.cancel);
    }
    else {
        util::Thread_pool pool(n_threads);
        chunks_skipped = util::parallel_chunks(pool, n_work, n_threads,
                                               run_chunk_abs, options.cancel);
    }

    // Reduce in chunk (= enumeration) order with the same strict
    // comparison the per-chunk loops used, so ties resolve toward the
    // lowest index exactly as the sequential search did.
    bool have_best = false;
    for (const auto& chunk : chunks) {
        result.n_evaluated += chunk.n_evaluated;
        result.n_pruned += chunk.n_pruned;
        result.n_pruned_remote += chunk.n_pruned_remote;
        result.dp_rows_reused += chunk.dp_rows_reused;
        result.dp_rows_swept += chunk.dp_rows_swept;
        result.dp_rows_reused_cross_request += chunk.dp_rows_foreign;
        result.rows_abandoned += chunk.rows_abandoned;
        result.chunks_abandoned += chunk.abandoned ? 1 : 0;
        result.cache_stats += chunk.stats;
        if (chunk.have_best &&
            (!have_best || better_than(chunk.best, result.best))) {
            result.best = chunk.best;
            have_best = true;
        }
    }
    result.have_best = have_best;
    result.chunks_abandoned += static_cast<long long>(chunks_skipped);
    if (options.cancel != nullptr) {
        result.status = options.cancel->status();
        // Injected-cut refusals never set the token's flag; any
        // leftover abandonment with a clean token is that cut.
        if (result.status == util::Solve_status::complete &&
            (result.rows_abandoned > 0 || result.chunks_abandoned > 0))
            result.status = util::Solve_status::cancelled;
    }

    result.seconds = timer.seconds();
    return result;
}

// The deprecated exhaustive_search shim lives in solver/compat.cpp:
// it delegates to a solver::Session, and the solver layer already
// depends on this one — defining it there keeps the dependency
// one-directional.

}  // namespace lycos::search
