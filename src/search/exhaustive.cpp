#include "search/exhaustive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "estimate/comm.hpp"
#include "estimate/sw_time.hpp"
#include "pace/cost_model.hpp"
#include "sched/time_frames.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace lycos::search {

namespace {

/// What one worker accumulates over its chunk of the index range.
struct Chunk_result {
    Evaluation best;
    bool have_best = false;
    long long n_evaluated = 0;
    long long n_pruned = 0;
    Eval_cache_stats stats;
};

/// One dimension of the mixed-radix walk, most-significant last.
struct Dim_info {
    hw::Resource_id id{};
    int bound = 0;
    double unit_area = 0.0;
    long long span = 0;  ///< indices covered per digit step at this dim
};

/// Allocation-independent data behind the gain-bound prune, computed
/// once per search and shared read-only by all workers.
///
/// Per BSB, an admissible upper bound on the saving it can contribute
/// to any partition under any allocation of the space:
///
///   g_ub = max(0, t_sw - t_hw_lb - comm + save_prev)
///
/// where t_hw_lb uses the ASAP critical-path length under each op
/// kind's minimum latency across all library executors — a true lower
/// bound on every resource-constrained list schedule, immune to the scheduling
/// anomalies that make the schedule length itself non-monotone in the
/// allocation.  t_sw, comm and save_prev are allocation-independent
/// and use the same float expressions as bsb_cost_one.  BSBs no
/// combination of the dims can execute never move to hardware and
/// contribute nothing.
///
/// Coverage is the only allocation-dependent ingredient of the coarse
/// bound: a BSB only contributes where every op kind it uses has an
/// allocated executor, and coverage *is* monotone in the counts.  The
/// walker maintains the coverage of each subtree's maximal completion
/// incrementally (only a digit fixed at 0 removes a type), and
/// replaces the coarse per-BSB bound with the *exact* memoized cost as
/// soon as all of a BSB's relevant dims are assigned (its
/// "determination depth").
struct Prune_model {
    bool enabled = false;
    double all_sw = 0.0;  ///< sum of t_sw, the all-software time
    double slack = 0.0;   ///< float-safety margin on bound comparisons
    std::vector<double> g_ub;  ///< per BSB; 0 when never feasible
    std::vector<std::vector<int>> dim_kinds;  ///< per dim: relevant kinds
    std::vector<std::vector<int>> kind_bsbs;  ///< per kind: BSBs (g_ub>0)
    std::vector<int> n_exec_init;  ///< per kind: #dims executing it
    /// by_min_dim[d]: BSBs whose lowest relevant dim is d — their cost
    /// becomes exact once the walk assigns dim d's digit.  Slot
    /// dims.size() holds BSBs no dim affects (constant cost).
    std::vector<std::vector<int>> by_min_dim;
};

Prune_model build_prune_model(const Eval_context& ctx,
                              const std::vector<Dim_info>& dims,
                              const Eval_cache* cache)
{
    Prune_model m;
    const std::size_t n = ctx.bsbs.size();

    // Coverage at the space's maximal point (every dim at its bound):
    // a BSB no combination of the dims can execute never moves to
    // hardware anywhere in the space.
    hw::Op_set max_cover;
    for (const auto& d : dims)
        max_cover = max_cover | ctx.lib[d.id].ops;

    // True per-kind minimum latency over ALL executors in the library.
    // The schedule lower bound must hold whatever instance an op ends
    // up bound to; latency_table_from picks the smallest-AREA
    // executor, whose latency can exceed a faster-but-larger variant's,
    // and using it here could prune the true optimum.
    sched::Latency_table min_lat(1);
    for (const auto k : hw::all_op_kinds()) {
        int best = std::numeric_limits<int>::max();
        for (std::size_t ri = 0; ri < ctx.lib.size(); ++ri) {
            const auto& rt = ctx.lib[static_cast<hw::Resource_id>(ri)];
            if (rt.ops.contains(k))
                best = std::min(best, rt.latency_cycles);
        }
        if (best != std::numeric_limits<int>::max())
            min_lat[k] = best;
    }
    // The cache's hoisted frames use latency_table_from; they are only
    // reusable when that table already is the per-kind minimum.
    const bool cache_frames_ok =
        cache != nullptr && min_lat == sched::latency_table_from(ctx.lib);

    m.g_ub.assign(n, 0.0);
    m.all_sw = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto& b = ctx.bsbs[i];
        // Exactly the t_sw expression of bsb_cost_one, so the bound's
        // baseline matches the evaluated all-software times.
        const double t_sw = estimate::total_sw_time_ns(b, ctx.target.cpu);
        m.all_sw += t_sw;
        if (b.graph.empty() || !max_cover.includes(b.graph.used_ops()))
            continue;
        // Same float expression shape as bsb_cost_one's t_hw, with the
        // schedule length replaced by its ASAP lower bound, so
        // t_hw >= t_hw_lb holds bitwise (float multiply is monotone).
        const int asap_len =
            cache_frames_ok
                ? cache->frames(i).length
                : sched::compute_time_frames(b.graph, min_lat).length;
        const double t_hw_lb =
            asap_len * ctx.target.asic.cycle_ns() * b.profile;
        const double comm =
            estimate::comm_time_ns(b, ctx.target.bus) * b.profile;
        double gain = t_sw - t_hw_lb - comm;
        if (i > 0)
            gain += std::max(0.0, estimate::adjacency_saving_ns(
                                      ctx.bsbs[i - 1], b, ctx.target.bus));
        if (gain > 0.0)
            m.g_ub[i] = gain;
    }
    // The bound sums drift by float rounding as the walker adds and
    // removes terms; the margin dwarfs that drift while staying far
    // below any physically meaningful time difference.
    m.slack = 1e-7 * std::max(1.0, std::abs(m.all_sw));

    // Coverage machinery, restricted to kinds that matter (used by a
    // BSB with a positive bound).
    m.kind_bsbs.assign(hw::n_op_kinds, {});
    m.n_exec_init.assign(hw::n_op_kinds, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (m.g_ub[i] <= 0.0)
            continue;
        const auto used = ctx.bsbs[i].graph.used_ops();
        for (const auto k : hw::all_op_kinds())
            if (used.contains(k))
                m.kind_bsbs[hw::op_index(k)].push_back(static_cast<int>(i));
    }
    m.dim_kinds.resize(dims.size());
    for (std::size_t d = 0; d < dims.size(); ++d) {
        const auto ops = ctx.lib[dims[d].id].ops;
        for (const auto k : hw::all_op_kinds()) {
            const std::size_t ki = hw::op_index(k);
            if (ops.contains(k) && !m.kind_bsbs[ki].empty()) {
                m.dim_kinds[d].push_back(static_cast<int>(ki));
                ++m.n_exec_init[ki];
            }
        }
    }

    // Determination depths: the lowest dim whose type intersects the
    // BSB's ops (the projection key Eval_cache uses is constant in all
    // other dims).
    m.by_min_dim.assign(dims.size() + 1, {});
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t min_dim = dims.size();
        const auto used = ctx.bsbs[i].graph.used_ops();
        for (std::size_t d = 0; d < dims.size(); ++d)
            if (ctx.lib[dims[d].id].ops.intersects(used)) {
                min_dim = d;
                break;
            }
        m.by_min_dim[min_dim].push_back(static_cast<int>(i));
    }

    m.enabled = true;
    return m;
}

/// Shared empty determination list for walkers running without the
/// incremental exact-cost overlay.
const std::vector<int> k_no_dets;

/// Admissible reduction of a BSB's software time given its exact cost:
/// the most the hybrid can save on this BSB, crediting the adjacency
/// saving unconditionally.
double exact_reduction(const pace::Bsb_cost& c, bool first)
{
    if (std::isinf(c.t_hw))
        return 0.0;
    double red = c.t_sw - c.t_hw - c.comm;
    if (!first)
        red += std::max(0.0, c.save_prev);
    return std::max(0.0, red);
}

/// One worker's branch-and-bound walk over the chunk [begin, end) of
/// the mixed-radix index range.  Digits are assigned most-significant
/// (last dim) first, so each node's subtree is a contiguous index
/// range and leaves appear in exactly the enumeration order of the
/// linear loop this replaces.
class Walker {
public:
    Walker(const Eval_context& ctx, const std::vector<Dim_info>& dims,
           const Prune_model& model, bool use_pruning, double max_area,
           double prime_time, long long begin, long long end,
           Eval_cache* cache, Chunk_result& out)
        : ctx_(ctx), dims_(dims), model_(model), use_pruning_(use_pruning),
          max_area_(max_area), prime_time_(prime_time), begin_(begin),
          end_(end), cache_(cache), out_(out), digits_(dims.size(), 0),
          dense_counts_(ctx.lib.size(), 0)
    {
        bounding_ = use_pruning_ && model_.enabled;
        det_enabled_ = bounding_ && cache_ != nullptr;
        if (bounding_) {
            n_exec_ = model_.n_exec_init;
            missing_.assign(model_.g_ub.size(), 0);
            for (const double g : model_.g_ub)
                cov_gain_ += g;
        }
        if (det_enabled_) {
            determined_.assign(ctx_.bsbs.size(), 0);
            cur_cost_.resize(ctx_.bsbs.size());
            cur_red_.assign(ctx_.bsbs.size(), 0.0);
            // BSBs no dim affects have one constant cost everywhere.
            for (const int i : model_.by_min_dim[dims_.size()])
                determine(static_cast<std::size_t>(i));
        }
    }

    void run() { walk(static_cast<int>(dims_.size()) - 1, 0, 0.0); }

private:
    void walk(int d, long long base, double prefix_area)
    {
        if (d < 0) {
            leaf();
            return;
        }
        const auto& dim = dims_[static_cast<std::size_t>(d)];
        // End of this dim's whole digit range, for bulk prune counting.
        const long long dim_end =
            base + (static_cast<long long>(dim.bound) + 1) * dim.span;
        for (int c = 0; c <= dim.bound; ++c) {
            const long long sub_base = base + c * dim.span;
            if (sub_base >= end_)
                break;  // every later digit lies past the chunk
            if (sub_base + dim.span <= begin_)
                continue;  // before the chunk
            const long long lo = std::max(begin_, sub_base);
            const long long hi = std::min(end_, sub_base + dim.span);

            const double area = prefix_area + c * dim.unit_area;
            if (use_pruning_ && area > area_prune_limit()) {
                // Area-monotone: deeper digits and larger c only add
                // area, so the rest of this dim's range is dead.
                out_.n_pruned += std::min(end_, dim_end) - lo;
                return;
            }

            digits_[static_cast<std::size_t>(d)] = c;
            dense_counts_[static_cast<std::size_t>(dim.id)] = c;
            const bool toggled = bounding_ && c == 0;
            if (toggled)
                remove_dim(static_cast<std::size_t>(d));

            // Tighten the bound lazily: the coarse coverage bound is
            // free; each determination (a memoized cost query) only
            // runs while the subtree still survives, so branches dead
            // on the coarse bound never schedule anything.
            bool pruned = bounding_ && bound_exceeds(area);
            const auto& det_list =
                det_enabled_
                    ? model_.by_min_dim[static_cast<std::size_t>(d)]
                    : k_no_dets;
            std::size_t n_det = 0;
            while (!pruned && n_det < det_list.size()) {
                determine(static_cast<std::size_t>(det_list[n_det]));
                ++n_det;
                pruned = bound_exceeds(area);
            }

            if (pruned) {
                // No completion of this prefix can beat the incumbent
                // (or the primed probe time, itself achieved by a point
                // that is never pruned).
                out_.n_pruned += hi - lo;
            }
            else {
                walk(d - 1, sub_base, area);
            }

            while (n_det > 0)
                undetermine(static_cast<std::size_t>(det_list[--n_det]));
            if (toggled)
                restore_dim(static_cast<std::size_t>(d));
        }
    }

    /// Subtree area pruning is conservative by a margin so that float
    /// summation-order differences against the canonical leaf sum can
    /// never prune a point the linear enumeration would have scored.
    double area_prune_limit() const
    {
        return max_area_ + 1e-6 * (1.0 + std::abs(max_area_));
    }

    /// The time to beat: the worker's incumbent, or — before one
    /// exists / when it is still weak — the primed probe time computed
    /// once per search.  Every pruned point is strictly worse than an
    /// actually-evaluated point, so the best tuple is unaffected.
    double threshold() const
    {
        return out_.have_best
                   ? std::min(prime_time_,
                              out_.best.partition.time_hybrid_ns)
                   : prime_time_;
    }

    /// True when no completion of the current prefix can beat the
    /// threshold.  Two admissible layers: the free coverage/exact-sum
    /// bound, then — only when exact costs are in play — a fractional-
    /// knapsack relaxation that also respects the controller-area
    /// budget the prefix leaves free.
    bool bound_exceeds(double prefix_area)
    {
        const double thr = threshold() + model_.slack;
        if (!std::isfinite(thr))
            return false;
        if (model_.all_sw - (cov_gain_ + exact_sum_) > thr)
            return true;
        if (!det_enabled_)
            return false;
        return model_.all_sw - lp_gain_bound(prefix_area) > thr;
    }

    /// Upper bound on the total saving of any completion: determined
    /// BSBs enter a fractional knapsack with their exact reductions
    /// and controller areas against the area the data-path prefix
    /// leaves free; undetermined-but-coverable BSBs are credited
    /// area-free (their controller area is unknown, zero is the safe
    /// relaxation).
    double lp_gain_bound(double prefix_area)
    {
        double budget = max_area_ - prefix_area +
                        1e-6 * (1.0 + std::abs(max_area_));
        if (budget < 0.0)
            budget = 0.0;
        double g = cov_gain_;
        lp_items_.clear();
        for (std::size_t i = 0; i < cur_red_.size(); ++i) {
            if (determined_[i] == 0 || cur_red_[i] <= 0.0)
                continue;
            const double a = cur_cost_[i].ctrl_area;
            if (a <= 0.0)
                g += cur_red_[i];
            else
                lp_items_.emplace_back(cur_red_[i], a);
        }
        // Classic greedy-by-density: optimal for the fractional
        // relaxation, so an upper bound on every 0/1 packing.
        std::sort(lp_items_.begin(), lp_items_.end(),
                  [](const auto& x, const auto& y) {
                      return x.first * y.second > y.first * x.second;
                  });
        for (const auto& [red, a] : lp_items_) {
            if (a <= budget) {
                g += red;
                budget -= a;
            }
            else {
                g += red * (budget / a);
                break;
            }
        }
        return g;
    }

    /// All of this BSB's relevant dims are assigned: swap its coarse
    /// coverage bound for the exact memoized cost.
    void determine(std::size_t i)
    {
        const auto& c = cache_->cost_one(i, dense_counts_);
        cur_cost_[i] = c;
        cur_red_[i] = exact_reduction(c, i == 0);
        exact_sum_ += cur_red_[i];
        determined_[i] = 1;
        if (missing_[i] == 0)
            cov_gain_ -= model_.g_ub[i];
    }

    void undetermine(std::size_t i)
    {
        exact_sum_ -= cur_red_[i];
        determined_[i] = 0;
        if (missing_[i] == 0)
            cov_gain_ += model_.g_ub[i];
    }

    /// A dim's digit was fixed at 0: its type disappears from every
    /// completion of the subtree.
    void remove_dim(std::size_t d)
    {
        for (const int ki : model_.dim_kinds[d])
            if (--n_exec_[static_cast<std::size_t>(ki)] == 0)
                for (const int b : model_.kind_bsbs[static_cast<std::size_t>(ki)])
                    if (++missing_[static_cast<std::size_t>(b)] == 1 &&
                        (determined_.empty() ||
                         determined_[static_cast<std::size_t>(b)] == 0))
                        cov_gain_ -= model_.g_ub[static_cast<std::size_t>(b)];
    }

    void restore_dim(std::size_t d)
    {
        for (const int ki : model_.dim_kinds[d])
            if (n_exec_[static_cast<std::size_t>(ki)]++ == 0)
                for (const int b : model_.kind_bsbs[static_cast<std::size_t>(ki)])
                    if (--missing_[static_cast<std::size_t>(b)] == 0 &&
                        (determined_.empty() ||
                         determined_[static_cast<std::size_t>(b)] == 0))
                        cov_gain_ += model_.g_ub[static_cast<std::size_t>(b)];
    }

    void leaf()
    {
        // Canonical area sum — dims ascending, zero digits skipped —
        // reproduces Alloc_space::for_each_range's filter bit-for-bit.
        double area = 0.0;
        for (std::size_t d = 0; d < dims_.size(); ++d)
            if (digits_[d] > 0)
                area += dims_[d].unit_area * digits_[d];
        if (area > max_area_) {
            // The linear loop enumerates but never scores these; they
            // count as pruned only when pruning is on (so that
            // n_evaluated + n_pruned covers the space).
            if (use_pruning_)
                ++out_.n_pruned;
            return;
        }

        if (!det_enabled_ && cache_ != nullptr)
            cache_->costs_for_counts(dense_counts_, costs_);

        if (use_pruning_ && cache_ != nullptr) {
            // Screening pass: the DP's optimal value without the
            // traceback bookkeeping.  Only points whose screened time
            // lands within the float-safety margin of the incumbent
            // get the full partition reconstruction; anything farther
            // is provably worse on time alone (ties resolve on the
            // full evaluation, so the best tuple is untouched).
            const auto& costs = det_enabled_ ? cur_cost_ : costs_;
            pace::Pace_options opts;
            opts.ctrl_area_budget = max_area_ - area;
            opts.area_quantum = ctx_.area_quantum;
            const double saving =
                pace::pace_best_saving(costs, opts, &pace_ws_);
            const double t_est = pace::all_sw_time_ns(costs) - saving;
            if (t_est > threshold() + model_.slack) {
                ++out_.n_evaluated;  // scored, just not reconstructed
                return;
            }
        }

        core::Rmap a;
        for (std::size_t d = 0; d < dims_.size(); ++d)
            if (digits_[d] > 0)
                a.set(dims_[d].id, digits_[d]);
        if (cache_ == nullptr) {
            costs_ = pace::build_cost_model(ctx_.bsbs, ctx_.lib, ctx_.target,
                                            a, ctx_.ctrl_mode, ctx_.storage,
                                            ctx_.scheduler);
            if (use_pruning_) {
                // Admissible per-point bound from the exact costs:
                // skip the PACE DP when even the area-unconstrained
                // gain cannot beat the incumbent.
                const double lb =
                    pace::all_sw_time_ns(costs_) - pace::max_gain(costs_);
                if (lb > threshold() + model_.slack) {
                    ++out_.n_pruned;
                    return;
                }
            }
        }

        // With det_enabled_ every BSB's exact cost was assembled on
        // the way down (and the exact bound already checked when the
        // last digit was assigned) — run the DP straight on it.
        const Evaluation ev = evaluate_with_costs(
            ctx_, a, det_enabled_ ? cur_cost_ : costs_, &pace_ws_);
        ++out_.n_evaluated;
        if (!out_.have_best || better_than(ev, out_.best)) {
            out_.best = ev;
            out_.have_best = true;
        }
    }

    const Eval_context& ctx_;
    const std::vector<Dim_info>& dims_;
    const Prune_model& model_;
    bool use_pruning_;
    bool bounding_ = false;     ///< coverage/gain bound active
    bool det_enabled_ = false;  ///< incremental exact costs active
    double max_area_;
    double prime_time_;
    long long begin_;
    long long end_;
    Eval_cache* cache_;
    Chunk_result& out_;
    std::vector<int> digits_;
    std::vector<int> dense_counts_;  ///< digits scattered per type id
    std::vector<pace::Bsb_cost> costs_;
    // Gain-bound state (bounding_): coverage of the subtree's maximal
    // completion, and the exact-cost overlay (det_enabled_).
    std::vector<int> n_exec_;
    std::vector<int> missing_;
    double cov_gain_ = 0.0;
    std::vector<std::uint8_t> determined_;
    std::vector<pace::Bsb_cost> cur_cost_;
    std::vector<double> cur_red_;
    double exact_sum_ = 0.0;
    std::vector<std::pair<double, double>> lp_items_;  ///< (red, area)
    pace::Pace_workspace pace_ws_;
};

/// Evaluate a few promising fitting points before the walk so every
/// worker starts with a realistic time-to-beat instead of pruning
/// nothing until its chunk stumbles on a good incumbent.  The returned
/// time is the hybrid time of a real fitting point: pruning against it
/// can only remove points strictly worse than something the
/// enumeration scores anyway, so the best tuple is unchanged.
double prime_incumbent(const Eval_context& ctx,
                       const std::vector<Dim_info>& dims, double max_area,
                       Eval_cache* cache)
{
    std::vector<core::Rmap> probes;

    core::Rmap max_point;
    for (const auto& d : dims)
        max_point.set(d.id, d.bound);

    core::Rmap half;
    for (const auto& d : dims)
        half.set(d.id, (d.bound + 1) / 2);

    // Greedy fill in dimension order, spending area on each type up
    // to its bound while the data path still fits.
    core::Rmap greedy;
    double area = 0.0;
    for (const auto& d : dims) {
        int c = d.bound;
        while (c > 0 && area + d.unit_area * c > max_area)
            --c;
        greedy.set(d.id, c);
        area += d.unit_area * c;
    }

    probes.push_back(std::move(max_point));
    if (!(half == probes.front()))
        probes.push_back(std::move(half));
    if (std::none_of(probes.begin(), probes.end(),
                     [&](const core::Rmap& p) { return p == greedy; }))
        probes.push_back(std::move(greedy));

    double best = std::numeric_limits<double>::infinity();
    pace::Pace_workspace ws;
    std::vector<pace::Bsb_cost> costs;
    for (const auto& p : probes) {
        const double p_area = p.area(ctx.lib);
        if (p_area > max_area)
            continue;
        // Value-only DP: the probe's exact achievable hybrid time (up
        // to float summation order, which the prune slack absorbs) at
        // a fraction of a full evaluation.
        if (cache != nullptr)
            cache->costs_for(p, costs);
        else
            costs = pace::build_cost_model(ctx.bsbs, ctx.lib, ctx.target, p,
                                           ctx.ctrl_mode, ctx.storage,
                                           ctx.scheduler);
        pace::Pace_options opts;
        opts.ctrl_area_budget = max_area - p_area;
        opts.area_quantum = ctx.area_quantum;
        const double saving = pace::pace_best_saving(costs, opts, &ws);
        best = std::min(best, pace::all_sw_time_ns(costs) - saving);
    }
    return best;
}

}  // namespace

Search_result exhaustive_search(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Exhaustive_options& options)
{
    util::Wall_timer timer;
    const Alloc_space space(ctx.lib, restrictions);

    Search_result result;
    result.space_size = space.size();

    const long long n = space.size();
    std::size_t n_threads =
        options.n_threads > 0
            ? static_cast<std::size_t>(options.n_threads)
            : util::Thread_pool::default_concurrency();
    n_threads = std::max<std::size_t>(
        1, std::min(n_threads, static_cast<std::size_t>(
                                   std::min<long long>(n, 1 << 16))));
    result.n_threads = static_cast<int>(n_threads);

    // Dimension table for the tree walk: id order (as enumerated),
    // least-significant first, with cumulative index spans.
    std::vector<Dim_info> dims;
    dims.reserve(space.dims().size());
    long long span = 1;
    bool span_overflow =
        n == std::numeric_limits<long long>::max();  // size saturated
    for (const auto& [id, bound] : space.dims()) {
        dims.push_back({id, bound, ctx.lib[id].area, span});
        if (span > n / (static_cast<long long>(bound) + 1))
            span_overflow = true;
        else
            span *= static_cast<long long>(bound) + 1;
    }

    const bool use_pruning = options.use_pruning && !span_overflow;
    const double max_area = ctx.target.asic.total_area;

    // Worker 0's cache is either the caller's shared cache or one
    // built up front — so the incumbent-priming probes below warm the
    // very cache the first chunk then searches with.
    std::optional<Eval_cache> primed_cache;
    Eval_cache* chunk0_cache = options.shared_cache;
    // For an external shared cache, snapshot before priming so the
    // probes' lookups are reported exactly like a private cache's.
    Eval_cache_stats shared_before;
    if (chunk0_cache != nullptr)
        shared_before = chunk0_cache->stats();
    if (options.use_cache && chunk0_cache == nullptr) {
        primed_cache.emplace(ctx);
        chunk0_cache = &*primed_cache;
    }

    Prune_model model;
    double prime_time = std::numeric_limits<double>::infinity();
    if (use_pruning) {
        model = build_prune_model(
            ctx, dims, options.use_cache ? chunk0_cache : nullptr);
        prime_time = prime_incumbent(ctx, dims, max_area,
                                     options.use_cache ? chunk0_cache
                                                       : nullptr);
    }

    std::vector<Chunk_result> chunks(n_threads);
    const auto run_chunk = [&](std::size_t c, long long begin, long long end) {
        Chunk_result& out = chunks[c];
        Eval_cache* cache = nullptr;
        std::optional<Eval_cache> own_cache;
        if (options.use_cache) {
            if (c == 0) {
                cache = chunk0_cache;
            }
            else {
                own_cache.emplace(ctx);
                cache = &*own_cache;
            }
        }
        if (span_overflow) {
            // Saturated spaces cannot be walked as a tree (index
            // arithmetic would overflow); fall back to the linear loop.
            pace::Pace_workspace ws;
            space.for_each_range(begin, end, max_area,
                                 [&](const core::Rmap& a) {
                                     const Evaluation ev =
                                         evaluate_allocation(ctx, a, cache,
                                                             &ws);
                                     ++out.n_evaluated;
                                     if (!out.have_best ||
                                         better_than(ev, out.best)) {
                                         out.best = ev;
                                         out.have_best = true;
                                     }
                                     return true;
                                 });
        }
        else {
            Walker walker(ctx, dims, model, use_pruning, max_area,
                          prime_time, begin, end, cache, out);
            walker.run();
        }
        if (cache != nullptr) {
            out.stats = cache == options.shared_cache
                            ? cache->stats().minus(shared_before)
                            : cache->stats();
        }
    };

    if (n_threads == 1) {
        run_chunk(0, 0, n);
    }
    else {
        util::Thread_pool pool(n_threads);
        util::parallel_chunks(pool, n, n_threads, run_chunk);
    }

    // Reduce in chunk (= enumeration) order with the same strict
    // comparison the per-chunk loops used, so ties resolve toward the
    // lowest index exactly as the sequential search did.
    bool have_best = false;
    for (const auto& chunk : chunks) {
        result.n_evaluated += chunk.n_evaluated;
        result.n_pruned += chunk.n_pruned;
        result.cache_stats += chunk.stats;
        if (chunk.have_best &&
            (!have_best || better_than(chunk.best, result.best))) {
            result.best = chunk.best;
            have_best = true;
        }
    }

    result.seconds = timer.seconds();
    return result;
}

}  // namespace lycos::search
