#include "search/exhaustive.hpp"

#include <algorithm>
#include <optional>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace lycos::search {

namespace {

/// What one worker accumulates over its chunk of the index range.
struct Chunk_result {
    Evaluation best;
    bool have_best = false;
    long long n_evaluated = 0;
    Eval_cache_stats stats;
};

}  // namespace

Search_result exhaustive_search(const Eval_context& ctx,
                                const core::Rmap& restrictions,
                                const Exhaustive_options& options)
{
    util::Wall_timer timer;
    const Alloc_space space(ctx.lib, restrictions);

    Search_result result;
    result.space_size = space.size();

    const long long n = space.size();
    std::size_t n_threads =
        options.n_threads > 0
            ? static_cast<std::size_t>(options.n_threads)
            : util::Thread_pool::default_concurrency();
    n_threads = std::max<std::size_t>(
        1, std::min(n_threads, static_cast<std::size_t>(
                                   std::min<long long>(n, 1 << 16))));
    result.n_threads = static_cast<int>(n_threads);

    std::vector<Chunk_result> chunks(n_threads);
    const auto run_chunk = [&](std::size_t c, long long begin, long long end) {
        Chunk_result& out = chunks[c];
        std::optional<Eval_cache> cache;
        if (options.use_cache)
            cache.emplace(ctx);
        space.for_each_range(
            begin, end, ctx.target.asic.total_area,
            [&](const core::Rmap& a) {
                const Evaluation ev = evaluate_allocation(
                    ctx, a, cache ? &*cache : nullptr);
                ++out.n_evaluated;
                if (!out.have_best || better_than(ev, out.best)) {
                    out.best = ev;
                    out.have_best = true;
                }
                return true;
            });
        if (cache)
            out.stats = cache->stats();
    };

    if (n_threads == 1) {
        run_chunk(0, 0, n);
    }
    else {
        util::Thread_pool pool(n_threads);
        util::parallel_chunks(pool, n, n_threads, run_chunk);
    }

    // Reduce in chunk (= enumeration) order with the same strict
    // comparison the per-chunk loops used, so ties resolve toward the
    // lowest index exactly as the sequential search did.
    bool have_best = false;
    for (const auto& chunk : chunks) {
        result.n_evaluated += chunk.n_evaluated;
        result.cache_stats += chunk.stats;
        if (chunk.have_best &&
            (!have_best || better_than(chunk.best, result.best))) {
            result.best = chunk.best;
            have_best = true;
        }
    }

    result.seconds = timer.seconds();
    return result;
}

}  // namespace lycos::search
