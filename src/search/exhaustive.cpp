#include "search/exhaustive.hpp"

#include "util/timer.hpp"

namespace lycos::search {

Search_result exhaustive_search(const Eval_context& ctx,
                                const core::Rmap& restrictions)
{
    util::Wall_timer timer;
    Alloc_space space(ctx.lib, restrictions);

    Search_result result;
    result.space_size = space.size();
    bool have_best = false;

    space.for_each(ctx.target.asic.total_area, [&](const core::Rmap& a) {
        const Evaluation ev = evaluate_allocation(ctx, a);
        ++result.n_evaluated;
        const bool better =
            !have_best ||
            ev.partition.time_hybrid_ns <
                result.best.partition.time_hybrid_ns ||
            (ev.partition.time_hybrid_ns ==
                 result.best.partition.time_hybrid_ns &&
             ev.datapath_area < result.best.datapath_area);
        if (better) {
            result.best = ev;
            have_best = true;
        }
        return true;
    });

    result.seconds = timer.seconds();
    return result;
}

}  // namespace lycos::search
