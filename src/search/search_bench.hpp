// Old-vs-new allocation-search benchmark (the PR-over-PR speedup
// tracker behind BENCH_search.json).
//
// Runs the same search workload over one synthetic scenario four ways
// and reports allocation evaluations per second:
//   old           naive cycle-stepping scheduler, no memoization,
//                 no pruning, single thread — the original baseline,
//   new_single    event-driven scheduler + Eval_cache, no pruning,
//                 single thread — the PR 1 path,
//   new_pruned    branch-and-bound walker + Pace_workspace reuse +
//                 value-only DP screening, single thread — this PR,
//   new_parallel  the pruned search on all hardware threads.
// All variants must find the identical best allocation (the
// determinism contract); the result records that check and the
// explicit pruned-vs-unpruned cross-check CI fails on.
//
// The pruned variants skip provably-worse points, so their throughput
// is reported as *effective* evaluations per second: the unpruned
// workload (new_single's evaluation count) divided by the pruned wall
// time — i.e. how fast the same space gets searched.
//
// A separate instrumented pass over the space splits evaluation time
// into scheduling (memoized cost lookup) vs. the PACE DP, the two
// halves the tentpole optimizations target.
//
// Callable from `lycos_cli --bench-json <path>` and from the
// bench_scaling binary so CI can emit the JSON reproducibly.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace lycos::search {

/// Scenario shape: 16 BSBs at the top of the bench_scaling sweep
/// range (128 ops each), heterogeneous op mixes, searched with the
/// usual coarse area quantum.
struct Search_bench_config {
    int n_bsbs = 16;
    int ops_per_bsb = 128;
    double asic_area = 20000.0;
    int max_count_per_type = 2;  ///< restriction bound clamp (space size control)
    std::uint64_t seed = 42;
};

/// Perf-regression thresholds for the dispatched SIMD kernels
/// (BENCH_search.json "kernels" section): the min-of-N SIMD timing
/// must beat the min-of-N scalar timing by at least these ratios, or
/// write_bench_report fails the build.  Scalar-only configurations
/// (LYCOS_DISABLE_SIMD, non-AVX2 CPUs) pass trivially —
/// `simd_available` records which case the report describes.
inline constexpr double k_kernel_pace_min_speedup = 1.5;
inline constexpr double k_kernel_merge_min_speedup = 1.3;

/// Serving-layer latency gate (BENCH_search.json "serve" section):
/// p99 end-to-end latency of a request burst must stay under
/// `factor x` the calibrated per-request cost times the queue depth
/// per worker, with an absolute floor so fast machines cannot fail on
/// timer noise.  Deliberately generous — the gate exists to catch
/// catastrophic regressions (a serialized pool, a lost wakeup, a
/// per-request overhead blowup), not to pin the absolute latency.
inline constexpr double k_serve_p99_budget_factor = 4.0;
inline constexpr double k_serve_p99_floor_ms = 50.0;

/// Request-batching throughput gate (BENCH "serve_batch" section):
/// an interleaved two-family burst against a deliberately small
/// session pool (capacity 1, one worker) must run at least this much
/// faster with batching on than off.  Unbatched, the alternating
/// families evict each other's session on every request — every solve
/// is cold; batched, each family drains into one batch on one pinned
/// session and every member after the first resumes the shared
/// Eval_cache and the checkpointed DP rows.  The gate also requires
/// cross-request DP reuse to be observed (dp_rows_cross > 0) and the
/// batched answers to be bit-identical to the unbatched (fresh-
/// session) ones.
inline constexpr double k_serve_batch_min_speedup = 1.3;

/// Measured throughputs (evaluations per second) and speedups.
struct Search_bench_result {
    long long space_size = 0;
    long long n_evaluated = 0;  ///< of the unpruned variants
    long long n_evaluated_pruned = 0;  ///< fully/value-DP scored points
    long long n_pruned = 0;            ///< points skipped by the bound
    double secs_old = 0.0;
    double secs_new_single = 0.0;
    double secs_new_pruned = 0.0;
    double secs_new_parallel = 0.0;
    double evals_per_sec_old = 0.0;
    double evals_per_sec_new_single = 0.0;
    double evals_per_sec_new_pruned = 0.0;    ///< effective (see header)
    double evals_per_sec_new_parallel = 0.0;  ///< effective
    double speedup_single = 0.0;    ///< new_single vs old
    double speedup_pruned = 0.0;    ///< new_pruned vs old (effective)
    double speedup_pruned_vs_single = 0.0;  ///< new_pruned vs new_single
    double speedup_parallel = 0.0;  ///< new_parallel vs old (effective)
    double cache_hit_rate = 0.0;    ///< of the single-threaded cached run
    double cache_hit_rate_pruned = 0.0;
    double sched_seconds = 0.0;  ///< instrumented pass: memoized cost fetch
    double dp_seconds = 0.0;     ///< instrumented pass: PACE DP
    int n_threads = 1;           ///< used by the parallel run
    bool same_best = false;      ///< all variants agreed on the best
    bool pruned_matches_unpruned = false;  ///< explicit B&B cross-check

    /// Incremental-DP observability of the pruned run (the pruned
    /// search is the incremental path; pruned_matches_unpruned is the
    /// incremental-vs-cold cross-check CI gates on).
    long long dp_rows_reused = 0;
    long long dp_rows_swept = 0;

    /// Two-ASIC DP: the Pareto-sparse production path against both
    /// retained references (reachable-frontier sweep, dense full
    /// scan) on a two-ASIC split of the same scenario.
    long long multi_n_bsbs = 0;
    double multi_secs_dense = 0.0;     ///< per dense partition call
    double multi_secs_frontier = 0.0;  ///< per frontier partition call
    double multi_secs_sparse = 0.0;    ///< per sparse partition call
    double multi_speedup = 0.0;        ///< dense / sparse
    double multi_speedup_frontier = 0.0;  ///< dense / frontier
    double multi_evals_per_sec = 0.0;  ///< sparse partitions per second
    double multi_frontier_occupancy = 0.0;  ///< frontier cells / dense cells
    double multi_sparse_occupancy = 0.0;    ///< sparse states / dense cells
    long long multi_sparse_states = 0;      ///< states stored (traceback)
    double multi_area_quantum = 0.0;
    std::size_t multi_traceback_bytes = 0;  ///< sparse encoding
    std::size_t multi_traceback_bytes_frontier = 0;
    std::size_t multi_traceback_bytes_dense = 0;
    bool multi_matches_dense = false;  ///< frontier == dense (placement+time)
    /// Sparse == dense == frontier on placement and time — the
    /// sparse_matches_dense gate CI fails on.
    bool multi_sparse_matches_dense = false;

    /// Solver section: the same scenario driven through the
    /// solver::Session API, one entry per registered strategy, plus
    /// the shim-vs-session cross-check CI gates on (the deprecated
    /// free functions must produce bit-identical best tuples).
    double solver_exh_seconds = 0.0;
    double solver_exh_evals_per_sec = 0.0;  ///< effective (unpruned workload)
    double solver_hill_seconds = 0.0;
    long long solver_hill_evaluated = 0;    ///< screened candidates scored
    double solver_hill_evals_per_sec = 0.0;
    bool solver_matches_shims = false;      ///< both shims, any thread count

    /// multi_asic_bb: the pair-tree branch-and-bound — pair space,
    /// scored/pruned pairs, row-bound kills, throughput, and the
    /// determinism cross-check (best pair identical for 1 thread vs
    /// parallel).  rows_pruned > 0 and dp_states < dp_dense are gates
    /// on the standard bench space: the row bound must actually kill
    /// rows and the sparse DP must sweep fewer cells than the dense
    /// grids it replaced.
    long long solver_multi_pairs = 0;
    long long solver_multi_axis0 = 0;
    long long solver_multi_axis1 = 0;
    long long solver_multi_evaluated = 0;
    long long solver_multi_pruned = 0;
    long long solver_multi_rows_visited = 0;
    long long solver_multi_rows_pruned = 0;
    long long solver_multi_pairs_skipped = 0;
    long long solver_multi_dp_states = 0;  ///< sparse states swept, all DPs
    long long solver_multi_dp_dense = 0;   ///< dense-grid equivalent
    double solver_multi_seconds = 0.0;
    double solver_multi_pairs_per_sec = 0.0;  ///< effective (whole pair space)
    double solver_multi_best_time_ns = 0.0;
    bool solver_multi_deterministic = false;

    /// Deadline/anytime section (docs/api.md "Deadlines, budgets, and
    /// anytime results"): the poll-overhead gate — an armed but
    /// never-tripping Cancel_token on the new_single sweep must cost
    /// under 1% wall time (min-of-3 on both sides, small absolute
    /// noise floor) — plus incumbent quality under 1/10/100 ms
    /// deadlines (informational: what a deadline buys depends on the
    /// host's speed, so only the overhead is gated).
    double deadline_secs_no_token = 0.0;  ///< min-of-3, token disabled
    double deadline_secs_token = 0.0;     ///< min-of-3, far-deadline token
    double deadline_poll_overhead = 0.0;  ///< token / no-token - 1
    bool deadline_overhead_ok = false;    ///< < 1% (+2 ms noise floor)
    std::array<double, 3> deadline_ms_points{1.0, 10.0, 100.0};
    std::array<double, 3> deadline_best_time_ns{0.0, 0.0, 0.0};
    std::array<bool, 3> deadline_complete{false, false, false};
    double deadline_untruncated_time_ns = 0.0;  ///< the full solve's best

    /// Serve section (BENCH "serve"): a burst of hill_climb requests
    /// over the same scenario through serve::Server — end-to-end
    /// (queue + solve) latency percentiles, the status counts, and
    /// the p99 gate.  The burst mixes priorities and includes a few
    /// already-expired deadlines, so the degradation ladder (skip to
    /// the greedy incumbent) is exercised on every run.
    long long serve_requests = 0;
    long long serve_completed = 0;
    long long serve_degraded = 0;
    long long serve_shed = 0;
    long long serve_failed = 0;
    int serve_workers = 0;
    double serve_calib_ms = 0.0;  ///< one-shot per-request cost (no queue)
    double serve_p50_ms = 0.0;
    double serve_p99_ms = 0.0;
    double serve_p99_budget_ms = 0.0;
    bool serve_p99_ok = false;  ///< p99 <= budget — the CI gate

    /// Serve batching section (BENCH "serve_batch"): the same
    /// interleaved two-family burst replayed through a one-worker,
    /// capacity-1-pool Server with batching on and off (min-of-N wall
    /// each).  Unbatched, the families LRU-evict each other and every
    /// solve is cold — the fresh-session reference of the bit-identity
    /// contract; batched, each family is served as one batch on one
    /// pinned session.  Gated on k_serve_batch_min_speedup, on
    /// observed cross-request DP reuse, on per-request identity, and
    /// on the batched p99 staying inside the usual serve budget.
    long long serve_batch_requests = 0;  ///< burst size (each mode, per run)
    int serve_batch_families = 0;
    double serve_batch_secs_on = 0.0;   ///< min-of-N wall, batching on
    double serve_batch_secs_off = 0.0;  ///< min-of-N wall, batching off
    double serve_batch_rps_on = 0.0;    ///< requests per second
    double serve_batch_rps_off = 0.0;
    double serve_batch_speedup = 0.0;   ///< secs_off / secs_on
    double serve_batch_p50_ms = 0.0;    ///< batched timed run, end-to-end
    double serve_batch_p99_ms = 0.0;
    double serve_batch_p99_budget_ms = 0.0;
    long long serve_batch_dp_rows_cross = 0;  ///< batched timed run
    long long serve_batch_batches = 0;        ///< batches formed
    long long serve_batch_max_size = 0;
    double serve_batch_cache_hit_rate = 0.0;  ///< combined, batched run
    bool serve_batch_identical = false;  ///< batched == unbatched, per request
    bool serve_batch_ok = false;         ///< the CI gate (see above)

    /// Distributed section (BENCH "dist"): the solver scenario's
    /// exhaustive_bb fanned out through dist::solve_distributed over
    /// 1/2/4 in-process loopback workers — wall time, lease and
    /// incumbent-broadcast counts per worker count, plus the
    /// bit-identity gate against the local Session solve
    /// (`dist_matches_local`) write_bench_report fails on.  The wall
    /// times are informational (loopback fan-out of a small space is
    /// overhead-dominated); only the identity is gated.
    std::array<int, 3> dist_worker_counts{1, 2, 4};
    std::array<double, 3> dist_seconds{0.0, 0.0, 0.0};
    std::array<long long, 3> dist_leases{0, 0, 0};
    std::array<long long, 3> dist_broadcasts{0, 0, 0};
    long long dist_units = 0;  ///< leased logical units (leaves)
    bool dist_matches_local = false;  ///< identical tuple, all counts

    /// Kernel-dispatch section (BENCH "kernels"): min-of-N timings of
    /// the scalar kernel table against the best dispatched one on the
    /// two hot row scans — the single-ASIC value-sweep row
    /// (pace_row_sw + pace_row_hw over a wide row) and the multi-ASIC
    /// dominance-merge scan (multi_shift_lane + max_reduce over a
    /// large SoA lane).  On scalar-only builds both tables are the
    /// same and the *_ok gates pass trivially.
    bool kernels_simd_available = false;
    std::string kernels_isa;  ///< active dispatch level ("scalar"/"avx2")
    double kern_pace_secs_scalar = 0.0;   ///< min-of-N, one sweep pass
    double kern_pace_secs_simd = 0.0;
    double kern_pace_speedup = 0.0;       ///< scalar / simd
    bool kern_pace_ok = false;  ///< >= k_kernel_pace_min_speedup (or no SIMD)
    double kern_merge_secs_scalar = 0.0;  ///< min-of-N, one merge scan
    double kern_merge_secs_simd = 0.0;
    double kern_merge_speedup = 0.0;
    bool kern_merge_ok = false;  ///< >= k_kernel_merge_min_speedup (or no SIMD)
};

/// Build the scenario and run the search variants.
Search_bench_result run_search_bench(const Search_bench_config& config = {});

/// Serialize as the BENCH_search.json schema (stable keys, one object).
std::string to_json(const Search_bench_config& config,
                    const Search_bench_result& result);

/// Human-readable summary (one line per variant).
void print_summary(std::ostream& out, const Search_bench_result& result);

/// The shared entry point of `lycos_cli --bench-json` and the
/// bench_scaling tail: run the default-config bench, print the
/// summary to `log`, write the JSON report to `path`.  Returns the
/// process exit code (0 only if the report was written, all variants
/// agreed on the best allocation, the pruned search matched the
/// unpruned one, the sparse two-ASIC DP matched both references
/// (`sparse_matches_dense`), the deprecated shims matched the Session
/// API, the pair-tree walk was chunking-independent
/// (`pair_tree_bb.deterministic`), its row bound killed at least one
/// row, the sparse DPs swept fewer cells than the dense grids they
/// replaced, an armed-but-idle Cancel_token cost the new_single
/// sweep under 1% (`deadline.overhead_ok`), the serving layer's
/// request burst finished every request and kept its p99 under the
/// calibrated budget (`serve.p99_ok`), request batching beat the
/// unbatched replay of the two-family burst by the pinned ratio with
/// observed cross-request DP reuse and bit-identical answers
/// (`serve_batch.ok`), the distributed solve matched
/// the local one bit for bit at every worker count
/// (`dist.matches_local`), and — on builds/CPUs with
/// SIMD — the dispatched kernels beat the scalar table by the pinned
/// min-of-N ratios (`kernels.*.ok`)); failures are reported on
/// `err`, never thrown.
int write_bench_report(const std::string& path, std::ostream& log,
                       std::ostream& err);

}  // namespace lycos::search
