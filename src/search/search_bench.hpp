// Old-vs-new allocation-search benchmark (the PR-over-PR speedup
// tracker behind BENCH_search.json).
//
// Runs the same exhaustive search over one synthetic scenario three
// ways and reports allocation evaluations per second:
//   old           naive cycle-stepping scheduler, no memoization,
//                 single thread — the pre-optimization baseline,
//   new_single    event-driven scheduler + Eval_cache, single thread,
//   new_parallel  the same plus the chunked thread-pool search.
// All three must find the identical best allocation (the determinism
// contract); the result records that check.
//
// Callable from `lycos_cli --bench-json <path>` and from the
// bench_scaling binary so CI can emit the JSON reproducibly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace lycos::search {

/// Scenario shape: 16 BSBs at the top of the bench_scaling sweep
/// range (128 ops each), heterogeneous op mixes, searched with the
/// usual coarse area quantum.
struct Search_bench_config {
    int n_bsbs = 16;
    int ops_per_bsb = 128;
    double asic_area = 20000.0;
    int max_count_per_type = 2;  ///< restriction bound clamp (space size control)
    std::uint64_t seed = 42;
};

/// Measured throughputs (evaluations per second) and speedups.
struct Search_bench_result {
    long long space_size = 0;
    long long n_evaluated = 0;  ///< per variant (identical across them)
    double secs_old = 0.0;
    double secs_new_single = 0.0;
    double secs_new_parallel = 0.0;
    double evals_per_sec_old = 0.0;
    double evals_per_sec_new_single = 0.0;
    double evals_per_sec_new_parallel = 0.0;
    double speedup_single = 0.0;    ///< new_single vs old
    double speedup_parallel = 0.0;  ///< new_parallel vs old
    double cache_hit_rate = 0.0;    ///< of the single-threaded cached run
    int n_threads = 1;              ///< used by the parallel run
    bool same_best = false;         ///< all variants agreed on the best
};

/// Build the scenario and run the three search variants.
Search_bench_result run_search_bench(const Search_bench_config& config = {});

/// Serialize as the BENCH_search.json schema (stable keys, one object).
std::string to_json(const Search_bench_config& config,
                    const Search_bench_result& result);

/// Human-readable summary (one line per variant).
void print_summary(std::ostream& out, const Search_bench_result& result);

/// The shared entry point of `lycos_cli --bench-json` and the
/// bench_scaling tail: run the default-config bench, print the
/// summary to `log`, write the JSON report to `path`.  Returns the
/// process exit code (0 only if the report was written and all
/// variants agreed on the best allocation); failures are reported on
/// `err`, never thrown.
int write_bench_report(const std::string& path, std::ostream& log,
                       std::ostream& err);

}  // namespace lycos::search
