#include "search/search_bench.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <ostream>
#include <sstream>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "apps/random_app.hpp"
#include "bsb/bsb.hpp"
#include "core/analysis.hpp"
#include "core/multi_allocator.hpp"
#include "core/restrictions.hpp"
#include "dist/dist.hpp"
#include "hw/target.hpp"
#include "pace/multi_asic.hpp"
#include "search/eval_cache.hpp"
#include "search/exhaustive.hpp"
#include "search/hill_climb.hpp"
#include "serve/serve.hpp"
#include "serve/trace.hpp"
#include "solver/solver.hpp"
#include "util/arena.hpp"
#include "util/cancel.hpp"
#include "util/format.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

namespace lycos::search {

namespace {

double rate(long long n, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
}

bool same_best(const Search_result& a, const Search_result& b)
{
    return a.best.datapath == b.best.datapath &&
           a.best.partition.time_hybrid_ns ==
               b.best.partition.time_hybrid_ns &&
           a.best.datapath_area == b.best.datapath_area;
}

}  // namespace

Search_bench_result run_search_bench(const Search_bench_config& config)
{
    const auto lib = hw::make_default_library();
    const auto target = hw::make_default_target(config.asic_area);

    // Heterogeneous BSBs: like real basic blocks, each uses a small
    // random subset of the operation kinds (an address-arithmetic
    // block adds and shifts, a compare block compares...).  This is
    // the composition the Eval_cache projection keying exploits: a
    // BSB's schedule is independent of the counts of types it cannot
    // use, so points differing only there share its entry.
    util::Rng rng(config.seed);
    const std::vector<hw::Op_kind> kind_pool = {
        hw::Op_kind::add,    hw::Op_kind::sub,        hw::Op_kind::mul,
        hw::Op_kind::div,    hw::Op_kind::cmp_lt,     hw::Op_kind::const_load,
    };
    std::vector<bsb::Bsb> bsbs;
    bsbs.reserve(static_cast<std::size_t>(config.n_bsbs));
    for (int i = 0; i < config.n_bsbs; ++i) {
        apps::Random_app_params params;
        params.n_bsbs = 1;
        params.min_ops = config.ops_per_bsb;
        params.max_ops = config.ops_per_bsb;
        params.kinds.clear();
        auto pool = kind_pool;
        const int n_kinds = rng.uniform_int(2, 4);
        for (int k = 0; k < n_kinds; ++k) {
            const auto pick = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<int>(pool.size()) - 1));
            params.kinds.push_back(pool[pick]);
            pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        auto one = apps::random_bsbs(rng, params);
        one[0].name = "R" + std::to_string(i);
        bsbs.push_back(std::move(one[0]));
    }

    // The real flow's restrictions, clamped so the space stays small
    // enough that the naive baseline finishes in seconds.
    const auto infos = core::analyze(bsbs, lib, target.gates);
    const auto raw = core::compute_restrictions(infos, lib);
    // Rebuild rather than clamp in place: Rmap::set(r, 0) erases the
    // entry, which would invalidate an iterator over raw.entries().
    core::Rmap restrictions;
    for (const auto& [r, bound] : raw.entries())
        restrictions.set(r, std::min(bound, config.max_count_per_type));

    Eval_context ctx{bsbs, lib, target,
                     pace::Controller_mode::list_schedule,
                     config.asic_area / 256.0};

    Search_bench_result out;

    Eval_context old_ctx = ctx;
    old_ctx.scheduler = sched::Scheduler_kind::naive;
    const auto old_run = exhaustive_engine(
        old_ctx, restrictions,
        {.n_threads = 1, .use_cache = false, .use_pruning = false});

    const auto new_single = exhaustive_engine(
        ctx, restrictions,
        {.n_threads = 1, .use_cache = true, .use_pruning = false});

    const auto new_pruned = exhaustive_engine(
        ctx, restrictions,
        {.n_threads = 1, .use_cache = true, .use_pruning = true});

    const auto new_parallel = exhaustive_engine(
        ctx, restrictions,
        {.n_threads = 0, .use_cache = true, .use_pruning = true});

    // Instrumented pass: where does one full sweep spend its time —
    // fetching memoized per-BSB costs (scheduling) or running the
    // PACE DP?  Uses the same cache + workspace machinery as the
    // search hot loop.
    {
        Eval_cache cache(ctx);
        pace::Pace_workspace ws;
        const Alloc_space space(lib, restrictions);
        std::vector<pace::Bsb_cost> costs;
        space.for_each(target.asic.total_area, [&](const core::Rmap& a) {
            util::Wall_timer t_sched;
            cache.costs_for(a, costs);
            out.sched_seconds += t_sched.seconds();
            util::Wall_timer t_dp;
            const auto ev = evaluate_with_costs(ctx, a, costs, &ws);
            out.dp_seconds += t_dp.seconds();
            (void)ev;
            return true;
        });
    }

    // Two-ASIC DP: split the scenario's silicon across two chips and
    // compare the Pareto-sparse production DP against both retained
    // references (reachable-frontier sweep, dense full scan) —
    // identical results, counted cells/states, and traceback bytes
    // land in the multi_asic section of BENCH_search.json.
    {
        const std::array<double, 2> budgets = {config.asic_area / 2.0,
                                               config.asic_area / 2.0};
        const auto two = core::allocate_two_asics(infos, lib,
                                                  {.budgets = budgets});
        const auto mcosts = pace::build_multi_cost_model(
            bsbs, lib, target, two.allocations[0], two.allocations[1],
            pace::Controller_mode::list_schedule);
        const pace::Multi_pace_options mopts{
            .ctrl_area_budgets = {
                std::max(0.0, budgets[0] - two.datapath_area[0]),
                std::max(0.0, budgets[1] - two.datapath_area[1])}};

        // Min-of-N per-call timings (not means): the BENCH speedup
        // gates read these, and the minimum is the noise-robust
        // estimator of a deterministic kernel's cost.
        const auto min_of = [](int reps, auto&& call) {
            double best = std::numeric_limits<double>::infinity();
            for (int i = 0; i < reps; ++i) {
                util::Wall_timer t;
                call();
                best = std::min(best, t.seconds());
            }
            return best;
        };

        pace::Multi_pace_workspace mws;
        auto sparse = pace::multi_pace_partition(mcosts, mopts, &mws);
        out.multi_secs_sparse = min_of(40, [&] {
            sparse = pace::multi_pace_partition(mcosts, mopts, &mws);
        });

        auto frontier =
            pace::multi_pace_partition_frontier(mcosts, mopts, &mws);
        out.multi_secs_frontier = min_of(40, [&] {
            frontier =
                pace::multi_pace_partition_frontier(mcosts, mopts, &mws);
        });

        pace::Multi_pace_result dense;
        out.multi_secs_dense = min_of(5, [&] {
            dense = pace::multi_pace_partition_reference(mcosts, mopts);
        });

        const auto speedup_of = [&](double secs) {
            return secs > 0.0 ? out.multi_secs_dense / secs : 0.0;
        };
        out.multi_n_bsbs = static_cast<long long>(mcosts.size());
        out.multi_speedup = speedup_of(out.multi_secs_sparse);
        out.multi_speedup_frontier = speedup_of(out.multi_secs_frontier);
        out.multi_evals_per_sec =
            out.multi_secs_sparse > 0.0 ? 1.0 / out.multi_secs_sparse : 0.0;
        out.multi_frontier_occupancy = frontier.frontier_occupancy();
        out.multi_sparse_occupancy = sparse.frontier_occupancy();
        out.multi_sparse_states = sparse.dp_states_stored;
        out.multi_area_quantum = sparse.area_quantum_used;
        out.multi_traceback_bytes = sparse.traceback_bytes;
        out.multi_traceback_bytes_frontier = frontier.traceback_bytes;
        out.multi_traceback_bytes_dense = dense.traceback_bytes;
        out.multi_matches_dense =
            frontier.placement == dense.placement &&
            frontier.time_hybrid_ns == dense.time_hybrid_ns;
        out.multi_sparse_matches_dense =
            sparse.placement == dense.placement &&
            sparse.time_hybrid_ns == dense.time_hybrid_ns &&
            sparse.placement == frontier.placement;
    }

    // Solver section: the unified Session API over the same scenario.
    // One session serves all three strategies (shared invariants,
    // shared worker-0 cache, one thread pool); the deprecated shims
    // must reproduce the session results bit for bit — that is the
    // cross-check CI gates on.
    {
        solver::Problem problem;
        problem.bsbs = bsbs;
        problem.lib = &lib;
        problem.target = target;
        problem.restrictions = restrictions;
        problem.ctrl_mode = pace::Controller_mode::list_schedule;
        problem.area_quantum = config.asic_area / 256.0;
        // Asymmetric two-ASIC target for multi_asic_bb (ignored by
        // the single-ASIC strategies): a big primary chip plus a
        // small secondary.  The interesting regime for the pair-tree
        // row bound — with a generous symmetric split, a best-case
        // asic1-only completion matches any incumbent and no a0 row
        // can ever bound out; with a small secondary ASIC, rows whose
        // a0 allocation cannot carry the load die wholesale.
        problem.asic_areas = {config.asic_area * 0.65,
                              config.asic_area * 0.35};
        solver::Session session(problem);

        const auto exh = session.solve("exhaustive_bb", {});
        out.solver_exh_seconds = exh.seconds;
        out.solver_exh_evals_per_sec =
            rate(new_single.n_evaluated, exh.seconds);

        solver::Solve_options hill_opts;
        hill_opts.extras = solver::Hill_climb_extras{};
        const auto hill = session.solve("hill_climb", hill_opts);
        out.solver_hill_seconds = hill.seconds;
        out.solver_hill_evaluated = hill.n_evaluated;
        out.solver_hill_evals_per_sec = rate(hill.n_evaluated, hill.seconds);

        // Shim cross-check: the deprecated free functions delegate to
        // a one-shot Session and must land on the identical tuples.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
        const auto shim_exh = exhaustive_search(ctx, restrictions, {});
        const solver::Hill_climb_extras hx;
        util::Rng shim_rng(hx.seed);
        const auto shim_hill = hill_climb_search(
            ctx, restrictions,
            {.n_restarts = hx.n_restarts, .max_steps = hx.max_steps},
            shim_rng);
#pragma GCC diagnostic pop
        const auto same_tuple = [](const search::Evaluation& a,
                                   const search::Evaluation& b) {
            return a.datapath == b.datapath &&
                   a.partition.time_hybrid_ns ==
                       b.partition.time_hybrid_ns &&
                   a.datapath_area == b.datapath_area;
        };
        out.solver_matches_shims = same_tuple(shim_exh.best, exh.best) &&
                                   same_tuple(shim_hill.best, hill.best);

        // multi_asic_bb: the pair-tree branch-and-bound — even
        // silicon split, parallel run, plus the determinism
        // cross-check (single-threaded walk lands on the same pair).
        // rows_pruned and the sparse-DP cell counts feed the
        // pair_tree_bb gates.
        const auto multi = session.solve("multi_asic_bb", {});
        out.solver_multi_pairs = multi.space_size;
        out.solver_multi_axis0 = multi.multi.axis_points[0];
        out.solver_multi_axis1 = multi.multi.axis_points[1];
        out.solver_multi_evaluated = multi.n_evaluated;
        out.solver_multi_pruned = multi.n_pruned;
        out.solver_multi_rows_visited = multi.multi.rows_visited;
        out.solver_multi_rows_pruned = multi.multi.rows_pruned;
        out.solver_multi_pairs_skipped = multi.multi.pairs_skipped;
        out.solver_multi_dp_states = multi.multi.dp_states_swept;
        out.solver_multi_dp_dense = multi.multi.dp_cells_dense;
        out.solver_multi_seconds = multi.seconds;
        out.solver_multi_pairs_per_sec =
            rate(multi.space_size, multi.seconds);
        out.solver_multi_best_time_ns =
            multi.multi.partition.time_hybrid_ns;
        const auto multi_seq =
            session.solve("multi_asic_bb", {.n_threads = 1});
        out.solver_multi_deterministic =
            multi_seq.multi.datapaths == multi.multi.datapaths &&
            multi_seq.multi.partition.time_hybrid_ns ==
                multi.multi.partition.time_hybrid_ns &&
            multi_seq.multi.partition.placement ==
                multi.multi.partition.placement;

        // Deadline/anytime section.  Poll overhead: the new_single
        // sweep (single thread, cached, no pruning — so the armed
        // token changes no work, only adds the polls) with a token
        // whose deadline is an hour away, against the same sweep with
        // no token at all.  min-of-3 on both sides; the gate allows a
        // small absolute floor so timer noise on a fast sweep cannot
        // fail it spuriously.
        const auto min_of3 = [&](const util::Cancel_token* token) {
            double best = std::numeric_limits<double>::infinity();
            for (int i = 0; i < 3; ++i) {
                Exhaustive_options eo;
                eo.n_threads = 1;
                eo.use_cache = true;
                eo.use_pruning = false;
                eo.cancel = token;
                best = std::min(
                    best, exhaustive_engine(ctx, restrictions, eo).seconds);
            }
            return best;
        };
        out.deadline_secs_no_token = min_of3(nullptr);
        const util::Cancel_token far_deadline(3.6e6, 0, 0, {});
        out.deadline_secs_token = min_of3(&far_deadline);
        out.deadline_poll_overhead =
            out.deadline_secs_no_token > 0.0
                ? out.deadline_secs_token / out.deadline_secs_no_token - 1.0
                : 0.0;
        out.deadline_overhead_ok =
            out.deadline_secs_token <=
            out.deadline_secs_no_token * 1.01 + 0.002;

        // Incumbent quality vs deadline: what the anytime contract
        // delivers after 1/10/100 ms on this scenario.
        out.deadline_untruncated_time_ns = exh.best.partition.time_hybrid_ns;
        for (std::size_t i = 0; i < out.deadline_ms_points.size(); ++i) {
            solver::Solve_options dopts;
            dopts.deadline_ms = out.deadline_ms_points[i];
            const auto r = session.solve("exhaustive_bb", dopts);
            out.deadline_best_time_ns[i] = r.best.partition.time_hybrid_ns;
            out.deadline_complete[i] =
                r.status == util::Solve_status::complete;
        }

        // Distributed section: the same exhaustive solve fanned out
        // over loopback TCP workers (in-process threads, single-
        // threaded solves so worker counts scale cores).  The gate is
        // bit-identity against the session solve above at every
        // worker count; wall times and broadcast counts are recorded
        // for the report.
        bool dist_match = true;
        for (std::size_t i = 0; i < out.dist_worker_counts.size(); ++i) {
            const int n_workers = out.dist_worker_counts[i];
            std::vector<std::thread> workers;
            dist::Coordinator_options dco;
            dco.strategy = "exhaustive_bb";
            dco.solve.n_threads = 1;
            dco.n_workers = n_workers;
            dco.on_listen = [&](std::uint16_t port) {
                for (int w = 0; w < n_workers; ++w)
                    workers.emplace_back([port] {
                        dist::run_worker("127.0.0.1", port);
                    });
            };
            const auto r = dist::solve_distributed(problem, dco);
            for (auto& t : workers)
                t.join();
            out.dist_seconds[i] = r.seconds;
            out.dist_leases[i] = r.dist.leases_granted;
            out.dist_broadcasts[i] = r.dist.incumbent_broadcasts;
            out.dist_units = r.dist.n_units;
            dist_match =
                dist_match && r.have_best &&
                r.best.datapath == exh.best.datapath &&
                r.best.partition.time_hybrid_ns ==
                    exh.best.partition.time_hybrid_ns &&
                r.best.datapath_area == exh.best.datapath_area &&
                r.n_evaluated + r.n_pruned == r.space_size;
        }
        out.dist_matches_local = dist_match;
    }

    // Serve section: the same scenario through serve::Server.  A
    // calibration one-shot (inline mode, no queue) prices a single
    // hill_climb request; the burst then pushes 16 normal requests
    // (mixed priorities, single-threaded solves so the two workers
    // don't fight over cores) plus 4 with already-expired deadlines —
    // those walk the degradation ladder down to the greedy incumbent
    // and land as `degraded`, so the ladder is exercised on every
    // bench run.  The p99 gate budget is queue depth per worker times
    // the calibrated cost, times a generous factor.
    {
        const auto make_request = [&](double deadline_ms,
                                      serve::Priority priority) {
            serve::Request request;
            request.problem.bsbs = bsbs;
            request.problem.lib = &lib;
            request.problem.target = target;
            request.problem.restrictions = restrictions;
            request.problem.ctrl_mode = pace::Controller_mode::list_schedule;
            request.problem.area_quantum = config.asic_area / 256.0;
            request.strategy = "hill_climb";
            request.priority = priority;
            request.deadline_ms = deadline_ms;
            request.options.n_threads = 1;
            return request;
        };

        serve::Server calib({.n_workers = 0});
        const auto warmup =
            calib.solve(make_request(0.0, serve::Priority::bulk));
        const auto calibrated =
            calib.solve(make_request(0.0, serve::Priority::bulk));
        (void)warmup;
        out.serve_calib_ms = calibrated.solve_ms;

        constexpr int k_normal = 16;
        constexpr int k_expired = 4;
        constexpr int k_workers = 2;
        serve::Server server({.n_workers = k_workers,
                              .queue_capacity = 64,
                              .warm_start = false});
        std::vector<std::future<serve::Response>> futures;
        for (int i = 0; i < k_normal; ++i)
            futures.push_back(server.submit(
                make_request(0.0, i % 2 == 0 ? serve::Priority::bulk
                                             : serve::Priority::interactive)));
        for (int i = 0; i < k_expired; ++i)
            futures.push_back(server.submit(
                make_request(1e-3, serve::Priority::bulk)));

        std::vector<double> latencies_ms;
        for (auto& f : futures) {
            const auto r = f.get();
            ++out.serve_requests;
            switch (r.status) {
            case serve::Request_status::complete:
                ++out.serve_completed;
                break;
            case serve::Request_status::degraded:
                ++out.serve_degraded;
                break;
            case serve::Request_status::shed:
                ++out.serve_shed;
                break;
            case serve::Request_status::failed:
                ++out.serve_failed;
                break;
            }
            if (r.status == serve::Request_status::complete ||
                r.status == serve::Request_status::degraded)
                latencies_ms.push_back(r.queue_ms + r.solve_ms);
        }
        out.serve_workers = k_workers;
        out.serve_p50_ms = serve::percentile(latencies_ms, 0.50);
        out.serve_p99_ms = serve::percentile(latencies_ms, 0.99);
        const double depth_per_worker =
            static_cast<double>(k_normal + k_expired) / k_workers;
        out.serve_p99_budget_ms =
            std::max(k_serve_p99_floor_ms, k_serve_p99_budget_factor *
                                               out.serve_calib_ms *
                                               depth_per_worker);
        out.serve_p99_ok = out.serve_failed == 0 && out.serve_shed == 0 &&
                           out.serve_p99_ms <= out.serve_p99_budget_ms;
    }

    // Serve batching section: an interleaved two-family burst (same
    // BSBs, two search quanta — two distinct canonical problem keys)
    // against a one-worker Server whose session pool holds a single
    // idle session.  Unbatched, the alternating families evict each
    // other on every checkin, so every request builds a fresh session
    // — exactly the fresh-session reference of the batching
    // bit-identity contract.  Batched, the paused queue drains into
    // one batch per family on one pinned session, so members after
    // the first hit the shared Eval_cache and resume the checkpointed
    // DP rows (dp_rows_reused_cross_request).  Min-of-N walls per
    // mode; the speedup, the observed cross-request rows, the
    // per-request identity and the batched p99 are the CI gates.
    {
        constexpr int k_pairs = 6;    // requests per family
        constexpr int k_runs = 2;     // min-of-N
        const std::array<double, 2> quanta{config.asic_area / 256.0,
                                           config.asic_area / 320.0};
        const auto make_request = [&](double quantum) {
            serve::Request request;
            request.problem.bsbs = bsbs;
            request.problem.lib = &lib;
            request.problem.target = target;
            request.problem.restrictions = restrictions;
            request.problem.ctrl_mode = pace::Controller_mode::list_schedule;
            request.problem.area_quantum = quantum;
            request.strategy = "hill_climb";
            request.priority = serve::Priority::bulk;
            request.options.n_threads = 1;
            return request;
        };

        struct Run_outcome {
            double seconds = 0.0;
            std::vector<serve::Response> responses;  // submission order
            serve::Server_stats stats;
        };
        const auto run_burst = [&](bool batching) {
            Run_outcome run;
            serve::Server server({.n_workers = 1,
                                  .queue_capacity = 64,
                                  .session_pool_capacity = 1,
                                  .warm_start = false,
                                  .batching = batching,
                                  .start_paused = true});
            std::vector<std::future<serve::Response>> futures;
            for (int i = 0; i < k_pairs; ++i)
                for (const double q : quanta)
                    futures.push_back(server.submit(make_request(q)));
            const util::Wall_timer timer;
            server.resume();
            for (auto& f : futures)
                run.responses.push_back(f.get());
            run.seconds = timer.seconds();
            run.stats = server.stats();
            return run;
        };

        Run_outcome best_on, best_off;
        for (int r = 0; r < k_runs; ++r) {
            auto on = run_burst(true);
            auto off = run_burst(false);
            if (r == 0 || on.seconds < best_on.seconds)
                best_on = std::move(on);
            if (r == 0 || off.seconds < best_off.seconds)
                best_off = std::move(off);
        }

        out.serve_batch_requests = 2 * k_pairs;
        out.serve_batch_families = 2;
        out.serve_batch_secs_on = best_on.seconds;
        out.serve_batch_secs_off = best_off.seconds;
        out.serve_batch_rps_on =
            best_on.seconds > 0.0 ? 2.0 * k_pairs / best_on.seconds : 0.0;
        out.serve_batch_rps_off =
            best_off.seconds > 0.0 ? 2.0 * k_pairs / best_off.seconds : 0.0;
        out.serve_batch_speedup = best_on.seconds > 0.0
                                      ? best_off.seconds / best_on.seconds
                                      : 0.0;
        out.serve_batch_dp_rows_cross =
            best_on.stats.dp_rows_reused_cross_request;
        out.serve_batch_batches =
            static_cast<long long>(best_on.stats.batches);
        out.serve_batch_max_size =
            static_cast<long long>(best_on.stats.max_batch_size);
        search::Eval_cache_stats combined;
        for (const auto& f : best_on.stats.family_cache)
            combined += f.cache;
        out.serve_batch_cache_hit_rate = combined.hit_rate();

        std::vector<double> batched_ms;
        bool identical = best_on.responses.size() == best_off.responses.size();
        for (std::size_t i = 0; i < best_on.responses.size(); ++i) {
            const auto& a = best_on.responses[i];
            batched_ms.push_back(a.queue_ms + a.solve_ms);
            if (!identical)
                break;
            const auto& b = best_off.responses[i];
            identical =
                a.status == serve::Request_status::complete &&
                b.status == serve::Request_status::complete &&
                a.rung_strategy == b.rung_strategy &&
                a.result.best.datapath == b.result.best.datapath &&
                a.result.best.partition.time_hybrid_ns ==
                    b.result.best.partition.time_hybrid_ns &&
                a.result.best.datapath_area == b.result.best.datapath_area;
        }
        out.serve_batch_identical = identical;
        out.serve_batch_p50_ms = serve::percentile(batched_ms, 0.50);
        out.serve_batch_p99_ms = serve::percentile(batched_ms, 0.99);
        out.serve_batch_p99_budget_ms =
            std::max(k_serve_p99_floor_ms,
                     k_serve_p99_budget_factor * out.serve_calib_ms *
                         static_cast<double>(2 * k_pairs));
        out.serve_batch_ok =
            out.serve_batch_identical &&
            out.serve_batch_speedup >= k_serve_batch_min_speedup &&
            out.serve_batch_dp_rows_cross > 0 &&
            out.serve_batch_p99_ms <= out.serve_batch_p99_budget_ms;
    }

    // Kernel-dispatch section: the dispatched SIMD kernel table
    // against the always-built scalar one, on the two row scans the
    // DP sweeps spend their time in — the single-ASIC value-sweep row
    // and the multi-ASIC dominance-merge scan.  Min-of-N over fixed
    // inner batches; the calls go through the tables' function
    // pointers exactly like the production sweeps, so the compiler
    // cannot specialize either side away.
    {
        namespace simd = util::simd;
        out.kernels_simd_available = simd::best_isa() != simd::Isa::scalar;
        out.kernels_isa = simd::isa_name(simd::active_isa());
        const simd::Kernels& sc = simd::kernels(simd::Isa::scalar);
        const simd::Kernels& vec = simd::kernels(simd::best_isa());

        // Interleave the scalar and SIMD batches rep by rep: the two
        // sides then see the same frequency/thermal drift, so the
        // min-of-N *ratio* stays honest even when absolute timings
        // wander (shared CI runners).
        const auto min_of_batches = [](int reps, int inner, auto&& scalar,
                                       auto&& simd) {
            std::pair<double, double> best{
                std::numeric_limits<double>::infinity(),
                std::numeric_limits<double>::infinity()};
            for (int r = 0; r < reps; ++r) {
                util::Wall_timer ts;
                for (int i = 0; i < inner; ++i)
                    scalar();
                best.first = std::min(best.first, ts.seconds() / inner);
                util::Wall_timer tv;
                for (int i = 0; i < inner; ++i)
                    simd();
                best.second = std::min(best.second, tv.seconds() / inner);
            }
            return best;
        };

        util::Rng krng(12345);
        // One wide DP row, cache-resident like the production rows
        // (this scenario's table width is ~256; the auto-quantum
        // default tops out near 4K levels).  The buffers come from an
        // Arena for the same 64-byte alignment the production rows
        // get — a 16-byte-aligned std::vector makes every other
        // 32-byte access split a cache line and the measured ratio
        // flip-flops with the allocator's mood.
        constexpr std::size_t k_width = 1024;
        util::Arena karena;
        const auto alloc_doubles = [&](std::size_t n) {
            return static_cast<double*>(karena.alloc(n * sizeof(double)));
        };
        double* cur = alloc_doubles(2 * k_width);
        double* nxt = alloc_doubles(2 * k_width);
        for (std::size_t i = 0; i < 2 * k_width; ++i)
            cur[i] = krng.chance(0.15)
                         ? -std::numeric_limits<double>::infinity()
                         : krng.uniform_real(0.0, 1.0e6);
        constexpr std::size_t k_qa = 16;
        const auto pace_pass = [&](const simd::Kernels& k) {
            k.pace_row_sw(cur, nxt, k_width);
            k.pace_row_hw(cur, nxt + k_qa * 2, k_width - k_qa, 123.5,
                          150.25);
        };
        std::tie(out.kern_pace_secs_scalar, out.kern_pace_secs_simd) =
            min_of_batches(9, 200, [&] { pace_pass(sc); },
                           [&] { pace_pass(vec); });

        constexpr std::size_t k_states = 4096;  // one big SoA lane
        auto* a0 = static_cast<std::int32_t*>(
            karena.alloc(k_states * sizeof(std::int32_t)));
        auto* a1 = static_cast<std::int32_t*>(
            karena.alloc(k_states * sizeof(std::int32_t)));
        double* value = alloc_doubles(k_states);
        std::int32_t run0 = 0;
        for (std::size_t i = 0; i < k_states; ++i) {
            run0 += krng.uniform_int(0, 2);
            a0[i] = run0;
            a1[i] = krng.uniform_int(0, 1 << 20);
            value[i] = krng.uniform_real(0.0, 1.0e6);
        }
        auto* key = static_cast<std::uint64_t*>(
            karena.alloc(k_states * sizeof(std::uint64_t)));
        double* val = alloc_doubles(k_states);
        // Caps that nothing overflows: the steady-state shape of a
        // mid-sweep merge (the overflow tails are covered by the
        // equivalence tests, not timed here).
        const std::int32_t cap0 = run0 + 64;
        const std::int32_t cap1 = (1 << 20) + 64;
        const auto merge_pass = [&](const simd::Kernels& k) {
            k.multi_shift_lane(a0, a1, value, k_states, 3, 5, 42.0, cap0,
                               cap1, key, val);
            volatile double sink = k.max_reduce(val, k_states);
            (void)sink;
        };
        std::tie(out.kern_merge_secs_scalar, out.kern_merge_secs_simd) =
            min_of_batches(9, 200, [&] { merge_pass(sc); },
                           [&] { merge_pass(vec); });

        const auto ratio = [](double scalar, double simd_secs) {
            return simd_secs > 0.0 ? scalar / simd_secs : 0.0;
        };
        out.kern_pace_speedup =
            ratio(out.kern_pace_secs_scalar, out.kern_pace_secs_simd);
        out.kern_merge_speedup =
            ratio(out.kern_merge_secs_scalar, out.kern_merge_secs_simd);
        out.kern_pace_ok =
            !out.kernels_simd_available ||
            out.kern_pace_speedup >= k_kernel_pace_min_speedup;
        out.kern_merge_ok =
            !out.kernels_simd_available ||
            out.kern_merge_speedup >= k_kernel_merge_min_speedup;
    }

    out.dp_rows_reused = new_pruned.dp_rows_reused;
    out.dp_rows_swept = new_pruned.dp_rows_swept;
    out.space_size = old_run.space_size;
    out.n_evaluated = old_run.n_evaluated;
    out.n_evaluated_pruned = new_pruned.n_evaluated;
    out.n_pruned = new_pruned.n_pruned;
    out.secs_old = old_run.seconds;
    out.secs_new_single = new_single.seconds;
    out.secs_new_pruned = new_pruned.seconds;
    out.secs_new_parallel = new_parallel.seconds;
    out.evals_per_sec_old = rate(old_run.n_evaluated, old_run.seconds);
    out.evals_per_sec_new_single =
        rate(new_single.n_evaluated, new_single.seconds);
    // Effective rates: the pruned searches cover the same space, so
    // their throughput is the unpruned workload over their wall time.
    out.evals_per_sec_new_pruned =
        rate(new_single.n_evaluated, new_pruned.seconds);
    out.evals_per_sec_new_parallel =
        rate(new_single.n_evaluated, new_parallel.seconds);
    const auto speedup_vs = [](double a, double b) {
        return b > 0.0 ? a / b : 0.0;
    };
    out.speedup_single =
        speedup_vs(out.evals_per_sec_new_single, out.evals_per_sec_old);
    out.speedup_pruned =
        speedup_vs(out.evals_per_sec_new_pruned, out.evals_per_sec_old);
    out.speedup_pruned_vs_single = speedup_vs(
        out.evals_per_sec_new_pruned, out.evals_per_sec_new_single);
    out.speedup_parallel =
        speedup_vs(out.evals_per_sec_new_parallel, out.evals_per_sec_old);
    out.cache_hit_rate = new_single.cache_stats.hit_rate();
    out.cache_hit_rate_pruned = new_pruned.cache_stats.hit_rate();
    out.n_threads = new_parallel.n_threads;
    out.pruned_matches_unpruned = same_best(old_run, new_pruned);
    out.same_best = same_best(old_run, new_single) &&
                    out.pruned_matches_unpruned &&
                    same_best(old_run, new_parallel);
    return out;
}

std::string to_json(const Search_bench_config& config,
                    const Search_bench_result& result)
{
    std::ostringstream out;
    out.precision(6);
    out << "{\n"
        << "  \"scenario\": {\n"
        << "    \"n_bsbs\": " << config.n_bsbs << ",\n"
        << "    \"ops_per_bsb\": " << config.ops_per_bsb << ",\n"
        << "    \"asic_area\": " << config.asic_area << ",\n"
        << "    \"max_count_per_type\": " << config.max_count_per_type
        << ",\n"
        << "    \"seed\": " << config.seed << ",\n"
        << "    \"space_size\": " << result.space_size << ",\n"
        << "    \"n_evaluated\": " << result.n_evaluated << "\n"
        << "  },\n"
        << "  \"old\": {\"seconds\": " << result.secs_old
        << ", \"evals_per_sec\": " << result.evals_per_sec_old << "},\n"
        << "  \"new_single\": {\"seconds\": " << result.secs_new_single
        << ", \"evals_per_sec\": " << result.evals_per_sec_new_single
        << ", \"cache_hit_rate\": " << result.cache_hit_rate << "},\n"
        << "  \"new_pruned\": {\"seconds\": " << result.secs_new_pruned
        << ", \"effective_evals_per_sec\": "
        << result.evals_per_sec_new_pruned
        << ", \"n_evaluated\": " << result.n_evaluated_pruned
        << ", \"n_pruned\": " << result.n_pruned
        << ", \"cache_hit_rate\": " << result.cache_hit_rate_pruned
        << ", \"dp_rows_reused\": " << result.dp_rows_reused
        << ", \"dp_rows_swept\": " << result.dp_rows_swept
        << "},\n"
        << "  \"multi_asic\": {\"n_bsbs\": " << result.multi_n_bsbs
        << ", \"secs_dense\": " << result.multi_secs_dense
        << ", \"secs_frontier\": " << result.multi_secs_frontier
        << ", \"secs_sparse\": " << result.multi_secs_sparse
        << ", \"speedup\": " << result.multi_speedup
        << ", \"speedup_frontier\": " << result.multi_speedup_frontier
        << ", \"evals_per_sec\": " << result.multi_evals_per_sec
        << ", \"frontier_occupancy\": " << result.multi_frontier_occupancy
        << ", \"sparse_occupancy\": " << result.multi_sparse_occupancy
        << ", \"sparse_states\": " << result.multi_sparse_states
        << ", \"area_quantum\": " << result.multi_area_quantum
        << ", \"traceback_bytes\": " << result.multi_traceback_bytes
        << ", \"traceback_bytes_frontier\": "
        << result.multi_traceback_bytes_frontier
        << ", \"traceback_bytes_dense\": "
        << result.multi_traceback_bytes_dense
        << ", \"matches_dense\": "
        << (result.multi_matches_dense ? "true" : "false")
        << ", \"sparse_matches_dense\": "
        << (result.multi_sparse_matches_dense ? "true" : "false") << "},\n"
        << "  \"new_parallel\": {\"seconds\": " << result.secs_new_parallel
        << ", \"effective_evals_per_sec\": "
        << result.evals_per_sec_new_parallel
        << ", \"n_threads\": " << result.n_threads << "},\n"
        << "  \"solver\": {\n"
        << "    \"exhaustive_bb\": {\"seconds\": "
        << result.solver_exh_seconds << ", \"effective_evals_per_sec\": "
        << result.solver_exh_evals_per_sec << "},\n"
        << "    \"hill_climb\": {\"seconds\": " << result.solver_hill_seconds
        << ", \"n_evaluated\": " << result.solver_hill_evaluated
        << ", \"evals_per_sec\": " << result.solver_hill_evals_per_sec
        << "},\n"
        << "    \"multi_asic_bb\": {\"seconds\": "
        << result.solver_multi_seconds
        << ", \"pair_space\": " << result.solver_multi_pairs
        << ", \"axis_points\": [" << result.solver_multi_axis0 << ", "
        << result.solver_multi_axis1 << "]"
        << ", \"n_evaluated\": " << result.solver_multi_evaluated
        << ", \"n_pruned\": " << result.solver_multi_pruned
        << ", \"effective_pairs_per_sec\": "
        << result.solver_multi_pairs_per_sec
        << ", \"best_time_ns\": " << result.solver_multi_best_time_ns
        << "},\n"
        << "    \"pair_tree_bb\": {\"rows_visited\": "
        << result.solver_multi_rows_visited
        << ", \"rows_pruned\": " << result.solver_multi_rows_pruned
        << ", \"pairs_skipped\": " << result.solver_multi_pairs_skipped
        << ", \"dp_states_swept\": " << result.solver_multi_dp_states
        << ", \"dp_cells_dense\": " << result.solver_multi_dp_dense
        << ", \"deterministic\": "
        << (result.solver_multi_deterministic ? "true" : "false") << "},\n"
        << "    \"shims_match_session\": "
        << (result.solver_matches_shims ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"deadline\": {\"secs_no_token\": "
        << result.deadline_secs_no_token
        << ", \"secs_token\": " << result.deadline_secs_token
        << ", \"poll_overhead\": " << result.deadline_poll_overhead
        << ", \"overhead_ok\": "
        << (result.deadline_overhead_ok ? "true" : "false")
        << ", \"untruncated_time_ns\": "
        << result.deadline_untruncated_time_ns << ", \"quality\": [";
    for (std::size_t i = 0; i < result.deadline_ms_points.size(); ++i)
        out << (i > 0 ? ", " : "") << "{\"deadline_ms\": "
            << result.deadline_ms_points[i] << ", \"best_time_ns\": "
            << result.deadline_best_time_ns[i] << ", \"complete\": "
            << (result.deadline_complete[i] ? "true" : "false") << "}";
    out << "]},\n"
        << "  \"serve\": {\"requests\": " << result.serve_requests
        << ", \"workers\": " << result.serve_workers
        << ", \"completed\": " << result.serve_completed
        << ", \"degraded\": " << result.serve_degraded
        << ", \"shed\": " << result.serve_shed
        << ", \"failed\": " << result.serve_failed
        << ", \"calib_ms\": " << result.serve_calib_ms
        << ", \"p50_ms\": " << result.serve_p50_ms
        << ", \"p99_ms\": " << result.serve_p99_ms
        << ", \"p99_budget_ms\": " << result.serve_p99_budget_ms
        << ", \"p99_ok\": " << (result.serve_p99_ok ? "true" : "false")
        << "},\n"
        << "  \"serve_batch\": {\"requests\": " << result.serve_batch_requests
        << ", \"families\": " << result.serve_batch_families
        << ", \"secs_on\": " << result.serve_batch_secs_on
        << ", \"secs_off\": " << result.serve_batch_secs_off
        << ", \"rps_on\": " << result.serve_batch_rps_on
        << ", \"rps_off\": " << result.serve_batch_rps_off
        << ", \"speedup\": " << result.serve_batch_speedup
        << ", \"p50_ms\": " << result.serve_batch_p50_ms
        << ", \"p99_ms\": " << result.serve_batch_p99_ms
        << ", \"p99_budget_ms\": " << result.serve_batch_p99_budget_ms
        << ", \"dp_rows_cross\": " << result.serve_batch_dp_rows_cross
        << ", \"batches\": " << result.serve_batch_batches
        << ", \"max_batch_size\": " << result.serve_batch_max_size
        << ", \"cache_hit_rate\": " << result.serve_batch_cache_hit_rate
        << ", \"identical\": "
        << (result.serve_batch_identical ? "true" : "false")
        << ", \"ok\": " << (result.serve_batch_ok ? "true" : "false")
        << "},\n"
        << "  \"dist\": {\"units\": " << result.dist_units
        << ", \"matches_local\": "
        << (result.dist_matches_local ? "true" : "false") << ", \"runs\": [";
    for (std::size_t i = 0; i < result.dist_worker_counts.size(); ++i)
        out << (i > 0 ? ", " : "") << "{\"workers\": "
            << result.dist_worker_counts[i]
            << ", \"seconds\": " << result.dist_seconds[i]
            << ", \"leases\": " << result.dist_leases[i]
            << ", \"incumbent_broadcasts\": " << result.dist_broadcasts[i]
            << "}";
    out << "]},\n"
        << "  \"kernels\": {\"isa\": \"" << result.kernels_isa << "\""
        << ", \"simd_available\": "
        << (result.kernels_simd_available ? "true" : "false") << ",\n"
        << "    \"pace_sweep\": {\"secs_scalar\": "
        << result.kern_pace_secs_scalar
        << ", \"secs_simd\": " << result.kern_pace_secs_simd
        << ", \"speedup\": " << result.kern_pace_speedup
        << ", \"min_speedup\": " << k_kernel_pace_min_speedup
        << ", \"ok\": " << (result.kern_pace_ok ? "true" : "false")
        << "},\n"
        << "    \"multi_merge\": {\"secs_scalar\": "
        << result.kern_merge_secs_scalar
        << ", \"secs_simd\": " << result.kern_merge_secs_simd
        << ", \"speedup\": " << result.kern_merge_speedup
        << ", \"min_speedup\": " << k_kernel_merge_min_speedup
        << ", \"ok\": " << (result.kern_merge_ok ? "true" : "false")
        << "}},\n"
        << "  \"time_split\": {\"sched_seconds\": " << result.sched_seconds
        << ", \"dp_seconds\": " << result.dp_seconds << "},\n"
        << "  \"speedup_single\": " << result.speedup_single << ",\n"
        << "  \"speedup_pruned\": " << result.speedup_pruned << ",\n"
        << "  \"speedup_pruned_vs_single\": "
        << result.speedup_pruned_vs_single << ",\n"
        << "  \"speedup_parallel\": " << result.speedup_parallel << ",\n"
        << "  \"pruned_matches_unpruned\": "
        << (result.pruned_matches_unpruned ? "true" : "false") << ",\n"
        << "  \"same_best\": " << (result.same_best ? "true" : "false")
        << "\n}\n";
    return out.str();
}

void print_summary(std::ostream& out, const Search_bench_result& result)
{
    out << "search bench over " << result.n_evaluated << " of "
        << result.space_size << " allocations\n"
        << "  old (naive sched, no cache):  "
        << util::fixed(result.evals_per_sec_old, 1) << " evals/s ("
        << util::fixed(result.secs_old, 3) << " s)\n"
        << "  new single (event + cache):   "
        << util::fixed(result.evals_per_sec_new_single, 1) << " evals/s ("
        << util::fixed(result.speedup_single, 1) << "x, hit rate "
        << util::fixed(100.0 * result.cache_hit_rate, 1) << "%)\n"
        << "  new pruned (branch&bound):    "
        << util::fixed(result.evals_per_sec_new_pruned, 1)
        << " evals/s effective (" << util::fixed(result.speedup_pruned, 1)
        << "x old, " << util::fixed(result.speedup_pruned_vs_single, 1)
        << "x single; " << result.n_pruned << " pruned)\n"
        << "  new parallel (" << result.n_threads << " threads):       "
        << util::fixed(result.evals_per_sec_new_parallel, 1)
        << " evals/s effective ("
        << util::fixed(result.speedup_parallel, 1) << "x)\n"
        << "  time split (one sweep):       sched "
        << util::fixed(result.sched_seconds * 1e3, 1) << " ms, DP "
        << util::fixed(result.dp_seconds * 1e3, 1) << " ms\n"
        << "  incremental DP (pruned run):  " << result.dp_rows_reused
        << " rows reused, " << result.dp_rows_swept << " swept\n"
        << "  multi-ASIC DP (sparse):       "
        << util::fixed(result.multi_secs_sparse * 1e3, 2)
        << " ms/partition (" << util::fixed(result.multi_speedup, 1)
        << "x dense, "
        << util::fixed(result.multi_secs_frontier * 1e3, 2)
        << " ms frontier; states "
        << util::fixed(100.0 * result.multi_sparse_occupancy, 1)
        << "% of grid vs frontier "
        << util::fixed(100.0 * result.multi_frontier_occupancy, 1)
        << "%; traceback " << result.multi_traceback_bytes_dense << " -> "
        << result.multi_traceback_bytes << " B; "
        << (result.multi_matches_dense && result.multi_sparse_matches_dense
                ? "match"
                : "MISMATCH")
        << ")\n"
        << "  solver exhaustive_bb:         "
        << util::fixed(result.solver_exh_evals_per_sec, 1)
        << " evals/s effective ("
        << util::fixed(result.solver_exh_seconds, 3) << " s)\n"
        << "  solver hill_climb:            "
        << util::fixed(result.solver_hill_evals_per_sec, 1)
        << " evals/s (" << result.solver_hill_evaluated << " screened)\n"
        << "  solver multi_asic_bb:         "
        << util::fixed(result.solver_multi_pairs_per_sec, 1)
        << " pairs/s effective (" << result.solver_multi_pairs
        << " pairs = " << result.solver_multi_axis0 << "x"
        << result.solver_multi_axis1 << ", "
        << result.solver_multi_evaluated << " scored + "
        << result.solver_multi_pruned << " pruned; "
        << (result.solver_multi_deterministic ? "deterministic"
                                              : "NON-DETERMINISTIC")
        << ")\n"
        << "  pair-tree row bound:          "
        << result.solver_multi_rows_pruned << "/"
        << result.solver_multi_rows_visited << " rows killed, "
        << result.solver_multi_pairs_skipped << " pairs skipped; sparse DP "
        << result.solver_multi_dp_states << " states vs "
        << result.solver_multi_dp_dense << " dense cells\n"
        << "  shims vs session:             "
        << (result.solver_matches_shims ? "match" : "MISMATCH") << "\n"
        << "  kernel dispatch (" << result.kernels_isa << "):       "
        << (result.kernels_simd_available
                ? util::fixed(result.kern_pace_speedup, 2) + "x pace sweep, " +
                      util::fixed(result.kern_merge_speedup, 2) +
                      "x multi merge vs scalar (" +
                      std::string(result.kern_pace_ok && result.kern_merge_ok
                                      ? "ok"
                                      : "REGRESSED") +
                      ")"
                : std::string("scalar-only build/CPU, gates waived"))
        << "\n"
        << "  serve burst (" << result.serve_workers << " workers):      "
        << result.serve_requests << " requests, p50 "
        << util::fixed(result.serve_p50_ms, 1) << " ms, p99 "
        << util::fixed(result.serve_p99_ms, 1) << " ms (budget "
        << util::fixed(result.serve_p99_budget_ms, 1) << " ms; "
        << result.serve_completed << " complete, " << result.serve_degraded
        << " degraded, " << result.serve_shed << " shed; "
        << (result.serve_p99_ok ? "ok" : "TOO SLOW") << ")\n"
        << "  serve batching:               "
        << util::fixed(result.serve_batch_speedup, 2) << "x ("
        << util::fixed(result.serve_batch_secs_off * 1e3, 1) << " ms -> "
        << util::fixed(result.serve_batch_secs_on * 1e3, 1) << " ms for "
        << result.serve_batch_requests << " requests, "
        << result.serve_batch_families << " families; "
        << result.serve_batch_dp_rows_cross << " cross-request DP rows, "
        << util::fixed(100.0 * result.serve_batch_cache_hit_rate, 1)
        << "% cache hits, p99 " << util::fixed(result.serve_batch_p99_ms, 1)
        << " ms; "
        << (result.serve_batch_ok
                ? "ok"
                : result.serve_batch_identical ? "TOO SLOW" : "MISMATCH")
        << ")\n"
        << "  distributed exhaustive_bb:    "
        << util::fixed(result.dist_seconds[0] * 1e3, 1) << "/"
        << util::fixed(result.dist_seconds[1] * 1e3, 1) << "/"
        << util::fixed(result.dist_seconds[2] * 1e3, 1)
        << " ms for 1/2/4 workers (" << result.dist_units << " units, "
        << result.dist_broadcasts[0] + result.dist_broadcasts[1] +
               result.dist_broadcasts[2]
        << " broadcasts; "
        << (result.dist_matches_local ? "match" : "MISMATCH") << ")\n"
        << "  cancel-token poll overhead:   "
        << util::fixed(100.0 * result.deadline_poll_overhead, 2) << "% ("
        << util::fixed(result.deadline_secs_no_token * 1e3, 1)
        << " ms -> " << util::fixed(result.deadline_secs_token * 1e3, 1)
        << " ms; " << (result.deadline_overhead_ok ? "ok" : "TOO SLOW")
        << ")\n"
        << "  same best allocation: " << (result.same_best ? "yes" : "NO")
        << " (pruned vs unpruned: "
        << (result.pruned_matches_unpruned ? "match" : "MISMATCH") << ")\n";
}

int write_bench_report(const std::string& path, std::ostream& log,
                       std::ostream& err)
{
    std::error_code ignored;
    const bool existed = std::filesystem::exists(path, ignored);
    try {
        // Probe writability first (append mode: no truncation) so an
        // unwritable path fails fast, yet a measurement failure later
        // cannot clobber a previously written good report.
        {
            std::ofstream probe(path, std::ios::app);
            if (!probe) {
                err << "error: cannot write " << path << "\n";
                return 1;
            }
        }
        const Search_bench_config config;
        const auto result = run_search_bench(config);
        print_summary(log, result);
        std::ofstream out(path);
        out << to_json(config, result);
        out.flush();
        if (!out) {
            err << "error: failed writing " << path << "\n";
            return 1;
        }
        log << "wrote " << path << "\n";
        if (!result.pruned_matches_unpruned)
            err << "error: pruned (incremental) search disagrees with the "
                   "cold unpruned search on the best allocation\n";
        if (!result.multi_matches_dense)
            err << "error: two-ASIC frontier DP disagrees with the dense "
                   "reference\n";
        if (!result.multi_sparse_matches_dense)
            err << "error: two-ASIC sparse DP disagrees with the "
                   "dense/frontier references\n";
        if (!result.solver_matches_shims)
            err << "error: deprecated shims disagree with the "
                   "solver::Session API on the best allocation\n";
        if (!result.solver_multi_deterministic)
            err << "error: multi_asic_bb best pair depends on the "
                   "chunking\n";
        if (result.solver_multi_rows_pruned <= 0)
            err << "error: the pair-tree row bound killed no rows on the "
                   "standard bench space\n";
        if (result.solver_multi_dp_states >= result.solver_multi_dp_dense)
            err << "error: the sparse multi-ASIC DP swept no fewer cells "
                   "than the dense grids it replaced\n";
        if (!result.deadline_overhead_ok)
            err << "error: an armed-but-idle Cancel_token slowed the "
                   "new_single sweep by more than 1%\n";
        if (!result.serve_p99_ok)
            err << "error: the serve burst missed its p99 budget ("
                << result.serve_p99_ms << " ms > "
                << result.serve_p99_budget_ms << " ms) or shed/failed "
                   "requests on an uncontended queue\n";
        if (!result.serve_batch_ok) {
            if (!result.serve_batch_identical)
                err << "error: batched answers differ from the unbatched "
                       "fresh-session ones\n";
            else if (result.serve_batch_dp_rows_cross <= 0)
                err << "error: the batched burst observed no cross-request "
                       "DP warm-start rows\n";
            else if (result.serve_batch_speedup < k_serve_batch_min_speedup)
                err << "error: request batching regressed below "
                    << k_serve_batch_min_speedup
                    << "x the unbatched burst (measured "
                    << result.serve_batch_speedup << "x)\n";
            else
                err << "error: the batched burst missed its p99 budget ("
                    << result.serve_batch_p99_ms << " ms > "
                    << result.serve_batch_p99_budget_ms << " ms)\n";
        }
        if (!result.kern_pace_ok)
            err << "error: SIMD pace-sweep kernels regressed below "
                << k_kernel_pace_min_speedup << "x scalar (measured "
                << result.kern_pace_speedup << "x)\n";
        if (!result.kern_merge_ok)
            err << "error: SIMD dominance-merge kernels regressed below "
                << k_kernel_merge_min_speedup << "x scalar (measured "
                << result.kern_merge_speedup << "x)\n";
        if (!result.dist_matches_local)
            err << "error: the distributed solve disagrees with the "
                   "local Session solve at some worker count\n";
        return result.same_best && result.pruned_matches_unpruned &&
                       result.multi_matches_dense &&
                       result.multi_sparse_matches_dense &&
                       result.solver_matches_shims &&
                       result.solver_multi_deterministic &&
                       result.solver_multi_rows_pruned > 0 &&
                       result.solver_multi_dp_states <
                           result.solver_multi_dp_dense &&
                       result.deadline_overhead_ok && result.serve_p99_ok &&
                       result.serve_batch_ok &&
                       result.kern_pace_ok && result.kern_merge_ok &&
                       result.dist_matches_local
                   ? 0
                   : 1;
    }
    catch (const std::exception& e) {
        // Don't leave a zero-byte probe-created file behind.
        if (!existed)
            std::filesystem::remove(path, ignored);
        err << "error: " << e.what() << "\n";
        return 1;
    }
}

}  // namespace lycos::search
