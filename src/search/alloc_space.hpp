// The space of candidate allocations.
//
// Table 1's "best allocation" is found by trying *all* allocations
// within the §4.3 restrictions (footnote 1: the eigen example has
// about a million of them).  This module enumerates that space: every
// RMap `a` with 0 <= a(r) <= restriction(r) per resource type, as a
// mixed-radix counter, with optional pruning by data-path area.
#pragma once

#include <functional>
#include <vector>

#include "core/rmap.hpp"
#include "hw/resource.hpp"

namespace lycos::search {

/// Enumerable allocation space.
class Alloc_space {
public:
    /// `restrictions` bounds each resource type's count (types absent
    /// from the map are fixed at zero).
    Alloc_space(const hw::Hw_library& lib, const core::Rmap& restrictions);

    /// Number of points (product of bounds + 1); counts allocations
    /// whose area exceeds any budget too.
    long long size() const;

    /// Visit every allocation.  Return false from the visitor to stop
    /// early.  Allocations with data-path area above `max_area` are
    /// skipped (but still counted by size()).
    void for_each(double max_area,
                  const std::function<bool(const core::Rmap&)>& visit) const;

    /// The `index`-th allocation in mixed-radix order (0-based); used
    /// for random sampling.  Throws std::out_of_range.
    core::Rmap nth(long long index) const;

    /// Dimensions: (resource id, max count) pairs in id order.
    const std::vector<std::pair<hw::Resource_id, int>>& dims() const
    {
        return dims_;
    }

private:
    const hw::Hw_library& lib_;
    std::vector<std::pair<hw::Resource_id, int>> dims_;
};

}  // namespace lycos::search
