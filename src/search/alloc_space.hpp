// The space of candidate allocations.
//
// Table 1's "best allocation" is found by trying *all* allocations
// within the §4.3 restrictions (footnote 1: the eigen example has
// about a million of them).  This module enumerates that space: every
// RMap `a` with 0 <= a(r) <= restriction(r) per resource type, as a
// mixed-radix counter, with optional pruning by data-path area.
//
// The index range [0, size()) is the unit the parallel exhaustive
// search partitions: for_each_range(begin, end) enumerates one
// contiguous chunk, seeding its counter from the mixed-radix digits
// of the begin index.
#pragma once

#include <functional>
#include <vector>

#include "core/rmap.hpp"
#include "hw/resource.hpp"

namespace lycos::search {

/// Enumerable allocation space.
class Alloc_space {
public:
    /// `restrictions` bounds each resource type's count (types absent
    /// from the map are fixed at zero).
    Alloc_space(const hw::Hw_library& lib, const core::Rmap& restrictions);

    /// Number of points (product of bounds + 1); counts allocations
    /// whose area exceeds any budget too.  Saturates at
    /// std::numeric_limits<long long>::max() instead of overflowing
    /// for very large restriction maps.
    long long size() const;

    /// Visit every allocation.  Return false from the visitor to stop
    /// early.  Allocations with data-path area above `max_area` are
    /// skipped (but still counted by size()).
    void for_each(double max_area,
                  const std::function<bool(const core::Rmap&)>& visit) const;

    /// Visit the allocations with indices in [begin, end) of the
    /// mixed-radix order — the chunk primitive of the parallel search.
    /// Same skipping/early-stop semantics as for_each.  Throws
    /// std::out_of_range unless 0 <= begin <= end <= size().
    void for_each_range(
        long long begin, long long end, double max_area,
        const std::function<bool(const core::Rmap&)>& visit) const;

    /// The `index`-th allocation in mixed-radix order (0-based); used
    /// for random sampling and chunk seeding.  Throws
    /// std::out_of_range.
    core::Rmap nth(long long index) const;

    /// Greedy per-axis fill: each dimension takes the largest count
    /// within its bound that keeps the data-path area inside `budget`
    /// (dimensions in id order, earlier axes filled first).  The
    /// result is always a point of this space with area <= budget —
    /// the pair-tree search primes its incumbent from it, and the
    /// serving layer's infallible `greedy_incumbent` ladder rung
    /// scores it.  Pure arithmetic over the dims; deterministic.
    core::Rmap greedy_fill(const hw::Hw_library& lib, double budget) const;

    /// Dimensions: (resource id, max count) pairs in id order.
    const std::vector<std::pair<hw::Resource_id, int>>& dims() const
    {
        return dims_;
    }

private:
    /// Mixed-radix digits of `index`, one per dimension in dims_ order.
    std::vector<int> decompose(long long index) const;

    const hw::Hw_library& lib_;
    std::vector<std::pair<hw::Resource_id, int>> dims_;
};

}  // namespace lycos::search
