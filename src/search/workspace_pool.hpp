// Session-persistent per-worker DP scratch.
//
// The engines historically built their Pace_workspace /
// Multi_pace_workspace per chunk, on the task's stack — so every DP
// checkpoint (pace.hpp) died with the solve that wrote it, and a
// follow-up solve of the same problem re-swept rows the incremental
// machinery already knew.  A Dp_workspace_pool moves those per-worker
// workspaces into the owning solver::Session: chunk c of every solve
// runs on slot c, the checkpoints survive *between* solves, and a
// later solve resumes at the first divergent cost row exactly as
// within-solve reuse does — the (quantum, width) fingerprint plus the
// cost-prefix compare already guarantee resumed and cold sweeps are
// bit-identical, whoever wrote the checkpoint.  This is what makes
// serve::Server request batching pay: members of a batch share the
// slots' warm checkpoints, reported as
// Solve_result::dp_rows_reused_cross_request.
//
// Threading contract: prepare() is single-threaded (call it before
// dispatching workers); afterwards distinct workers may use distinct
// slots concurrently.  Sessions run one solve at a time, which is the
// only serialization this needs.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "pace/multi_asic.hpp"
#include "pace/pace.hpp"
#include "util/arena.hpp"

namespace lycos::search {

/// Grow-only pool of per-worker (arena, workspace) slots owned by a
/// solver::Session and lent to the engines for the duration of one
/// solve.
class Dp_workspace_pool {
public:
    struct Slot {
        /// Declared before the workspaces it backs (destruction order).
        util::Arena arena;
        pace::Pace_workspace pace{&arena};
        pace::Multi_pace_workspace multi{&arena};
    };

    /// Ensure at least `n` slots exist and open a new logical pass:
    /// every surviving Pace checkpoint is marked as inherited, so the
    /// rows the coming solve resumes from it land in
    /// rows_reused_foreign() (the cross-request counter).  Call once
    /// per solve, before any worker touches a slot.
    void prepare(std::size_t n)
    {
        while (slots_.size() < n)
            slots_.push_back(std::make_unique<Slot>());
        for (auto& s : slots_)
            s->pace.begin_pass();
    }

    /// Slot for worker/chunk `c`; valid until the pool grows (prepare
    /// never shrinks, so slot references live across solves).
    Slot& slot(std::size_t c) { return *slots_[c]; }

    std::size_t size() const { return slots_.size(); }

private:
    std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace lycos::search
