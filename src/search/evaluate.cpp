#include "search/evaluate.hpp"

#include "search/eval_cache.hpp"

namespace lycos::search {

Evaluation evaluate_allocation(const Eval_context& ctx,
                               const core::Rmap& datapath, Eval_cache* cache,
                               pace::Pace_workspace* workspace)
{
    const auto costs = cache != nullptr
                           ? cache->costs_for(datapath)
                           : pace::build_cost_model(ctx.bsbs, ctx.lib,
                                                    ctx.target, datapath,
                                                    ctx.ctrl_mode,
                                                    ctx.storage,
                                                    ctx.scheduler);
    return evaluate_with_costs(ctx, datapath, costs, workspace);
}

Evaluation evaluate_with_costs(const Eval_context& ctx,
                               const core::Rmap& datapath,
                               std::span<const pace::Bsb_cost> costs,
                               pace::Pace_workspace* workspace)
{
    Evaluation ev;
    ev.datapath = datapath;
    ev.datapath_area = datapath.area(ctx.lib);
    ev.fits = ev.datapath_area <= ctx.target.asic.total_area;

    if (!ev.fits) {
        // Nothing can move to hardware; report the all-software result.
        ev.partition = pace::evaluate_partition(
            costs, std::vector<bool>(ctx.bsbs.size(), false));
        return ev;
    }

    pace::Pace_options opts;
    opts.ctrl_area_budget = ctx.target.asic.total_area - ev.datapath_area;
    opts.area_quantum = ctx.area_quantum;
    opts.table_area_budget = ctx.dp_table_budget;
    opts.cancel = ctx.cancel;
    ev.partition = pace::pace_partition(costs, opts, workspace);
    return ev;
}

bool better_than(const Evaluation& a, const Evaluation& b)
{
    return better_tuple(a.partition.time_hybrid_ns, a.datapath_area,
                        b.partition.time_hybrid_ns, b.datapath_area);
}

}  // namespace lycos::search
