#include "search/evaluate.hpp"

namespace lycos::search {

Evaluation evaluate_allocation(const Eval_context& ctx,
                               const core::Rmap& datapath)
{
    Evaluation ev;
    ev.datapath = datapath;
    ev.datapath_area = datapath.area(ctx.lib);
    ev.fits = ev.datapath_area <= ctx.target.asic.total_area;

    const auto costs = pace::build_cost_model(ctx.bsbs, ctx.lib, ctx.target,
                                              datapath, ctx.ctrl_mode,
                                              ctx.storage);
    if (!ev.fits) {
        // Nothing can move to hardware; report the all-software result.
        ev.partition = pace::evaluate_partition(
            costs, std::vector<bool>(ctx.bsbs.size(), false));
        return ev;
    }

    pace::Pace_options opts;
    opts.ctrl_area_budget = ctx.target.asic.total_area - ev.datapath_area;
    opts.area_quantum = ctx.area_quantum;
    ev.partition = pace::pace_partition(costs, opts);
    return ev;
}

}  // namespace lycos::search
