// Admissible proxy costs for unscheduled projections.
//
// The branch-and-bound walker (exhaustive.cpp) stands in for exact
// per-BSB costs it has not scheduled yet with *optimistic* costs —
// every field at most the bsb_cost_one result — so bounds and
// screening DPs computed over them can never cut a point the exact
// costs would keep.  That machinery was exhaustive-only (buried in
// the walker's Prune_model); this header extracts the per-BSB piece
// so the hill climb's neighbour screening can use it through
// Eval_cache::find_one: neighbours whose projections are already
// memoized screen exactly for free, the rest screen on the proxy
// first and pay for real schedules only when the proxy says they
// might improve on the current point.
//
// The stand-in, mirroring bsb_cost_one's float expressions:
//   t_hw   = len * cycle_ns * profile, with len the ASAP critical
//            path under each op kind's minimum latency across ALL
//            library executors, raised to the work/capacity floors
//            ceil(ops_k * min_lat_k / cap_k) the candidate's counts
//            allow — a true lower bound on every resource-constrained
//            list schedule,
//   ctrl_area from the same length floor (controller_area is monotone
//            in the state count; in ECA mode the state count is the
//            hoisted ASAP length — allocation-independent, so exact),
//   comm, t_sw exact (allocation-independent invariants),
//   save_prev = max(0, adjacency saving) >= the exact value,
//   infeasible (a used kind with zero capacity, or a BSB nothing in
//            the library can execute) exactly as bsb_cost_one reports
//            it.
// Not sound under a storage model (its area needs the schedule) —
// check sound() before use.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pace/cost_model.hpp"
#include "search/eval_cache.hpp"

namespace lycos::search {

class Proxy_cost_model {
public:
    /// `cache` supplies the hoisted frames/invariants (shared or
    /// private — values are identical); `ctx` must be the context the
    /// cache was built from.  Both must outlive the model.
    Proxy_cost_model(const Eval_context& ctx, const Eval_cache& cache);

    /// False when no admissible proxy exists for this context (a
    /// storage model charges schedule-dependent area).
    bool sound() const { return sound_; }

    /// The admissible stand-in for bsb_cost_one(bsbs, b, ..., counts).
    pace::Bsb_cost cost(std::size_t b, std::span<const int> counts) const;

private:
    struct Term {
        bool coverable = false;  ///< some allocation can run it in HW
        double t_sw = 0.0;
        double comm = 0.0;
        double adj = 0.0;  ///< max(0, adjacency saving); 0 for BSB 0
        double profile = 0.0;
        long long asap_len = 0;
        int eca_states = 1;  ///< hoisted frames length (ECA mode)
        /// (kind index, ops-of-kind * min latency) per used kind.
        std::vector<std::pair<std::size_t, long long>> work;
    };

    bool sound_ = false;
    double cycle_ns_ = 0.0;
    hw::Gate_areas gates_{};
    pace::Controller_mode ctrl_mode_ = pace::Controller_mode::list_schedule;
    std::vector<Term> terms_;  ///< per BSB
    /// Per op kind: resource ids executing it (capacity = count sum).
    std::vector<std::vector<int>> kind_execs_;
};

}  // namespace lycos::search
