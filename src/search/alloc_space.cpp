#include "search/alloc_space.hpp"

#include <stdexcept>

namespace lycos::search {

Alloc_space::Alloc_space(const hw::Hw_library& lib,
                         const core::Rmap& restrictions)
    : lib_(lib)
{
    for (const auto& [r, bound] : restrictions.entries())
        if (bound > 0)
            dims_.emplace_back(r, bound);
}

long long Alloc_space::size() const
{
    long long n = 1;
    for (const auto& [r, bound] : dims_)
        n *= bound + 1;
    return n;
}

void Alloc_space::for_each(
    double max_area, const std::function<bool(const core::Rmap&)>& visit) const
{
    std::vector<int> counter(dims_.size(), 0);
    for (;;) {
        core::Rmap a;
        double area = 0.0;
        for (std::size_t d = 0; d < dims_.size(); ++d) {
            if (counter[d] > 0) {
                a.set(dims_[d].first, counter[d]);
                area += lib_[dims_[d].first].area * counter[d];
            }
        }
        if (area <= max_area && !visit(a))
            return;

        // Increment the mixed-radix counter.
        std::size_t d = 0;
        while (d < dims_.size()) {
            if (++counter[d] <= dims_[d].second)
                break;
            counter[d] = 0;
            ++d;
        }
        if (d == dims_.size())
            return;  // wrapped around: all points visited
    }
}

core::Rmap Alloc_space::nth(long long index) const
{
    if (index < 0 || index >= size())
        throw std::out_of_range("Alloc_space::nth");
    core::Rmap a;
    for (const auto& [r, bound] : dims_) {
        const long long radix = bound + 1;
        const int digit = static_cast<int>(index % radix);
        index /= radix;
        if (digit > 0)
            a.set(r, digit);
    }
    return a;
}

}  // namespace lycos::search
