#include "search/alloc_space.hpp"

#include <limits>
#include <stdexcept>

namespace lycos::search {

Alloc_space::Alloc_space(const hw::Hw_library& lib,
                         const core::Rmap& restrictions)
    : lib_(lib)
{
    for (const auto& [r, bound] : restrictions.entries())
        if (bound > 0)
            dims_.emplace_back(r, bound);
}

long long Alloc_space::size() const
{
    constexpr long long k_max = std::numeric_limits<long long>::max();
    // Accumulate in 128 bits and saturate: a restriction map with many
    // generous bounds can push the product past 2^63, and the callers
    // only ever compare the size against evaluation budgets.
    __int128 n = 1;
    for (const auto& [r, bound] : dims_) {
        n *= static_cast<__int128>(bound) + 1;
        if (n > static_cast<__int128>(k_max))
            return k_max;
    }
    return static_cast<long long>(n);
}

void Alloc_space::for_each(
    double max_area, const std::function<bool(const core::Rmap&)>& visit) const
{
    for_each_range(0, size(), max_area, visit);
}

void Alloc_space::for_each_range(
    long long begin, long long end, double max_area,
    const std::function<bool(const core::Rmap&)>& visit) const
{
    if (begin < 0 || begin > end || end > size())
        throw std::out_of_range("Alloc_space::for_each_range");

    // Seed the mixed-radix counter with the digits of `begin`.
    std::vector<int> counter = decompose(begin);

    for (long long index = begin; index < end; ++index) {
        core::Rmap a;
        double area = 0.0;
        for (std::size_t d = 0; d < dims_.size(); ++d) {
            if (counter[d] > 0) {
                a.set(dims_[d].first, counter[d]);
                area += lib_[dims_[d].first].area * counter[d];
            }
        }
        if (area <= max_area && !visit(a))
            return;

        // Increment the mixed-radix counter.  Compare before
        // incrementing: ++ on a digit already at a bound of INT_MAX
        // would overflow and drop the carry.
        std::size_t d = 0;
        while (d < dims_.size()) {
            if (counter[d] < dims_[d].second) {
                ++counter[d];
                break;
            }
            counter[d] = 0;
            ++d;
        }
    }
}

core::Rmap Alloc_space::nth(long long index) const
{
    if (index < 0 || index >= size())
        throw std::out_of_range("Alloc_space::nth");
    const auto digits = decompose(index);
    core::Rmap a;
    for (std::size_t d = 0; d < dims_.size(); ++d)
        if (digits[d] > 0)
            a.set(dims_[d].first, digits[d]);
    return a;
}

core::Rmap Alloc_space::greedy_fill(const hw::Hw_library& lib,
                                    double budget) const
{
    core::Rmap greedy;
    double area = 0.0;
    for (const auto& [id, bound] : dims_) {
        const double unit = lib[id].area;
        int c = bound;
        while (c > 0 && area + unit * c > budget)
            --c;
        greedy.set(id, c);
        area += unit * c;
    }
    return greedy;
}

std::vector<int> Alloc_space::decompose(long long index) const
{
    std::vector<int> digits(dims_.size(), 0);
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        // Widen before the +1: a bound of INT_MAX must not overflow.
        const long long radix =
            static_cast<long long>(dims_[d].second) + 1;
        digits[d] = static_cast<int>(index % radix);
        index /= radix;
    }
    return digits;
}

}  // namespace lycos::search
