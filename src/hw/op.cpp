#include "hw/op.hpp"

#include <stdexcept>

namespace lycos::hw {

namespace {

constexpr std::array<std::string_view, n_op_kinds> k_names = {
    "add",  "sub",  "neg",  "mul",   "div",   "mod",   "lt",
    "le",   "eq",   "ne",   "and",   "or",    "not",   "band",
    "bor",  "bxor", "shl",  "shr",   "const", "copy",
};

}  // namespace

std::string_view to_string(Op_kind k)
{
    return k_names[op_index(k)];
}

Op_kind op_kind_from_string(std::string_view name)
{
    for (std::size_t i = 0; i < n_op_kinds; ++i)
        if (k_names[i] == name)
            return static_cast<Op_kind>(i);
    throw std::invalid_argument("unknown operation kind: " + std::string(name));
}

std::string to_string(Op_set s)
{
    std::string out;
    for (auto k : all_op_kinds()) {
        if (!s.contains(k))
            continue;
        if (!out.empty())
            out += ',';
        out += to_string(k);
    }
    return out;
}

}  // namespace lycos::hw
