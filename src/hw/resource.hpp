// Functional-unit resource types and the hardware resource library.
//
// The data-path of the ASIC (Figure 1) is composed of functional units
// drawn from a library: adders, multipliers, subtractors, ...  Each
// resource type executes a set of operation kinds, occupies area and
// takes a number of ASIC clock cycles per operation.  The allocation
// the paper's algorithm produces is a multiset over these types.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hw/op.hpp"

namespace lycos::hw {

/// Index of a resource type inside its Hw_library.
using Resource_id = int;

/// One functional-unit type in the hardware library.
struct Resource_type {
    std::string name;        ///< e.g. "adder", "multiplier"
    Op_set ops;              ///< operation kinds this unit can execute
    double area = 0.0;       ///< area in gate equivalents (> 0)
    int latency_cycles = 1;  ///< ASIC cycles per operation (>= 1)
};

/// The library of functional-unit types available for allocation.
///
/// Invariants enforced on add():
///   * unique names,
///   * strictly positive area (Algorithm 1's termination argument
///     relies on every allocation step consuming area),
///   * latency >= 1,
///   * non-empty operation set.
class Hw_library {
public:
    Hw_library() = default;

    /// Add a resource type; returns its id.  Throws
    /// std::invalid_argument if the invariants above are violated.
    Resource_id add(Resource_type r);

    std::size_t size() const { return types_.size(); }
    bool empty() const { return types_.empty(); }

    const Resource_type& operator[](Resource_id id) const
    {
        return types_.at(static_cast<std::size_t>(id));
    }

    std::span<const Resource_type> types() const { return types_; }

    /// Find a resource type by name.
    std::optional<Resource_id> find(std::string_view name) const;

    /// All resource ids that can execute `k`, in id order.
    std::vector<Resource_id> executors_of(Op_kind k) const;

    /// The smallest-area resource type that can execute `k`, if any.
    /// This is the unit GetReqResources and MostUrgentResource pick
    /// when a new resource must be allocated for an operation type.
    std::optional<Resource_id> cheapest_executor(Op_kind k) const;

    /// True if at least one resource type can execute every kind in `s`.
    bool covers(Op_set s) const;

    /// Union of the op sets of all resource types.
    Op_set supported_ops() const;

    /// Latency (cycles) of the cheapest executor of `k`; this is the
    /// per-kind latency estimate used by ASAP/ALAP scheduling before
    /// any allocation exists.  Throws std::invalid_argument if no
    /// resource can execute `k`.
    int latency_estimate(Op_kind k) const;

private:
    std::vector<Resource_type> types_;
};

/// The default library used throughout the examples, tests and
/// benches: 16-bit-datapath-flavoured units with areas in gate
/// equivalents and plausible late-1990s cycle counts.
///
///   adder(add,neg), subtractor(sub,neg), multiplier(mul),
///   divider(div,mod), comparator(lt,le,eq,ne), logic unit
///   (and,or,not,band,bor,bxor), shifter(shl,shr), constant
///   generator(const_load), mover(copy)
Hw_library make_default_library();

}  // namespace lycos::hw
