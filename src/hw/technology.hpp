// Gate-level technology description.
//
// The Estimated Controller Area formula of the paper (§4.2, from
// Knudsen's thesis [6]) is expressed in terms of the areas of a
// register, an and-gate, an or-gate and an inverter:
//
//     ECA = A_R + A_AG + A_OG + log2(N)*A_R + (N-1)*(A_IG + 2*A_AG)
//
// so the technology is captured as those four primitive areas.  All
// areas in the library are in the same (arbitrary but consistent)
// gate-equivalent unit.
#pragma once

namespace lycos::hw {

/// Primitive cell areas in gate equivalents.
///
/// The defaults make controllers a *significant* fraction of the
/// hardware, as in the paper (Table 1's Size column leaves 7%-38% of
/// the used area to controllers): one controller "register" models the
/// state register plus the per-state datapath control registers and
/// multiplexer drivers it implies, so a 10-state controller costs on
/// the order of an adder.
struct Gate_areas {
    double reg = 64.0;  ///< A_R  - state register (plus implied control regs)
    double and2 = 8.0;  ///< A_AG - two-input and gate (decode slice)
    double or2 = 8.0;   ///< A_OG - two-input or gate
    double inv = 4.0;   ///< A_IG - inverter

    friend bool operator==(const Gate_areas&, const Gate_areas&) = default;
};

}  // namespace lycos::hw
