#include "hw/resource.hpp"

#include <limits>
#include <stdexcept>

namespace lycos::hw {

Resource_id Hw_library::add(Resource_type r)
{
    if (r.name.empty())
        throw std::invalid_argument("Hw_library::add: empty name");
    if (find(r.name))
        throw std::invalid_argument("Hw_library::add: duplicate name " + r.name);
    if (!(r.area > 0.0))
        throw std::invalid_argument("Hw_library::add: non-positive area for " +
                                    r.name);
    if (r.latency_cycles < 1)
        throw std::invalid_argument("Hw_library::add: latency < 1 for " + r.name);
    if (r.ops.empty())
        throw std::invalid_argument("Hw_library::add: empty op set for " + r.name);
    types_.push_back(std::move(r));
    return static_cast<Resource_id>(types_.size() - 1);
}

std::optional<Resource_id> Hw_library::find(std::string_view name) const
{
    for (std::size_t i = 0; i < types_.size(); ++i)
        if (types_[i].name == name)
            return static_cast<Resource_id>(i);
    return std::nullopt;
}

std::vector<Resource_id> Hw_library::executors_of(Op_kind k) const
{
    std::vector<Resource_id> out;
    for (std::size_t i = 0; i < types_.size(); ++i)
        if (types_[i].ops.contains(k))
            out.push_back(static_cast<Resource_id>(i));
    return out;
}

std::optional<Resource_id> Hw_library::cheapest_executor(Op_kind k) const
{
    std::optional<Resource_id> best;
    double best_area = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < types_.size(); ++i) {
        if (!types_[i].ops.contains(k))
            continue;
        if (types_[i].area < best_area) {
            best_area = types_[i].area;
            best = static_cast<Resource_id>(i);
        }
    }
    return best;
}

bool Hw_library::covers(Op_set s) const
{
    for (auto k : all_op_kinds())
        if (s.contains(k) && !cheapest_executor(k))
            return false;
    return true;
}

Op_set Hw_library::supported_ops() const
{
    Op_set all;
    for (const auto& t : types_)
        all = all | t.ops;
    return all;
}

int Hw_library::latency_estimate(Op_kind k) const
{
    auto id = cheapest_executor(k);
    if (!id)
        throw std::invalid_argument(
            std::string("Hw_library::latency_estimate: no executor for ") +
            std::string(to_string(k)));
    return (*this)[*id].latency_cycles;
}

Hw_library make_default_library()
{
    using enum Op_kind;
    Hw_library lib;
    lib.add({"adder", {add, neg}, 180.0, 1});
    lib.add({"subtractor", {sub, neg}, 190.0, 1});
    lib.add({"multiplier", {mul}, 2200.0, 2});
    lib.add({"divider", {div, mod}, 3600.0, 4});
    lib.add({"comparator", {cmp_lt, cmp_le, cmp_eq, cmp_ne}, 90.0, 1});
    lib.add({"logic_unit", {log_and, log_or, log_not, bit_and, bit_or, bit_xor},
             70.0, 1});
    lib.add({"shifter", {shl, shr}, 140.0, 1});
    lib.add({"const_gen", {const_load}, 150.0, 1});
    lib.add({"mover", {copy}, 30.0, 1});
    return lib;
}

}  // namespace lycos::hw
