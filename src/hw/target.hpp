// The co-processor target architecture (Figure 1): one processor, one
// ASIC and a memory-mapped communication channel between them.
//
// The target must be fixed before partitioning: the processor model
// gives software execution times, the ASIC model gives the total
// hardware area that the pre-allocated data-path and the BSB
// controllers must share, and the bus model prices HW/SW
// communication.
#pragma once

#include <string>

#include "hw/op.hpp"
#include "hw/technology.hpp"

namespace lycos::hw {

/// Software side: a single embedded processor executing operations
/// serially ("in software, operations are executed serially", §2).
struct Processor_model {
    std::string name = "risc32";
    double clock_mhz = 50.0;          ///< processor clock
    Per_op<int> cycles_per_op;        ///< cycles for one operation

    /// Nanoseconds for one operation of kind `k`.
    double op_ns(Op_kind k) const
    {
        return cycles_per_op[k] * 1e3 / clock_mhz;
    }
};

/// Hardware side: the ASIC hosting the data-path and the controllers.
struct Asic_model {
    double clock_mhz = 25.0;   ///< ASIC clock
    double total_area = 0.0;   ///< gate equivalents for data-path + controllers

    /// Nanoseconds per ASIC cycle.
    double cycle_ns() const { return 1e3 / clock_mhz; }
};

/// Memory-mapped HW/SW communication (the scheme §1 assumes).
struct Bus_model {
    double ns_per_word = 80.0;  ///< one word transferred CPU <-> ASIC
};

/// The complete pre-selected target architecture.
struct Target {
    Processor_model cpu;
    Asic_model asic;
    Bus_model bus;
    Gate_areas gates;
};

/// A typical late-1990s co-design target: 50 MHz RISC core with a
/// conventional software cycle table (multiplies and divides are
/// multi-cycle), a 25 MHz ASIC and a default gate technology.
/// `asic_area` is the total area available for data-path plus
/// controllers.
Target make_default_target(double asic_area);

}  // namespace lycos::hw
