// Operation kinds and operation-kind sets.
//
// Operations are the leaves of the application model: each node of a
// data-flow graph (DFG) performs one operation.  The paper's resource
// allocation reasons about *operation types* (Definition 2 talks about
// "the operation of type o in B_k"), so the kind enumeration below is
// the common vocabulary between the application side (DFGs) and the
// hardware side (functional units that can execute sets of kinds).
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace lycos::hw {

/// Every operation type the application model can contain.
///
/// `const_load` is the "constant generator" operation the paper's
/// Mandelbrot discussion (§5) revolves around: loading an immediate
/// value into the data-path.
enum class Op_kind : std::uint8_t {
    add,
    sub,
    neg,
    mul,
    div,
    mod,
    cmp_lt,
    cmp_le,
    cmp_eq,
    cmp_ne,
    log_and,
    log_or,
    log_not,
    bit_and,
    bit_or,
    bit_xor,
    shl,
    shr,
    const_load,
    copy,
};

/// Number of distinct operation kinds (for dense per-kind arrays).
inline constexpr std::size_t n_op_kinds = 20;

/// Dense index of an operation kind.
constexpr std::size_t op_index(Op_kind k)
{
    return static_cast<std::size_t>(k);
}

/// All operation kinds, in dense-index order.
constexpr std::array<Op_kind, n_op_kinds> all_op_kinds()
{
    std::array<Op_kind, n_op_kinds> a{};
    for (std::size_t i = 0; i < n_op_kinds; ++i)
        a[i] = static_cast<Op_kind>(i);
    return a;
}

/// Short mnemonic name, e.g. "add", "mul", "const".
std::string_view to_string(Op_kind k);

/// Parse a mnemonic produced by to_string(); throws std::invalid_argument
/// on unknown names.
Op_kind op_kind_from_string(std::string_view name);

/// A set of operation kinds, stored as a bit mask.  Used to describe
/// which operations a functional unit can execute and which operations
/// a BSB contains.
class Op_set {
public:
    constexpr Op_set() = default;
    constexpr Op_set(std::initializer_list<Op_kind> kinds)
    {
        for (auto k : kinds)
            insert(k);
    }

    constexpr void insert(Op_kind k) { bits_ |= bit(k); }
    constexpr void erase(Op_kind k) { bits_ &= ~bit(k); }
    constexpr bool contains(Op_kind k) const { return (bits_ & bit(k)) != 0; }
    constexpr bool empty() const { return bits_ == 0; }

    /// Number of kinds in the set.
    constexpr int size() const
    {
        int n = 0;
        for (std::uint32_t b = bits_; b != 0; b &= b - 1)
            ++n;
        return n;
    }

    constexpr bool intersects(Op_set other) const
    {
        return (bits_ & other.bits_) != 0;
    }

    /// True if every kind of `other` is also in *this.
    constexpr bool includes(Op_set other) const
    {
        return (bits_ & other.bits_) == other.bits_;
    }

    constexpr friend Op_set operator|(Op_set a, Op_set b)
    {
        Op_set r;
        r.bits_ = a.bits_ | b.bits_;
        return r;
    }

    constexpr friend Op_set operator&(Op_set a, Op_set b)
    {
        Op_set r;
        r.bits_ = a.bits_ & b.bits_;
        return r;
    }

    constexpr friend bool operator==(Op_set a, Op_set b) = default;

    /// Raw bit mask (bit i set <=> kind with dense index i present).
    constexpr std::uint32_t bits() const { return bits_; }

private:
    static constexpr std::uint32_t bit(Op_kind k)
    {
        return std::uint32_t{1} << op_index(k);
    }
    std::uint32_t bits_ = 0;
};

/// Comma-separated list of the kinds in `s`, e.g. "add,sub".
std::string to_string(Op_set s);

/// A value of type T for every operation kind; a convenience for the
/// many per-kind tables in the library (FURO values, urgencies,
/// latencies, parallelism bounds, ...).
template <typename T>
class Per_op {
public:
    constexpr Per_op() : values_{} {}
    constexpr explicit Per_op(const T& init) { values_.fill(init); }

    constexpr T& operator[](Op_kind k) { return values_[op_index(k)]; }
    constexpr const T& operator[](Op_kind k) const { return values_[op_index(k)]; }

    constexpr auto begin() { return values_.begin(); }
    constexpr auto end() { return values_.end(); }
    constexpr auto begin() const { return values_.begin(); }
    constexpr auto end() const { return values_.end(); }

    constexpr friend bool operator==(const Per_op&, const Per_op&) = default;

private:
    std::array<T, n_op_kinds> values_;
};

}  // namespace lycos::hw
