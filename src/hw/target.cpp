#include "hw/target.hpp"

namespace lycos::hw {

Target make_default_target(double asic_area)
{
    using enum Op_kind;
    Target t;
    // A late-1990s embedded core: each data-flow operation costs
    // instruction fetch + operand loads + compute + store, so even
    // "one-cycle" ALU operations take a few processor cycles, and the
    // processor clock is modest.  The ASIC, by contrast, executes
    // chained register-to-register operations at its own clock.  The
    // resulting SW/HW time ratio per operation (an order of magnitude,
    // more for multiplies/divides) is what makes the paper's
    // 1000%+ speed-ups reachable.
    t.cpu.name = "emb10";
    t.cpu.clock_mhz = 10.0;

    Per_op<int>& c = t.cpu.cycles_per_op;
    c[add] = 2;
    c[sub] = 2;
    c[neg] = 2;
    c[mul] = 12;
    c[div] = 40;
    c[mod] = 44;
    c[cmp_lt] = 2;
    c[cmp_le] = 2;
    c[cmp_eq] = 2;
    c[cmp_ne] = 2;
    c[log_and] = 2;
    c[log_or] = 2;
    c[log_not] = 2;
    c[bit_and] = 2;
    c[bit_or] = 2;
    c[bit_xor] = 2;
    c[shl] = 2;
    c[shr] = 2;
    c[const_load] = 1;
    c[copy] = 2;

    t.asic.clock_mhz = 25.0;
    t.asic.total_area = asic_area;
    t.bus.ns_per_word = 40.0;  // one ASIC cycle per memory-mapped word
    return t;
}

}  // namespace lycos::hw
