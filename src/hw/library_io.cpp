#include "hw/library_io.hpp"

#include <istream>
#include <sstream>
#include <stdexcept>

namespace lycos::hw {

namespace {

[[noreturn]] void fail(int line, const std::string& message)
{
    throw std::invalid_argument("library line " + std::to_string(line) +
                                ": " + message);
}

Op_set parse_ops(const std::string& spec, int line)
{
    Op_set ops;
    std::istringstream in(spec);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (item.empty())
            fail(line, "empty operation name");
        try {
            ops.insert(op_kind_from_string(item));
        }
        catch (const std::invalid_argument&) {
            fail(line, "unknown operation '" + item + "'");
        }
    }
    if (ops.empty())
        fail(line, "no operations listed");
    return ops;
}

}  // namespace

Hw_library parse_library(std::string_view text)
{
    Hw_library lib;
    std::istringstream in{std::string(text)};
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        // Strip comments and whitespace-only lines.
        const auto hash = raw.find('#');
        const std::string line =
            hash == std::string::npos ? raw : raw.substr(0, hash);
        std::istringstream fields(line);
        std::string name, ops_spec;
        double area = 0.0;
        int latency = 0;
        if (!(fields >> name))
            continue;  // blank line
        if (!(fields >> ops_spec >> area >> latency))
            fail(line_no, "expected: name ops area latency");
        std::string extra;
        if (fields >> extra)
            fail(line_no, "trailing field '" + extra + "'");
        try {
            lib.add(Resource_type{name, parse_ops(ops_spec, line_no), area,
                                  latency});
        }
        catch (const std::invalid_argument& e) {
            fail(line_no, e.what());
        }
    }
    if (lib.empty())
        throw std::invalid_argument("library file defines no resources");
    return lib;
}

Hw_library read_library(std::istream& in)
{
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_library(buf.str());
}

std::string format_library(const Hw_library& lib)
{
    std::ostringstream os;
    os << "# name ops area latency\n";
    for (const auto& t : lib.types()) {
        os << t.name << ' ' << to_string(t.ops) << ' ' << t.area << ' '
           << t.latency_cycles << '\n';
    }
    return os.str();
}

}  // namespace lycos::hw
