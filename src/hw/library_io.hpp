// Text-format hardware library I/O.
//
// Lets tools load a resource library from a plain file instead of
// compiling one in:
//
//     # name        ops            area   latency
//     adder         add,neg        180    1
//     multiplier    mul            2200   2
//     alu           add,sub,neg    320    1
//
// Blank lines and '#' comments are ignored; `ops` is a comma-separated
// list of operation mnemonics (see hw::to_string(Op_kind)).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "hw/resource.hpp"

namespace lycos::hw {

/// Parse a library from text.  Throws std::invalid_argument with a
/// line number on malformed input.
Hw_library parse_library(std::string_view text);

/// Read a library from a stream.
Hw_library read_library(std::istream& in);

/// Serialize a library in the same format (round-trips with
/// parse_library).
std::string format_library(const Hw_library& lib);

}  // namespace lycos::hw
