// Resource-constrained list scheduling.
//
// Given a concrete allocation (so many instances of each resource
// type), the list scheduler produces the schedule a BSB would actually
// execute with in hardware.  It supplies
//   * the hardware execution time of a BSB under a candidate
//     allocation (used by the PACE evaluation), and
//   * the *real* controller state count of §5.1, which is longer than
//     the optimistic ASAP estimate the ECA uses.
//
// Priority rule: ready operations are served in increasing ALAP order
// (least slack first), ties broken by op id for determinism.
//
// Two implementations produce bit-identical schedules:
//   * list_schedule — event-driven: jumps straight from one operation
//     finish time to the next instead of stepping every clock cycle,
//     keeps the ready set in a heap keyed by (ALAP, id), and binds via
//     per-op-kind buckets of resource types ordered by specialization.
//     This is the production path (the allocation-search hot loop).
//   * list_schedule_naive — the original cycle-stepping reference,
//     retained for the equivalence property tests.
#pragma once

#include <span>
#include <vector>

#include "dfg/dfg.hpp"
#include "hw/resource.hpp"
#include "sched/time_frames.hpp"

namespace lycos::sched {

/// Result of list scheduling one DFG.
struct List_schedule {
    bool feasible = false;        ///< false if some op kind has no allocated executor
    std::vector<int> start;       ///< start step per op (1-based), empty if infeasible
    std::vector<int> resource;    ///< Resource_id executing each op, empty if infeasible
    int length = 0;               ///< schedule length in cycles (0 if infeasible/empty)
};

/// Which scheduler implementation to run (benchmarks compare the two;
/// everything else uses the default event-driven one).
enum class Scheduler_kind {
    event_driven,  ///< production path
    naive,         ///< cycle-stepping reference
};

/// Schedule `g` on `counts[r]` instances of each resource type `r` of
/// `lib`.  `counts.size()` must equal `lib.size()`.
///
/// With at least `asap_parallelism` instances of every needed kind the
/// result equals the ASAP schedule; with fewer instances the schedule
/// stretches (§4.1: "the final hardware schedule ... will be
/// stretched, leading to a loss of performance").
List_schedule list_schedule(const dfg::Dfg& g, const hw::Hw_library& lib,
                            std::span<const int> counts);

/// Event-driven scheduling with precomputed time frames.  `frames`
/// must be compute_time_frames(g, latency_table_from(lib)) — the
/// Eval_cache hoists it because the frames are allocation-independent,
/// so cache misses skip the O(V+E) ALAP recomputation.
List_schedule list_schedule(const dfg::Dfg& g, const hw::Hw_library& lib,
                            std::span<const int> counts,
                            const Schedule_info& frames);

class Schedule_workspace;

/// Same, with caller-owned scratch: every heap, bucket and output
/// vector lives in `ws` and is reused across calls, so the
/// allocation-search hot loop (one workspace per Eval_cache, i.e. per
/// worker) schedules without touching the allocator at all.  The
/// returned reference points into the workspace and stays valid until
/// its next use.  Results are bit-identical to the allocating
/// overload.
const List_schedule& list_schedule(const dfg::Dfg& g,
                                   const hw::Hw_library& lib,
                                   std::span<const int> counts,
                                   const Schedule_info& frames,
                                   Schedule_workspace& ws);

/// Caller-owned scratch buffers for the event-driven list scheduler.
/// Grow-only, cleared at the start of every call (so a call that
/// threw leaves no residue); not thread-safe.
class Schedule_workspace {
public:
    Schedule_workspace() = default;

private:
    friend const List_schedule& list_schedule(const dfg::Dfg& g,
                                              const hw::Hw_library& lib,
                                              std::span<const int> counts,
                                              const Schedule_info& frames,
                                              Schedule_workspace& ws);
    using Prio = std::pair<int, dfg::Op_id>;
    List_schedule out_;
    std::vector<hw::Resource_id> bucket_[hw::n_op_kinds];
    std::vector<hw::Op_kind> used_kinds_;
    std::vector<int> free_count_;
    std::vector<int> remaining_preds_;
    std::vector<Prio> fresh_;                    ///< min-heap storage
    std::vector<Prio> waiting_[hw::n_op_kinds];  ///< min-heap storage
    std::vector<std::size_t> active_kinds_;
    std::vector<Prio> events_;  ///< min-heap storage (finish+1, op)
};

/// The original cycle-stepping implementation.  Produces the same
/// schedule as list_schedule (asserted by tests/test_sched_equivalence)
/// but costs O(cycles * ready * instances) instead of O(n log n).
List_schedule list_schedule_naive(const dfg::Dfg& g,
                                  const hw::Hw_library& lib,
                                  std::span<const int> counts);

/// Dispatch on `kind` (used by the old-vs-new benches).
List_schedule list_schedule(const dfg::Dfg& g, const hw::Hw_library& lib,
                            std::span<const int> counts, Scheduler_kind kind);

}  // namespace lycos::sched
