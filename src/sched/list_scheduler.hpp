// Resource-constrained list scheduling.
//
// Given a concrete allocation (so many instances of each resource
// type), the list scheduler produces the schedule a BSB would actually
// execute with in hardware.  It supplies
//   * the hardware execution time of a BSB under a candidate
//     allocation (used by the PACE evaluation), and
//   * the *real* controller state count of §5.1, which is longer than
//     the optimistic ASAP estimate the ECA uses.
//
// Priority rule: ready operations are served in increasing ALAP order
// (least slack first), ties broken by op id for determinism.
#pragma once

#include <span>
#include <vector>

#include "dfg/dfg.hpp"
#include "hw/resource.hpp"
#include "sched/time_frames.hpp"

namespace lycos::sched {

/// Result of list scheduling one DFG.
struct List_schedule {
    bool feasible = false;        ///< false if some op kind has no allocated executor
    std::vector<int> start;       ///< start step per op (1-based), empty if infeasible
    std::vector<int> resource;    ///< Resource_id executing each op, empty if infeasible
    int length = 0;               ///< schedule length in cycles (0 if infeasible/empty)
};

/// Schedule `g` on `counts[r]` instances of each resource type `r` of
/// `lib`.  `counts.size()` must equal `lib.size()`.
///
/// With at least `asap_parallelism` instances of every needed kind the
/// result equals the ASAP schedule; with fewer instances the schedule
/// stretches (§4.1: "the final hardware schedule ... will be
/// stretched, leading to a loss of performance").
List_schedule list_schedule(const dfg::Dfg& g, const hw::Hw_library& lib,
                            std::span<const int> counts);

}  // namespace lycos::sched
