#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <array>
#include <queue>
#include <stdexcept>

namespace lycos::sched {

namespace {

/// Upper bound on the makespan: every op serialized on the slowest
/// unit, plus slack.  Progress past this bound means the scheduler is
/// broken (a cross-check, not a semantic limit).
long long cycle_guard(std::size_t n_ops, const hw::Hw_library& lib)
{
    long long max_latency = 1;
    for (const auto& t : lib.types())
        max_latency = std::max<long long>(max_latency, t.latency_cycles);
    return static_cast<long long>(n_ops) * (max_latency + 1) + 16;
}

/// Every op kind used by the DFG needs at least one allocated executor
/// (the naive path's feasibility check; the event-driven path derives
/// the same answer from its per-kind buckets).
bool allocation_covers(const dfg::Dfg& g, const hw::Hw_library& lib,
                       std::span<const int> counts)
{
    const auto used = g.used_ops();  // one O(V) scan, not one per kind
    for (auto k : hw::all_op_kinds()) {
        if (!used.contains(k))
            continue;
        bool covered = false;
        for (std::size_t r = 0; r < lib.size(); ++r)
            if (counts[r] > 0 &&
                lib[static_cast<hw::Resource_id>(r)].ops.contains(k))
                covered = true;
        if (!covered)
            return false;
    }
    return true;
}

struct Instance {
    hw::Resource_id type;
    int busy_until = 0;  // last cycle (inclusive) this instance is occupied
};

}  // namespace

List_schedule list_schedule_naive(const dfg::Dfg& g, const hw::Hw_library& lib,
                                  std::span<const int> counts)
{
    if (counts.size() != lib.size())
        throw std::invalid_argument("list_schedule: counts/library size mismatch");

    List_schedule out;
    if (g.empty()) {
        out.feasible = true;
        return out;
    }
    if (!allocation_covers(g, lib, counts))
        return out;  // infeasible

    // Materialize resource instances.
    std::vector<Instance> instances;
    for (std::size_t r = 0; r < lib.size(); ++r)
        for (int i = 0; i < counts[r]; ++i)
            instances.push_back({static_cast<hw::Resource_id>(r), 0});

    // ALAP-based priorities (computed with the cheapest-executor
    // latency table; the classic list-scheduling priority).
    const auto frames = compute_time_frames(g, latency_table_from(lib));

    const auto n = g.size();
    out.start.assign(n, 0);
    out.resource.assign(n, -1);
    std::vector<int> remaining_preds(n, 0);
    std::vector<int> finish(n, 0);  // last busy cycle of each scheduled op
    for (std::size_t i = 0; i < n; ++i)
        remaining_preds[i] =
            static_cast<int>(g.preds(static_cast<dfg::Op_id>(i)).size());

    std::vector<dfg::Op_id> ready;
    for (std::size_t i = 0; i < n; ++i)
        if (remaining_preds[i] == 0)
            ready.push_back(static_cast<dfg::Op_id>(i));

    const auto priority_less = [&](dfg::Op_id a, dfg::Op_id b) {
        const auto& fa = frames.frame(a);
        const auto& fb = frames.frame(b);
        if (fa.alap != fb.alap)
            return fa.alap < fb.alap;
        return a < b;
    };

    std::size_t n_scheduled = 0;
    int cycle = 0;
    const long long guard = cycle_guard(n, lib);

    while (n_scheduled < n) {
        ++cycle;
        if (cycle > guard)
            throw std::logic_error("list_schedule: no progress (internal error)");

        // Newly finished ops release their successors.
        for (std::size_t i = 0; i < n; ++i) {
            if (out.start[i] != 0 && finish[i] == cycle - 1) {
                for (dfg::Op_id s : g.succs(static_cast<dfg::Op_id>(i)))
                    if (--remaining_preds[static_cast<std::size_t>(s)] == 0)
                        ready.push_back(s);
            }
        }

        std::sort(ready.begin(), ready.end(), priority_less);

        // Greedily bind ready ops to free instances.  Prefer the most
        // specialized compatible unit so flexible units stay available.
        std::vector<dfg::Op_id> still_waiting;
        for (dfg::Op_id v : ready) {
            int best_inst = -1;
            int best_flexibility = 1 << 30;
            for (std::size_t ii = 0; ii < instances.size(); ++ii) {
                const auto& inst = instances[ii];
                if (inst.busy_until >= cycle)
                    continue;
                const auto& type = lib[inst.type];
                if (!type.ops.contains(g.op(v).kind))
                    continue;
                if (type.ops.size() < best_flexibility) {
                    best_flexibility = type.ops.size();
                    best_inst = static_cast<int>(ii);
                }
            }
            if (best_inst < 0) {
                still_waiting.push_back(v);
                continue;
            }
            auto& inst = instances[static_cast<std::size_t>(best_inst)];
            const int lat = lib[inst.type].latency_cycles;
            inst.busy_until = cycle + lat - 1;
            out.start[static_cast<std::size_t>(v)] = cycle;
            out.resource[static_cast<std::size_t>(v)] = inst.type;
            finish[static_cast<std::size_t>(v)] = cycle + lat - 1;
            out.length = std::max(out.length, cycle + lat - 1);
            ++n_scheduled;
        }
        ready = std::move(still_waiting);
    }

    out.feasible = true;
    return out;
}

List_schedule list_schedule(const dfg::Dfg& g, const hw::Hw_library& lib,
                            std::span<const int> counts,
                            const Schedule_info& frames)
{
    Schedule_workspace ws;
    return list_schedule(g, lib, counts, frames, ws);
}

const List_schedule& list_schedule(const dfg::Dfg& g,
                                   const hw::Hw_library& lib,
                                   std::span<const int> counts,
                                   const Schedule_info& frames,
                                   Schedule_workspace& ws)
{
    if (counts.size() != lib.size())
        throw std::invalid_argument("list_schedule: counts/library size mismatch");

    using Prio = Schedule_workspace::Prio;  // (alap|time, id)
    const auto heap_less = std::greater<>{};  // min-heaps via std::*_heap
    auto heap_push = [&](std::vector<Prio>& h, Prio v) {
        h.push_back(v);
        std::push_heap(h.begin(), h.end(), heap_less);
    };
    auto heap_pop = [&](std::vector<Prio>& h) {
        std::pop_heap(h.begin(), h.end(), heap_less);
        h.pop_back();
    };

    // Reset the scratch (grow-only buffers; cleared up front so a
    // call that threw leaves nothing behind).
    List_schedule& out = ws.out_;
    out.feasible = false;
    out.length = 0;
    out.start.clear();
    out.resource.clear();
    for (auto k : ws.used_kinds_) {
        ws.bucket_[hw::op_index(k)].clear();
        ws.waiting_[hw::op_index(k)].clear();  // nonempty only after a throw
    }
    ws.used_kinds_.clear();
    ws.fresh_.clear();
    ws.active_kinds_.clear();
    ws.events_.clear();

    if (g.empty()) {
        out.feasible = true;
        return out;
    }

    // Per-op-kind buckets: resource types that can execute the kind,
    // most specialized first (ties toward lower id — the same unit the
    // naive scan over id-ordered instances would pick).  An empty
    // bucket for a used kind means the allocation is infeasible.
    const auto used = g.used_ops();  // one O(V) scan, not one per kind
    for (auto k : hw::all_op_kinds()) {
        if (!used.contains(k))
            continue;
        ws.used_kinds_.push_back(k);
        auto& bucket = ws.bucket_[hw::op_index(k)];
        for (std::size_t r = 0; r < lib.size(); ++r)
            if (counts[r] > 0 &&
                lib[static_cast<hw::Resource_id>(r)].ops.contains(k))
                bucket.push_back(static_cast<hw::Resource_id>(r));
        if (bucket.empty())
            return out;  // infeasible (buckets cleared on next call)
        std::sort(bucket.begin(), bucket.end(),
                  [&](hw::Resource_id a, hw::Resource_id b) {
                      if (lib[a].ops.size() != lib[b].ops.size())
                          return lib[a].ops.size() < lib[b].ops.size();
                      return a < b;
                  });
    }

    // Free-instance counters per resource type (instances of one type
    // are interchangeable, so counts replace the naive instance array).
    ws.free_count_.assign(counts.begin(), counts.end());
    auto& free_count = ws.free_count_;

    const auto n = g.size();
    out.start.assign(n, 0);
    out.resource.assign(n, -1);
    ws.remaining_preds_.assign(n, 0);
    auto& remaining_preds = ws.remaining_preds_;
    for (std::size_t i = 0; i < n; ++i)
        remaining_preds[i] =
            static_cast<int>(g.preds(static_cast<dfg::Op_id>(i)).size());

    // Two tiers of ready ops, both keyed by (ALAP, id) — the list
    // priority.  `fresh` holds ops that became ready and have not been
    // tried yet; `waiting[kind]` holds ops that were tried and found
    // every executor busy.  A waiting op can only become schedulable
    // when an instance able to execute its kind frees, so the bind
    // pass reconsiders a kind's queue only in rounds where such a
    // free happened ("active" kinds) instead of re-cycling every
    // blocked op through a global heap at every event.  The served
    // order is still exactly the old global (ALAP, id) order over the
    // ops that can actually bind, and skipped ops could never have
    // bound, so the resulting schedule is identical.
    auto& fresh = ws.fresh_;
    auto& waiting = ws.waiting_;
    std::array<std::uint8_t, hw::n_op_kinds> active{};
    auto& active_kinds = ws.active_kinds_;
    for (std::size_t i = 0; i < n; ++i)
        if (remaining_preds[i] == 0)
            heap_push(fresh,
                      {frames.frame(static_cast<dfg::Op_id>(i)).alap,
                       static_cast<dfg::Op_id>(i)});

    // Event queue: (finish_cycle + 1, op).  At that time the op's
    // instance is free again and its successors may become ready.
    auto& events = ws.events_;

    const long long guard = cycle_guard(n, lib);
    std::size_t n_scheduled = 0;
    int now = 1;

    while (n_scheduled < n) {
        // Bind pass at time `now`: repeatedly serve the smallest
        // (ALAP, id) among the fresh heap and the heads of active
        // kinds' waiting queues.  A failed fresh op parks in its
        // kind's queue; a failed waiting head deactivates its kind
        // (every later op of that kind shares the bucket, so it
        // would fail too).
        for (;;) {
            int src = -1;  // -1 none, -2 fresh, >=0 index in active_kinds
            Prio best{0, 0};
            if (!fresh.empty()) {
                best = fresh.front();
                src = -2;
            }
            for (std::size_t ai = 0; ai < active_kinds.size();) {
                auto& w = waiting[active_kinds[ai]];
                if (w.empty()) {
                    active[active_kinds[ai]] = 0;
                    active_kinds[ai] = active_kinds.back();
                    active_kinds.pop_back();
                    continue;
                }
                if (src == -1 || w.front() < best) {
                    best = w.front();
                    src = static_cast<int>(ai);
                }
                ++ai;
            }
            if (src == -1)
                break;

            const dfg::Op_id v = best.second;
            const std::size_t ki = hw::op_index(g.op(v).kind);
            hw::Resource_id chosen = -1;
            for (hw::Resource_id r : ws.bucket_[ki]) {
                if (free_count[static_cast<std::size_t>(r)] > 0) {
                    chosen = r;
                    break;
                }
            }
            if (chosen < 0) {
                if (src == -2) {
                    heap_pop(fresh);
                    heap_push(waiting[ki], best);
                }
                if (active[ki] != 0) {
                    active[ki] = 0;
                    for (std::size_t ai = 0; ai < active_kinds.size(); ++ai)
                        if (active_kinds[ai] == ki) {
                            active_kinds[ai] = active_kinds.back();
                            active_kinds.pop_back();
                            break;
                        }
                }
                continue;
            }
            if (src == -2)
                heap_pop(fresh);
            else
                heap_pop(waiting[ki]);
            --free_count[static_cast<std::size_t>(chosen)];
            const int lat = lib[chosen].latency_cycles;
            out.start[static_cast<std::size_t>(v)] = now;
            out.resource[static_cast<std::size_t>(v)] = chosen;
            out.length = std::max(out.length, now + lat - 1);
            heap_push(events, {now + lat, v});
            ++n_scheduled;
        }

        if (n_scheduled == n)
            break;
        if (events.empty())
            throw std::logic_error(
                "list_schedule: deadlock (internal error)");

        // Jump to the next finish time; nothing can change in between
        // (the ready set and the free counters only move on finishes).
        now = events.front().first;
        if (now > guard)
            throw std::logic_error(
                "list_schedule: no progress (internal error)");
        while (!events.empty() && events.front().first == now) {
            const auto done = events.front().second;
            heap_pop(events);
            const auto freed = static_cast<std::size_t>(
                out.resource[static_cast<std::size_t>(done)]);
            ++free_count[freed];
            for (auto k : ws.used_kinds_) {
                const std::size_t ki = hw::op_index(k);
                if (active[ki] == 0 && !waiting[ki].empty() &&
                    lib[static_cast<hw::Resource_id>(freed)].ops.contains(
                        k)) {
                    active[ki] = 1;
                    active_kinds.push_back(ki);
                }
            }
            for (dfg::Op_id s : g.succs(done))
                if (--remaining_preds[static_cast<std::size_t>(s)] == 0)
                    heap_push(fresh, {frames.frame(s).alap, s});
        }
    }

    out.feasible = true;
    return out;
}

List_schedule list_schedule(const dfg::Dfg& g, const hw::Hw_library& lib,
                            std::span<const int> counts)
{
    if (counts.size() != lib.size())
        throw std::invalid_argument("list_schedule: counts/library size mismatch");
    List_schedule out;
    if (g.empty()) {
        out.feasible = true;
        return out;
    }
    // Early-out before the O(V+E) frame computation: infeasible
    // allocations are the common case in exhaustive enumeration.
    if (!allocation_covers(g, lib, counts))
        return out;
    return list_schedule(g, lib, counts,
                         compute_time_frames(g, latency_table_from(lib)));
}

List_schedule list_schedule(const dfg::Dfg& g, const hw::Hw_library& lib,
                            std::span<const int> counts, Scheduler_kind kind)
{
    return kind == Scheduler_kind::event_driven
               ? list_schedule(g, lib, counts)
               : list_schedule_naive(g, lib, counts);
}

}  // namespace lycos::sched
