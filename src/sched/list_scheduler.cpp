#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <array>
#include <queue>
#include <stdexcept>

namespace lycos::sched {

namespace {

/// Upper bound on the makespan: every op serialized on the slowest
/// unit, plus slack.  Progress past this bound means the scheduler is
/// broken (a cross-check, not a semantic limit).
long long cycle_guard(std::size_t n_ops, const hw::Hw_library& lib)
{
    long long max_latency = 1;
    for (const auto& t : lib.types())
        max_latency = std::max<long long>(max_latency, t.latency_cycles);
    return static_cast<long long>(n_ops) * (max_latency + 1) + 16;
}

/// Every op kind used by the DFG needs at least one allocated executor
/// (the naive path's feasibility check; the event-driven path derives
/// the same answer from its per-kind buckets).
bool allocation_covers(const dfg::Dfg& g, const hw::Hw_library& lib,
                       std::span<const int> counts)
{
    for (auto k : hw::all_op_kinds()) {
        if (!g.used_ops().contains(k))
            continue;
        bool covered = false;
        for (std::size_t r = 0; r < lib.size(); ++r)
            if (counts[r] > 0 &&
                lib[static_cast<hw::Resource_id>(r)].ops.contains(k))
                covered = true;
        if (!covered)
            return false;
    }
    return true;
}

struct Instance {
    hw::Resource_id type;
    int busy_until = 0;  // last cycle (inclusive) this instance is occupied
};

}  // namespace

List_schedule list_schedule_naive(const dfg::Dfg& g, const hw::Hw_library& lib,
                                  std::span<const int> counts)
{
    if (counts.size() != lib.size())
        throw std::invalid_argument("list_schedule: counts/library size mismatch");

    List_schedule out;
    if (g.empty()) {
        out.feasible = true;
        return out;
    }
    if (!allocation_covers(g, lib, counts))
        return out;  // infeasible

    // Materialize resource instances.
    std::vector<Instance> instances;
    for (std::size_t r = 0; r < lib.size(); ++r)
        for (int i = 0; i < counts[r]; ++i)
            instances.push_back({static_cast<hw::Resource_id>(r), 0});

    // ALAP-based priorities (computed with the cheapest-executor
    // latency table; the classic list-scheduling priority).
    const auto frames = compute_time_frames(g, latency_table_from(lib));

    const auto n = g.size();
    out.start.assign(n, 0);
    out.resource.assign(n, -1);
    std::vector<int> remaining_preds(n, 0);
    std::vector<int> finish(n, 0);  // last busy cycle of each scheduled op
    for (std::size_t i = 0; i < n; ++i)
        remaining_preds[i] =
            static_cast<int>(g.preds(static_cast<dfg::Op_id>(i)).size());

    std::vector<dfg::Op_id> ready;
    for (std::size_t i = 0; i < n; ++i)
        if (remaining_preds[i] == 0)
            ready.push_back(static_cast<dfg::Op_id>(i));

    const auto priority_less = [&](dfg::Op_id a, dfg::Op_id b) {
        const auto& fa = frames.frame(a);
        const auto& fb = frames.frame(b);
        if (fa.alap != fb.alap)
            return fa.alap < fb.alap;
        return a < b;
    };

    std::size_t n_scheduled = 0;
    int cycle = 0;
    const long long guard = cycle_guard(n, lib);

    while (n_scheduled < n) {
        ++cycle;
        if (cycle > guard)
            throw std::logic_error("list_schedule: no progress (internal error)");

        // Newly finished ops release their successors.
        for (std::size_t i = 0; i < n; ++i) {
            if (out.start[i] != 0 && finish[i] == cycle - 1) {
                for (dfg::Op_id s : g.succs(static_cast<dfg::Op_id>(i)))
                    if (--remaining_preds[static_cast<std::size_t>(s)] == 0)
                        ready.push_back(s);
            }
        }

        std::sort(ready.begin(), ready.end(), priority_less);

        // Greedily bind ready ops to free instances.  Prefer the most
        // specialized compatible unit so flexible units stay available.
        std::vector<dfg::Op_id> still_waiting;
        for (dfg::Op_id v : ready) {
            int best_inst = -1;
            int best_flexibility = 1 << 30;
            for (std::size_t ii = 0; ii < instances.size(); ++ii) {
                const auto& inst = instances[ii];
                if (inst.busy_until >= cycle)
                    continue;
                const auto& type = lib[inst.type];
                if (!type.ops.contains(g.op(v).kind))
                    continue;
                if (type.ops.size() < best_flexibility) {
                    best_flexibility = type.ops.size();
                    best_inst = static_cast<int>(ii);
                }
            }
            if (best_inst < 0) {
                still_waiting.push_back(v);
                continue;
            }
            auto& inst = instances[static_cast<std::size_t>(best_inst)];
            const int lat = lib[inst.type].latency_cycles;
            inst.busy_until = cycle + lat - 1;
            out.start[static_cast<std::size_t>(v)] = cycle;
            out.resource[static_cast<std::size_t>(v)] = inst.type;
            finish[static_cast<std::size_t>(v)] = cycle + lat - 1;
            out.length = std::max(out.length, cycle + lat - 1);
            ++n_scheduled;
        }
        ready = std::move(still_waiting);
    }

    out.feasible = true;
    return out;
}

List_schedule list_schedule(const dfg::Dfg& g, const hw::Hw_library& lib,
                            std::span<const int> counts,
                            const Schedule_info& frames)
{
    if (counts.size() != lib.size())
        throw std::invalid_argument("list_schedule: counts/library size mismatch");

    List_schedule out;
    if (g.empty()) {
        out.feasible = true;
        return out;
    }

    // Per-op-kind buckets: resource types that can execute the kind,
    // most specialized first (ties toward lower id — the same unit the
    // naive scan over id-ordered instances would pick).  An empty
    // bucket for a used kind means the allocation is infeasible.
    std::array<std::vector<hw::Resource_id>, hw::n_op_kinds> buckets;
    for (auto k : hw::all_op_kinds()) {
        if (!g.used_ops().contains(k))
            continue;
        auto& bucket = buckets[hw::op_index(k)];
        for (std::size_t r = 0; r < lib.size(); ++r)
            if (counts[r] > 0 &&
                lib[static_cast<hw::Resource_id>(r)].ops.contains(k))
                bucket.push_back(static_cast<hw::Resource_id>(r));
        if (bucket.empty())
            return out;  // infeasible
        std::sort(bucket.begin(), bucket.end(),
                  [&](hw::Resource_id a, hw::Resource_id b) {
                      if (lib[a].ops.size() != lib[b].ops.size())
                          return lib[a].ops.size() < lib[b].ops.size();
                      return a < b;
                  });
    }

    // Free-instance counters per resource type (instances of one type
    // are interchangeable, so counts replace the naive instance array).
    std::vector<int> free_count(counts.begin(), counts.end());

    const auto n = g.size();
    out.start.assign(n, 0);
    out.resource.assign(n, -1);
    std::vector<int> remaining_preds(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        remaining_preds[i] =
            static_cast<int>(g.preds(static_cast<dfg::Op_id>(i)).size());

    // Ready min-heap keyed by (ALAP, id) — the list priority.
    using Prio = std::pair<int, dfg::Op_id>;  // (alap, id)
    std::priority_queue<Prio, std::vector<Prio>, std::greater<>> ready;
    for (std::size_t i = 0; i < n; ++i)
        if (remaining_preds[i] == 0)
            ready.emplace(frames.frame(static_cast<dfg::Op_id>(i)).alap,
                          static_cast<dfg::Op_id>(i));

    // Event queue: (finish_cycle + 1, op).  At that time the op's
    // instance is free again and its successors may become ready.
    using Event = std::pair<int, dfg::Op_id>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

    const long long guard = cycle_guard(n, lib);
    std::size_t n_scheduled = 0;
    int now = 1;

    std::vector<dfg::Op_id> blocked;  // ready but no free executor at `now`
    while (n_scheduled < n) {
        // Bind pass at time `now`: serve the ready heap in priority
        // order; ops whose executors are all busy wait for the next
        // event.
        blocked.clear();
        while (!ready.empty()) {
            const auto [alap, v] = ready.top();
            ready.pop();
            hw::Resource_id chosen = -1;
            for (hw::Resource_id r :
                 buckets[hw::op_index(g.op(v).kind)]) {
                if (free_count[static_cast<std::size_t>(r)] > 0) {
                    chosen = r;
                    break;
                }
            }
            if (chosen < 0) {
                blocked.push_back(v);
                continue;
            }
            --free_count[static_cast<std::size_t>(chosen)];
            const int lat = lib[chosen].latency_cycles;
            out.start[static_cast<std::size_t>(v)] = now;
            out.resource[static_cast<std::size_t>(v)] = chosen;
            out.length = std::max(out.length, now + lat - 1);
            events.emplace(now + lat, v);
            ++n_scheduled;
        }
        for (dfg::Op_id v : blocked)
            ready.emplace(frames.frame(v).alap, v);

        if (n_scheduled == n)
            break;
        if (events.empty())
            throw std::logic_error(
                "list_schedule: deadlock (internal error)");

        // Jump to the next finish time; nothing can change in between
        // (the ready set and the free counters only move on finishes).
        now = events.top().first;
        if (now > guard)
            throw std::logic_error(
                "list_schedule: no progress (internal error)");
        while (!events.empty() && events.top().first == now) {
            const auto [t, done] = events.top();
            events.pop();
            ++free_count[static_cast<std::size_t>(
                out.resource[static_cast<std::size_t>(done)])];
            for (dfg::Op_id s : g.succs(done))
                if (--remaining_preds[static_cast<std::size_t>(s)] == 0)
                    ready.emplace(frames.frame(s).alap, s);
        }
    }

    out.feasible = true;
    return out;
}

List_schedule list_schedule(const dfg::Dfg& g, const hw::Hw_library& lib,
                            std::span<const int> counts)
{
    if (counts.size() != lib.size())
        throw std::invalid_argument("list_schedule: counts/library size mismatch");
    List_schedule out;
    if (g.empty()) {
        out.feasible = true;
        return out;
    }
    // Early-out before the O(V+E) frame computation: infeasible
    // allocations are the common case in exhaustive enumeration.
    if (!allocation_covers(g, lib, counts))
        return out;
    return list_schedule(g, lib, counts,
                         compute_time_frames(g, latency_table_from(lib)));
}

List_schedule list_schedule(const dfg::Dfg& g, const hw::Hw_library& lib,
                            std::span<const int> counts, Scheduler_kind kind)
{
    return kind == Scheduler_kind::event_driven
               ? list_schedule(g, lib, counts)
               : list_schedule_naive(g, lib, counts);
}

}  // namespace lycos::sched
