#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace lycos::sched {

namespace {

struct Instance {
    hw::Resource_id type;
    int busy_until = 0;  // last cycle (inclusive) this instance is occupied
};

}  // namespace

List_schedule list_schedule(const dfg::Dfg& g, const hw::Hw_library& lib,
                            std::span<const int> counts)
{
    if (counts.size() != lib.size())
        throw std::invalid_argument("list_schedule: counts/library size mismatch");

    List_schedule out;
    if (g.empty()) {
        out.feasible = true;
        return out;
    }

    // Feasibility: every kind used by the DFG needs an allocated executor.
    for (auto k : hw::all_op_kinds()) {
        if (!g.used_ops().contains(k))
            continue;
        bool covered = false;
        for (std::size_t r = 0; r < lib.size(); ++r)
            if (counts[r] > 0 &&
                lib[static_cast<hw::Resource_id>(r)].ops.contains(k))
                covered = true;
        if (!covered)
            return out;  // infeasible
    }

    // Materialize resource instances.
    std::vector<Instance> instances;
    for (std::size_t r = 0; r < lib.size(); ++r)
        for (int i = 0; i < counts[r]; ++i)
            instances.push_back({static_cast<hw::Resource_id>(r), 0});

    // ALAP-based priorities (computed with the cheapest-executor
    // latency table; the classic list-scheduling priority).
    const auto frames = compute_time_frames(g, latency_table_from(lib));

    const auto n = g.size();
    out.start.assign(n, 0);
    out.resource.assign(n, -1);
    std::vector<int> remaining_preds(n, 0);
    std::vector<int> finish(n, 0);  // last busy cycle of each scheduled op
    for (std::size_t i = 0; i < n; ++i)
        remaining_preds[i] =
            static_cast<int>(g.preds(static_cast<dfg::Op_id>(i)).size());

    std::vector<dfg::Op_id> ready;
    for (std::size_t i = 0; i < n; ++i)
        if (remaining_preds[i] == 0)
            ready.push_back(static_cast<dfg::Op_id>(i));

    const auto priority_less = [&](dfg::Op_id a, dfg::Op_id b) {
        const auto& fa = frames.frame(a);
        const auto& fb = frames.frame(b);
        if (fa.alap != fb.alap)
            return fa.alap < fb.alap;
        return a < b;
    };

    std::size_t n_scheduled = 0;
    int cycle = 0;
    // Upper bound on cycles: every op serialized on the slowest unit.
    long long guard = 0;
    for (std::size_t i = 0; i < n; ++i)
        guard += 8;  // conservative per-op slack; refined below
    for (const auto& t : lib.types())
        guard = std::max<long long>(guard, t.latency_cycles);
    guard = static_cast<long long>(n) * (guard + 8) + 16;

    while (n_scheduled < n) {
        ++cycle;
        if (cycle > guard)
            throw std::logic_error("list_schedule: no progress (internal error)");

        // Newly finished ops release their successors.
        for (std::size_t i = 0; i < n; ++i) {
            if (out.start[i] != 0 && finish[i] == cycle - 1) {
                for (dfg::Op_id s : g.succs(static_cast<dfg::Op_id>(i)))
                    if (--remaining_preds[static_cast<std::size_t>(s)] == 0)
                        ready.push_back(s);
            }
        }

        std::sort(ready.begin(), ready.end(), priority_less);

        // Greedily bind ready ops to free instances.  Prefer the most
        // specialized compatible unit so flexible units stay available.
        std::vector<dfg::Op_id> still_waiting;
        for (dfg::Op_id v : ready) {
            int best_inst = -1;
            int best_flexibility = 1 << 30;
            for (std::size_t ii = 0; ii < instances.size(); ++ii) {
                const auto& inst = instances[ii];
                if (inst.busy_until >= cycle)
                    continue;
                const auto& type = lib[inst.type];
                if (!type.ops.contains(g.op(v).kind))
                    continue;
                if (type.ops.size() < best_flexibility) {
                    best_flexibility = type.ops.size();
                    best_inst = static_cast<int>(ii);
                }
            }
            if (best_inst < 0) {
                still_waiting.push_back(v);
                continue;
            }
            auto& inst = instances[static_cast<std::size_t>(best_inst)];
            const int lat = lib[inst.type].latency_cycles;
            inst.busy_until = cycle + lat - 1;
            out.start[static_cast<std::size_t>(v)] = cycle;
            out.resource[static_cast<std::size_t>(v)] = inst.type;
            finish[static_cast<std::size_t>(v)] = cycle + lat - 1;
            out.length = std::max(out.length, cycle + lat - 1);
            ++n_scheduled;
        }
        ready = std::move(still_waiting);
    }

    out.feasible = true;
    return out;
}

}  // namespace lycos::sched
