// ASAP/ALAP time frames, mobility and interval overlap (Figure 5).
//
// Control steps are numbered from 1 as in the paper's Figure 5.  An
// operation's time frame is the inclusive interval [asap, alap] of
// control steps in which it may *start*; its mobility is
// `alap - asap + 1` and the overlap of two frames is the number of
// common possible start steps.  These are the inputs of the FURO
// estimate (Definition 2).
#pragma once

#include <vector>

#include "dfg/dfg.hpp"
#include "hw/op.hpp"
#include "hw/resource.hpp"

namespace lycos::sched {

/// Per-operation-kind latency in ASIC cycles used by the pre-allocation
/// schedules (before an allocation exists, the cheapest executor's
/// latency is the only estimate available).
using Latency_table = hw::Per_op<int>;

/// Build a latency table from a library: cheapest executor's latency
/// per kind; kinds no resource can execute get latency 1 (they will be
/// flagged later when a BSB containing them is considered for HW).
Latency_table latency_table_from(const hw::Hw_library& lib);

/// The time frame of one operation.
struct Time_frame {
    int asap = 1;  ///< earliest start control step (1-based)
    int alap = 1;  ///< latest start control step

    /// Mobility M(i) = ALAP - ASAP + 1 (Definition 2; Figure 5: 5-1+1 = 5).
    int mobility() const { return alap - asap + 1; }

    friend bool operator==(const Time_frame&, const Time_frame&) = default;
};

/// ASAP and ALAP start times for every operation of a DFG plus the
/// ASAP schedule length in control steps.
struct Schedule_info {
    std::vector<Time_frame> frames;  ///< indexed by Op_id
    int length = 0;                  ///< ASAP schedule length (cycles); the
                                     ///< paper's estimated state count N

    const Time_frame& frame(dfg::Op_id id) const
    {
        return frames.at(static_cast<std::size_t>(id));
    }
};

/// Compute ASAP and ALAP (against the ASAP length) time frames.
/// Throws std::logic_error if the DFG is cyclic.
Schedule_info compute_time_frames(const dfg::Dfg& g, const Latency_table& lat);

/// Ovl(i, j): number of control steps in the intersection of the two
/// start intervals.  Figure 5: frames [1,5] and [3,5] overlap in 3.
int overlap(const Time_frame& a, const Time_frame& b);

}  // namespace lycos::sched
