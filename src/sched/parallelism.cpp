#include "sched/parallelism.hpp"

#include <algorithm>

namespace lycos::sched {

namespace {

/// Sweep the ASAP occupancy intervals of the ops selected by `want`
/// and return the peak concurrency.
template <typename Pred>
int peak_occupancy(const dfg::Dfg& g, const Schedule_info& info,
                   const Latency_table& lat, Pred want)
{
    if (info.length <= 0)
        return 0;
    // +2: steps are 1-based and we write a decrement one past the end.
    std::vector<int> delta(static_cast<std::size_t>(info.length) + 2, 0);
    for (std::size_t i = 0; i < g.size(); ++i) {
        const auto id = static_cast<dfg::Op_id>(i);
        if (!want(g.op(id).kind))
            continue;
        const int start = info.frames[i].asap;
        const int stop = start + lat[g.op(id).kind];  // exclusive
        delta[static_cast<std::size_t>(start)] += 1;
        delta[static_cast<std::size_t>(std::min(stop, info.length + 1))] -= 1;
    }
    int level = 0;
    int peak = 0;
    for (int s = 1; s <= info.length; ++s) {
        level += delta[static_cast<std::size_t>(s)];
        peak = std::max(peak, level);
    }
    return peak;
}

}  // namespace

hw::Per_op<int> asap_parallelism(const dfg::Dfg& g, const Schedule_info& info,
                                 const Latency_table& lat)
{
    hw::Per_op<int> out;
    for (auto k : hw::all_op_kinds())
        out[k] = peak_occupancy(g, info, lat,
                                [k](hw::Op_kind x) { return x == k; });
    return out;
}

int asap_parallelism_for(const dfg::Dfg& g, const Schedule_info& info,
                         const Latency_table& lat, hw::Op_set kinds)
{
    return peak_occupancy(g, info, lat,
                          [kinds](hw::Op_kind x) { return kinds.contains(x); });
}

}  // namespace lycos::sched
