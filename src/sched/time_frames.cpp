#include "sched/time_frames.hpp"

#include <algorithm>
#include <stdexcept>

namespace lycos::sched {

Latency_table latency_table_from(const hw::Hw_library& lib)
{
    Latency_table t(1);
    for (auto k : hw::all_op_kinds())
        if (auto id = lib.cheapest_executor(k))
            t[k] = lib[*id].latency_cycles;
    return t;
}

Schedule_info compute_time_frames(const dfg::Dfg& g, const Latency_table& lat)
{
    Schedule_info info;
    const auto n = g.size();
    info.frames.assign(n, Time_frame{});
    if (n == 0)
        return info;

    const auto order = g.topo_order();

    // ASAP: earliest start is one step past the latest-finishing
    // predecessor; sources start at step 1.
    for (dfg::Op_id v : order) {
        int start = 1;
        for (dfg::Op_id p : g.preds(v)) {
            const auto& pf = info.frames[static_cast<std::size_t>(p)];
            start = std::max(start, pf.asap + lat[g.op(p).kind]);
        }
        info.frames[static_cast<std::size_t>(v)].asap = start;
    }

    // Schedule length: last finishing cycle of the ASAP schedule.
    for (std::size_t i = 0; i < n; ++i)
        info.length = std::max(
            info.length, info.frames[i].asap + lat[g.op(static_cast<dfg::Op_id>(i)).kind] - 1);

    // ALAP against the ASAP length: latest start such that all
    // transitive successors still fit.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const dfg::Op_id v = *it;
        auto& f = info.frames[static_cast<std::size_t>(v)];
        int latest = info.length - lat[g.op(v).kind] + 1;
        for (dfg::Op_id s : g.succs(v)) {
            const auto& sf = info.frames[static_cast<std::size_t>(s)];
            latest = std::min(latest, sf.alap - lat[g.op(v).kind]);
        }
        f.alap = latest;
    }

    return info;
}

int overlap(const Time_frame& a, const Time_frame& b)
{
    const int lo = std::max(a.asap, b.asap);
    const int hi = std::min(a.alap, b.alap);
    return std::max(0, hi - lo + 1);
}

}  // namespace lycos::sched
