// ASAP parallelism profiles.
//
// §4.3: "The ASAP-schedule can be used to give an estimate of the
// maximum number of operations of a specific type that can be executed
// in parallel.  The algorithm will not produce allocations that exceed
// these limits."  This module computes, from the ASAP schedule of a
// DFG, the peak number of simultaneously-executing operations of each
// kind (and of each kind *set*, for multi-function units).
#pragma once

#include "dfg/dfg.hpp"
#include "sched/time_frames.hpp"

namespace lycos::sched {

/// Peak number of concurrently executing operations of each kind in
/// the ASAP schedule.  An operation started at step s with latency l
/// occupies steps [s, s + l - 1].
hw::Per_op<int> asap_parallelism(const dfg::Dfg& g, const Schedule_info& info,
                                 const Latency_table& lat);

/// Peak number of concurrently executing operations whose kind lies in
/// `kinds` (the ASAP demand a multi-function unit type would face).
int asap_parallelism_for(const dfg::Dfg& g, const Schedule_info& info,
                         const Latency_table& lat, hw::Op_set kinds);

}  // namespace lycos::sched
