// Tests for core/rmap: Definition 1 and Example 1 semantics.
#include <gtest/gtest.h>

#include "core/rmap.hpp"
#include "hw/resource.hpp"

namespace lc = lycos::core;
namespace lh = lycos::hw;
using lh::Op_kind;

namespace {

/// Library mirroring Example 1: adder, multiplier, subtractor.
lh::Hw_library example_library()
{
    lh::Hw_library lib;
    lib.add({"adder", {Op_kind::add}, 180.0, 1});
    lib.add({"multiplier", {Op_kind::mul}, 2200.0, 2});
    lib.add({"subtractor", {Op_kind::sub}, 190.0, 1});
    return lib;
}

constexpr lh::Resource_id k_adder = 0;
constexpr lh::Resource_id k_mult = 1;
constexpr lh::Resource_id k_sub = 2;

}  // namespace

TEST(Rmap, example1_union)
{
    // Allocation1 = {Adder->2, Multiplier->1}
    // Allocation2 = {Subtractor->1, Multiplier->2}
    const lc::Rmap a1{{k_adder, 2}, {k_mult, 1}};
    const lc::Rmap a2{{k_sub, 1}, {k_mult, 2}};

    const lc::Rmap u = a1 | a2;
    EXPECT_EQ(u(k_adder), 2);
    EXPECT_EQ(u(k_mult), 3);  // 1 ∪ 2 = 3 (pointwise sum, Example 1)
    EXPECT_EQ(u(k_sub), 1);
}

TEST(Rmap, example1_difference)
{
    const lc::Rmap a1{{k_adder, 2}, {k_mult, 1}};
    const lc::Rmap a2{{k_sub, 1}, {k_mult, 2}};

    const lc::Rmap d1 = a1 - a2;  // {Adder->2}
    EXPECT_EQ(d1(k_adder), 2);
    EXPECT_EQ(d1(k_mult), 0);
    EXPECT_EQ(d1(k_sub), 0);

    const lc::Rmap d2 = a2 - a1;  // {Subtractor->1, Multiplier->1}
    EXPECT_EQ(d2(k_sub), 1);
    EXPECT_EQ(d2(k_mult), 1);
    EXPECT_EQ(d2(k_adder), 0);
}

TEST(Rmap, example1_indexing_update)
{
    // Allocation1(Adder) + 1 = {Adder->3, Multiplier->1}
    lc::Rmap a1{{k_adder, 2}, {k_mult, 1}};
    a1.add(k_adder);
    EXPECT_EQ(a1(k_adder), 3);
    EXPECT_EQ(a1(k_mult), 1);
}

TEST(Rmap, union_is_commutative_and_has_identity)
{
    const lc::Rmap a{{k_adder, 2}, {k_mult, 1}};
    const lc::Rmap b{{k_sub, 3}};
    EXPECT_EQ(a | b, b | a);
    EXPECT_EQ(a | lc::Rmap{}, a);
    EXPECT_EQ(lc::Rmap{} | a, a);
}

TEST(Rmap, union_is_associative)
{
    const lc::Rmap a{{k_adder, 1}};
    const lc::Rmap b{{k_adder, 2}, {k_mult, 1}};
    const lc::Rmap c{{k_sub, 1}, {k_mult, 2}};
    EXPECT_EQ((a | b) | c, a | (b | c));
}

TEST(Rmap, difference_saturates_and_self_is_empty)
{
    const lc::Rmap a{{k_adder, 1}};
    const lc::Rmap b{{k_adder, 5}};
    EXPECT_TRUE((a - b).empty());
    EXPECT_TRUE((a - a).empty());
    EXPECT_EQ((b - a)(k_adder), 4);
}

TEST(Rmap, set_validates_and_erases_zero)
{
    lc::Rmap a;
    EXPECT_THROW(a.set(k_adder, -1), std::invalid_argument);
    a.set(k_adder, 2);
    EXPECT_FALSE(a.empty());
    a.set(k_adder, 0);
    EXPECT_TRUE(a.empty());
    a.add(k_adder, 3);
    EXPECT_THROW(a.add(k_adder, -5), std::invalid_argument);
}

TEST(Rmap, total_units_and_area)
{
    const auto lib = example_library();
    const lc::Rmap a{{k_adder, 2}, {k_mult, 1}};
    EXPECT_EQ(a.total_units(), 3);
    EXPECT_DOUBLE_EQ(a.area(lib), 2 * 180.0 + 2200.0);
    EXPECT_DOUBLE_EQ(lc::Rmap{}.area(lib), 0.0);
}

TEST(Rmap, executors_of_counts_capable_units)
{
    lh::Hw_library lib;
    lib.add({"alu", {Op_kind::add, Op_kind::sub}, 100.0, 1});
    lib.add({"adder", {Op_kind::add}, 40.0, 1});
    const lc::Rmap a{{0, 2}, {1, 1}};
    EXPECT_EQ(a.executors_of(Op_kind::add, lib), 3);
    EXPECT_EQ(a.executors_of(Op_kind::sub, lib), 2);
    EXPECT_EQ(a.executors_of(Op_kind::mul, lib), 0);
}

TEST(Rmap, covers)
{
    const auto lib = example_library();
    const lc::Rmap a{{k_adder, 1}, {k_mult, 1}};
    EXPECT_TRUE(a.covers({Op_kind::add, Op_kind::mul}, lib));
    EXPECT_FALSE(a.covers({Op_kind::add, Op_kind::sub}, lib));
    EXPECT_TRUE(a.covers({}, lib));
}

TEST(Rmap, dense_counts)
{
    const auto lib = example_library();
    const lc::Rmap a{{k_mult, 2}};
    const auto counts = a.dense_counts(lib);
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[0], 0);
    EXPECT_EQ(counts[1], 2);
    EXPECT_EQ(counts[2], 0);
}

TEST(Rmap, to_string_names_resources)
{
    const auto lib = example_library();
    const lc::Rmap a{{k_adder, 2}, {k_mult, 1}};
    EXPECT_EQ(a.to_string(lib), "2*adder + 1*multiplier");
    EXPECT_EQ(lc::Rmap{}.to_string(lib), "{}");
}

TEST(Rmap, named_aliases_match_operators)
{
    const lc::Rmap a{{k_adder, 2}};
    const lc::Rmap b{{k_adder, 1}, {k_sub, 1}};
    EXPECT_EQ(lc::Rmap::unite(a, b), a | b);
    EXPECT_EQ(lc::Rmap::subtract(a, b), a - b);
}
