// Tests for the MiniC lexer.
#include <gtest/gtest.h>

#include "minic/lexer.hpp"

namespace lm = lycos::minic;

TEST(Lexer, identifiers_numbers_punct)
{
    const auto toks = lm::tokenize("x = y + 42;");
    ASSERT_EQ(toks.size(), 7u);  // x = y + 42 ; eof
    EXPECT_EQ(toks[0].kind, lm::Token_kind::identifier);
    EXPECT_EQ(toks[0].text, "x");
    EXPECT_EQ(toks[1].text, "=");
    EXPECT_EQ(toks[4].kind, lm::Token_kind::number);
    EXPECT_EQ(toks[4].value, 42);
    EXPECT_EQ(toks[5].text, ";");
    EXPECT_EQ(toks.back().kind, lm::Token_kind::eof);
}

TEST(Lexer, keywords_recognized)
{
    const auto toks = lm::tokenize("if while loop func wait prob trip");
    for (std::size_t i = 0; i + 1 < toks.size(); ++i)
        EXPECT_EQ(toks[i].kind, lm::Token_kind::keyword) << toks[i].text;
    EXPECT_TRUE(lm::is_keyword("else"));
    EXPECT_TRUE(lm::is_keyword("input"));
    EXPECT_TRUE(lm::is_keyword("output"));
    EXPECT_FALSE(lm::is_keyword("iffy"));
}

TEST(Lexer, multi_char_operators_maximal_munch)
{
    const auto toks = lm::tokenize("a <= b << c == d && e");
    EXPECT_EQ(toks[1].text, "<=");
    EXPECT_EQ(toks[3].text, "<<");
    EXPECT_EQ(toks[5].text, "==");
    EXPECT_EQ(toks[7].text, "&&");
}

TEST(Lexer, line_numbers_tracked)
{
    const auto toks = lm::tokenize("a\nb\n\nc");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, line_comments_skipped)
{
    const auto toks = lm::tokenize("a // comment = junk\nb");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[1].line, 2);
}

TEST(Lexer, block_comments_skipped)
{
    const auto toks = lm::tokenize("a /* multi\nline\ncomment */ b");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[1].line, 3);
}

TEST(Lexer, unterminated_block_comment_throws)
{
    EXPECT_THROW(lm::tokenize("a /* oops"), lm::Parse_error);
}

TEST(Lexer, bad_character_throws_with_line)
{
    try {
        lm::tokenize("a\n$");
        FAIL() << "expected Parse_error";
    }
    catch (const lm::Parse_error& e) {
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(Lexer, malformed_number_throws)
{
    EXPECT_THROW(lm::tokenize("12abc"), lm::Parse_error);
}

TEST(Lexer, underscore_identifiers)
{
    const auto toks = lm::tokenize("_x x_1 a_b_c");
    EXPECT_EQ(toks[0].text, "_x");
    EXPECT_EQ(toks[1].text, "x_1");
    EXPECT_EQ(toks[2].text, "a_b_c");
}

TEST(Lexer, count_code_lines_ignores_blank_and_comments)
{
    const char* src = R"(// header comment

x = 1;
/* block
   comment */
y = 2;   // trailing

)";
    EXPECT_EQ(lm::count_code_lines(src), 2);
}

TEST(Lexer, count_code_lines_code_before_comment)
{
    EXPECT_EQ(lm::count_code_lines("a = 1; /* c */"), 1);
    EXPECT_EQ(lm::count_code_lines(""), 0);
    EXPECT_EQ(lm::count_code_lines("/* only */"), 0);
}
