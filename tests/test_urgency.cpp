// Tests for core/urgency: Definitions 3 and 4 plus the Example 2
// dynamics.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/urgency.hpp"
#include "hw/target.hpp"

namespace lc = lycos::core;
namespace lh = lycos::hw;
namespace lb = lycos::bsb;
using lh::Op_kind;

namespace {

/// BSB with n independent ops of `kind` and a profile.
lb::Bsb parallel_bsb(Op_kind kind, int n, double profile,
                     const std::string& name)
{
    lb::Bsb b;
    b.name = name;
    for (int i = 0; i < n; ++i)
        b.graph.add_op(kind);
    b.profile = profile;
    return b;
}

}  // namespace

TEST(Urgency, software_bsb_uses_raw_furo)
{
    const auto lib = lh::make_default_library();
    const auto target = lh::make_default_target(1.0);
    std::vector<lb::Bsb> bsbs;
    bsbs.push_back(parallel_bsb(Op_kind::add, 2, 3.0, "B"));
    const auto infos = lc::analyze(bsbs, lib, target.gates);

    const lc::Rmap alloc;  // irrelevant for SW BSBs
    EXPECT_DOUBLE_EQ(
        lc::urgency(infos[0], Op_kind::add, false, alloc, lib),
        infos[0].furo[Op_kind::add]);
}

TEST(Urgency, hardware_bsb_divided_by_alloc_plus_one)
{
    const auto lib = lh::make_default_library();
    const auto target = lh::make_default_target(1.0);
    std::vector<lb::Bsb> bsbs;
    bsbs.push_back(parallel_bsb(Op_kind::add, 2, 3.0, "B"));
    const auto infos = lc::analyze(bsbs, lib, target.gates);

    const auto adder = *lib.find("adder");
    lc::Rmap alloc;
    const double furo = infos[0].furo[Op_kind::add];
    EXPECT_DOUBLE_EQ(lc::urgency(infos[0], Op_kind::add, true, alloc, lib),
                     furo / 1.0);  // Alloc(add)=0 -> /1
    alloc.add(adder);
    EXPECT_DOUBLE_EQ(lc::urgency(infos[0], Op_kind::add, true, alloc, lib),
                     furo / 2.0);
    alloc.add(adder);
    EXPECT_DOUBLE_EQ(lc::urgency(infos[0], Op_kind::add, true, alloc, lib),
                     furo / 3.0);
}

TEST(Urgency, max_urgency_and_most_urgent_kind)
{
    const auto lib = lh::make_default_library();
    const auto target = lh::make_default_target(1.0);
    std::vector<lb::Bsb> bsbs;
    // 3 parallel muls and 2 parallel adds: mul FURO dominates.
    lb::Bsb b;
    for (int i = 0; i < 3; ++i)
        b.graph.add_op(Op_kind::mul);
    for (int i = 0; i < 2; ++i)
        b.graph.add_op(Op_kind::add);
    b.profile = 1.0;
    bsbs.push_back(std::move(b));
    const auto infos = lc::analyze(bsbs, lib, target.gates);

    const lc::Rmap alloc;
    EXPECT_DOUBLE_EQ(lc::max_urgency(infos[0], false, alloc, lib),
                     infos[0].furo[Op_kind::mul]);
    const auto kind = lc::most_urgent_kind(infos[0], false, alloc, lib);
    ASSERT_TRUE(kind.has_value());
    EXPECT_EQ(*kind, Op_kind::mul);
}

TEST(Urgency, zero_urgency_has_no_urgent_kind)
{
    const auto lib = lh::make_default_library();
    const auto target = lh::make_default_target(1.0);
    std::vector<lb::Bsb> bsbs;
    // A chain: no competing pairs, FURO = 0 for all kinds.
    lb::Bsb b;
    const auto a1 = b.graph.add_op(Op_kind::add);
    const auto a2 = b.graph.add_op(Op_kind::add);
    b.graph.add_edge(a1, a2);
    bsbs.push_back(std::move(b));
    const auto infos = lc::analyze(bsbs, lib, target.gates);
    const lc::Rmap alloc;
    EXPECT_FALSE(lc::most_urgent_kind(infos[0], false, alloc, lib).has_value());
    EXPECT_DOUBLE_EQ(lc::max_urgency(infos[0], false, alloc, lib), 0.0);
}

TEST(Urgency, prioritize_orders_by_max_urgency)
{
    const auto lib = lh::make_default_library();
    const auto target = lh::make_default_target(1.0);
    std::vector<lb::Bsb> bsbs;
    bsbs.push_back(parallel_bsb(Op_kind::add, 2, 1.0, "low"));
    bsbs.push_back(parallel_bsb(Op_kind::add, 2, 50.0, "high"));
    bsbs.push_back(parallel_bsb(Op_kind::add, 2, 10.0, "mid"));
    const auto infos = lc::analyze(bsbs, lib, target.gates);

    const std::vector<bool> in_hw(3, false);
    const lc::Rmap alloc;
    const auto order = lc::prioritize(infos, in_hw, alloc, lib);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);  // high
    EXPECT_EQ(order[1], 2);  // mid
    EXPECT_EQ(order[2], 0);  // low
}

TEST(Urgency, prioritize_is_stable_on_ties)
{
    const auto lib = lh::make_default_library();
    const auto target = lh::make_default_target(1.0);
    std::vector<lb::Bsb> bsbs;
    bsbs.push_back(parallel_bsb(Op_kind::add, 2, 5.0, "first"));
    bsbs.push_back(parallel_bsb(Op_kind::add, 2, 5.0, "second"));
    const auto infos = lc::analyze(bsbs, lib, target.gates);
    const std::vector<bool> in_hw(2, false);
    const auto order = lc::prioritize(infos, in_hw, lc::Rmap{}, lib);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
}

TEST(Urgency, example2_dynamics)
{
    // Example 2: B1 and B2 contain only one operation type o'.  B1 has
    // higher urgency and moves to hardware; as resources for o' are
    // allocated, U(o', B1) drops and B2 eventually takes priority.
    const auto lib = lh::make_default_library();
    const auto target = lh::make_default_target(1.0);
    std::vector<lb::Bsb> bsbs;
    bsbs.push_back(parallel_bsb(Op_kind::add, 4, 10.0, "B1"));
    bsbs.push_back(parallel_bsb(Op_kind::add, 4, 6.0, "B2"));
    const auto infos = lc::analyze(bsbs, lib, target.gates);

    const auto adder = *lib.find("adder");
    lc::Rmap alloc;
    std::vector<bool> in_hw = {true, false};  // B1 moved to HW

    // With no adder allocated yet, B1's urgency is its full FURO
    // (120 > 72): B1 still leads.
    auto order = lc::prioritize(infos, in_hw, alloc, lib);
    EXPECT_EQ(order[0], 0);

    // One adder allocated: U(B1) = 120/2 = 60 < 72 = U(B2); the
    // software BSB takes priority (Example 2's hand-over).
    alloc.add(adder);
    order = lc::prioritize(infos, in_hw, alloc, lib);
    EXPECT_EQ(order[0], 1);
}
