// The event-driven list scheduler must be a drop-in replacement for
// the retained cycle-stepping reference: identical feasibility,
// length, start steps and resource binding on every input.  The search
// determinism contract (docs/performance.md) relies on this.
//
// Also pins the memoized evaluation path: evaluate_allocation with an
// Eval_cache must agree bit-for-bit with the uncached pipeline across
// the full allocation space of a small library.
#include <gtest/gtest.h>

#include "apps/random_app.hpp"
#include "hw/resource.hpp"
#include "hw/target.hpp"
#include "search/alloc_space.hpp"
#include "search/eval_cache.hpp"
#include "search/evaluate.hpp"
#include "sched/list_scheduler.hpp"
#include "util/rng.hpp"

namespace ls = lycos::sched;
namespace ld = lycos::dfg;
namespace lh = lycos::hw;
namespace lc = lycos::core;
namespace lse = lycos::search;
using lh::Op_kind;

namespace {

void expect_same_schedule(const ls::List_schedule& a,
                          const ls::List_schedule& b)
{
    ASSERT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.length, b.length);
    ASSERT_EQ(a.start.size(), b.start.size());
    for (std::size_t i = 0; i < a.start.size(); ++i) {
        EXPECT_EQ(a.start[i], b.start[i]) << "op " << i;
        EXPECT_EQ(a.resource[i], b.resource[i]) << "op " << i;
    }
}

}  // namespace

TEST(SchedEquivalence, empty_and_infeasible)
{
    lh::Hw_library lib;
    lib.add({"adder", {Op_kind::add}, 10.0, 1});
    lib.add({"multiplier", {Op_kind::mul}, 100.0, 2});

    const std::vector<int> none = {0, 0};
    expect_same_schedule(ls::list_schedule(ld::Dfg{}, lib, none),
                         ls::list_schedule_naive(ld::Dfg{}, lib, none));

    ld::Dfg g;
    g.add_op(Op_kind::mul);
    const std::vector<int> adders_only = {3, 0};
    expect_same_schedule(ls::list_schedule(g, lib, adders_only),
                         ls::list_schedule_naive(g, lib, adders_only));
    EXPECT_FALSE(ls::list_schedule(g, lib, adders_only).feasible);
}

TEST(SchedEquivalence, dispatch_selects_implementation)
{
    const auto lib = lh::make_default_library();
    lycos::util::Rng rng(7);
    lycos::apps::Random_app_params params;
    const auto g = lycos::apps::random_dfg(rng, 20, params);
    const std::vector<int> counts(lib.size(), 1);
    expect_same_schedule(
        ls::list_schedule(g, lib, counts, ls::Scheduler_kind::event_driven),
        ls::list_schedule(g, lib, counts, ls::Scheduler_kind::naive));
}

// Random DFGs under random scarce/ample allocations: the two
// implementations agree exactly (not just on length — on the binding).
class SchedEquivalenceRandom : public ::testing::TestWithParam<int> {};

TEST_P(SchedEquivalenceRandom, identical_schedules)
{
    lycos::util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 42);
    const auto lib = lh::make_default_library();

    lycos::apps::Random_app_params params;
    params.min_ops = 3;
    params.max_ops = 48;
    const auto g = lycos::apps::random_dfg(
        rng, rng.uniform_int(params.min_ops, params.max_ops), params);

    for (int trial = 0; trial < 4; ++trial) {
        std::vector<int> counts(lib.size(), 0);
        for (auto& c : counts)
            c = rng.uniform_int(0, 3);
        expect_same_schedule(ls::list_schedule(g, lib, counts),
                             ls::list_schedule_naive(g, lib, counts));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedEquivalenceRandom,
                         ::testing::Range(0, 24));

// ------------------------------------------------------------------
// Cached vs uncached evaluation
// ------------------------------------------------------------------

TEST(EvalCacheEquivalence, bit_identical_over_full_space)
{
    lh::Hw_library lib;
    lib.add({"adder", {Op_kind::add}, 100.0, 1});
    lib.add({"multiplier", {Op_kind::mul}, 500.0, 2});
    lib.add({"alu", {Op_kind::add, Op_kind::sub}, 180.0, 1});
    // No BSB divides, so the projection must collapse the divider axis
    // and every second point of the space hits the cache.
    lib.add({"divider", {Op_kind::div}, 800.0, 4});
    const auto target = lh::make_default_target(3000.0);

    lycos::util::Rng rng(2026);
    lycos::apps::Random_app_params params;
    params.n_bsbs = 5;
    params.min_ops = 3;
    params.max_ops = 12;
    params.kinds = {Op_kind::add, Op_kind::sub, Op_kind::mul};
    const auto bsbs = lycos::apps::random_bsbs(rng, params);

    for (auto mode : {lycos::pace::Controller_mode::optimistic_eca,
                      lycos::pace::Controller_mode::list_schedule}) {
        const lse::Eval_context ctx{bsbs, lib, target, mode, 1.0};
        lse::Eval_cache cache(ctx);

        lc::Rmap bounds;
        bounds.set(0, 2);
        bounds.set(1, 2);
        bounds.set(2, 1);
        bounds.set(3, 1);
        const lse::Alloc_space space(lib, bounds);
        for (long long i = 0; i < space.size(); ++i) {
            const auto a = space.nth(i);
            const auto plain = lse::evaluate_allocation(ctx, a);
            const auto cached = lse::evaluate_allocation(ctx, a, &cache);
            EXPECT_EQ(plain.datapath, cached.datapath);
            EXPECT_EQ(plain.datapath_area, cached.datapath_area);
            EXPECT_EQ(plain.fits, cached.fits);
            EXPECT_EQ(plain.partition.time_hybrid_ns,
                      cached.partition.time_hybrid_ns);
            EXPECT_EQ(plain.partition.time_all_sw_ns,
                      cached.partition.time_all_sw_ns);
            EXPECT_EQ(plain.partition.speedup_pct,
                      cached.partition.speedup_pct);
            EXPECT_EQ(plain.partition.ctrl_area_used,
                      cached.partition.ctrl_area_used);
            EXPECT_EQ(plain.partition.in_hw, cached.partition.in_hw);
        }
        EXPECT_GT(cache.stats().hits, 0);
        EXPECT_GT(cache.stats().misses, 0);
    }
}

// The cache key projects away resource types a BSB cannot use, so two
// allocations differing only in an irrelevant type share an entry.
TEST(EvalCacheEquivalence, irrelevant_resources_share_entries)
{
    lh::Hw_library lib;
    lib.add({"adder", {Op_kind::add}, 100.0, 1});
    lib.add({"multiplier", {Op_kind::mul}, 500.0, 2});
    const auto target = lh::make_default_target(5000.0);

    std::vector<lycos::bsb::Bsb> bsbs(1);
    bsbs[0].graph.add_op(Op_kind::add);
    bsbs[0].graph.add_op(Op_kind::add);
    bsbs[0].profile = 10.0;

    const lse::Eval_context ctx{
        bsbs, lib, target, lycos::pace::Controller_mode::optimistic_eca, 1.0};
    lse::Eval_cache cache(ctx);

    lc::Rmap adder_only;
    adder_only.set(0, 1);
    lc::Rmap with_mult = adder_only;
    with_mult.set(1, 3);  // multiplier count is irrelevant to an add-only BSB

    (void)lse::evaluate_allocation(ctx, adder_only, &cache);
    const auto misses_after_first = cache.stats().misses;
    (void)lse::evaluate_allocation(ctx, with_mult, &cache);
    EXPECT_EQ(cache.stats().misses, misses_after_first);
    EXPECT_GT(cache.stats().hits, 0);
}
