// End-to-end tests: the full §5 pipeline (compile -> analyze ->
// allocate -> PACE -> compare against search) on the benchmark
// applications, asserting the *shape* of Table 1:
//
//   * straight and hal: the algorithm's allocation achieves the same
//     speed-up as the best allocation found by exhaustive search;
//   * man and eigen: the algorithm over-allocates (constant
//     generators / dividers) and falls short of the best allocation;
//     the single §5 design iteration recovers (most of) the gap.
//
// The evaluation charges real (list-schedule) controller areas while
// the allocator plans with the optimistic ECA — the §5.1 mismatch.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "core/allocator.hpp"
#include "hw/target.hpp"
#include "pace/brute_force.hpp"
#include "search/exhaustive.hpp"
#include "search/hill_climb.hpp"

namespace la = lycos::apps;
namespace lc = lycos::core;
namespace lh = lycos::hw;
namespace lp = lycos::pace;
namespace lse = lycos::search;

namespace {

constexpr auto k_eval_mode = lp::Controller_mode::list_schedule;

struct Pipeline {
    la::App app;
    lh::Hw_library lib = lh::make_default_library();
    lh::Target target;
    lc::Rmap restrictions;
    lc::Alloc_result heuristic_alloc;
    lse::Evaluation heuristic;

    explicit Pipeline(la::App a) : app(std::move(a))
    {
        target = lh::make_default_target(app.asic_area);
        const lc::Allocator alloc(lib, target);
        const auto infos = lc::analyze(app.bsbs, lib, target.gates);
        restrictions = lc::compute_restrictions(infos, lib);
        heuristic_alloc = alloc.run_analyzed(
            infos, {.area_budget = target.asic.total_area});
        heuristic =
            lse::evaluate_allocation(context(), heuristic_alloc.allocation);
    }

    lse::Eval_context context(double quantum = 0.0) const
    {
        return {app.bsbs, lib, target, k_eval_mode, quantum};
    }
};

}  // namespace

TEST(Integration, hal_allocator_achieves_speedup)
{
    const Pipeline p(la::make_hal());
    EXPECT_GT(p.heuristic.speedup_pct(), 300.0)
        << "hal should speed up substantially";
    EXPECT_GT(p.heuristic.partition.n_in_hw, 0);
    EXPECT_TRUE(p.heuristic.fits);
}

TEST(Integration, straight_allocator_achieves_speedup)
{
    const Pipeline p(la::make_straight());
    EXPECT_GT(p.heuristic.speedup_pct(), 300.0);
    EXPECT_GT(p.heuristic.partition.n_in_hw, 0);
}

TEST(Integration, straight_and_hal_match_best_allocation)
{
    // Table 1 rows 1-2: SU == SU(best).  Exhaustive search over the
    // restriction space with the same evaluation pipeline.
    for (auto make : {la::make_straight, la::make_hal}) {
        const Pipeline p(make());
        const double quantum = p.target.asic.total_area / 512.0;
        const auto ctx = p.context(quantum);
        const auto heuristic =
            lse::evaluate_allocation(ctx, p.heuristic_alloc.allocation);
        const auto best = lse::exhaustive_engine(ctx, p.restrictions);
        EXPECT_GE(best.best.speedup_pct() + 1e-6, heuristic.speedup_pct())
            << p.app.name;
        EXPECT_GT(heuristic.speedup_pct(),
                  0.98 * best.best.speedup_pct())
            << p.app.name << ": the allocator should match the best "
            << "allocation on this application";
    }
}

TEST(Integration, allocation_is_large_fraction_of_used_area)
{
    // Table 1 "Size" column: the data-path dominates the used HW area
    // (62%-93% in the paper).
    for (auto make : {la::make_straight, la::make_hal}) {
        const Pipeline p(make());
        if (p.heuristic.partition.n_in_hw > 0) {
            EXPECT_GT(p.heuristic.size_fraction(), 0.4) << p.app.name;
            EXPECT_LT(p.heuristic.size_fraction(), 1.0) << p.app.name;
        }
    }
}

TEST(Integration, pace_on_app_costs_matches_brute_force)
{
    const Pipeline p(la::make_hal());
    const auto costs =
        lp::build_cost_model(p.app.bsbs, p.lib, p.target,
                             p.heuristic.datapath, k_eval_mode);
    ASSERT_LE(costs.size(), 24u);
    const double budget =
        p.target.asic.total_area - p.heuristic.datapath_area;
    const auto dp =
        lp::pace_partition(costs, {.ctrl_area_budget = budget,
                                   .area_quantum = 0.25});
    const auto bf = lp::brute_force_partition(costs, budget);
    // Fine quantization: the DP must be within a whisker of exact.
    EXPECT_NEAR(dp.time_hybrid_ns, bf.time_hybrid_ns,
                1e-6 + 1e-9 * bf.time_hybrid_ns);
}

TEST(Integration, man_overallocates_constant_generators)
{
    // Table 1 row 3: the greedy allocator buys many constant
    // generators for the parallel constant-table BSB and falls short
    // of the best allocation.
    const Pipeline p(la::make_man());
    const auto cg = *p.lib.find("const_gen");
    EXPECT_GE(p.restrictions(cg), 8) << "parallel const loads expected";
    EXPECT_GE(p.heuristic_alloc.allocation(cg), 4)
        << "the anomaly: many constant generators allocated";

    // The single design iteration (const_gen -> 1) improves on the
    // automatic result.
    lc::Rmap iterated = p.heuristic_alloc.allocation;
    iterated.set(cg, 1);
    const auto after = lse::evaluate_allocation(p.context(), iterated);
    EXPECT_GT(after.speedup_pct(), p.heuristic.speedup_pct());
}

TEST(Integration, eigen_overallocates_dividers)
{
    // Table 1 row 4: the allocator buys an extra divider for the
    // parallel normalization divisions; removing one recovers the
    // best-allocation speed-up.
    const Pipeline p(la::make_eigen());
    const auto dv = *p.lib.find("divider");
    ASSERT_GE(p.heuristic_alloc.allocation(dv), 2)
        << "the anomaly: more than one divider allocated";

    lc::Rmap iterated = p.heuristic_alloc.allocation;
    iterated.set(dv, p.heuristic_alloc.allocation(dv) - 1);
    const auto after = lse::evaluate_allocation(p.context(), iterated);
    EXPECT_GT(after.speedup_pct(), 1.5 * p.heuristic.speedup_pct())
        << "one design iteration should recover a large gap";
}

TEST(Integration, eigen_space_too_large_to_exhaust)
{
    // Footnote 1: eigen's allocation space is far beyond what the
    // other applications need (theirs ~10^6; exhausting it at ~30 s
    // per evaluation was impossible).
    const Pipeline straight(la::make_straight());
    const Pipeline hal(la::make_hal());
    const Pipeline eigen(la::make_eigen());
    const auto size = [&](const Pipeline& p) {
        return lse::Alloc_space(p.lib, p.restrictions).size();
    };
    EXPECT_GT(size(eigen), 20 * size(straight));
    EXPECT_GT(size(eigen), 20 * size(hal));
    EXPECT_GT(size(eigen), 10000);
}

TEST(Integration, eigen_hill_climb_finds_better_than_heuristic)
{
    const Pipeline p(la::make_eigen());
    lycos::util::Rng rng(2024);
    const double quantum = p.target.asic.total_area / 512.0;
    const auto hc = lse::hill_climb_engine(p.context(quantum),
                                           p.restrictions,
                                           {.n_restarts = 4, .max_steps = 64},
                                           rng);
    EXPECT_GT(hc.best.speedup_pct(), p.heuristic.speedup_pct());
}

TEST(Integration, speedups_scale_with_asic_area)
{
    // Figure 3's premise: more ASIC area cannot hurt the best
    // achievable speedup (modulo greedy noise, bounded here).
    const auto app = la::make_hal();
    const auto lib = lh::make_default_library();
    double prev = -1.0;
    for (double area : {2000.0, 5000.0, 10000.0}) {
        const auto target = lh::make_default_target(area);
        const lc::Allocator alloc(lib, target);
        const auto r = alloc.run(app.bsbs, {.area_budget = area});
        const lse::Eval_context ctx{app.bsbs, lib, target, k_eval_mode, 0.0};
        const auto ev = lse::evaluate_allocation(ctx, r.allocation);
        EXPECT_GE(ev.speedup_pct() + 25.0, prev)
            << "speedup collapsed when area grew to " << area;
        prev = ev.speedup_pct();
    }
}

TEST(Integration, allocator_reruns_are_deterministic)
{
    const auto app = la::make_man();
    const auto lib = lh::make_default_library();
    const auto target = lh::make_default_target(app.asic_area);
    const lc::Allocator alloc(lib, target);
    const auto r1 = alloc.run(app.bsbs, {.area_budget = app.asic_area});
    const auto r2 = alloc.run(app.bsbs, {.area_budget = app.asic_area});
    EXPECT_EQ(r1.allocation, r2.allocation);
    EXPECT_EQ(r1.pseudo_in_hw, r2.pseudo_in_hw);
}
