// Randomized scalar-vs-SIMD equivalence for the dispatched kernel
// layer (util/simd.hpp) and for everything built on top of it.  The
// contract under test is *bit*-identity, not numerical closeness: the
// AVX2 kernels apply the identical IEEE add and the identical
// max-with-tie-to-second-operand per lane that the scalar kernels
// spell out, so values, parent bytes, tracebacks and placements must
// match exactly at every ISA level.
//
// On a build or CPU without AVX2 (LYCOS_DISABLE_SIMD, non-x86),
// best_isa() == scalar and force_isa clamps, so every comparison here
// degenerates to scalar-vs-scalar and the suite passes trivially —
// the scalar-only configuration stays first-class in CI.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "pace/multi_asic.hpp"
#include "pace/pace.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace lp = lycos::pace;
namespace ls = lycos::util::simd;

namespace {

constexpr double k_inf = std::numeric_limits<double>::infinity();

bool bit_equal(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Run `fn` with dispatch forced to `isa` (clamped to best_isa()),
/// restoring the best level afterwards even on assertion failure.
template <class Fn>
auto with_isa(ls::Isa isa, Fn&& fn)
{
    struct Restore {
        ~Restore() { ls::force_isa(ls::best_isa()); }
    } restore;
    ls::force_isa(isa);
    return fn();
}

/// Random per-BSB costs in the bench generator's ranges.  `tie_heavy`
/// quantizes every field to coarse steps so hardware gains collide
/// exactly across BSBs and DP cells — the regime where a wrong
/// max-tie order in a vector kernel would flip parents and values.
std::vector<lp::Bsb_cost> random_costs(lycos::util::Rng& rng, int n,
                                       bool tie_heavy)
{
    std::vector<lp::Bsb_cost> costs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto& c = costs[static_cast<std::size_t>(i)];
        if (tie_heavy) {
            c.t_sw = 100.0 * rng.uniform_int(1, 8);
            c.t_hw = 50.0 * rng.uniform_int(1, 6);
            c.comm = 25.0 * rng.uniform_int(0, 3);
            c.save_prev = i > 0 && c.comm > 0.0
                              ? 25.0 * rng.uniform_int(0, static_cast<int>(
                                                              c.comm / 25.0))
                              : 0.0;
            c.ctrl_area = rng.uniform_int(1, 6) * 10.0;
        } else {
            c.t_sw = rng.uniform_real(100.0, 5000.0);
            c.t_hw = rng.uniform_real(50.0, 2000.0);
            c.comm = rng.uniform_real(0.0, 100.0);
            c.save_prev = i > 0 ? rng.uniform_real(0.0, c.comm) : 0.0;
            c.ctrl_area = rng.uniform_int(1, 60);
        }
    }
    return costs;
}

std::vector<lp::Multi_bsb_cost> random_multi_costs(lycos::util::Rng& rng,
                                                   int n, bool tie_heavy)
{
    auto c0 = random_costs(rng, n, tie_heavy);
    auto c1 = random_costs(rng, n, tie_heavy);
    std::vector<lp::Multi_bsb_cost> costs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto& m = costs[static_cast<std::size_t>(i)];
        m.t_sw = c0[static_cast<std::size_t>(i)].t_sw;
        m.hw[0] = c0[static_cast<std::size_t>(i)];
        m.hw[1] = c1[static_cast<std::size_t>(i)];
        m.hw[1].t_sw = m.t_sw;
    }
    return costs;
}

void expect_same_result(const lp::Pace_result& a, const lp::Pace_result& b)
{
    EXPECT_EQ(a.in_hw, b.in_hw);
    EXPECT_TRUE(bit_equal(a.time_hybrid_ns, b.time_hybrid_ns));
    EXPECT_TRUE(bit_equal(a.ctrl_area_used, b.ctrl_area_used));
    EXPECT_EQ(a.n_in_hw, b.n_in_hw);
}

void expect_same_multi(const lp::Multi_pace_result& a,
                       const lp::Multi_pace_result& b)
{
    EXPECT_EQ(a.placement, b.placement);
    EXPECT_TRUE(bit_equal(a.time_hybrid_ns, b.time_hybrid_ns));
    EXPECT_TRUE(bit_equal(a.ctrl_area_used[0], b.ctrl_area_used[0]));
    EXPECT_TRUE(bit_equal(a.ctrl_area_used[1], b.ctrl_area_used[1]));
    EXPECT_EQ(a.n_in_hw, b.n_in_hw);
}

// --- direct kernel-table equivalence --------------------------------

/// A (area, side)-pair row of 2n doubles: mostly finite values with
/// exact ties planted between and within pairs, plus -inf holes (the
/// unreachable-state marker the real rows are full of).
std::vector<double> random_row(lycos::util::Rng& rng, std::size_t n)
{
    std::vector<double> row(2 * n);
    for (auto& v : row) {
        if (rng.chance(0.2))
            v = -k_inf;
        else
            v = 10.0 * rng.uniform_int(0, 40);  // coarse grid => exact ties
    }
    return row;
}

TEST(Simd_kernels, pace_row_sw_matches_scalar_at_every_length)
{
    const ls::Kernels& sc = ls::kernels(ls::Isa::scalar);
    const ls::Kernels& vec = ls::kernels(ls::Isa::avx2);
    lycos::util::Rng rng(101);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                          std::size_t{3}, std::size_t{4}, std::size_t{5},
                          std::size_t{7}, std::size_t{8}, std::size_t{13},
                          std::size_t{16}, std::size_t{17}, std::size_t{64},
                          std::size_t{65}}) {
        for (int trial = 0; trial < 8; ++trial) {
            const auto cur = random_row(rng, n);
            std::vector<double> a(2 * n, 12345.0);
            std::vector<double> b(2 * n, 12345.0);
            sc.pace_row_sw(cur.data(), a.data(), n);
            vec.pace_row_sw(cur.data(), b.data(), n);
            for (std::size_t i = 0; i < 2 * n; ++i)
                ASSERT_TRUE(bit_equal(a[i], b[i]))
                    << "n=" << n << " slot " << i;
        }
    }
}

TEST(Simd_kernels, pace_row_hw_matches_scalar_and_preserves_even_slots)
{
    const ls::Kernels& sc = ls::kernels(ls::Isa::scalar);
    const ls::Kernels& vec = ls::kernels(ls::Isa::avx2);
    lycos::util::Rng rng(102);
    for (std::size_t n :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
          std::size_t{8}, std::size_t{11}, std::size_t{16}, std::size_t{33}}) {
        for (int trial = 0; trial < 8; ++trial) {
            const auto cur = random_row(rng, n);
            const double gain = 10.0 * rng.uniform_int(-5, 20);
            const double gain_save = gain + 5.0 * rng.uniform_int(0, 4);
            auto a = random_row(rng, n);  // pre-existing destination
            auto b = a;
            sc.pace_row_hw(cur.data(), a.data(), n, gain, gain_save);
            vec.pace_row_hw(cur.data(), b.data(), n, gain, gain_save);
            for (std::size_t i = 0; i < 2 * n; ++i)
                ASSERT_TRUE(bit_equal(a[i], b[i]))
                    << "n=" << n << " slot " << i;
        }
    }
}

TEST(Simd_kernels, pace_row_parent_matches_scalar)
{
    const ls::Kernels& sc = ls::kernels(ls::Isa::scalar);
    const ls::Kernels& vec = ls::kernels(ls::Isa::avx2);
    lycos::util::Rng rng(103);
    for (std::size_t n :
         {std::size_t{1}, std::size_t{3}, std::size_t{4}, std::size_t{7},
          std::size_t{9}, std::size_t{16}, std::size_t{31}}) {
        for (int trial = 0; trial < 8; ++trial) {
            const auto cur = random_row(rng, n);
            const double add0 = 10.0 * rng.uniform_int(-3, 10);
            const double add1 = 10.0 * rng.uniform_int(-3, 10);
            std::vector<std::uint8_t> a(n, 0xCD);
            std::vector<std::uint8_t> b(n, 0xCD);
            sc.pace_row_parent(cur.data(), a.data(), n, add0, add1);
            vec.pace_row_parent(cur.data(), b.data(), n, add0, add1);
            EXPECT_EQ(a, b) << "n=" << n;
        }
    }
}

TEST(Simd_kernels, multi_shift_lane_matches_scalar_including_truncation)
{
    const ls::Kernels& sc = ls::kernels(ls::Isa::scalar);
    const ls::Kernels& vec = ls::kernels(ls::Isa::avx2);
    lycos::util::Rng rng(104);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniform_int(0, 40));
        // Sorted-unique (a0, a1) with a0 ascending, as the sweep
        // guarantees; values on a coarse grid.
        std::vector<std::int32_t> a0(n);
        std::vector<std::int32_t> a1(n);
        std::vector<double> value(n);
        std::int32_t run0 = 0;
        for (std::size_t i = 0; i < n; ++i) {
            run0 += rng.uniform_int(0, 3);
            a0[i] = run0;
            a1[i] = rng.uniform_int(0, 50);
            value[i] = 10.0 * rng.uniform_int(0, 100);
        }
        const auto da0 = static_cast<std::int32_t>(rng.uniform_int(0, 10));
        const auto da1 = static_cast<std::int32_t>(rng.uniform_int(0, 10));
        const double add = 10.0 * rng.uniform_int(-5, 20);
        // Tight caps on some trials so both the a0 truncation and the
        // a1 sentinel paths fire; generous caps on the rest.
        const auto cap0 = static_cast<std::int32_t>(
            rng.chance(0.5) ? rng.uniform_int(0, 30) : 1000);
        const auto cap1 = static_cast<std::int32_t>(
            rng.chance(0.5) ? rng.uniform_int(0, 30) : 1000);
        std::vector<std::uint64_t> ka(n, 0), kb(n, 0);
        std::vector<double> va(n, 0.0), vb(n, 0.0);
        const std::size_t wa =
            sc.multi_shift_lane(a0.data(), a1.data(), value.data(), n, da0,
                                da1, add, cap0, cap1, ka.data(), va.data());
        const std::size_t wb =
            vec.multi_shift_lane(a0.data(), a1.data(), value.data(), n, da0,
                                 da1, add, cap0, cap1, kb.data(), vb.data());
        ASSERT_EQ(wa, wb) << "trial " << trial;
        for (std::size_t i = 0; i < wa; ++i) {
            ASSERT_EQ(ka[i], kb[i]) << "trial " << trial << " entry " << i;
            ASSERT_TRUE(bit_equal(va[i], vb[i]))
                << "trial " << trial << " entry " << i;
        }
        // Spot-check the scalar semantics themselves: every valid key
        // is the shifted packed pair, sentinels exactly on a1 overflow.
        for (std::size_t i = 0; i < wa; ++i) {
            if (a1[i] + da1 > cap1) {
                EXPECT_EQ(ka[i], ls::k_invalid_key);
            } else {
                EXPECT_EQ(ka[i],
                          (static_cast<std::uint64_t>(a0[i] + da0) << 32) |
                              static_cast<std::uint32_t>(a1[i] + da1));
                EXPECT_TRUE(bit_equal(va[i], value[i] + add));
            }
        }
        if (wa < n)  // truncated: the first dropped entry overflows a0
            EXPECT_GT(a0[wa] + da0, cap0);
    }
}

TEST(Simd_kernels, max_reduce_matches_scalar)
{
    const ls::Kernels& sc = ls::kernels(ls::Isa::scalar);
    const ls::Kernels& vec = ls::kernels(ls::Isa::avx2);
    EXPECT_TRUE(bit_equal(sc.max_reduce(nullptr, 0), -k_inf));
    EXPECT_TRUE(bit_equal(vec.max_reduce(nullptr, 0), -k_inf));
    lycos::util::Rng rng(105);
    for (std::size_t n = 1; n <= 40; ++n) {
        for (int trial = 0; trial < 4; ++trial) {
            std::vector<double> v(n);
            for (auto& x : v)
                x = rng.chance(0.3) ? -k_inf
                                    : 10.0 * rng.uniform_int(-50, 50);
            EXPECT_TRUE(bit_equal(sc.max_reduce(v.data(), n),
                                  vec.max_reduce(v.data(), n)))
                << "n=" << n;
        }
    }
}

// --- end-to-end sweeps across forced ISA levels ---------------------

TEST(Simd_pace, best_saving_and_traceback_bit_identical_across_isa)
{
    lycos::util::Rng rng(7);
    for (int trial = 0; trial < 30; ++trial) {
        const int n = rng.uniform_int(1, 40);
        const bool ties = trial % 2 == 0;
        const auto costs = random_costs(rng, n, ties);
        lp::Pace_options opts;
        // Odd, non-multiple-of-lane table widths on most trials.
        opts.ctrl_area_budget = rng.uniform_int(30, 400);
        opts.area_quantum = ties ? 10.0 : 1.0;

        const double sv = with_isa(ls::Isa::scalar, [&] {
            return lp::pace_best_saving(costs, opts);
        });
        const double vv = with_isa(ls::Isa::avx2, [&] {
            return lp::pace_best_saving(costs, opts);
        });
        EXPECT_TRUE(bit_equal(sv, vv)) << "trial " << trial;

        const auto sr = with_isa(ls::Isa::scalar, [&] {
            return lp::pace_partition(costs, opts);
        });
        const auto vr = with_isa(ls::Isa::avx2, [&] {
            return lp::pace_partition(costs, opts);
        });
        expect_same_result(sr, vr);
        EXPECT_NEAR(sr.time_all_sw_ns - sr.time_hybrid_ns, sv, 1e-6)
            << "screen and full DP disagree beyond summation order";
    }
}

TEST(Simd_pace, checkpoint_resume_matches_cold_scalar_across_isa)
{
    lycos::util::Rng rng(11);
    const int n = 24;
    auto costs = random_costs(rng, n, /*tie_heavy=*/true);
    lp::Pace_options opts;
    opts.ctrl_area_budget = 190.0;  // width 20 at quantum 10: odd block tail
    opts.area_quantum = 10.0;

    lp::Pace_workspace ws_scalar;
    lp::Pace_workspace ws_simd;
    for (int step = 0; step < 12; ++step) {
        // Mutate a suffix so resume fires at varying rows: the last
        // BSB, a middle BSB, or no change at all (full reuse).
        if (step > 0) {
            const int at = step % 3 == 0 ? n - 1
                           : step % 3 == 1
                               ? rng.uniform_int(n / 2, n - 1)
                               : n;  // n == no mutation
            if (at < n) {
                costs[static_cast<std::size_t>(at)].t_hw =
                    50.0 * rng.uniform_int(1, 6);
                costs[static_cast<std::size_t>(at)].ctrl_area =
                    10.0 * rng.uniform_int(1, 6);
            }
        }
        const auto cold = with_isa(ls::Isa::scalar, [&] {
            return lp::pace_partition(costs, opts);  // no workspace
        });
        const auto warm_scalar = with_isa(ls::Isa::scalar, [&] {
            return lp::pace_partition(costs, opts, &ws_scalar);
        });
        const auto warm_simd = with_isa(ls::Isa::avx2, [&] {
            return lp::pace_partition(costs, opts, &ws_simd);
        });
        expect_same_result(cold, warm_scalar);
        expect_same_result(cold, warm_simd);

        const double cold_v = with_isa(ls::Isa::scalar, [&] {
            return lp::pace_best_saving(costs, opts);
        });
        const double warm_v = with_isa(ls::Isa::avx2, [&] {
            return lp::pace_best_saving(costs, opts, &ws_simd);
        });
        EXPECT_TRUE(bit_equal(cold_v, warm_v)) << "step " << step;
    }
    EXPECT_GT(ws_simd.rows_reused(), 0);
}

TEST(Simd_multi, sparse_sweep_bit_identical_across_isa)
{
    lycos::util::Rng rng(13);
    lycos::util::Arena arena_s;
    lycos::util::Arena arena_v;
    lp::Multi_pace_workspace ws_s(&arena_s);
    lp::Multi_pace_workspace ws_v(&arena_v);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = rng.uniform_int(1, 28);
        const bool ties = trial % 2 == 0;
        const auto costs = random_multi_costs(rng, n, ties);
        lp::Multi_pace_options opts;
        opts.ctrl_area_budgets = {
            static_cast<double>(rng.uniform_int(40, 250)),
            static_cast<double>(rng.uniform_int(40, 250))};
        opts.area_quantum = ties ? 10.0 : 1.0;

        const double sv = with_isa(ls::Isa::scalar, [&] {
            return lp::multi_pace_best_saving(costs, opts, &ws_s);
        });
        const double vv = with_isa(ls::Isa::avx2, [&] {
            return lp::multi_pace_best_saving(costs, opts, &ws_v);
        });
        EXPECT_TRUE(bit_equal(sv, vv)) << "trial " << trial;

        const auto sr = with_isa(ls::Isa::scalar, [&] {
            return lp::multi_pace_partition(costs, opts, &ws_s);
        });
        const auto vr = with_isa(ls::Isa::avx2, [&] {
            return lp::multi_pace_partition(costs, opts, &ws_v);
        });
        expect_same_multi(sr, vr);

        // And both must still reproduce the dense reference exactly.
        const auto ref = lp::multi_pace_partition_reference(costs, opts);
        expect_same_multi(ref, vr);
    }
}

TEST(Simd_threads, partitions_identical_for_any_thread_count_and_isa)
{
    lycos::util::Rng rng(17);
    constexpr int k_jobs = 12;
    std::vector<std::vector<lp::Bsb_cost>> jobs;
    for (int j = 0; j < k_jobs; ++j)
        jobs.push_back(random_costs(rng, 20 + j, j % 2 == 0));
    lp::Pace_options opts;
    opts.ctrl_area_budget = 230.0;
    opts.area_quantum = 1.0;

    // Serial scalar reference.
    std::vector<lp::Pace_result> ref;
    with_isa(ls::Isa::scalar, [&] {
        for (const auto& c : jobs) ref.push_back(lp::pace_partition(c, opts));
        return 0;
    });

    for (std::size_t n_threads : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
        for (ls::Isa isa : {ls::Isa::scalar, ls::Isa::avx2}) {
            with_isa(isa, [&] {
                std::vector<lp::Pace_result> got(k_jobs);
                lycos::util::Thread_pool pool(n_threads);
                lycos::util::parallel_chunks(
                    pool, k_jobs, n_threads,
                    [&](std::size_t, long long lo, long long hi) {
                        // Per-worker arena-backed workspace, as the
                        // engines allocate them inside task bodies.
                        lycos::util::Arena arena;
                        lp::Pace_workspace ws(&arena);
                        for (long long j = lo; j < hi; ++j)
                            got[static_cast<std::size_t>(j)] =
                                lp::pace_partition(
                                    jobs[static_cast<std::size_t>(j)], opts,
                                    &ws);
                    });
                for (int j = 0; j < k_jobs; ++j)
                    expect_same_result(ref[static_cast<std::size_t>(j)],
                                       got[static_cast<std::size_t>(j)]);
                return 0;
            });
        }
    }
}

TEST(Simd_dispatch, force_isa_clamps_and_reports)
{
    // Whatever the build, forcing scalar must land on scalar...
    ls::force_isa(ls::Isa::scalar);
    EXPECT_EQ(ls::active_isa(), ls::Isa::scalar);
    // ...and forcing above best clamps to best.
    ls::force_isa(ls::Isa::avx2);
    EXPECT_EQ(ls::active_isa(), ls::best_isa());
    EXPECT_STREQ(ls::isa_name(ls::Isa::scalar), "scalar");
    EXPECT_STREQ(ls::isa_name(ls::Isa::avx2), "avx2");
}

}  // namespace
