// Tests for dfg: graph construction, topological order, transitive
// successors, critical path, bit matrix.
#include <gtest/gtest.h>

#include "dfg/bit_matrix.hpp"
#include "dfg/dfg.hpp"
#include "util/rng.hpp"

namespace ld = lycos::dfg;
using lycos::hw::Op_kind;

TEST(BitMatrix, set_get)
{
    ld::Bit_matrix m(100);
    EXPECT_FALSE(m.get(3, 77));
    m.set(3, 77);
    EXPECT_TRUE(m.get(3, 77));
    m.set(3, 77, false);
    EXPECT_FALSE(m.get(3, 77));
}

TEST(BitMatrix, or_row_into_and_count)
{
    ld::Bit_matrix m(70);
    m.set(0, 1);
    m.set(0, 65);
    m.set(1, 2);
    m.or_row_into(0, 1);
    EXPECT_TRUE(m.get(1, 1));
    EXPECT_TRUE(m.get(1, 65));
    EXPECT_TRUE(m.get(1, 2));
    EXPECT_EQ(m.row_count(1), 3u);
    EXPECT_EQ(m.row_count(0), 2u);
}

TEST(Dfg, build_and_query)
{
    ld::Dfg g;
    const auto a = g.add_op(Op_kind::add, "a");
    const auto b = g.add_op(Op_kind::mul, "b");
    g.add_edge(a, b);
    EXPECT_EQ(g.size(), 2u);
    EXPECT_EQ(g.op(a).kind, Op_kind::add);
    EXPECT_EQ(g.op(b).name, "b");
    ASSERT_EQ(g.succs(a).size(), 1u);
    EXPECT_EQ(g.succs(a)[0], b);
    ASSERT_EQ(g.preds(b).size(), 1u);
    EXPECT_EQ(g.preds(b)[0], a);
}

TEST(Dfg, duplicate_edges_ignored_self_edges_throw)
{
    ld::Dfg g;
    const auto a = g.add_op(Op_kind::add);
    const auto b = g.add_op(Op_kind::add);
    g.add_edge(a, b);
    g.add_edge(a, b);
    EXPECT_EQ(g.succs(a).size(), 1u);
    EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);
    EXPECT_THROW(g.add_edge(a, 5), std::out_of_range);
}

TEST(Dfg, topo_order_respects_edges)
{
    ld::Dfg g;
    const auto a = g.add_op(Op_kind::add);
    const auto b = g.add_op(Op_kind::add);
    const auto c = g.add_op(Op_kind::add);
    g.add_edge(c, b);  // c before b
    g.add_edge(b, a);  // b before a
    const auto order = g.topo_order();
    ASSERT_EQ(order.size(), 3u);
    std::vector<int> pos(3);
    for (int i = 0; i < 3; ++i)
        pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
    EXPECT_LT(pos[static_cast<std::size_t>(c)], pos[static_cast<std::size_t>(b)]);
    EXPECT_LT(pos[static_cast<std::size_t>(b)], pos[static_cast<std::size_t>(a)]);
}

TEST(Dfg, cycle_detection)
{
    ld::Dfg g;
    const auto a = g.add_op(Op_kind::add);
    const auto b = g.add_op(Op_kind::add);
    g.add_edge(a, b);
    EXPECT_TRUE(g.is_dag());
    g.add_edge(b, a);
    EXPECT_FALSE(g.is_dag());
    EXPECT_THROW(g.topo_order(), std::logic_error);
    EXPECT_THROW(g.transitive_successors(), std::logic_error);
}

TEST(Dfg, transitive_successors_chain_and_diamond)
{
    // a -> b -> d, a -> c -> d
    ld::Dfg g;
    const auto a = g.add_op(Op_kind::add);
    const auto b = g.add_op(Op_kind::add);
    const auto c = g.add_op(Op_kind::add);
    const auto d = g.add_op(Op_kind::add);
    g.add_edge(a, b);
    g.add_edge(a, c);
    g.add_edge(b, d);
    g.add_edge(c, d);
    const auto s = g.transitive_successors();
    EXPECT_TRUE(s.get(0, 1));
    EXPECT_TRUE(s.get(0, 2));
    EXPECT_TRUE(s.get(0, 3));  // transitive
    EXPECT_TRUE(s.get(1, 3));
    EXPECT_FALSE(s.get(1, 2));  // b and c independent
    EXPECT_FALSE(s.get(2, 1));
    EXPECT_FALSE(s.get(3, 0));  // no backwards reachability
    EXPECT_EQ(s.row_count(0), 3u);
}

TEST(Dfg, critical_path)
{
    ld::Dfg g;
    EXPECT_EQ(g.critical_path_ops(), 0);
    const auto a = g.add_op(Op_kind::add);
    EXPECT_EQ(g.critical_path_ops(), 1);
    const auto b = g.add_op(Op_kind::add);
    const auto c = g.add_op(Op_kind::add);
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_op(Op_kind::add);  // isolated
    EXPECT_EQ(g.critical_path_ops(), 3);
}

TEST(Dfg, histogram_and_used_ops)
{
    ld::Dfg g;
    g.add_op(Op_kind::add);
    g.add_op(Op_kind::add);
    g.add_op(Op_kind::mul);
    const auto h = g.kind_histogram();
    EXPECT_EQ(h[Op_kind::add], 2);
    EXPECT_EQ(h[Op_kind::mul], 1);
    EXPECT_EQ(h[Op_kind::div], 0);
    EXPECT_EQ(g.count(Op_kind::add), 2);
    EXPECT_TRUE(g.used_ops().contains(Op_kind::mul));
    EXPECT_FALSE(g.used_ops().contains(Op_kind::div));
}

TEST(Dfg, live_values_deduplicated)
{
    ld::Dfg g;
    g.add_live_in("x");
    g.add_live_in("x");
    g.add_live_out("y");
    g.add_live_out("y");
    EXPECT_EQ(g.live_ins().size(), 1u);
    EXPECT_EQ(g.live_outs().size(), 1u);
}

// Property sweep: random forward-edge DAGs always topo-sort, and every
// direct successor is in the transitive matrix.
class DfgRandom : public ::testing::TestWithParam<int> {};

TEST_P(DfgRandom, random_dags_are_consistent)
{
    lycos::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
    ld::Dfg g;
    const int n = rng.uniform_int(2, 40);
    for (int i = 0; i < n; ++i)
        g.add_op(Op_kind::add);
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            if (rng.chance(0.2))
                g.add_edge(a, b);

    EXPECT_TRUE(g.is_dag());
    const auto order = g.topo_order();
    EXPECT_EQ(order.size(), static_cast<std::size_t>(n));

    const auto s = g.transitive_successors();
    for (int v = 0; v < n; ++v)
        for (auto w : g.succs(v))
            EXPECT_TRUE(s.get(static_cast<std::size_t>(v),
                              static_cast<std::size_t>(w)));
    // Transitivity: succ(succ(v)) subset of succ(v).
    for (int v = 0; v < n; ++v)
        for (int w = 0; w < n; ++w)
            if (s.get(static_cast<std::size_t>(v), static_cast<std::size_t>(w)))
                for (int x = 0; x < n; ++x)
                    if (s.get(static_cast<std::size_t>(w),
                              static_cast<std::size_t>(x)))
                        EXPECT_TRUE(s.get(static_cast<std::size_t>(v),
                                          static_cast<std::size_t>(x)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfgRandom, ::testing::Range(0, 12));
