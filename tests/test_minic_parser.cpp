// Tests for the MiniC parser.
#include <gtest/gtest.h>

#include "minic/parser.hpp"

namespace lm = lycos::minic;
using lycos::hw::Op_kind;

TEST(Parser, simple_assignment)
{
    const auto p = lm::parse("x = a + b * c;");
    ASSERT_EQ(p.main.stmts.size(), 1u);
    const auto& s = *p.main.stmts[0];
    EXPECT_EQ(s.kind, lm::Stmt::Kind::assign);
    EXPECT_EQ(s.target, "x");
    // Precedence: + at the root, * below.
    ASSERT_EQ(s.expr->kind, lm::Expr::Kind::binary);
    EXPECT_EQ(s.expr->op, Op_kind::add);
    EXPECT_EQ(s.expr->rhs->op, Op_kind::mul);
}

TEST(Parser, left_associativity)
{
    const auto p = lm::parse("x = a - b - c;");
    const auto& e = *p.main.stmts[0]->expr;
    // (a - b) - c
    EXPECT_EQ(e.op, Op_kind::sub);
    EXPECT_EQ(e.rhs->kind, lm::Expr::Kind::var);
    EXPECT_EQ(e.rhs->name, "c");
    EXPECT_EQ(e.lhs->op, Op_kind::sub);
}

TEST(Parser, parentheses_override)
{
    const auto p = lm::parse("x = (a + b) * c;");
    const auto& e = *p.main.stmts[0]->expr;
    EXPECT_EQ(e.op, Op_kind::mul);
    EXPECT_EQ(e.lhs->op, Op_kind::add);
}

TEST(Parser, greater_than_swaps_operands)
{
    // a > b is canonicalized to b < a; a >= b to b <= a.
    const auto p = lm::parse("x = a > b; y = a >= b;");
    const auto& gt = *p.main.stmts[0]->expr;
    EXPECT_EQ(gt.op, Op_kind::cmp_lt);
    EXPECT_EQ(gt.lhs->name, "b");
    EXPECT_EQ(gt.rhs->name, "a");
    const auto& ge = *p.main.stmts[1]->expr;
    EXPECT_EQ(ge.op, Op_kind::cmp_le);
    EXPECT_EQ(ge.lhs->name, "b");
}

TEST(Parser, unary_operators)
{
    const auto p = lm::parse("x = -a + !b;");
    const auto& e = *p.main.stmts[0]->expr;
    EXPECT_EQ(e.lhs->kind, lm::Expr::Kind::unary);
    EXPECT_EQ(e.lhs->op, Op_kind::neg);
    EXPECT_EQ(e.rhs->op, Op_kind::log_not);
}

TEST(Parser, if_with_prob_and_else)
{
    const auto p = lm::parse("if (a < b) prob 30 { x = 1; } else { x = 2; }");
    const auto& s = *p.main.stmts[0];
    EXPECT_EQ(s.kind, lm::Stmt::Kind::if_);
    EXPECT_DOUBLE_EQ(s.p_true, 0.30);
    EXPECT_EQ(s.then_block.stmts.size(), 1u);
    EXPECT_EQ(s.else_block.stmts.size(), 1u);
}

TEST(Parser, if_defaults)
{
    const auto p = lm::parse("if (a < b) { x = 1; }");
    const auto& s = *p.main.stmts[0];
    EXPECT_DOUBLE_EQ(s.p_true, 0.5);
    EXPECT_TRUE(s.else_block.stmts.empty());
}

TEST(Parser, bad_prob_throws)
{
    EXPECT_THROW(lm::parse("if (a) prob 150 { }"), lm::Parse_error);
}

TEST(Parser, counted_loop)
{
    const auto p = lm::parse("loop 64 { x = x + 1; }");
    const auto& s = *p.main.stmts[0];
    EXPECT_EQ(s.kind, lm::Stmt::Kind::loop);
    EXPECT_DOUBLE_EQ(s.trips, 64.0);
    EXPECT_EQ(s.body.stmts.size(), 1u);
}

TEST(Parser, while_with_trip)
{
    const auto p = lm::parse("while (x < a) trip 1000 { x = x + 1; }");
    const auto& s = *p.main.stmts[0];
    EXPECT_EQ(s.kind, lm::Stmt::Kind::while_);
    EXPECT_DOUBLE_EQ(s.trips, 1000.0);
}

TEST(Parser, wait_statement)
{
    const auto p = lm::parse("wait 3;");
    EXPECT_EQ(p.main.stmts[0]->kind, lm::Stmt::Kind::wait);
    EXPECT_EQ(p.main.stmts[0]->wait_cycles, 3);
}

TEST(Parser, input_output_lists)
{
    const auto p = lm::parse("input a, b, c; output y;");
    EXPECT_EQ(p.main.stmts[0]->kind, lm::Stmt::Kind::input);
    EXPECT_EQ(p.main.stmts[0]->names.size(), 3u);
    EXPECT_EQ(p.main.stmts[1]->kind, lm::Stmt::Kind::output);
    EXPECT_EQ(p.main.stmts[1]->names[0], "y");
}

TEST(Parser, function_definition_and_call)
{
    const auto p = lm::parse(R"(
func f(a, b) { c = a + b; }
f(1, x + 2);
)");
    ASSERT_EQ(p.funcs.size(), 1u);
    EXPECT_EQ(p.funcs[0].name, "f");
    ASSERT_EQ(p.funcs[0].params.size(), 2u);
    EXPECT_NE(p.find_func("f"), nullptr);
    EXPECT_EQ(p.find_func("g"), nullptr);
    ASSERT_EQ(p.main.stmts.size(), 1u);
    const auto& call = *p.main.stmts[0];
    EXPECT_EQ(call.kind, lm::Stmt::Kind::call);
    EXPECT_EQ(call.callee, "f");
    EXPECT_EQ(call.args.size(), 2u);
}

TEST(Parser, missing_semicolon_throws)
{
    EXPECT_THROW(lm::parse("x = 1"), lm::Parse_error);
}

TEST(Parser, unterminated_block_throws)
{
    EXPECT_THROW(lm::parse("loop 3 { x = 1;"), lm::Parse_error);
}

TEST(Parser, statement_count_recurses)
{
    const auto p = lm::parse(R"(
x = 1;
loop 2 { y = 2; if (y < 3) { z = 4; } }
)");
    EXPECT_EQ(lm::statement_count(p.main), 5u);
}

TEST(Parser, error_carries_line_number)
{
    try {
        lm::parse("x = 1;\ny = ;\n");
        FAIL() << "expected Parse_error";
    }
    catch (const lm::Parse_error& e) {
        EXPECT_EQ(e.line(), 2);
    }
}
