// Tests for module selection (§6 future work): policies over a
// library with several implementations per operation kind.
#include <gtest/gtest.h>

#include "core/allocator.hpp"
#include "core/selection.hpp"
#include "estimate/hw_time.hpp"
#include "hw/target.hpp"

namespace lc = lycos::core;
namespace lh = lycos::hw;
namespace lb = lycos::bsb;
using lh::Op_kind;
using lc::Selection_policy;

TEST(Selection, min_area_picks_smallest)
{
    const auto lib = lc::make_variant_library();
    const auto r = lc::select_executor(lib, Op_kind::mul,
                                       Selection_policy::min_area);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(lib[*r].name, "mult_serial");
}

TEST(Selection, min_latency_picks_fastest)
{
    const auto lib = lc::make_variant_library();
    const auto r = lc::select_executor(lib, Op_kind::mul,
                                       Selection_policy::min_latency);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(lib[*r].name, "mult_fast");
}

TEST(Selection, balanced_minimizes_area_latency_product)
{
    const auto lib = lc::make_variant_library();
    // mult_serial: 1100*5 = 5500; mult_fast: 2200*2 = 4400 -> fast.
    const auto mul = lc::select_executor(lib, Op_kind::mul,
                                         Selection_policy::balanced);
    ASSERT_TRUE(mul.has_value());
    EXPECT_EQ(lib[*mul].name, "mult_fast");
    // adder_serial: 100*2 = 200; adder_fast: 180*1 = 180 -> fast.
    const auto add = lc::select_executor(lib, Op_kind::add,
                                         Selection_policy::balanced);
    ASSERT_TRUE(add.has_value());
    EXPECT_EQ(lib[*add].name, "adder_fast");
}

TEST(Selection, unknown_kind_returns_nothing)
{
    lh::Hw_library lib;
    lib.add({"adder", {Op_kind::add}, 10.0, 1});
    EXPECT_FALSE(lc::select_executor(lib, Op_kind::div,
                                     Selection_policy::min_area)
                     .has_value());
}

TEST(Selection, single_variant_library_is_policy_invariant)
{
    const auto lib = lh::make_default_library();
    for (auto k : lh::all_op_kinds()) {
        const auto a =
            lc::select_executor(lib, k, Selection_policy::min_area);
        const auto l =
            lc::select_executor(lib, k, Selection_policy::min_latency);
        const auto b =
            lc::select_executor(lib, k, Selection_policy::balanced);
        EXPECT_EQ(a, l) << lh::to_string(k);
        EXPECT_EQ(a, b) << lh::to_string(k);
    }
}

TEST(Selection, variant_library_covers_all_kinds)
{
    const auto lib = lc::make_variant_library();
    for (auto k : lh::all_op_kinds())
        EXPECT_TRUE(lib.cheapest_executor(k).has_value())
            << lh::to_string(k);
}

namespace {

std::vector<lb::Bsb> mul_heavy_app()
{
    std::vector<lb::Bsb> bsbs;
    lb::Bsb b;
    for (int i = 0; i < 3; ++i)
        b.graph.add_op(Op_kind::mul);
    b.graph.add_op(Op_kind::add);
    b.profile = 100.0;
    bsbs.push_back(std::move(b));
    return bsbs;
}

}  // namespace

TEST(Selection, allocator_buys_selected_variants)
{
    const auto lib = lc::make_variant_library();
    const auto target = lh::make_default_target(20000.0);
    const lc::Allocator alloc(lib, target);
    const auto bsbs = mul_heavy_app();

    const auto small = alloc.run(
        bsbs, {.area_budget = 20000.0,
               .selection = Selection_policy::min_area});
    const auto fast = alloc.run(
        bsbs, {.area_budget = 20000.0,
               .selection = Selection_policy::min_latency});

    EXPECT_GT(small.allocation(*lib.find("mult_serial")), 0);
    EXPECT_EQ(small.allocation(*lib.find("mult_fast")), 0);
    EXPECT_GT(fast.allocation(*lib.find("mult_fast")), 0);
    EXPECT_EQ(fast.allocation(*lib.find("mult_serial")), 0);
}

TEST(Selection, required_resources_respects_policy)
{
    const auto lib = lc::make_variant_library();
    const auto target = lh::make_default_target(20000.0);
    const lc::Allocator alloc(lib, target);
    const auto req_small = alloc.required_resources(
        {Op_kind::mul, Op_kind::div}, Selection_policy::min_area);
    ASSERT_TRUE(req_small.has_value());
    EXPECT_EQ((*req_small)(*lib.find("mult_serial")), 1);
    EXPECT_EQ((*req_small)(*lib.find("div_serial")), 1);

    const auto req_fast = alloc.required_resources(
        {Op_kind::mul, Op_kind::div}, Selection_policy::min_latency);
    ASSERT_TRUE(req_fast.has_value());
    EXPECT_EQ((*req_fast)(*lib.find("mult_fast")), 1);
    EXPECT_EQ((*req_fast)(*lib.find("div_fast")), 1);
}

TEST(Selection, fast_datapath_is_larger_but_quicker)
{
    // With the same BSBs, the min_latency allocation occupies more
    // area and yields a shorter hardware schedule.
    const auto lib = lc::make_variant_library();
    const auto target = lh::make_default_target(30000.0);
    const lc::Allocator alloc(lib, target);
    const auto bsbs = mul_heavy_app();

    const auto small = alloc.run(
        bsbs, {.area_budget = 30000.0,
               .selection = Selection_policy::min_area});
    const auto fast = alloc.run(
        bsbs, {.area_budget = 30000.0,
               .selection = Selection_policy::min_latency});

    EXPECT_LT(small.datapath_area, fast.datapath_area);

    const auto t_small = lycos::estimate::hw_cycles(
        bsbs[0].graph, lib, small.allocation.dense_counts(lib));
    const auto t_fast = lycos::estimate::hw_cycles(
        bsbs[0].graph, lib, fast.allocation.dense_counts(lib));
    ASSERT_TRUE(t_small.has_value());
    ASSERT_TRUE(t_fast.has_value());
    EXPECT_LT(*t_fast, *t_small);
}
